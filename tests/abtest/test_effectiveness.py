"""Tests for null-arm rule-effectiveness evaluation (Section VI-D)."""

import numpy as np
import pytest

from repro.abtest.effectiveness import (
    evaluate_rule_effectiveness,
    is_rule_effective,
)
from repro.abtest.experiment import AbExperiment, Variant
from repro.core.events import EventCategory
from repro.core.indicator import CdiReport


def build_experiment(action_perf_mean: float, null_perf_mean: float,
                     n: int = 80, seed: int = 0,
                     extra_action: float | None = None) -> AbExperiment:
    variants = [Variant("migrate", 0.5, ""), Variant("null", 0.5, "")]
    if extra_action is not None:
        variants = [Variant("migrate", 1 / 3), Variant("reboot", 1 / 3),
                    Variant("null", 1 / 3)]
    experiment = AbExperiment("nc_down_prediction", variants, seed=seed)
    rng = np.random.default_rng(seed)

    def record(variant: str, perf_mean: float) -> None:
        for i in range(n):
            experiment.record(
                f"vm-{variant}-{i}", variant,
                CdiReport(
                    unavailability=float(np.clip(rng.normal(0.05, 0.02), 0, 1)),
                    performance=float(np.clip(rng.normal(perf_mean, 0.05), 0, 1)),
                    control_plane=float(np.clip(rng.normal(0.03, 0.01), 0, 1)),
                    service_time=86400.0,
                ),
            )

    record("migrate", action_perf_mean)
    record("null", null_perf_mean)
    if extra_action is not None:
        record("reboot", extra_action)
    return experiment


class TestEffectiveness:
    def test_helpful_action_detected(self):
        experiment = build_experiment(action_perf_mean=0.1,
                                      null_perf_mean=0.5)
        results = evaluate_rule_effectiveness(experiment)
        performance = results[EventCategory.PERFORMANCE]
        assert performance.effective
        assert performance.better_actions == ("migrate",)
        assert performance.action_means["migrate"] < performance.null_mean
        assert is_rule_effective(results)

    def test_useless_rule_not_effective(self):
        experiment = build_experiment(action_perf_mean=0.3,
                                      null_perf_mean=0.3)
        results = evaluate_rule_effectiveness(experiment, alpha=0.01)
        assert not is_rule_effective(results)

    def test_harmful_action_not_marked_better(self):
        """A significant difference where the action is WORSE than null
        must not count as effectiveness."""
        experiment = build_experiment(action_perf_mean=0.6,
                                      null_perf_mean=0.1)
        results = evaluate_rule_effectiveness(experiment)
        performance = results[EventCategory.PERFORMANCE]
        assert performance.omnibus_pvalue < 0.05
        assert not performance.effective

    def test_three_arms_posthoc_path(self):
        experiment = build_experiment(action_perf_mean=0.1,
                                      null_perf_mean=0.5,
                                      extra_action=0.5)
        results = evaluate_rule_effectiveness(experiment)
        performance = results[EventCategory.PERFORMANCE]
        assert performance.effective
        assert "migrate" in performance.better_actions
        assert "reboot" not in performance.better_actions

    def test_unaffected_submetrics_not_effective(self):
        experiment = build_experiment(action_perf_mean=0.1,
                                      null_perf_mean=0.5)
        results = evaluate_rule_effectiveness(experiment)
        assert not results[EventCategory.UNAVAILABILITY].effective
        assert not results[EventCategory.CONTROL_PLANE].effective

    def test_missing_null_arm_rejected(self):
        experiment = AbExperiment(
            "r", [Variant("a", 0.5), Variant("b", 0.5)],
        )
        with pytest.raises(KeyError, match="null"):
            evaluate_rule_effectiveness(experiment)


class ArrayBackedExperiment(AbExperiment):
    """An experiment whose sequences come back as numpy arrays, as a
    columnar observation store would return them."""

    def sequences(self, category):
        return {name: np.asarray(seq, dtype=float)
                for name, seq in super().sequences(category).items()}


class TestArrayTypedArms:
    """Regression: arm emptiness was judged by truthiness (``if s``),
    which raises "truth value of an array is ambiguous" the moment a
    sequence is a numpy array instead of a list.  Emptiness must be
    judged by ``len``."""

    def as_array_backed(self, experiment: AbExperiment
                        ) -> ArrayBackedExperiment:
        return ArrayBackedExperiment(
            experiment.rule_name, experiment.variants,
            seed=experiment.seed,
            observations=list(experiment.observations),
        )

    def test_array_sequences_evaluate(self):
        experiment = self.as_array_backed(
            build_experiment(action_perf_mean=0.1, null_perf_mean=0.5)
        )
        results = evaluate_rule_effectiveness(experiment)
        performance = results[EventCategory.PERFORMANCE]
        assert performance.effective
        assert performance.better_actions == ("migrate",)
        assert is_rule_effective(results)

    def test_array_verdict_matches_list_verdict(self):
        plain = build_experiment(action_perf_mean=0.1,
                                 null_perf_mean=0.5)
        arrays = self.as_array_backed(plain)
        for category in EventCategory:
            from_lists = evaluate_rule_effectiveness(plain)[category]
            from_arrays = evaluate_rule_effectiveness(arrays)[category]
            assert from_arrays.effective == from_lists.effective
            assert from_arrays.omnibus_pvalue == pytest.approx(
                from_lists.omnibus_pvalue
            )
            assert from_arrays.null_mean == pytest.approx(
                from_lists.null_mean
            )

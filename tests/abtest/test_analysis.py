"""Tests for A/B experiment analysis (Table V shape)."""

import pytest

from repro.abtest.analysis import analyze
from repro.core.events import EventCategory
from repro.scenarios.abtest_case8 import build_case8_experiment


@pytest.fixture(scope="module")
def case8_analysis():
    experiment = build_case8_experiment(hits_per_variant=100, seed=0)
    return analyze(experiment)


class TestCase8TableV:
    def test_only_performance_significant(self, case8_analysis):
        """Table V: Unavailability p=0.47 False, Control-plane p=0.89
        False, Performance p=0 True."""
        by = case8_analysis.by_category
        assert not by[EventCategory.UNAVAILABILITY].significant
        assert not by[EventCategory.CONTROL_PLANE].significant
        assert by[EventCategory.PERFORMANCE].significant
        assert by[EventCategory.PERFORMANCE].workflow.omnibus.pvalue < 1e-6

    def test_all_performance_pairs_differ(self, case8_analysis):
        """Table V post-hoc: A-B, A-C, B-C all significant."""
        performance = case8_analysis.by_category[EventCategory.PERFORMANCE]
        significant = set(performance.workflow.significant_pairs)
        assert {("A", "B"), ("B", "C")} <= significant

    def test_action_b_recommended(self, case8_analysis):
        """Fig. 11: means 0.40 / 0.08 / 0.42 -> B is the superior choice."""
        assert case8_analysis.recommendation == "B"
        means = case8_analysis.by_category[EventCategory.PERFORMANCE].means
        assert means["B"] < means["A"]
        assert means["B"] < means["C"]
        assert means["A"] == pytest.approx(0.40, abs=0.05)
        assert means["B"] == pytest.approx(0.08, abs=0.05)
        assert means["C"] == pytest.approx(0.42, abs=0.05)

    def test_table_rows_shape(self, case8_analysis):
        rows = case8_analysis.table()
        assert len(rows) == 3
        perf_row = next(r for r in rows if r["sub_metric"] == "performance")
        assert perf_row["omnibus_significant"]
        assert len(perf_row["pairs"]) == 3


class TestAnalysisOptions:
    def test_min_samples_enforced(self):
        experiment = build_case8_experiment(hits_per_variant=2)
        with pytest.raises(ValueError, match=">= 3"):
            analyze(experiment)

    def test_aggregate_single_metric(self):
        experiment = build_case8_experiment(hits_per_variant=80, seed=1)
        weights = {c: 1.0 for c in EventCategory}
        result = analyze(experiment, aggregate_weights=weights)
        assert result.aggregate is not None
        # Performance dominates the aggregate, so B still wins.
        assert result.aggregate.significant
        assert result.recommendation == "B"

    def test_no_difference_no_recommendation(self):
        from repro.abtest.experiment import AbExperiment, Variant
        from repro.core.indicator import CdiReport
        import numpy as np

        rng = np.random.default_rng(0)
        experiment = AbExperiment(
            "null_rule", [Variant("A", 0.5), Variant("B", 0.5)],
        )
        for i in range(60):
            variant = "A" if i % 2 == 0 else "B"
            experiment.record(
                f"vm-{i}", variant,
                CdiReport(
                    float(rng.normal(0.1, 0.02)),
                    float(rng.normal(0.1, 0.02)),
                    float(rng.normal(0.1, 0.02)),
                    86400.0,
                ),
            )
        result = analyze(experiment, alpha=0.01)
        assert result.recommendation is None

"""Tests for A/B experiment assignment and collection."""

import pytest

from repro.abtest.experiment import AbExperiment, Variant
from repro.core.events import EventCategory
from repro.core.indicator import CdiReport


def make_experiment(seed=0) -> AbExperiment:
    return AbExperiment(
        rule_name="nc_down_prediction",
        variants=[Variant("A", 0.5), Variant("B", 0.3), Variant("C", 0.2)],
        seed=seed,
    )


def report(performance=0.1) -> CdiReport:
    return CdiReport(0.01, performance, 0.02, 86400.0)


class TestValidation:
    def test_needs_two_variants(self):
        with pytest.raises(ValueError):
            AbExperiment("r", [Variant("A", 1.0)])

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            AbExperiment("r", [Variant("A", 0.5), Variant("B", 0.2)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AbExperiment("r", [Variant("A", 0.5), Variant("A", 0.5)])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            AbExperiment("r", [Variant("A", 1.5), Variant("B", -0.5)])


class TestAssignment:
    def test_deterministic_for_seed(self):
        a = make_experiment(seed=7)
        b = make_experiment(seed=7)
        assert [a.assign(f"vm-{i}").name for i in range(50)] == [
            b.assign(f"vm-{i}").name for i in range(50)
        ]

    def test_distribution_approximated(self):
        experiment = make_experiment()
        counts = {"A": 0, "B": 0, "C": 0}
        for i in range(3000):
            counts[experiment.assign(f"vm-{i}").name] += 1
        assert counts["A"] / 3000 == pytest.approx(0.5, abs=0.05)
        assert counts["B"] / 3000 == pytest.approx(0.3, abs=0.05)
        assert counts["C"] / 3000 == pytest.approx(0.2, abs=0.05)


class TestRecording:
    def test_record_and_sequences(self):
        experiment = make_experiment()
        experiment.record("vm-1", "A", report(0.4))
        experiment.record("vm-2", "B", report(0.1))
        experiment.record("vm-3", "A", report(0.5))
        sequences = experiment.sequences(EventCategory.PERFORMANCE)
        assert sequences["A"] == [0.4, 0.5]
        assert sequences["B"] == [0.1]
        assert sequences["C"] == []

    def test_sequences_per_category(self):
        experiment = make_experiment()
        experiment.record("vm-1", "A", CdiReport(0.9, 0.1, 0.2, 1.0))
        assert experiment.sequences(EventCategory.UNAVAILABILITY)["A"] == [0.9]
        assert experiment.sequences(EventCategory.CONTROL_PLANE)["A"] == [0.2]

    def test_unknown_variant_rejected(self):
        experiment = make_experiment()
        with pytest.raises(KeyError):
            experiment.record("vm-1", "Z", report())

    def test_counts(self):
        experiment = make_experiment()
        experiment.record("vm-1", "A", report())
        experiment.record("vm-2", "A", report())
        assert experiment.counts() == {"A": 2, "B": 0, "C": 0}

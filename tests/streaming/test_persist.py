"""Checkpoint durability: round-trips, corruption, fingerprints.

:class:`~repro.streaming.persist.StreamCheckpoint` must reproduce a
snapshot exactly (cursor, watermark, row log, buffered records),
refuse corrupt files loudly, and tie each checkpoint to its stream's
fingerprint so cross-stream resume raises instead of merging state.
"""

from __future__ import annotations

import pytest

from repro.storage.logstore import LogEntry, LogStore
from repro.storage.persistence import save_table_store
from repro.storage.table import TableStore
from repro.streaming import (
    CURSOR_TABLE,
    STATE_PARTITION,
    StreamCheckpoint,
    StreamSnapshot,
    cursor_schema,
)

from tests.strategies import make_services
from tests.streaming.conftest import make_pipeline


def sample_snapshot(**overrides) -> StreamSnapshot:
    base = dict(
        fingerprint="f" * 64,
        last_seq=41,
        watermark=1234.5,
        ticks=3,
        consumed=50,
        late_dropped=2,
        ignored=1,
        rows=[{
            "name": "vm_down", "time": 100.0, "target": "vm-000",
            "level": 3, "duration": 300.0, "expire_interval": 600.0,
        }],
        buffer=[
            (7, LogEntry(time=90.0, fields={"event": "slow_io",
                                            "target": "vm-001"})),
            (9, LogEntry(time=95.0, fields={"line": "oops"})),
        ],
    )
    base.update(overrides)
    return StreamSnapshot(**base)


class TestRoundTrip:
    def test_full_snapshot_round_trips(self, tmp_path):
        checkpoint = StreamCheckpoint(tmp_path / "s.ck")
        snapshot = sample_snapshot()
        checkpoint.save(snapshot)
        assert checkpoint.exists()
        assert checkpoint.load() == snapshot

    def test_none_watermark_and_empty_collections(self, tmp_path):
        checkpoint = StreamCheckpoint(tmp_path / "s.ck")
        snapshot = sample_snapshot(watermark=None, rows=[], buffer=[])
        checkpoint.save(snapshot)
        assert checkpoint.load() == snapshot

    def test_save_overwrites_previous_snapshot(self, tmp_path):
        checkpoint = StreamCheckpoint(tmp_path / "s.ck")
        checkpoint.save(sample_snapshot(ticks=1))
        checkpoint.save(sample_snapshot(ticks=2))
        loaded = checkpoint.load()
        assert loaded is not None and loaded.ticks == 2

    def test_missing_file_loads_none(self, tmp_path):
        checkpoint = StreamCheckpoint(tmp_path / "never-written.ck")
        assert not checkpoint.exists()
        assert checkpoint.load() is None

    def test_parent_directories_created(self, tmp_path):
        checkpoint = StreamCheckpoint(tmp_path / "a" / "b" / "s.ck")
        checkpoint.save(sample_snapshot())
        assert checkpoint.load() is not None


class TestCorruption:
    def test_multiple_cursor_rows_raise(self, tmp_path):
        path = tmp_path / "corrupt.ck"
        store = TableStore()
        cursor = store.create(CURSOR_TABLE, cursor_schema())
        row = {
            "fingerprint": "x", "last_seq": 0, "watermark": None,
            "ticks": 0, "consumed": 0, "late_dropped": 0, "ignored": 0,
        }
        cursor.append([row, dict(row)], STATE_PARTITION)
        save_table_store(store, path, layout="chunked", atomic=True)
        with pytest.raises(ValueError, match="corrupt stream checkpoint"):
            StreamCheckpoint(path).load()


class TestFingerprint:
    def test_resume_from_foreign_stream_raises(self, tmp_path):
        """A checkpoint written under one lateness must not resume a
        pipeline configured with another (different fingerprint)."""
        services = make_services(2)
        checkpoint = StreamCheckpoint(tmp_path / "s.ck")
        store = LogStore()
        store.append(100.0, event="vm_down", target="vm-000",
                     duration=60.0)
        writer = make_pipeline(store, services, allowed_lateness=600.0,
                               checkpoint=checkpoint)
        writer.tick()
        reader = make_pipeline(LogStore(), services,
                               allowed_lateness=3600.0,
                               checkpoint=checkpoint)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            reader.resume()

    def test_fingerprint_distinguishes_services(self, tmp_path):
        services = make_services(2)
        checkpoint = StreamCheckpoint(tmp_path / "s.ck")
        writer = make_pipeline(LogStore(), services,
                               checkpoint=checkpoint)
        writer.tick()
        reader = make_pipeline(LogStore(), make_services(3),
                               checkpoint=checkpoint)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            reader.resume()

    def test_same_configuration_resumes(self, tmp_path):
        services = make_services(2)
        checkpoint = StreamCheckpoint(tmp_path / "s.ck")
        writer = make_pipeline(LogStore(), services,
                               checkpoint=checkpoint)
        writer.tick()
        reader = make_pipeline(LogStore(), services,
                               checkpoint=checkpoint)
        assert reader.resume() is True
        assert reader.fingerprint == writer.fingerprint

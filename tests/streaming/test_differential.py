"""The headline differential gate: stream ≡ batch, byte for byte.

Hypothesis drives adversarial :class:`~tests.strategies.StreamCase`
scenarios — shuffled bounded-lag arrivals, duplicates, unknown names,
null and boundary-straddling durations, orphan/open stateful pairs,
arbitrary tick boundaries — through the streaming pipeline and
demands the published tables equal a from-scratch batch recompute on
every compute path.  Deterministic companions cover the cases the
bounded-lag precondition excludes (true beyond-watermark drops) and
mid-stream resume.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.events import Event, Severity
from repro.storage.logstore import LogStore
from repro.storage.table import TableStore
from repro.streaming import StreamCheckpoint

from tests.strategies import make_fleet_events, make_services, stream_cases
from tests.streaming.conftest import (
    ALL_PATHS,
    append_events,
    batch_bytes,
    bounded_lag_arrival,
    chunked,
    make_pipeline,
    oracle_order,
    published_bytes,
    run_stream,
)


class TestStreamBatchEquivalence:
    @given(case=stream_cases())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_published_tables_byte_identical_to_batch(self, case):
        services = case.services()
        store = LogStore()
        tables = TableStore()
        pipeline = make_pipeline(store, services,
                                 allowed_lateness=case.lateness,
                                 tables=tables)
        for chunk in case.chunks():
            append_events(store, chunk)
            pipeline.tick()
        pipeline.flush()
        # The bounded-lag arrival order makes zero drops a theorem,
        # so the oracle runs over *all* the arrivals.
        assert pipeline.tailer.late_dropped == 0
        assert pipeline.state.applied == len(case.arrival)
        streamed = published_bytes(tables)
        oracle = case.oracle_events()
        for use_fastpath, use_columnar in ALL_PATHS:
            assert streamed == batch_bytes(
                oracle, services, use_fastpath=use_fastpath,
                use_columnar=use_columnar,
            )

    @given(case=stream_cases(max_ticks=3))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_tick_granularity_is_invisible(self, case):
        """One tick per arrival vs. the case's ticks: same bytes."""
        services = case.services()
        _, coarse, _ = run_stream(list(case.arrival), services,
                                  allowed_lateness=case.lateness,
                                  chunks=len(case.tick_sizes))
        _, fine, _ = run_stream(list(case.arrival), services,
                                allowed_lateness=case.lateness,
                                chunks=max(1, len(case.arrival)))
        assert published_bytes(coarse) == published_bytes(fine)


class TestSeededFleetDays:
    """The shared seeded generator, streamed: bigger fleets than the
    hypothesis cases, still byte-identical on every path."""

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_seeded_day_all_paths(self, seed):
        services = make_services(16)
        events = make_fleet_events(seed, vm_count=16, events_per_vm=3)
        rng = random.Random(1000 + seed)
        arrival = bounded_lag_arrival(events, 3600.0, rng)
        pipeline, tables, _ = run_stream(arrival, services,
                                         allowed_lateness=3600.0,
                                         chunks=5)
        assert pipeline.tailer.late_dropped == 0
        streamed = published_bytes(tables)
        oracle = oracle_order(arrival)
        for use_fastpath, use_columnar in ALL_PATHS:
            assert streamed == batch_bytes(
                oracle, services, use_fastpath=use_fastpath,
                use_columnar=use_columnar,
            )


class TestBeyondWatermark:
    """Truly late records (lag past the allowed lateness) drop
    deterministically; the oracle then covers the *admitted* set."""

    def make_event(self, name, time, vm="vm-000", duration=300.0):
        return Event(name=name, time=time, target=vm,
                     expire_interval=600.0, level=Severity.CRITICAL,
                     attributes={"duration": duration})

    def test_late_record_dropped_and_counted(self):
        services = make_services(1)
        admitted = [
            self.make_event("vm_down", 10_000.0),
            self.make_event("slow_io", 12_000.0),
        ]
        late = self.make_event("vm_down", 1_000.0)  # 11_000s stale
        store = LogStore()
        tables = TableStore()
        pipeline = make_pipeline(store, services,
                                 allowed_lateness=600.0, tables=tables)
        append_events(store, admitted)
        pipeline.tick()  # watermark → 12_000 - 600
        append_events(store, [late])
        pipeline.tick()
        pipeline.flush()
        assert pipeline.tailer.late_dropped == 1
        assert pipeline.state.applied == 2
        assert published_bytes(tables) == batch_bytes(admitted, services)

    def test_same_batch_records_never_drop_each_other(self):
        """Admission uses the previous poll's watermark: a batch whose
        newest record is hours ahead of its oldest still admits both."""
        services = make_services(1)
        events = [
            self.make_event("vm_down", 50_000.0),
            self.make_event("slow_io", 1_000.0),  # 49_000s older
        ]
        store = LogStore()
        tables = TableStore()
        pipeline = make_pipeline(store, services,
                                 allowed_lateness=600.0, tables=tables)
        append_events(store, events)
        pipeline.tick()
        pipeline.flush()
        assert pipeline.tailer.late_dropped == 0
        assert published_bytes(tables) == batch_bytes(
            oracle_order(events), services
        )


class TestMidStreamResume:
    def test_resume_then_continue_matches_uninterrupted(self, tmp_path):
        services = make_services(12)
        events = make_fleet_events(42, vm_count=12, events_per_vm=3)
        rng = random.Random(7)
        arrival = bounded_lag_arrival(events, 3600.0, rng)
        chunks = chunked(arrival, 6)

        # Uninterrupted reference run.
        _, reference, _ = run_stream(arrival, services,
                                     allowed_lateness=3600.0, chunks=6)

        # First half on pipeline A, then a fresh pipeline B resumes
        # from the checkpoint and finishes the stream.
        store = LogStore()
        tables = TableStore()
        checkpoint = StreamCheckpoint(tmp_path / "stream.ck")
        first = make_pipeline(store, services, allowed_lateness=3600.0,
                              checkpoint=checkpoint, tables=tables)
        for chunk in chunks[:3]:
            append_events(store, chunk)
            first.tick()
        del first

        tables_b = TableStore()
        second = make_pipeline(store, services, allowed_lateness=3600.0,
                               checkpoint=checkpoint, tables=tables_b)
        assert second.resume() is True
        assert second.ticks == 3
        for chunk in chunks[3:]:
            append_events(store, chunk)
            second.tick()
        second.flush()
        assert published_bytes(tables_b) == published_bytes(reference)
        assert published_bytes(tables_b) == batch_bytes(
            oracle_order(arrival), services
        )

    def test_resume_without_checkpoint_is_a_noop(self):
        services = make_services(2)
        pipeline = make_pipeline(LogStore(), services)
        assert pipeline.resume() is False

    def test_resume_with_empty_checkpoint_is_a_noop(self, tmp_path):
        services = make_services(2)
        pipeline = make_pipeline(
            LogStore(), services,
            checkpoint=StreamCheckpoint(tmp_path / "missing.ck"),
        )
        assert pipeline.resume() is False

"""Chaos matrix: kill the stream at every tick boundary, resume, and
demand the final published tables stay byte-identical to both an
uninterrupted stream and the batch oracle.

Two kill sites per boundary, covering both halves of the
checkpoint-before-publish protocol:

* ``before`` — the crash lands before the checkpoint write: the tick's
  cursor progress was never made durable, so the resumed tailer
  re-reads those records (no loss, no double-count);
* ``after`` — the crash lands between the checkpoint write and the
  publish: resume replays the checkpoint and republishes (idempotent).
"""

from __future__ import annotations

import random

import pytest

from repro.storage.logstore import LogStore
from repro.storage.table import TableStore
from repro.streaming import StreamCheckpoint

from tests.strategies import make_fleet_events, make_services
from tests.streaming.conftest import (
    KillingStreamCheckpoint,
    SimulatedKill,
    append_events,
    batch_bytes,
    bounded_lag_arrival,
    chunked,
    make_pipeline,
    oracle_order,
    published_bytes,
)

VM_COUNT = 10
LATENESS = 3600.0
TICKS = 4


def fleet_case(seed: int):
    services = make_services(VM_COUNT)
    events = make_fleet_events(seed, vm_count=VM_COUNT, events_per_vm=3)
    arrival = bounded_lag_arrival(events, LATENESS,
                                  random.Random(seed + 999))
    return services, arrival, chunked(arrival, TICKS)


def reference_run(services, chunks):
    """The uninterrupted stream the chaos runs must reproduce."""
    store = LogStore()
    tables = TableStore()
    pipeline = make_pipeline(store, services, allowed_lateness=LATENESS,
                             tables=tables)
    for chunk in chunks:
        append_events(store, chunk)
        pipeline.tick()
    pipeline.flush()
    return published_bytes(tables)


def chaos_run(services, chunks, *, kill_at: int, site: str, tmp_path):
    """Run the stream, die at the configured boundary, resume, finish."""
    path = tmp_path / f"chaos-{site}-{kill_at}.ck"
    store = LogStore()
    killer = KillingStreamCheckpoint(path, kill_at=kill_at, site=site)
    pipeline = make_pipeline(store, services, allowed_lateness=LATENESS,
                             checkpoint=killer, tables=TableStore())
    survived = 0
    died = False
    try:
        for chunk in chunks:
            append_events(store, chunk)
            pipeline.tick()
            survived += 1
        pipeline.flush()
    except SimulatedKill:
        died = True
    assert died, "the kill site must be reached"

    tables = TableStore()
    resumed = make_pipeline(store, services, allowed_lateness=LATENESS,
                            checkpoint=StreamCheckpoint(path),
                            tables=tables)
    resumed.resume()
    # Records the dead pipeline appended but never durably consumed
    # are re-read here; chunks it never saw are appended now.
    for chunk in chunks[survived + 1:]:
        append_events(store, chunk)
        resumed.tick()
    resumed.tick()  # drain anything the crashed tick left unconsumed
    resumed.flush()
    assert resumed.tailer.late_dropped == 0
    return published_bytes(tables), resumed


class TestKillMatrix:
    @pytest.mark.parametrize("site", ["before", "after"])
    @pytest.mark.parametrize("kill_at", range(1, TICKS + 2))
    def test_resume_is_byte_identical(self, tmp_path, kill_at, site):
        """Every tick boundary (the flush included) × both kill
        sites: the resumed stream ends at the reference bytes."""
        services, arrival, chunks = fleet_case(seed=13)
        reference = reference_run(services, chunks)
        streamed, resumed = chaos_run(
            services, chunks, kill_at=kill_at, site=site,
            tmp_path=tmp_path,
        )
        assert streamed == reference
        assert streamed == batch_bytes(oracle_order(arrival), services)
        # No double-count: every arrival applied exactly once.
        assert resumed.state.applied == len(arrival)

    def test_kill_before_first_checkpoint_restarts_cleanly(
        self, tmp_path
    ):
        """Dying before any checkpoint exists leaves nothing to
        resume; a fresh pipeline re-reads the whole stream."""
        services, arrival, chunks = fleet_case(seed=21)
        path = tmp_path / "never.ck"
        store = LogStore()
        killer = KillingStreamCheckpoint(path, kill_at=1, site="before")
        doomed = make_pipeline(store, services,
                               allowed_lateness=LATENESS,
                               checkpoint=killer, tables=TableStore())
        append_events(store, chunks[0])
        with pytest.raises(SimulatedKill):
            doomed.tick()
        assert not path.exists()

        tables = TableStore()
        fresh = make_pipeline(store, services, allowed_lateness=LATENESS,
                              checkpoint=StreamCheckpoint(path),
                              tables=tables)
        assert fresh.resume() is False
        for chunk in chunks[1:]:
            append_events(store, chunk)
            fresh.tick()
        fresh.tick()
        fresh.flush()
        assert published_bytes(tables) == batch_bytes(
            oracle_order(arrival), services
        )

"""Shared plumbing for the streaming differential suites.

The two sides of every differential assertion live here: a streaming
runner (append arrivals chunk by chunk, tick, flush, read the
published tables) and the batch oracle (a plain ``DailyCdiJob`` over
the same events), both reduced to canonical JSON bytes.
"""

from __future__ import annotations

import json
import random

from repro.core.events import Event, default_catalog
from repro.core.weights import expert_only_config
from repro.engine.dataset import EngineContext
from repro.pipeline.daily import WEIGHTS_CONFIG_KEY, DailyCdiJob
from repro.pipeline.tables import EVENT_CDI_TABLE, VM_CDI_TABLE
from repro.storage.configdb import ConfigDB
from repro.storage.logstore import LogStore
from repro.storage.table import TableStore
from repro.streaming import (
    StreamCheckpoint,
    StreamingCdiPipeline,
    event_record,
)

PARTITION = "stream-day"

#: The three compute paths every differential assertion covers.
ALL_PATHS = [(True, True), (True, False), (False, False)]


class SimulatedKill(BaseException):
    """Not an ``Exception``: no handler may swallow the chaos kill."""


class KillingStreamCheckpoint(StreamCheckpoint):
    """A stream checkpoint that dies on its n-th save — before the
    bytes hit disk (crash before checkpoint) or after (crash between
    checkpoint and publish)."""

    def __init__(self, path, *, kill_at: int, site: str) -> None:
        super().__init__(path)
        self._kill_at = kill_at
        self._site = site
        self._saves = 0

    def save(self, snapshot) -> None:
        self._saves += 1
        if self._site == "before" and self._saves == self._kill_at:
            raise SimulatedKill(f"kill before save #{self._saves}")
        super().save(snapshot)
        if self._site == "after" and self._saves == self._kill_at:
            raise SimulatedKill(f"kill after save #{self._saves}")


def make_config_db() -> ConfigDB:
    """A config DB holding the shared expert weight configuration."""
    config = ConfigDB()
    config.put(WEIGHTS_CONFIG_KEY, expert_only_config().to_dict())
    return config


def make_pipeline(log_store: LogStore, services, *,
                  allowed_lateness: float = 600.0, max_buffer: int = 4096,
                  checkpoint=None, tables: TableStore | None = None,
                  rule_engine=None) -> StreamingCdiPipeline:
    """A streaming pipeline wired to fresh output tables and weights."""
    return StreamingCdiPipeline(
        log_store, tables if tables is not None else TableStore(),
        make_config_db(), default_catalog(), services, PARTITION,
        allowed_lateness=allowed_lateness, max_buffer=max_buffer,
        checkpoint=checkpoint, rule_engine=rule_engine,
    )


def published_bytes(tables: TableStore) -> bytes:
    """Canonical JSON of the published vm/event CDI tables."""
    return json.dumps([
        tables.get(VM_CDI_TABLE).rows(partition=PARTITION),
        tables.get(EVENT_CDI_TABLE).rows(partition=PARTITION),
    ], sort_keys=True).encode()


def batch_bytes(events: list[Event], services, *,
                use_fastpath: bool = True,
                use_columnar: bool = True) -> bytes:
    """The from-scratch batch oracle over ``events``, as bytes."""
    job = DailyCdiJob(EngineContext(parallelism=2), TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(expert_only_config())
    job.ingest_events(events, PARTITION)
    job.run(PARTITION, services, use_fastpath=use_fastpath,
            use_columnar=use_columnar)
    return published_bytes(job.tables)


def append_events(store: LogStore, events) -> None:
    """Ship events through the log store as pre-extracted records."""
    for event in events:
        store.append(event.time, **event_record(event))


def bounded_lag_arrival(events: list[Event], lateness: float,
                        rng: random.Random) -> list[Event]:
    """Arrival order with per-record lag strictly below ``lateness``.

    The deterministic counterpart of the hypothesis strategy's shuffle:
    sorting by ``time + lag`` with ``lag < lateness`` guarantees the
    tailer's watermark never drops a record (see ``tests.strategies``).
    """
    lags = [rng.uniform(0.0, 0.9 * lateness) for _ in events]
    order = sorted(range(len(events)),
                   key=lambda i: (events[i].time + lags[i], i))
    return [events[i] for i in order]


def oracle_order(arrival: list[Event]) -> list[Event]:
    """Arrivals reordered to ``(time, arrival index)`` — the exact
    sequence the tailer releases them in (its release-order theorem),
    so a batch job over this list is the fair from-scratch oracle."""
    indexed = sorted(enumerate(arrival),
                     key=lambda pair: (pair[1].time, pair[0]))
    return [event for _, event in indexed]


def chunked(arrival: list[Event], chunks: int) -> list[list[Event]]:
    """Split arrivals into ``chunks`` contiguous per-tick batches."""
    if chunks <= 1:
        return [list(arrival)]
    size = max(1, len(arrival) // chunks)
    out = [list(arrival[i:i + size])
           for i in range(0, len(arrival), size)]
    while len(out) > chunks:
        out[-2].extend(out[-1])
        del out[-1]
    return out


def run_stream(arrival: list[Event], services, *,
               allowed_lateness: float = 600.0, chunks: int = 4,
               checkpoint=None, max_buffer: int = 4096):
    """Drive a whole stream: per-chunk append + tick, then flush.

    Returns ``(pipeline, tables, ticks)`` with the published output
    left in ``tables``.
    """
    store = LogStore()
    tables = TableStore()
    pipeline = make_pipeline(
        store, services, allowed_lateness=allowed_lateness,
        max_buffer=max_buffer, checkpoint=checkpoint, tables=tables,
    )
    ticks = []
    for chunk in chunked(arrival, chunks):
        append_events(store, chunk)
        ticks.append(pipeline.tick())
    ticks.append(pipeline.flush())
    return pipeline, tables, ticks

"""Unit contract of :class:`~repro.streaming.tailer.LogTailer`.

Exactly-once cursor consumption, previous-poll watermark admission,
globally monotone ``(time, seq)`` release order, bounded-buffer
overflow draining, flush, and the persistence hooks' round-trip.
"""

from __future__ import annotations

import random

import pytest

from repro.storage.logstore import LogStore
from repro.streaming import LogTailer


def fill(store: LogStore, times) -> None:
    for index, time in enumerate(times):
        store.append(time, n=index)


def released_times(entries) -> list[float]:
    return [entry.time for entry in entries]


class TestCursorConsumption:
    def test_exactly_once_across_polls(self):
        store = LogStore()
        fill(store, [10.0, 20.0, 30.0])
        tailer = LogTailer(store, allowed_lateness=0.0)
        first = tailer.poll()
        assert released_times(first) == [10.0, 20.0, 30.0]
        assert tailer.poll() == []  # nothing new → nothing released
        fill(store, [40.0])
        assert released_times(tailer.poll()) == [40.0]
        assert tailer.consumed == 4

    def test_out_of_timestamp_order_arrivals_still_consumed_once(self):
        """The cursor is arrival-order: a record whose timestamp sorts
        before everything already stored is still new to the tailer."""
        store = LogStore()
        fill(store, [100.0, 200.0])
        tailer = LogTailer(store, allowed_lateness=1_000.0)
        tailer.poll()
        fill(store, [50.0])  # inserts *before* the others in time order
        tailer.poll()
        assert tailer.consumed == 3
        assert tailer.late_dropped == 0

    def test_cursor_survives_retention_gaps(self):
        """Sequences expired before being tailed are skipped, not an
        error — the cursor only ever moves forward."""
        store = LogStore(retention=100.0)
        fill(store, [10.0, 20.0])
        tailer = LogTailer(store, allowed_lateness=0.0)
        tailer.poll()
        fill(store, [500.0])  # expires the first two
        assert released_times(tailer.poll()) == [500.0]
        assert tailer.consumed == 3


class TestWatermarkAdmission:
    def test_record_older_than_watermark_dropped_and_counted(self):
        store = LogStore()
        fill(store, [1_000.0])
        tailer = LogTailer(store, allowed_lateness=100.0)
        tailer.poll()  # watermark → 900
        fill(store, [899.0])
        assert tailer.poll() == []
        assert tailer.late_dropped == 1

    def test_admission_judged_against_previous_poll_watermark(self):
        """Records within one batch never drop each other, however far
        apart their timestamps are."""
        store = LogStore()
        fill(store, [10_000.0, 10.0])
        tailer = LogTailer(store, allowed_lateness=100.0)
        released = tailer.poll()
        assert tailer.late_dropped == 0
        # Watermark lands at 9_900 after the batch, so only the old
        # record releases; the new one waits in the buffer.
        assert released_times(released) == [10.0]
        assert tailer.buffered == 1

    def test_watermark_none_before_first_record(self):
        tailer = LogTailer(LogStore())
        assert tailer.watermark is None
        tailer.poll()
        assert tailer.watermark is None

    def test_watermark_monotonic_under_late_arrivals(self):
        store = LogStore()
        tailer = LogTailer(store, allowed_lateness=50.0)
        fill(store, [1_000.0])
        tailer.poll()
        mark = tailer.watermark
        fill(store, [960.0])  # late but admissible; must not regress
        tailer.poll()
        assert tailer.watermark == mark

    def test_release_order_is_global_time_seq_sort(self):
        """Across many polls of shuffled bounded-lag arrivals the
        concatenated releases come out sorted by (time, seq)."""
        rng = random.Random(5)
        times = [rng.uniform(0.0, 10_000.0) for _ in range(120)]
        lateness = 2_000.0
        arrival = sorted(times,
                         key=lambda t: t + rng.uniform(0.0, 0.9 * lateness))
        store = LogStore()
        tailer = LogTailer(store, allowed_lateness=lateness)
        out: list[float] = []
        for offset in range(0, len(arrival), 10):
            fill(store, arrival[offset:offset + 10])
            out.extend(released_times(tailer.poll()))
        out.extend(released_times(tailer.flush()))
        assert tailer.late_dropped == 0
        assert out == sorted(times)


class TestBoundedBuffer:
    def test_overflow_force_advances_watermark(self):
        store = LogStore()
        # Huge lateness: nothing would release naturally.
        tailer = LogTailer(store, allowed_lateness=1e9, max_buffer=2)
        fill(store, [30.0, 10.0, 20.0, 40.0])
        released = tailer.poll()
        # Two overflow drains (4 buffered > 2), oldest first.
        assert released_times(released) == [10.0, 20.0]
        assert tailer.buffered == 2
        assert tailer.watermark == 20.0

    def test_arrival_older_than_forced_watermark_drops(self):
        store = LogStore()
        tailer = LogTailer(store, allowed_lateness=1e9, max_buffer=1)
        fill(store, [10.0, 30.0])
        tailer.poll()  # overflow drains 10.0, watermark → 10.0
        fill(store, [5.0])  # older than the forced watermark
        tailer.poll()
        assert tailer.late_dropped == 1

    def test_flush_drains_everything_in_order(self):
        store = LogStore()
        tailer = LogTailer(store, allowed_lateness=1e9)
        fill(store, [30.0, 10.0, 20.0])
        assert tailer.poll() == []
        assert released_times(tailer.flush()) == [10.0, 20.0, 30.0]
        assert tailer.buffered == 0


class TestPersistenceHooks:
    def test_snapshot_restore_round_trip(self):
        store = LogStore()
        fill(store, [100.0, 50.0, 200.0])
        tailer = LogTailer(store, allowed_lateness=1_000.0)
        tailer.poll()
        snapshot = tailer.buffer_snapshot()
        assert [entry.time for _, entry in snapshot] == [
            50.0, 100.0, 200.0
        ]

        clone = LogTailer(store, allowed_lateness=1_000.0)
        clone.restore(cursor=tailer.cursor, watermark=tailer.watermark,
                      buffer=snapshot, consumed=tailer.consumed,
                      late_dropped=tailer.late_dropped)
        assert clone.cursor == tailer.cursor
        assert clone.consumed == 3
        # Both tail the same store from here and drain identically.
        fill(store, [300.0])
        assert released_times(clone.poll() + clone.flush()) == (
            released_times(tailer.poll() + tailer.flush())
        )
        assert clone.consumed == tailer.consumed == 4

    def test_restore_none_watermark(self):
        tailer = LogTailer(LogStore())
        tailer.restore(cursor=-1, watermark=None, buffer=[])
        assert tailer.watermark is None

    def test_parameter_validation(self):
        store = LogStore()
        with pytest.raises(ValueError, match="allowed_lateness"):
            LogTailer(store, allowed_lateness=-1.0)
        with pytest.raises(ValueError, match="max_buffer"):
            LogTailer(store, max_buffer=0)

"""Differential equivalence harness for the streaming CDI loop.

Every suite here reduces to one oracle: the incremental state an
arbitrary admitted stream builds must be *byte-identical* — same JSON
dump, same float bit patterns — to a from-scratch batch
:class:`~repro.pipeline.daily.DailyCdiJob` run over the same events,
on all three compute paths, including after a crash/resume at any
tick boundary.
"""

"""Per-record extraction parity: a tailed record must extract to the
same events whichever side — batch rules or the streaming loop —
consumes it, across all three record shapes the extractor speaks
(raw log line, metric sample, pre-extracted event)."""

from __future__ import annotations

import pytest

from repro.cloudbot.extractor import (
    LogRegexRule,
    MetricThresholdRule,
    default_log_rules,
    default_metric_rules,
)
from repro.core.events import Event, Severity
from repro.storage.logstore import LogEntry
from repro.streaming import StreamingExtractor, event_record
from repro.telemetry import metrics as m
from repro.telemetry.logs import LogLine
from repro.telemetry.metrics import MetricSample


def entry(time: float, **fields) -> LogEntry:
    return LogEntry(time=time, fields=fields)


class TestLogLineRecords:
    def test_matching_line_fires_the_batch_rule(self):
        extractor = StreamingExtractor()
        events = extractor.events_from_entry(
            entry(50.0, line="eth0: NIC Link is Down", target="vm-003")
        )
        assert [e.name for e in events] == ["nic_flapping"]
        assert events[0].target == "vm-003"
        assert events[0].time == 50.0

    def test_line_events_match_batch_rule_objects_exactly(self):
        """The streaming side reuses the *same* rule objects, so the
        extracted events are equal, not merely similar."""
        extractor = StreamingExtractor()
        line = LogLine(time=75.0, target="vm-001",
                       line="kernel: guest panicked in qemu")
        batch = [
            event for rule in default_log_rules()
            if (event := rule.extract(line)) is not None
        ]
        streamed = extractor.events_from_entry(
            entry(75.0, line=line.line, target=line.target)
        )
        assert streamed == batch
        assert streamed[0].level is Severity.FATAL

    def test_non_matching_line_extracts_nothing(self):
        extractor = StreamingExtractor()
        assert extractor.events_from_entry(
            entry(1.0, line="systemd: reached target multi-user")
        ) == []

    def test_custom_log_rules_replace_the_defaults(self):
        extractor = StreamingExtractor(
            log_rules=[LogRegexRule(r"oom-killer", "oom_kill")]
        )
        hits = extractor.events_from_entry(
            entry(9.0, line="oom-killer: victim 1234", target="vm-000")
        )
        assert [e.name for e in hits] == ["oom_kill"]
        # Default rules are gone: this would match nic_flapping.
        assert extractor.events_from_entry(
            entry(9.5, line="NIC Link is Down")
        ) == []


class TestMetricRecords:
    def test_threshold_crossing_fires(self):
        extractor = StreamingExtractor()
        events = extractor.events_from_entry(
            entry(10.0, metric=m.READ_LATENCY, value=50.0,
                  target="vm-002")
        )
        assert [e.name for e in events] == ["slow_io"]
        assert events[0].attributes["value"] == 50.0

    def test_level_by_value_escalates(self):
        extractor = StreamingExtractor()
        mild = extractor.events_from_entry(
            entry(10.0, metric=m.READ_LATENCY, value=50.0, target="a")
        )[0]
        severe = extractor.events_from_entry(
            entry(11.0, metric=m.READ_LATENCY, value=500.0, target="a")
        )[0]
        assert mild.level is Severity.CRITICAL
        assert severe.level is Severity.FATAL

    def test_below_threshold_extracts_nothing(self):
        extractor = StreamingExtractor()
        assert extractor.events_from_entry(
            entry(10.0, metric=m.READ_LATENCY, value=1.0, target="a")
        ) == []

    def test_metric_events_match_batch_rule_objects_exactly(self):
        extractor = StreamingExtractor()
        sample = MetricSample(time=30.0, target="vm-004",
                              metric=m.PACKET_LOSS_RATE, value=0.9)
        batch = [
            event for rule in default_metric_rules()
            if (event := rule.extract(sample)) is not None
        ]
        streamed = extractor.events_from_entry(
            entry(30.0, metric=sample.metric, value=sample.value,
                  target=sample.target)
        )
        assert streamed == batch
        assert len(streamed) >= 1

    def test_custom_metric_rules_replace_the_defaults(self):
        extractor = StreamingExtractor(metric_rules=[
            MetricThresholdRule("queue_depth", 8.0, "queue_full",
                                direction="above")
        ])
        assert [e.name for e in extractor.events_from_entry(
            entry(5.0, metric="queue_depth", value=9.0, target="vm-000")
        )] == ["queue_full"]
        assert extractor.events_from_entry(
            entry(6.0, metric=m.READ_LATENCY, value=500.0, target="a")
        ) == []


class TestDirectEventRecords:
    def test_event_record_round_trips(self):
        """``store.append(t, **event_record(e))`` → tailer →
        ``events_from_entry`` reconstructs the event exactly."""
        extractor = StreamingExtractor()
        original = Event(name="vm_down", time=123.0, target="vm-007",
                         expire_interval=900.0, level=Severity.FATAL,
                         attributes={"duration": 42.0})
        fields = event_record(original)
        assert extractor.events_from_entry(
            LogEntry(time=original.time, fields=fields)
        ) == [original]

    def test_null_duration_round_trips_as_absent(self):
        extractor = StreamingExtractor()
        original = Event(name="slow_io", time=10.0, target="vm-001",
                         expire_interval=600.0,
                         level=Severity.CRITICAL, attributes={})
        fields = event_record(original)
        assert "duration" not in fields
        restored, = extractor.events_from_entry(
            LogEntry(time=10.0, fields=fields)
        )
        assert restored.attributes == {}
        assert restored == original

    def test_missing_optional_fields_use_defaults(self):
        restored, = StreamingExtractor().events_from_entry(
            entry(10.0, event="slow_io", target="vm-001")
        )
        assert restored.expire_interval == 600.0
        assert restored.level is Severity.CRITICAL


class TestRecordShapes:
    def test_unrecognized_record_extracts_to_nothing(self):
        """A tailer shares its store with record kinds it does not
        speak; those must pass through silently."""
        extractor = StreamingExtractor()
        assert extractor.events_from_entry(
            entry(10.0, heartbeat=True, node="nc-17")
        ) == []

    def test_line_takes_precedence_over_event_field(self):
        """Shape dispatch is ordered: a record carrying both shapes is
        treated as a log line."""
        events = StreamingExtractor().events_from_entry(
            entry(10.0, line="guest panicked", event="slow_io",
                  target="vm-000")
        )
        assert [e.name for e in events] == ["vm_down"]

    def test_events_from_entries_preserves_record_order(self):
        extractor = StreamingExtractor()
        entries = [
            entry(10.0, event="b_second", target="x"),
            entry(5.0, event="a_first", target="x"),
            entry(7.0, heartbeat=True),
            entry(20.0, line="soft lockup on cpu 3", target="y"),
        ]
        names = [e.name for e in extractor.events_from_entries(entries)]
        assert names == ["b_second", "a_first", "vm_hang"]


class TestPipelineMixedRecords:
    def test_stream_of_mixed_shapes_matches_direct_extraction(self):
        """End-to-end through the tailer: one store carrying all three
        record shapes extracts to the same events as feeding the
        extractor by hand."""
        from repro.storage.logstore import LogStore
        from repro.streaming import LogTailer

        store = LogStore()
        store.append(10.0, line="NIC Link is Down", target="vm-000")
        store.append(20.0, metric=m.READ_LATENCY, value=500.0,
                     target="vm-001")
        store.append(30.0, event="vm_down", target="vm-002",
                     level=int(Severity.FATAL), expire_interval=600.0,
                     duration=120.0)
        store.append(40.0, heartbeat=True)

        tailer = LogTailer(store, allowed_lateness=0.0)
        released = tailer.poll() + tailer.flush()
        extractor = StreamingExtractor()
        events = extractor.events_from_entries(released)
        assert [e.name for e in events] == [
            "nic_flapping", "slow_io", "vm_down"
        ]
        assert [e.target for e in events] == [
            "vm-000", "vm-001", "vm-002"
        ]


class TestValidation:
    def test_direction_validated_by_rule(self):
        with pytest.raises(ValueError, match="above/below"):
            MetricThresholdRule("x", 1.0, "e", direction="sideways")

"""Unit contract of :class:`~repro.streaming.state.IncrementalCdiState`.

Row-level semantics (service filter, unknown names, negative
durations, zero-row identity) and the incremental-vs-batch identity
for stateful re-pairing across tick boundaries.
"""

from __future__ import annotations

import json

import pytest

from repro.core.events import Event, Severity, default_catalog
from repro.core.fastpath import ResolverIndex, WeightTable
from repro.core.weights import expert_only_config
from repro.pipeline.daily import event_to_row

from tests.strategies import make_fleet_events, make_services
from tests.streaming.conftest import batch_bytes

DAY = 86400.0


def make_state(services):
    catalog = default_catalog()
    weight_table = WeightTable.from_config(catalog, expert_only_config())
    index = ResolverIndex.build(catalog, weight_table)
    from repro.streaming import IncrementalCdiState
    return IncrementalCdiState(services, catalog, weight_table, index)


def state_bytes(state) -> bytes:
    vm_rows, event_rows = state.snapshot_rows()
    return json.dumps([vm_rows, event_rows], sort_keys=True).encode()


def stateless(name, time, vm, *, duration=300.0,
              level=Severity.CRITICAL):
    attributes = {} if duration is None else {"duration": duration}
    return Event(name=name, time=time, target=vm,
                 expire_interval=600.0, level=level,
                 attributes=attributes)


def stateful(name, time, vm):
    return Event(name=name, time=time, target=vm,
                 expire_interval=3600.0, level=Severity.FATAL)


class TestRowSemantics:
    def test_eventless_fleet_matches_batch_zero_rows(self):
        services = make_services(3)
        state = make_state(services)
        assert state_bytes(state) == batch_bytes([], services)

    def test_out_of_service_target_rejected(self):
        state = make_state(make_services(1))
        accepted = state.apply_event(
            stateless("vm_down", 100.0, "vm-999")
        )
        assert accepted is False
        assert state.applied == 0

    def test_unknown_name_counts_without_rows(self):
        """``nic_flap`` is not in the catalog: the batch job counts the
        row (it is in the events table) but emits no event row."""
        services = make_services(1)
        state = make_state(services)
        event = stateless("nic_flap", 100.0, "vm-000")
        assert state.apply_event(event) is True
        assert state.applied == 1
        _, event_rows = state.snapshot_rows()
        assert event_rows == []
        assert state_bytes(state) == batch_bytes([event], services)

    def test_negative_duration_raises_like_batch_resolve(self):
        state = make_state(make_services(1))
        with pytest.raises(ValueError,
                           match="negative duration -5.0 on event"):
            state.apply_event(
                stateless("vm_down", 100.0, "vm-000", duration=-5.0)
            )

    def test_null_duration_uses_catalog_window(self):
        services = make_services(1)
        event = stateless("vm_down", 5_000.0, "vm-000", duration=None)
        state = make_state(services)
        state.apply_event(event)
        assert state_bytes(state) == batch_bytes([event], services)

    def test_applied_counter_mirrors_batch_event_count(self):
        services = make_services(4)
        events = make_fleet_events(9, vm_count=4)
        state = make_state(services)
        for event in events:
            state.apply_event(event)
        assert state.applied == len(events)


class TestStatefulRepairing:
    def test_del_arriving_ticks_later_repairs_the_period(self):
        """An ``*_add`` applied long before its ``*_del`` (separate
        refresh cycles in between) still pairs exactly as the batch
        job pairs them in one pass."""
        services = make_services(2)
        add = stateful("ddos_blackhole_add", 10_000.0, "vm-001")
        close = stateful("ddos_blackhole_del", 20_000.0, "vm-001")
        state = make_state(services)
        state.apply_event(add)
        open_bytes = state_bytes(state)  # forces a refresh mid-stream
        assert open_bytes == batch_bytes([add], services)
        state.apply_event(close)
        assert state_bytes(state) == batch_bytes([add, close], services)
        assert state_bytes(state) != open_bytes

    def test_open_period_clips_at_horizon(self):
        services = make_services(1)
        add = stateful("ddos_blackhole_add", DAY / 2, "vm-000")
        state = make_state(services)
        state.apply_event(add)
        assert state_bytes(state) == batch_bytes([add], services)
        vm_rows, _ = state.snapshot_rows()
        assert vm_rows[0]["unavailability"] > 0.0

    def test_orphan_del_matches_batch(self):
        services = make_services(1)
        orphan = stateful("ddos_blackhole_del", 1_000.0, "vm-000")
        state = make_state(services)
        state.apply_event(orphan)
        assert state_bytes(state) == batch_bytes([orphan], services)


class TestIncrementalIdentity:
    @pytest.mark.parametrize("seed", [1, 8])
    def test_prefix_snapshots_match_batch_prefixes(self, seed):
        """After *every* prefix of a fleet day the state equals a
        batch run over exactly that prefix — the strongest form of
        the incremental contract."""
        services = make_services(5)
        events = make_fleet_events(seed, vm_count=5, events_per_vm=2)
        events.sort(key=lambda event: event.time)
        state = make_state(services)
        step = max(1, len(events) // 4)
        for cut in range(0, len(events) + 1, step):
            fresh = make_state(services)
            for event in events[:cut]:
                fresh.apply_event(event)
            assert state_bytes(fresh) == batch_bytes(
                events[:cut], services
            )

    def test_apply_rows_returns_accepted_count(self):
        services = make_services(2)
        state = make_state(services)
        rows = [
            event_to_row(stateless("vm_down", 100.0, "vm-000")),
            event_to_row(stateless("vm_down", 200.0, "vm-777")),
        ]
        assert state.apply_rows(rows) == 1

    def test_refresh_returns_and_clears_dirty_set(self):
        services = make_services(3)
        state = make_state(services)
        state.apply_event(stateless("vm_down", 100.0, "vm-001"))
        assert state.refresh() == {"vm-001"}
        assert state.refresh() == set()

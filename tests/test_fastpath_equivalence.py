"""Equivalence suite for the batched fleet-CDI fast path.

Three layers of guarantees, matching the acceptance criteria of the
fast-path optimisation:

* the grouped kernel (:func:`repro.core.fastpath.grouped_damage_integrals`)
  matches both reference implementations of Algorithm 1
  (:func:`~repro.core.indicator.damage_integral` and
  :func:`~repro.core.indicator.damage_integral_quantized`) to <= 1e-9
  absolute on randomized interval sets — overlaps, duplicate
  timestamps, zero weights, out-of-period clipping, empty groups;
* :class:`~repro.pipeline.daily.DailyCdiJob` produces byte-identical
  ``vm_cdi`` / ``event_cdi`` tables on the fast path and the reference
  path;
* the thread and process executor backends return identical partitions
  for the same plan, and identical daily-job tables.
"""

import json
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.events import Event, Severity, default_catalog
from repro.core.fastpath import (
    WeightTable,
    damage_integrals_by_group,
    fleet_cdi_tables,
    grouped_damage_integrals,
)
from repro.core.indicator import (
    ServicePeriod,
    WeightedInterval,
    damage_integral,
    damage_integral_quantized,
    damage_integral_with,
)
from repro.core.periods import EventPeriod
from repro.core.weights import expert_only_config
from repro.engine.dataset import EngineContext
from repro.engine.executor import TaskFailedError
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import EVENT_CDI_TABLE, VM_CDI_TABLE
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore

from tests.strategies import make_fleet_events, stream_cases

DAY = 86400.0

#: Quantized weight pool (the realistic case: Formulas 1-3 produce a
#: small set of levels) plus awkward values: zero, full, subnormal
#: differences.
WEIGHT_POOLS = [
    [0.1, 0.3, 0.5, 0.8, 1.0],
    [0.0, 0.25, 0.25, 0.5, 1.0],
    [0.7],
    [0.5, np.nextafter(0.5, 1.0), 0.5000000000000001],
]


def random_group(rng: random.Random, pool: list[float], period: ServicePeriod,
                 max_intervals: int = 12) -> list[WeightedInterval]:
    """One group's interval set, biased toward edge cases."""
    intervals = []
    for _ in range(rng.randrange(max_intervals + 1)):
        kind = rng.random()
        if kind < 0.15:
            # Entirely outside the service period (clips away).
            start = period.end + rng.uniform(0.0, 500.0)
            end = start + rng.uniform(0.0, 100.0)
        elif kind < 0.3:
            # Straddles a period edge (partial clip).
            start = period.start - rng.uniform(0.0, 100.0)
            end = period.start + rng.uniform(0.0, 100.0)
        else:
            start = rng.uniform(period.start - 50.0, period.end)
            end = start + rng.uniform(0.0, (period.end - period.start) / 2)
        weight = rng.choice(pool)
        intervals.append(WeightedInterval(start, min(end, start + 1e6), weight))
    return intervals


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_both_references_on_random_fleets(self, seed):
        rng = random.Random(seed)
        pool = WEIGHT_POOLS[seed % len(WEIGHT_POOLS)]
        period = ServicePeriod(0.0, 1000.0)
        num_groups = rng.randrange(1, 12)
        groups = [random_group(rng, pool, period) for _ in range(num_groups)]

        flat = [
            (gid, iv.start, iv.end, iv.weight)
            for gid, intervals in enumerate(groups)
            for iv in intervals
        ]
        rng.shuffle(flat)  # kernel must not rely on input order
        result = damage_integrals_by_group(
            flat, {gid: period for gid in range(num_groups)}, num_groups
        )

        assert result.shape == (num_groups,)
        for gid, intervals in enumerate(groups):
            exact = damage_integral(intervals, period)
            quantized = damage_integral_quantized(intervals, period)
            assert math.isclose(result[gid], exact, abs_tol=1e-9), (
                f"group {gid}: kernel {result[gid]!r} != sweep {exact!r}"
            )
            assert math.isclose(result[gid], quantized, abs_tol=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_continuous_weights(self, seed):
        """Not just quantized pools: arbitrary float weights."""
        rng = random.Random(1000 + seed)
        period = ServicePeriod(100.0, 900.0)
        intervals = [
            WeightedInterval(rng.uniform(0, 1000), rng.uniform(0, 1000) + 1000,
                             rng.random())
            for _ in range(30)
        ]
        result = damage_integrals_by_group(
            [(0, iv.start, iv.end, iv.weight) for iv in intervals],
            {0: period}, 1,
        )
        assert math.isclose(
            result[0], damage_integral(intervals, period), abs_tol=1e-9
        )

    def test_empty_input(self):
        result = grouped_damage_integrals(
            np.array([]), np.array([]), np.array([]),
            np.array([], dtype=np.int64), 4,
        )
        assert result.tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_empty_groups_get_zero(self):
        period = ServicePeriod(0.0, 100.0)
        result = damage_integrals_by_group(
            [(2, 10.0, 20.0, 0.5)], {gid: period for gid in range(5)}, 5
        )
        assert result.tolist() == [0.0, 0.0, 0.5 * 10.0, 0.0, 0.0]

    def test_groups_do_not_leak_into_each_other(self):
        """Same timestamps in two groups: unions must stay per-group."""
        period = ServicePeriod(0.0, 100.0)
        result = damage_integrals_by_group(
            [(0, 0.0, 50.0, 0.4), (1, 0.0, 50.0, 0.8),
             (0, 25.0, 75.0, 0.4)],
            {0: period, 1: period}, 2,
        )
        assert result[0] == pytest.approx(0.4 * 75.0)
        assert result[1] == pytest.approx(0.8 * 50.0)

    def test_duplicate_boundaries_and_zero_length(self):
        period = ServicePeriod(0.0, 10.0)
        intervals = [
            WeightedInterval(2.0, 2.0, 0.9),  # zero length
            WeightedInterval(2.0, 5.0, 0.5),
            WeightedInterval(2.0, 5.0, 0.7),  # identical span, higher weight
            WeightedInterval(5.0, 8.0, 0.2),  # shares a boundary
        ]
        result = damage_integrals_by_group(
            [(0, iv.start, iv.end, iv.weight) for iv in intervals],
            {0: period}, 1,
        )
        assert result[0] == pytest.approx(damage_integral(intervals, period))
        assert result[0] == pytest.approx(0.7 * 3 + 0.2 * 3)


class TestQuantizedRegression:
    """Hardening of ``damage_integral_quantized`` (satellite fix)."""

    def test_all_intervals_clip_out(self):
        period = ServicePeriod(0.0, 100.0)
        intervals = [
            WeightedInterval(200.0, 300.0, 0.5),
            WeightedInterval(-50.0, 0.0, 0.8),
        ]
        assert damage_integral_quantized(intervals, period) == 0.0

    def test_zero_weight_only(self):
        period = ServicePeriod(0.0, 100.0)
        assert damage_integral_quantized(
            [WeightedInterval(10.0, 20.0, 0.0)], period
        ) == 0.0

    def test_adjacent_float_weights_not_merged(self):
        """Weights one ulp apart are distinct levels, not one."""
        period = ServicePeriod(0.0, 100.0)
        low, high = 0.5, np.nextafter(0.5, 1.0)
        intervals = [
            WeightedInterval(0.0, 60.0, low),
            WeightedInterval(40.0, 100.0, high),
        ]
        exact = damage_integral(intervals, period)
        quantized = damage_integral_quantized(intervals, period)
        # Exactly the two-level decomposition — a merged level would
        # collapse both weights to one union and change the value.
        assert quantized == high * 60.0 + low * (100.0 - 60.0)
        assert quantized == pytest.approx(exact, abs=1e-9)


class TestOverlapSemanticsSweep:
    """The rewritten ``damage_integral_with`` active-set sweep must
    reproduce the naive per-segment rescan bit for bit."""

    @staticmethod
    def naive(intervals, period, combine):
        clipped = [
            (max(iv.start, period.start), min(iv.end, period.end), iv.weight)
            for iv in intervals
            if min(iv.end, period.end) > max(iv.start, period.start)
            and iv.weight > 0
        ]
        if not clipped:
            return 0.0
        boundaries = sorted({t for s, e, _ in clipped for t in (s, e)})
        total = 0.0
        for left, right in zip(boundaries, boundaries[1:]):
            active = [w for s, e, w in clipped if s <= left and e > left]
            if active:
                total += combine(active) * (right - left)
        return total

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("combine", [
        max,
        lambda ws: min(1.0, sum(ws)),
        lambda ws: sum(ws) / len(ws),
    ], ids=["max", "capped_sum", "mean"])
    def test_matches_naive_rescan(self, seed, combine):
        rng = random.Random(seed)
        period = ServicePeriod(0.0, 500.0)
        intervals = random_group(rng, [0.2, 0.4, 0.9], period,
                                 max_intervals=15)
        assert damage_integral_with(intervals, period, combine) == (
            self.naive(intervals, period, combine)
        )


class TestFleetTables:
    def test_weight_table_matches_config_resolution(self):
        catalog = default_catalog()
        config = expert_only_config()
        table = WeightTable.from_config(catalog, config)
        for spec in catalog:
            for level in Severity:
                entry = table.lookup(spec.name, level)
                assert entry is not None
                assert entry[0] == config.resolve(spec.name, level,
                                                  spec.category)
        assert table.lookup("no_such_event", Severity.WARNING) is None

    def test_unknown_event_names_are_skipped(self):
        catalog = default_catalog()
        table = WeightTable.from_config(catalog, expert_only_config())
        periods = [
            EventPeriod("vm_down", "vm-a", 0.0, 600.0, Severity.FATAL),
            EventPeriod("not_in_catalog", "vm-a", 0.0, 600.0,
                        Severity.FATAL),
        ]
        tables = fleet_cdi_tables(
            [("vm-a", periods)], {"vm-a": ServicePeriod(0.0, DAY)}, table
        )
        assert [r["event"] for r in tables.event_rows] == ["vm_down"]
        assert tables.vm_rows[0]["unavailability"] > 0.0


def run_job(events, services, *, backend="thread", use_fastpath=True,
            use_columnar=True):
    context = EngineContext(parallelism=4, backend=backend)
    job = DailyCdiJob(context, TableStore(), ConfigDB(), default_catalog(),
                      use_fastpath=use_fastpath, use_columnar=use_columnar)
    job.store_weights(expert_only_config())
    job.ingest_events(events, "d")
    job.run("d", services)
    return (
        job.tables.get(VM_CDI_TABLE).rows("d"),
        job.tables.get(EVENT_CDI_TABLE).rows("d"),
    )


class TestDailyJobEquivalence:
    @pytest.mark.parametrize("use_columnar", [True, False],
                             ids=["columnar", "rows"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_fast_path_tables_byte_identical_to_reference(
        self, seed, use_columnar
    ):
        rng = random.Random(seed)
        events = make_fleet_events(rng, vm_count=40, events_per_vm=4,
                                   null_durations=False, stateful=False)
        services = {f"vm-{i:03d}": ServicePeriod(0.0, DAY) for i in range(45)}
        fast = run_job(events, services, use_fastpath=True,
                       use_columnar=use_columnar)
        reference = run_job(events, services, use_fastpath=False)
        # Byte-level identity, not approximate equality: same rows,
        # same order, same float bit patterns.
        assert json.dumps(fast) == json.dumps(reference)

    def test_thread_and_process_backends_identical_tables(self):
        rng = random.Random(3)
        events = make_fleet_events(rng, vm_count=20, events_per_vm=4,
                                   null_durations=False, stateful=False)
        services = {f"vm-{i:03d}": ServicePeriod(0.0, DAY) for i in range(20)}
        threaded = run_job(events, services, backend="thread")
        processed = run_job(events, services, backend="process")
        assert json.dumps(threaded) == json.dumps(processed)


class TestColumnarPathEquivalence:
    """The columnar scan path (typed column blocks → array-native
    resolution → :func:`fleet_cdi_tables_columnar`) must emit the same
    bytes as both the row-dict fast path and the reference sweep."""

    @pytest.mark.parametrize("seed", range(6))
    def test_columnar_byte_identical_to_row_fast_path(self, seed):
        rng = random.Random(100 + seed)
        events = make_fleet_events(rng, vm_count=40, events_per_vm=4,
                                   stateful=False)
        services = {f"vm-{i:03d}": ServicePeriod(0.0, DAY) for i in range(45)}
        columnar = run_job(events, services, use_columnar=True)
        row_path = run_job(events, services, use_columnar=False)
        assert json.dumps(columnar) == json.dumps(row_path)

    @pytest.mark.parametrize("seed", [1, 4])
    def test_columnar_with_stateful_events_matches_reference(self, seed):
        rng = random.Random(200 + seed)
        events = make_fleet_events(rng, vm_count=40, events_per_vm=4)
        services = {f"vm-{i:03d}": ServicePeriod(0.0, DAY) for i in range(45)}
        columnar = run_job(events, services, use_columnar=True)
        reference = run_job(events, services, use_fastpath=False)
        assert json.dumps(columnar) == json.dumps(reference)

    def test_columnar_on_process_backend(self):
        rng = random.Random(42)
        events = make_fleet_events(rng, vm_count=20, events_per_vm=4,
                                   null_durations=False)
        services = {f"vm-{i:03d}": ServicePeriod(0.0, DAY) for i in range(20)}
        threaded = run_job(events, services, backend="thread")
        processed = run_job(events, services, backend="process")
        assert json.dumps(threaded) == json.dumps(processed)

    @pytest.mark.parametrize("use_columnar", [True, False],
                             ids=["columnar", "rows"])
    def test_negative_duration_rejected(self, use_columnar):
        services = {"vm-0": ServicePeriod(0.0, DAY)}
        bad = [Event(name="vm_down", time=100.0, target="vm-0",
                     expire_interval=600.0, level=Severity.FATAL,
                     attributes={"duration": -5.0})]
        # Stage errors surface as the engine's retry-exhausted failure;
        # both paths raise the same ValueError underneath.
        with pytest.raises(TaskFailedError) as exc_info:
            run_job(bad, services, use_columnar=use_columnar)
        cause = exc_info.value.__cause__
        assert isinstance(cause, ValueError)
        assert "negative duration -5.0 on event 'vm_down'" in str(cause)

    def test_columnar_empty_partition(self):
        services = {"vm-0": ServicePeriod(0.0, DAY)}
        vm_rows, event_rows = run_job([], services, use_columnar=True)
        assert event_rows == []
        assert vm_rows == [{
            "vm": "vm-0", "unavailability": 0.0, "performance": 0.0,
            "control_plane": 0.0, "service_time": DAY,
        }]


class TestBackendPartitionEquality:
    def test_identical_partitions_for_shuffle_plan(self):
        data = [(f"key-{i % 17}", i) for i in range(400)]

        def build(backend):
            ctx = EngineContext(parallelism=4, backend=backend)
            ds = (
                ctx.parallelize(data, name="pairs")
                .group_by_key()
                .map_values(sorted)
            )
            return ctx.executor.execute(ds._node)

        thread_parts = build("thread")
        process_parts = build("process")
        # Partition-for-partition equality, not just same overall rows:
        # the shuffle hash must agree across processes.
        assert [sorted(p) for p in thread_parts] == (
            [sorted(p) for p in process_parts]
        )
        assert thread_parts == process_parts


class TestHypothesisEquivalence:
    """Property form of the suite: hypothesis-generated adversarial
    fleet days (unknown names, null and boundary-straddling durations,
    orphan/open stateful pairs, duplicates) through all three compute
    paths must agree byte-for-byte."""

    @given(case=stream_cases(max_vms=4, max_events=20, max_ticks=1))
    @settings(max_examples=15, deadline=None)
    def test_three_paths_byte_identical(self, case):
        services = case.services()
        events = case.oracle_events()
        outputs = [
            json.dumps(run_job(events, services, use_fastpath=fast,
                               use_columnar=columnar))
            for fast, columnar in [(True, True), (True, False),
                                   (False, False)]
        ]
        assert outputs[0] == outputs[1] == outputs[2]

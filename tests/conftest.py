"""Shared test configuration.

Property-based tests run simulation-backed code whose first call can
be slow (numpy warm-up, scipy distribution caching), so the global
hypothesis profile disables per-example deadlines; individual tests
tune ``max_examples`` where the default is too heavy.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

"""Failure injection: dirty event streams through the daily pipeline.

Production event streams are messy (Section IV-B2 explicitly engineers
around dirty data).  These tests push every flavour of mess through
the real daily job and check it neither crashes nor corrupts the
output tables.
"""

import pytest

from repro.core.events import Event, Severity, default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import VM_CDI_TABLE
from repro.scenarios.common import default_weights
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore

DAY = 86400.0


@pytest.fixture
def job() -> DailyCdiJob:
    job = DailyCdiJob(EngineContext(parallelism=2), TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    return job


def run(job: DailyCdiJob, events: list[Event], vms: list[str] = None):
    vms = vms or ["vm-a"]
    job.ingest_events(events, "dirty")
    services = {vm: ServicePeriod(0.0, DAY) for vm in vms}
    result = job.run("dirty", services)
    rows = job._tables.get(VM_CDI_TABLE).rows("dirty")
    return result, rows


class TestDirtyStreams:
    def test_out_of_order_events(self, job):
        events = [
            Event("slow_io", 5000.0, "vm-a", level=Severity.CRITICAL),
            Event("slow_io", 1000.0, "vm-a", level=Severity.CRITICAL),
            Event("slow_io", 3000.0, "vm-a", level=Severity.CRITICAL),
        ]
        result, rows = run(job, events)
        assert result.vm_count == 1
        assert 0.0 < rows[0]["performance"] <= 1.0

    def test_duplicate_stateful_adds(self, job):
        events = [
            Event("ddos_blackhole_add", 1000.0, "vm-a", level=Severity.FATAL),
            Event("ddos_blackhole_add", 1500.0, "vm-a", level=Severity.FATAL),
            Event("ddos_blackhole_del", 2000.0, "vm-a"),
            Event("ddos_blackhole_del", 2500.0, "vm-a"),
        ]
        _, rows = run(job, events)
        # Dedup keeps [1000, 2000] -> exactly 1000 s of unavailability.
        assert rows[0]["unavailability"] == pytest.approx(1000.0 / DAY)

    def test_unpaired_del_dropped(self, job):
        events = [Event("ddos_blackhole_del", 2000.0, "vm-a")]
        _, rows = run(job, events)
        assert rows[0]["unavailability"] == 0.0

    def test_open_add_clipped_to_horizon(self, job):
        events = [
            Event("ddos_blackhole_add", DAY - 3600.0, "vm-a",
                  level=Severity.FATAL),
        ]
        _, rows = run(job, events)
        assert rows[0]["unavailability"] == pytest.approx(3600.0 / DAY)

    def test_events_before_service_window_clipped(self, job):
        # Extraction timestamp inside the day, but measured duration
        # reaches back before T_s: the excess must be clipped.
        events = [
            Event("vm_down", 600.0, "vm-a", level=Severity.FATAL,
                  attributes={"duration": 7200.0}),
        ]
        _, rows = run(job, events)
        assert rows[0]["unavailability"] == pytest.approx(600.0 / DAY)

    def test_unknown_event_names_skipped(self, job):
        events = [
            Event("totally_new_event", 1000.0, "vm-a", level=Severity.FATAL),
            Event("slow_io", 1000.0, "vm-a", level=Severity.CRITICAL),
        ]
        result, rows = run(job, events)
        assert result.vm_count == 1
        assert rows[0]["unavailability"] == 0.0
        assert rows[0]["performance"] > 0.0

    def test_massive_duplicate_events_bounded(self, job):
        events = [
            Event("slow_io", 1000.0 + i * 0.001, "vm-a",
                  level=Severity.CRITICAL)
            for i in range(500)
        ]
        _, rows = run(job, events)
        # 500 nearly identical 60 s windows still cover ~60 s of damage.
        assert rows[0]["performance"] <= 2 * 61.0 / DAY

    def test_zero_duration_events(self, job):
        events = [
            Event("slow_io", 1000.0, "vm-a", level=Severity.CRITICAL,
                  attributes={"duration": 0.0}),
        ]
        _, rows = run(job, events)
        assert rows[0]["performance"] == 0.0

    def test_mixed_targets_do_not_bleed(self, job):
        events = [
            Event("vm_down", 1000.0, "vm-a", level=Severity.FATAL,
                  attributes={"duration": 600.0}),
        ]
        _, rows = run(job, events, vms=["vm-a", "vm-b"])
        by_vm = {r["vm"]: r for r in rows}
        assert by_vm["vm-a"]["unavailability"] > 0.0
        assert by_vm["vm-b"]["unavailability"] == 0.0

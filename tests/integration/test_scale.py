"""Scale smoke test: the daily pipeline at tens of thousands of VMs.

The paper's job covers tens of millions of VMs on a Spark cluster; the
laptop analogue must at least stay linear and comfortably handle a
10^4-VM day, or the "large-scale" claim is hollow.
"""

import time

import pytest

from repro.core.events import Event, Severity, default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import VM_CDI_TABLE
from repro.scenarios.common import default_weights, fault_to_period
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.faults import FaultInjector, baseline_rates

DAY = 86400.0
VM_COUNT = 10_000


@pytest.mark.slow
class TestPipelineScale:
    def test_ten_thousand_vm_day(self):
        vm_ids = [f"vm-{i:05d}" for i in range(VM_COUNT)]
        injector = FaultInjector(baseline_rates(scale=10.0), seed=0)
        faults = injector.sample(vm_ids, 0.0, DAY)
        catalog = default_catalog()
        events = []
        for fault in faults:
            period = fault_to_period(fault, catalog)
            events.append(Event(
                name=period.name, time=period.end, target=period.target,
                expire_interval=600.0, level=period.level,
                attributes={"duration": period.duration},
            ))
        assert len(events) > 3_000  # meaningful volume

        job = DailyCdiJob(EngineContext(parallelism=8), TableStore(),
                          ConfigDB(), catalog)
        job.store_weights(default_weights())
        job.ingest_events(events, "scale")
        services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}

        started = time.perf_counter()
        result = job.run("scale", services)
        elapsed = time.perf_counter() - started

        assert result.vm_count == VM_COUNT
        assert result.event_count == len(events)
        assert elapsed < 60.0, f"daily job took {elapsed:.1f}s at 10k VMs"

        rows = job._tables.get(VM_CDI_TABLE).rows("scale")
        assert len(rows) == VM_COUNT
        fleet = result.fleet_report
        for value in (fleet.unavailability, fleet.performance,
                      fleet.control_plane):
            assert 0.0 <= value <= 1.0
        # Background fault volume implies small but non-zero damage.
        assert fleet.performance > 0.0

"""Integration test: the full Fig. 1 NIC workflow (Example 1)."""

import pytest

from repro.cloudbot.actions import ActionType
from repro.cloudbot.platform import ExecutionStatus
from repro.scenarios.nic_case import run_nic_incident


@pytest.fixture(scope="module")
def outcome():
    return run_nic_incident(seed=0)


class TestNicWorkflow:
    def test_extractor_recovers_both_events(self, outcome):
        names = {e.name for e in outcome.events}
        assert "slow_io" in names
        assert "nic_flapping" in names

    def test_slow_io_extracted_on_the_vm(self, outcome):
        # The NC may legitimately report slow IO too (its NIC flap
        # degrades host IO); the VM must be among the afflicted.
        slow_io = [e for e in outcome.events if e.name == "slow_io"]
        assert any(e.target == outcome.vm for e in slow_io)

    def test_nic_flapping_extracted_on_the_nc(self, outcome):
        flaps = [e for e in outcome.events if e.name == "nic_flapping"]
        assert any(e.target == outcome.nc for e in flaps)

    def test_correct_rule_matches(self, outcome):
        matched = {m.rule.name for m in outcome.matches}
        assert "nic_error_cause_slow_io" in matched
        # Without a vm_hang event the second rule must not match.
        assert "nic_error_cause_vm_hang" not in matched

    def test_three_actions_executed(self, outcome):
        executed = [
            r.action.type for r in outcome.records
            if r.status is ExecutionStatus.EXECUTED
        ]
        assert ActionType.LIVE_MIGRATION in executed
        assert ActionType.REPAIR_REQUEST in executed
        assert ActionType.NC_LOCK in executed

    def test_vm_left_the_faulty_nc(self, outcome):
        assert outcome.platform.placements[outcome.vm] != outcome.nc

    def test_faulty_nc_locked_and_ticketed(self, outcome):
        assert outcome.platform.is_locked(outcome.nc)
        assert any(t.target == outcome.nc
                   for t in outcome.platform.open_tickets)

    def test_migration_cannot_return_to_locked_nc(self, outcome):
        """While the repair ticket is open, nothing migrates back."""
        from repro.cloudbot.actions import Action

        records = outcome.platform.submit([
            Action(ActionType.LIVE_MIGRATION, outcome.vm,
                   params={"destination": outcome.nc})
        ])
        assert records[0].status is ExecutionStatus.REJECTED_LOCKED

"""Integration test: daily pipeline → monitor → detection → RCA.

Runs the real daily job over a 20-day window in which a Case 6-style
scheduler bug hits one region's VMs on day 15, then checks the monitor
detects the spike on both the fleet curve and the event-level curve
and localizes the damage to the right region.
"""

import numpy as np
import pytest

from repro.core.events import Event, Severity, default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.backfill import run_days
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.monitor import CdiMonitor
from repro.scenarios.common import default_weights
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.topology import build_fleet

DAY = 86400.0
SPIKE_DAY = 15


@pytest.fixture(scope="module")
def backfill():
    fleet = build_fleet(seed=2, regions=2, azs_per_region=1,
                        clusters_per_az=1, ncs_per_cluster=2, vms_per_nc=3)
    vm_ids = sorted(fleet.vms)
    bad_region_vms = [vm for vm in vm_ids
                      if fleet.region_of(vm) == "region-1"]
    rng = np.random.default_rng(0)

    def events_for_day(index: int, partition: str) -> list[Event]:
        events = []
        # Ambient allocation failures on a couple of random VMs.
        for vm in rng.choice(vm_ids, size=2, replace=False):
            events.append(Event(
                "vm_allocation_failed",
                time=float(rng.uniform(0, DAY)),
                target=str(vm), level=Severity.CRITICAL,
                attributes={"duration": float(rng.uniform(300, 900))},
            ))
        if index == SPIKE_DAY:
            # Scheduler bug: every region-1 VM loses exclusive cores
            # for hours.
            for vm in bad_region_vms:
                events.append(Event(
                    "vm_allocation_failed", time=DAY / 2, target=vm,
                    level=Severity.CRITICAL,
                    attributes={"duration": 6 * 3600.0},
                ))
        return events

    job = DailyCdiJob(EngineContext(parallelism=2), TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}
    monitor = CdiMonitor(
        resolver=fleet.dimensions_of,
        tracked_events=["vm_allocation_failed"],
    )
    return run_days(job, events_for_day, services, days=20,
                    monitor=monitor)


class TestMonitoringLoop:
    def test_all_days_ran(self, backfill):
        assert len(backfill.job_results) == 20
        assert backfill.partitions[0] == "day00"
        assert backfill.monitor.days == list(backfill.partitions)

    def test_fleet_spike_detected(self, backfill):
        findings = backfill.monitor.findings()
        fleet_findings = [f for f in findings
                          if f.curve == "fleet.performance"]
        assert any(
            f.day == f"day{SPIKE_DAY}" and f.direction == "spike"
            for f in fleet_findings
        )

    def test_event_level_spike_detected(self, backfill):
        findings = backfill.monitor.findings()
        assert any(
            f.curve == "event.vm_allocation_failed"
            and f.day == f"day{SPIKE_DAY}"
            for f in findings
        )

    def test_root_cause_localized_to_region(self, backfill):
        findings = [
            f for f in backfill.monitor.findings()
            if f.curve == "fleet.performance" and f.day == f"day{SPIKE_DAY}"
        ]
        assert findings
        cause = findings[0].root_cause
        assert cause is not None
        # With one AZ per region the "az" and "region" dimensions are
        # coextensive; either is a correct localization as long as it
        # points inside region-1.
        assert cause.dimension in ("region", "az")
        assert len(cause.values) == 1
        assert cause.values[0].startswith("region-1")

    def test_event_curve_shape(self, backfill):
        curve = backfill.monitor.event_curve("vm_allocation_failed")
        spike = curve[SPIKE_DAY]
        others = [v for i, v in enumerate(curve) if i != SPIKE_DAY]
        assert spike > 5.0 * max(others)

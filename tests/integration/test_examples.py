"""Regression guard: every example script runs to completion.

Examples are documentation; a stale import or API drift should fail
the suite, not a user.  Each script runs in a subprocess with the
repository's source on the path.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert "nic_incident.py" in EXAMPLES
    assert len(EXAMPLES) >= 3

"""Stateful property tests (hypothesis RuleBasedStateMachine).

Two long-lived mutable components get model-based testing:

* :class:`LogStoreMachine` — the SLS stand-in against a plain-list
  model: arbitrary interleavings of appends (in/out of order),
  range queries, and expirations must always agree with the model.
* :class:`PlatformMachine` — the Operation Platform: under any action
  sequence, every VM stays placed on exactly one NC and locked NCs
  never *gain* VMs.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cloudbot.actions import Action, ActionType
from repro.cloudbot.platform import ExecutionStatus, OperationPlatform
from repro.storage.logstore import LogStore
from repro.telemetry.topology import build_fleet

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class LogStoreMachine(RuleBasedStateMachine):
    RETENTION = 1e9  # effectively no retention during random appends

    def __init__(self):
        super().__init__()
        self.store = LogStore(retention=self.RETENTION)
        self.model: list[tuple[float, str]] = []

    @rule(time=times, name=st.sampled_from(["slow_io", "vm_down", "x"]))
    def append(self, time, name):
        self.store.append(time, name=name)
        self.model.append((time, name))

    @rule(start=times, end=times)
    def query_matches_model(self, start, end):
        lo, hi = min(start, end), max(start, end)
        got = [(e.time, e.get("name")) for e in self.store.query(lo, hi)]
        expected = sorted(
            (t, n) for t, n in self.model if lo <= t < hi
        )
        assert sorted(got) == expected

    @rule(name=st.sampled_from(["slow_io", "vm_down", "x"]))
    def filtered_count_matches_model(self, name):
        got = self.store.count(0.0, 2e6, name=name)
        assert got == sum(1 for _, n in self.model if n == name)

    @invariant()
    def size_matches(self):
        assert len(self.store) == len(self.model)

    @invariant()
    def internally_sorted(self):
        entries = list(self.store.query(0.0, 2e6))
        assert [e.time for e in entries] == sorted(e.time for e in entries)


class PlatformMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.fleet = build_fleet(seed=0, regions=1, azs_per_region=1,
                                 clusters_per_az=1, ncs_per_cluster=4,
                                 vms_per_nc=2)
        self.platform = OperationPlatform(self.fleet)
        self.vms = sorted(self.fleet.vms)
        self.ncs = sorted(self.fleet.ncs)

    @rule(vm_index=st.integers(min_value=0, max_value=7))
    def migrate(self, vm_index):
        vm = self.vms[vm_index]
        self.platform.submit([Action(ActionType.LIVE_MIGRATION, vm)])

    @rule(vm_index=st.integers(min_value=0, max_value=7),
          nc_index=st.integers(min_value=0, max_value=3))
    def migrate_to_explicit(self, vm_index, nc_index):
        vm = self.vms[vm_index]
        destination = self.ncs[nc_index]
        locked_before = self.platform.is_locked(destination)
        records = self.platform.submit([
            Action(ActionType.LIVE_MIGRATION, vm,
                   params={"destination": destination})
        ])
        if locked_before:
            assert records[0].status is ExecutionStatus.REJECTED_LOCKED

    @rule(nc_index=st.integers(min_value=0, max_value=3))
    def lock(self, nc_index):
        self.platform.submit([Action(ActionType.NC_LOCK,
                                     self.ncs[nc_index])])

    @rule(nc_index=st.integers(min_value=0, max_value=3))
    def unlock(self, nc_index):
        self.platform.unlock(self.ncs[nc_index])

    @rule(nc_index=st.integers(min_value=0, max_value=3))
    def repair_ticket(self, nc_index):
        self.platform.submit([Action(ActionType.REPAIR_REQUEST,
                                     self.ncs[nc_index])])

    @invariant()
    def every_vm_placed_exactly_once(self):
        assert set(self.platform.placements) == set(self.vms)
        for vm, nc in self.platform.placements.items():
            assert nc in self.fleet.ncs

    @invariant()
    def vms_on_partitions_the_placements(self):
        total = sum(len(self.platform.vms_on(nc)) for nc in self.ncs)
        assert total == len(self.vms)

    @invariant()
    def log_statuses_valid(self):
        for record in self.platform.log:
            assert isinstance(record.status, ExecutionStatus)


TestLogStoreStateful = LogStoreMachine.TestCase
TestLogStoreStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None,
)

TestPlatformStateful = PlatformMachine.TestCase
TestPlatformStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None,
)

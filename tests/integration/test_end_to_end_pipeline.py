"""Integration test: simulator → extractor → daily job → BI roll-up.

Covers the whole Fig. 4 dataflow on a small fleet: faults are rendered
into raw telemetry, extracted into events, ingested into the events
table, computed into the two output tables by the daily job on the
mini engine, and aggregated by the BI layer — with the damage landing
in the right region.
"""

import pytest

from repro.cloudbot.collector import DataCollector
from repro.cloudbot.extractor import (
    EventExtractor,
    default_log_rules,
    default_metric_rules,
)
from repro.core.events import default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.bi import aggregate_by, global_report
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import VM_CDI_TABLE
from repro.scenarios.common import default_weights
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.faults import Fault, FaultKind
from repro.telemetry.topology import build_fleet

DAY = 86400.0


@pytest.fixture(scope="module")
def pipeline_run():
    fleet = build_fleet(seed=1, regions=2, azs_per_region=1,
                        clusters_per_az=1, ncs_per_cluster=2, vms_per_nc=2)
    vm_ids = sorted(fleet.vms)
    # Fault blast radius: every VM in region-1 suffers slow IO; one VM
    # in region-0 goes down briefly.
    region1_vms = [vm for vm in vm_ids if fleet.region_of(vm) == "region-1"]
    downed_vm = [vm for vm in vm_ids
                 if fleet.region_of(vm) == "region-0"][0]
    faults = [
        Fault(FaultKind.SLOW_IO, vm, 6 * 3600.0, 3 * 3600.0)
        for vm in region1_vms
    ] + [Fault(FaultKind.VM_DOWN, downed_vm, 1000.0, 1800.0)]

    collector = DataCollector(fleet, seed=1, interval=300.0)
    bundle = collector.collect(vm_ids, 0.0, DAY, faults=faults)
    extractor = EventExtractor(metric_rules=default_metric_rules(),
                               log_rules=default_log_rules())
    events = extractor.extract_all(metrics=bundle.metrics, logs=bundle.logs)

    job = DailyCdiJob(EngineContext(parallelism=4), TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    job.ingest_events(events, "day0")
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}
    result = job.run("day0", services)
    rows = job._tables.get(VM_CDI_TABLE).rows("day0")
    return fleet, downed_vm, region1_vms, result, rows


class TestEndToEndPipeline:
    def test_every_vm_has_a_row(self, pipeline_run):
        fleet, _, _, result, rows = pipeline_run
        assert result.vm_count == len(fleet.vms)
        assert {r["vm"] for r in rows} == set(fleet.vms)

    def test_downed_vm_has_unavailability(self, pipeline_run):
        _, downed_vm, _, _, rows = pipeline_run
        row = next(r for r in rows if r["vm"] == downed_vm)
        assert row["unavailability"] > 0.0

    def test_slow_io_vms_have_performance_damage(self, pipeline_run):
        _, _, region1_vms, _, rows = pipeline_run
        for vm in region1_vms:
            row = next(r for r in rows if r["vm"] == vm)
            assert row["performance"] > 0.0, vm

    def test_bi_localizes_damage_to_region_1(self, pipeline_run):
        fleet, _, _, _, rows = pipeline_run
        by_region = aggregate_by(rows, fleet.dimensions_of, "region")
        assert by_region["region-1"].performance > (
            5.0 * max(by_region["region-0"].performance, 1e-9)
        )

    def test_global_report_matches_job_summary(self, pipeline_run):
        _, _, _, result, rows = pipeline_run
        report = global_report(rows)
        assert report.performance == pytest.approx(
            result.fleet_report.performance
        )
        assert report.unavailability == pytest.approx(
            result.fleet_report.unavailability
        )

    def test_damage_magnitude_reasonable(self, pipeline_run):
        """Slow IO for 3 of 24 hours with weight < 1 bounds CDI-P."""
        _, _, region1_vms, _, rows = pipeline_run
        for vm in region1_vms:
            row = next(r for r in rows if r["vm"] == vm)
            assert row["performance"] <= 3.5 / 24.0

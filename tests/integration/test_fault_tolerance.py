"""Fault-tolerant execution, end to end: the chaos/differential suite.

The ISSUE's headline deliverable.  Three claims are proven here:

* **Differential chaos** — the daily job under injected crashes,
  delays, duplicates, and drops produces output tables byte-identical
  to a fault-free run, on both executor backends and on all three
  compute paths (columnar fast path, row fast path, reference),
  including stateful paired events.
* **Checkpoint/resume** — a job killed at any shard boundary and
  resumed recomputes only the unfinished VM shards (asserted by
  counting events-table block loads through an instrumented
  :class:`~repro.storage.table.Table` subclass) and still produces
  byte-identical outputs; a finalized checkpoint replays without
  rescanning any events.
* **Manifest durability** — checkpoint files are a save→load→save
  fixed point (byte equality), so resume never degrades state.

The chaos seed matrix honours ``REPRO_CHAOS_SEED`` so CI can fan the
suite out one seed per matrix job; locally all default seeds run.
"""

import json
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, default_catalog
from repro.core.indicator import ServicePeriod
from repro.core.weights import expert_only_config
from repro.engine.chaos import ChaosInjector, FaultRule
from repro.engine.dataset import EngineContext
from repro.engine.retry import RetryPolicy
from repro.pipeline.backfill import run_days
from repro.pipeline.checkpoint import JobCheckpoint
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import (
    EVENT_CDI_TABLE,
    EVENTS_TABLE,
    VM_CDI_TABLE,
    events_schema,
    vm_cdi_schema,
    event_cdi_schema,
)
from repro.storage.configdb import ConfigDB
from repro.storage.logstore import LogStore
from repro.storage.persistence import load_table_store, save_table_store
from repro.storage.table import Table, TableStore
from repro.streaming import StreamCheckpoint

from tests.strategies import DAY, make_fleet_events, make_services
from tests.streaming.conftest import (
    KillingStreamCheckpoint,
    SimulatedKill as StreamKill,
    append_events as stream_events_in,
    bounded_lag_arrival,
    chunked,
    make_pipeline as make_stream_pipeline,
    oracle_order,
    published_bytes as stream_published_bytes,
)

PARTITION = "d0"


def chaos_seeds() -> list[int]:
    """CI sets REPRO_CHAOS_SEED to fan the matrix out one seed per job."""
    pinned = os.environ.get("REPRO_CHAOS_SEED")
    if pinned is not None:
        return [int(pinned)]
    return [0, 1, 2]


def make_job(events: list[Event], *, backend: str = "thread",
             chaos: ChaosInjector | None = None,
             retry_policy: RetryPolicy | None = None,
             store: TableStore | None = None) -> DailyCdiJob:
    context = EngineContext(parallelism=2, backend=backend,
                            retry_policy=retry_policy, chaos=chaos)
    job = DailyCdiJob(context, store if store is not None else TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(expert_only_config())
    job.ingest_events(events, PARTITION)
    return job


def output_bytes(job: DailyCdiJob, partition: str = PARTITION) -> bytes:
    vm_rows, event_rows = job.output_rows(partition)
    return json.dumps([vm_rows, event_rows], sort_keys=True).encode()


class CountingEventsTable(Table):
    """Events table that counts block loads (scan instrumentation)."""

    def __init__(self) -> None:
        super().__init__(EVENTS_TABLE, events_schema())
        self.load_calls = 0

    def _load_blocks(self, partition, names):
        self.load_calls += 1
        return super()._load_blocks(partition, names)


@pytest.fixture(scope="module")
def fleet():
    events = make_fleet_events(seed=11)
    services = make_services()
    return events, services


@pytest.fixture(scope="module")
def clean_outputs(fleet):
    """Fault-free reference bytes per (use_fastpath, use_columnar) path."""
    events, services = fleet
    outputs = {}
    for fast, columnar in ((True, True), (True, False), (False, False)):
        job = make_job(events)
        job.run(PARTITION, services, use_fastpath=fast, use_columnar=columnar)
        outputs[(fast, columnar)] = output_bytes(job)
    return outputs


class TestChaosDifferential:
    """Satellite: chaos runs are byte-identical to fault-free runs."""

    def test_reference_paths_agree_with_each_other(self, clean_outputs):
        assert len(set(clean_outputs.values())) == 1

    @pytest.mark.parametrize("kind", ["crash", "delay", "duplicate", "drop"])
    def test_every_kind_at_every_stage(self, fleet, clean_outputs, kind):
        """Each fault kind firing on *every* task of *every* stage
        still yields byte-identical outputs."""
        events, services = fleet
        chaos = ChaosInjector([FaultRule(
            kind=kind, probability=1.0, attempts=1,
            delay=0.002 if kind == "delay" else 0.0,
        )])
        job = make_job(events, chaos=chaos)
        job.run(PARTITION, services)
        assert output_bytes(job) == clean_outputs[(True, True)]
        metrics = job._context.executor.last_job_metrics
        assert metrics.failed_tasks == 0
        if kind in ("crash", "drop"):
            assert metrics.retried_tasks > 0

    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_storm_differential_columnar(self, fleet, clean_outputs,
                                         backend, seed):
        """A mixed-fault storm on either backend reproduces the clean
        columnar output byte for byte."""
        events, services = fleet
        job = make_job(events, backend=backend,
                       chaos=ChaosInjector.storm(seed=seed, probability=0.5,
                                                 delay=0.002))
        job.run(PARTITION, services)
        assert output_bytes(job) == clean_outputs[(True, True)]
        assert job._context.executor.last_job_metrics.failed_tasks == 0

    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("fast,columnar",
                             [(True, False), (False, False)])
    def test_storm_differential_row_paths(self, fleet, clean_outputs,
                                          fast, columnar, seed):
        """The row fast path and the reference path survive the same
        storms with identical bytes."""
        events, services = fleet
        job = make_job(events,
                       chaos=ChaosInjector.storm(seed=seed, probability=0.5,
                                                 delay=0.002))
        job.run(PARTITION, services, use_fastpath=fast, use_columnar=columnar)
        assert output_bytes(job) == clean_outputs[(fast, columnar)]

    def test_storm_beyond_retry_budget_fails_loudly(self, fleet):
        """Permanent faults are not silently swallowed: a storm wider
        than the retry budget surfaces as TaskFailedError."""
        from repro.engine.executor import TaskFailedError

        events, services = fleet
        job = make_job(
            events, retry_policy=RetryPolicy(max_retries=1),
            chaos=ChaosInjector([FaultRule(kind="crash", attempts=99)]),
        )
        with pytest.raises(TaskFailedError) as excinfo:
            job.run(PARTITION, services)
        assert excinfo.value.cause_type == "InjectedFault"


class SimulatedKill(BaseException):
    """Not an Exception: must sail through the executor's retry net."""


class KillingCheckpoint(JobCheckpoint):
    """Checkpoint that kills the process after N recorded shards."""

    def __init__(self, path, kill_after: int) -> None:
        super().__init__(path)
        self.kill_after = kill_after
        self.recorded = 0

    def record_shard(self, *args, **kwargs):
        if self.recorded >= self.kill_after:
            raise SimulatedKill(f"killed after {self.recorded} shards")
        super().record_shard(*args, **kwargs)
        self.recorded += 1


class TestCheckpointResume:
    """Tentpole: kill → resume recomputes only unfinished shards."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_checkpointed_equals_plain_run(self, fleet, clean_outputs,
                                           tmp_path, backend, shards):
        events, services = fleet
        job = make_job(events, backend=backend)
        job.run_checkpointed(
            PARTITION, services,
            checkpoint=JobCheckpoint(tmp_path / "ck.json"), shards=shards,
        )
        assert output_bytes(job) == clean_outputs[(True, True)]

    def test_kill_then_resume_recomputes_only_unfinished(self, fleet,
                                                         clean_outputs,
                                                         tmp_path):
        events, services = fleet
        path = tmp_path / "ck.json"
        shards = 6
        kill_after = 2

        # Baseline: events-table block loads for one full checkpointed run.
        full_table = CountingEventsTable()
        full_store = TableStore()
        full_store.add(full_table)
        full_job = make_job(events, store=full_store)
        full_job.run_checkpointed(
            PARTITION, services,
            checkpoint=JobCheckpoint(tmp_path / "full.json"), shards=shards,
        )
        loads_per_full_run = full_table.load_calls
        assert loads_per_full_run > 0

        # Kill after 2 of 6 shards.
        killed_table = CountingEventsTable()
        killed_store = TableStore()
        killed_store.add(killed_table)
        killed_job = make_job(events, store=killed_store)
        with pytest.raises(SimulatedKill):
            killed_job.run_checkpointed(
                PARTITION, services,
                checkpoint=KillingCheckpoint(path, kill_after), shards=shards,
            )

        # Resume in a "fresh process": new job, new checkpoint object.
        resumed_table = CountingEventsTable()
        resumed_store = TableStore()
        resumed_store.add(resumed_table)
        resumed_job = make_job(events, store=resumed_store)
        resumed_job.run_checkpointed(
            PARTITION, services,
            checkpoint=JobCheckpoint(path), shards=shards,
        )
        assert output_bytes(resumed_job) == clean_outputs[(True, True)]

        # Only the unfinished shards were recomputed.  The kill landed
        # while recording shard index ``kill_after``, so the killed run
        # scanned kill_after+1 shards (the last one's work was lost)
        # and the resume scanned exactly the shards - kill_after that
        # never made it into the manifest.
        per_shard, remainder = divmod(loads_per_full_run, shards)
        assert remainder == 0
        assert killed_table.load_calls == per_shard * (kill_after + 1)
        assert resumed_table.load_calls == per_shard * (shards - kill_after)
        assert resumed_table.load_calls < loads_per_full_run

    def test_finalized_checkpoint_replays_without_event_scans(self, fleet,
                                                              clean_outputs,
                                                              tmp_path):
        events, services = fleet
        path = tmp_path / "ck.json"
        first = make_job(events)
        first.run_checkpointed(PARTITION, services,
                               checkpoint=JobCheckpoint(path), shards=4)

        table = CountingEventsTable()
        store = TableStore()
        store.add(table)
        replay = make_job(events, store=store)
        ingested_loads = table.load_calls
        replay.run_checkpointed(PARTITION, services,
                                checkpoint=JobCheckpoint(path), shards=4)
        assert table.load_calls == ingested_loads  # zero scans during replay
        assert output_bytes(replay) == clean_outputs[(True, True)]

    def test_fingerprint_mismatch_starts_over(self, fleet, tmp_path):
        events, services = fleet
        path = tmp_path / "ck.json"
        job = make_job(events)
        job.run_checkpointed(PARTITION, services,
                             checkpoint=JobCheckpoint(path), shards=4)

        checkpoint = JobCheckpoint(path)
        assert checkpoint.load()
        stale = checkpoint.fingerprint()

        # A new weight-config version changes the fingerprint, so the
        # old shards must not be reused.
        job.store_weights(expert_only_config())
        fresh = job.checkpoint_fingerprint(PARTITION, services, shards=4)
        assert fresh != stale
        assert checkpoint.ensure(fresh, PARTITION) == set()
        assert checkpoint.fingerprint() == fresh
        assert not checkpoint.is_finalized()

    def test_resume_disabled_recomputes_everything(self, fleet, tmp_path):
        events, services = fleet
        path = tmp_path / "ck.json"
        job = make_job(events)
        job.run_checkpointed(PARTITION, services,
                             checkpoint=JobCheckpoint(path), shards=4)

        table = CountingEventsTable()
        store = TableStore()
        store.add(table)
        rerun = make_job(events, store=store)
        before = table.load_calls
        rerun.run_checkpointed(PARTITION, services,
                               checkpoint=JobCheckpoint(path), shards=4,
                               resume=False)
        assert table.load_calls > before  # shards actually recomputed

    def test_chaos_and_checkpointing_compose(self, fleet, clean_outputs,
                                             tmp_path):
        """A storm during a checkpointed run changes nothing."""
        events, services = fleet
        job = make_job(events,
                       chaos=ChaosInjector.storm(seed=1, probability=0.5,
                                                 delay=0.002))
        job.run_checkpointed(
            PARTITION, services,
            checkpoint=JobCheckpoint(tmp_path / "ck.json"), shards=5,
        )
        assert output_bytes(job) == clean_outputs[(True, True)]


class TestResumeAtAnyBoundary:
    """Hypothesis property: kill at *any* shard boundary, resume, and
    the outputs are identical to the clean run."""

    @given(kill_after=st.integers(min_value=0, max_value=5),
           shards=st.integers(min_value=1, max_value=5))
    @settings(max_examples=12, deadline=None)
    def test_resume_after_kill_is_lossless(self, tmp_path_factory,
                                           kill_after, shards):
        events = make_fleet_events(seed=5, vm_count=10)
        services = make_services(vm_count=10)
        tmp_path = tmp_path_factory.mktemp("resume")
        path = tmp_path / "ck.json"

        reference = make_job(events)
        reference.run(PARTITION, services)
        expected = output_bytes(reference)

        killed = make_job(events)
        try:
            killed.run_checkpointed(
                PARTITION, services,
                checkpoint=KillingCheckpoint(path, kill_after),
                shards=shards,
            )
            survived = True  # kill point beyond the shard count
        except SimulatedKill:
            survived = False
        if not survived:
            resumed = make_job(events)
            resumed.run_checkpointed(
                PARTITION, services,
                checkpoint=JobCheckpoint(path), shards=shards,
            )
            assert output_bytes(resumed) == expected
        else:
            assert output_bytes(killed) == expected


vm_rows_st = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=DAY, allow_nan=False),
    ),
    min_size=0, max_size=5,
)


class TestManifestFixedPoint:
    """Hypothesis property: checkpoint save → load → save is a byte
    fixed point, for arbitrary staged shard contents."""

    @given(shard_data=st.lists(vm_rows_st, min_size=1, max_size=4),
           data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_save_load_save_fixed_point(self, tmp_path_factory,
                                        shard_data, data):
        tmp_path = tmp_path_factory.mktemp("fixedpoint")
        path = tmp_path / "ck.json"
        checkpoint = JobCheckpoint(path)
        checkpoint.begin("fp-test", PARTITION)
        for index, rows in enumerate(shard_data):
            vm_columns = {
                "vm": [f"vm-{index:02d}-{j}" for j in range(len(rows))],
                "unavailability": [r[0] for r in rows],
                "performance": [r[1] for r in rows],
                "control_plane": [r[2] for r in rows],
                "service_time": [r[3] for r in rows],
            }
            event_columns = {name: [] for name in event_cdi_schema().names}
            checkpoint.record_shard(f"shard-{index:04d}", vm_columns,
                                    event_columns, event_count=len(rows))
        if data.draw(st.booleans()):
            checkpoint.mark_finalized()

        original = path.read_bytes()
        reloaded = load_table_store(path)
        save_table_store(reloaded, tmp_path / "resaved.json", atomic=True)
        assert (tmp_path / "resaved.json").read_bytes() == original

        # And the JobCheckpoint layer itself round-trips losslessly.
        second = JobCheckpoint(path)
        assert second.load()
        second._save()
        assert path.read_bytes() == original


class TestBackfillCheckpointed:
    """The multi-day runner wires checkpointing through run_days."""

    def _events_for_day(self, index: int, partition: str) -> list[Event]:
        return make_fleet_events(seed=100 + index, vm_count=12)

    def test_checkpointed_backfill_matches_plain(self, tmp_path):
        services = make_services(vm_count=12)
        plain_job = make_job([])
        plain = run_days(plain_job, self._events_for_day, services, days=3)

        ckpt_job = make_job([])
        ckpt = run_days(ckpt_job, self._events_for_day, services, days=3,
                        checkpoint_dir=tmp_path, shards=4)
        for partition in plain.partitions:
            assert output_bytes(plain_job, partition) == \
                output_bytes(ckpt_job, partition)
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            ["day00.ckpt.json", "day01.ckpt.json", "day02.ckpt.json"]

    def test_rerun_replays_finalized_days_without_rescans(self, tmp_path):
        services = make_services(vm_count=12)
        job = make_job([])
        first = run_days(job, self._events_for_day, services, days=2,
                         checkpoint_dir=tmp_path, shards=4)

        table = CountingEventsTable()
        store = TableStore()
        store.add(table)
        rerun_job = make_job([], store=store)
        rerun = run_days(rerun_job, self._events_for_day, services, days=2,
                         checkpoint_dir=tmp_path, shards=4)
        assert table.load_calls == 0  # pure replay: no event scans at all
        for partition in first.partitions:
            assert output_bytes(job, partition) == \
                output_bytes(rerun_job, partition)
        assert [r.event_count for r in rerun.job_results] == \
            [r.event_count for r in first.job_results]

    def test_killed_backfill_resumes_mid_day(self, tmp_path):
        services = make_services(vm_count=12)
        reference_job = make_job([])
        run_days(reference_job, self._events_for_day, services, days=2)

        class KillSecondDay(JobCheckpoint):
            pass

        # Kill during day01 by patching run_days' checkpoint via a
        # pre-staged partial checkpoint: run day01 alone, killed.
        day0_job = make_job([])
        run_days(day0_job, self._events_for_day, services, days=1,
                 checkpoint_dir=tmp_path, shards=4)
        partial = make_job([])
        partial.ingest_events(self._events_for_day(1, "day01"), "day01")
        with pytest.raises(SimulatedKill):
            partial.run_checkpointed(
                "day01", services,
                checkpoint=KillingCheckpoint(tmp_path / "day01.ckpt.json", 2),
                shards=4,
            )

        resumed_job = make_job([])
        resumed = run_days(resumed_job, self._events_for_day, services,
                           days=2, checkpoint_dir=tmp_path, shards=4)
        assert resumed.partitions == ("day00", "day01")
        for partition in resumed.partitions:
            assert output_bytes(resumed_job, partition) == \
                output_bytes(reference_job, partition)


class TestTraceCompleteness:
    """Tentpole: chaos-seeded runs leave complete, additive run traces.

    Every fault the storm injects must be visible in the trace as an
    attempt record, every span must close, and the attempt timings must
    add up to the span wall time — on both executor backends, across
    the same seed matrix as the differential tests above.
    """

    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_storm_run_trace_is_complete(self, fleet, backend, seed):
        from repro.engine.trace import RunTrace

        events, services = fleet
        job = make_job(events, backend=backend,
                       chaos=ChaosInjector.storm(seed=seed, probability=0.5,
                                                 delay=0.002))
        trace = RunTrace(f"storm-{backend}-s{seed}")
        job.run(PARTITION, services, trace=trace)
        metrics = job._context.executor.last_job_metrics
        assert trace.validate(metrics) == []
        # The storm left visible scars: chaos-annotated attempts exist,
        # and the pipeline/stage skeleton is intact around them.
        assert any(r.chaos_kind is not None for r in trace.attempts)
        pipelines = [s.name for s in trace.spans if s.kind == "pipeline"]
        assert pipelines == [f"daily[{PARTITION}]"]
        stages = {s.name for s in trace.spans if s.kind == "stage"}
        assert {"compute", "write_outputs"} <= stages

    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_checkpointed_storm_traces_every_shard(self, fleet, tmp_path,
                                                   backend, seed):
        from repro.engine.trace import RunTrace

        events, services = fleet
        job = make_job(events, backend=backend,
                       chaos=ChaosInjector.storm(seed=seed, probability=0.3,
                                                 delay=0.002))
        trace = RunTrace("ckpt")
        job.run_checkpointed(
            PARTITION, services,
            checkpoint=JobCheckpoint(tmp_path / "d0.ckpt.json"),
            shards=3, trace=trace,
        )
        assert trace.validate() == []
        shard_spans = [s for s in trace.spans if s.kind == "shard"]
        assert len(shard_spans) == 3
        assert {"merge_write"} <= {s.name for s in trace.spans
                                   if s.kind == "stage"}

    def test_storm_trace_survives_jsonl_round_trip(self, fleet, tmp_path):
        """The exported artifact re-validates clean after loading —
        what ``repro daily --trace-dir`` writes is trustworthy."""
        from repro.engine.trace import RunTrace

        events, services = fleet
        job = make_job(events, chaos=ChaosInjector.storm(
            seed=chaos_seeds()[0], probability=0.5, delay=0.002))
        trace = RunTrace("artifact")
        job.run(PARTITION, services, trace=trace)
        loaded = RunTrace.load(trace.write_jsonl(tmp_path / "run.jsonl"))
        assert loaded.validate() == []
        assert len(loaded.attempts) == len(trace.attempts)
        assert {r.status for r in loaded.attempts} == \
            {r.status for r in trace.attempts}


class TestStreamingKillMatrix:
    """Satellite chaos matrix for the streaming loop: kill the tailer's
    checkpoint at every tick boundary (the flush included), resume from
    the cursor, and check the published tables against batch oracles on
    *both* executor backends.  The cursor protocol must never
    double-count a record across the crash."""

    LATENESS = 3600.0
    TICKS = 3
    STREAM_VMS = 8

    _oracle_cache: dict[tuple[int, str], bytes] = {}

    def stream_case(self, seed: int):
        services = make_services(self.STREAM_VMS)
        events = make_fleet_events(seed=300 + seed,
                                   vm_count=self.STREAM_VMS)
        arrival = bounded_lag_arrival(events, self.LATENESS,
                                      random.Random(seed))
        return services, arrival, chunked(arrival, self.TICKS)

    def oracle(self, seed: int, backend: str) -> bytes:
        key = (seed, backend)
        if key not in self._oracle_cache:
            services, arrival, _ = self.stream_case(seed)
            job = make_job(oracle_order(arrival), backend=backend)
            job.run(PARTITION, services)
            self._oracle_cache[key] = output_bytes(job)
        return self._oracle_cache[key]

    def run_killed_stream(self, tmp_path, seed: int, kill_at: int):
        services, arrival, chunks = self.stream_case(seed)
        path = tmp_path / f"stream-{seed}-{kill_at}.ck"
        store = LogStore()
        killer = KillingStreamCheckpoint(path, kill_at=kill_at,
                                         site="after")
        doomed = make_stream_pipeline(
            store, services, allowed_lateness=self.LATENESS,
            checkpoint=killer, tables=TableStore(),
        )
        survived = 0
        died = False
        try:
            for chunk in chunks:
                stream_events_in(store, chunk)
                doomed.tick()
                survived += 1
            doomed.flush()
        except StreamKill:
            died = True
        assert died, "the kill boundary must be reached"

        tables = TableStore()
        resumed = make_stream_pipeline(
            store, services, allowed_lateness=self.LATENESS,
            checkpoint=StreamCheckpoint(path), tables=tables,
        )
        assert resumed.resume() is True
        for chunk in chunks[survived + 1:]:
            stream_events_in(store, chunk)
            resumed.tick()
        resumed.tick()  # drain anything the crashed tick left behind
        resumed.flush()
        return stream_published_bytes(tables), resumed, arrival

    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("kill_at", range(1, TICKS + 2))
    def test_kill_resume_matches_both_backends(self, tmp_path, seed,
                                               kill_at):
        streamed, resumed, arrival = self.run_killed_stream(
            tmp_path, seed, kill_at
        )
        # Exactly-once across the crash: every arrival applied once.
        assert resumed.state.applied == len(arrival)
        assert resumed.tailer.late_dropped == 0
        for backend in ("thread", "process"):
            assert streamed == self.oracle(seed, backend)

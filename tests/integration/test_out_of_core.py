"""Out-of-core differential suite: sharded events + spill staging.

The fleet-scale ingestion path (events spilled to disk per VM-shard
partition, computed shard by shard with ``sharded_events=True``) must
be invisible in the outputs: every compute path produces tables
byte-identical to a plain whole-day :meth:`DailyCdiJob.run`, and the
chunked v3 persistence of those outputs round-trips losslessly.
"""

import json

import pytest

from repro.core.events import Event, default_catalog
from repro.core.indicator import ServicePeriod
from repro.core.weights import expert_only_config
from repro.engine.dataset import EngineContext
from repro.pipeline.checkpoint import JobCheckpoint, shard_units
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import EVENTS_TABLE, events_schema
from repro.storage import SpillTable
from repro.storage.configdb import ConfigDB
from repro.storage.persistence import load_table_store, save_table_store
from repro.storage.table import TableStore
from repro.telemetry.fleetgen import split_fleet

from tests.strategies import make_fleet_events as shared_fleet_events
from tests.strategies import make_services as shared_services

DAY = 86400.0
PARTITION = "d0"
SHARDS = 4
VM_COUNT = 24

ALL_PATHS = [(True, True), (True, False), (False, False)]


def make_fleet_events(seed: int = 11) -> list[Event]:
    """A day with stateless, null-duration, and stateful paired events."""
    return shared_fleet_events(seed, VM_COUNT, events_per_vm=4)


def make_services() -> dict[str, ServicePeriod]:
    return shared_services(VM_COUNT)


def make_job(store: TableStore | None = None) -> DailyCdiJob:
    job = DailyCdiJob(EngineContext(parallelism=2),
                      store if store is not None else TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(expert_only_config())
    return job


def output_bytes(job: DailyCdiJob) -> bytes:
    vm_rows, event_rows = job.output_rows(PARTITION)
    return json.dumps([vm_rows, event_rows], sort_keys=True).encode()


def ingest_sharded(job: DailyCdiJob, events: list[Event],
                   services: dict[str, ServicePeriod]) -> None:
    """Route each event into the shard partition owning its target VM,
    using the same contiguous split ``run_checkpointed`` will use."""
    unit_of = {
        vm: shard.unit
        for shard in split_fleet(sorted(services), SHARDS)
        for vm in shard.targets
    }
    by_unit: dict[str, list[Event]] = {}
    for event in events:
        by_unit.setdefault(unit_of[event.target], []).append(event)
    for unit in shard_units(SHARDS):
        job.ingest_events(by_unit.get(unit, []), PARTITION, unit=unit)


@pytest.fixture(scope="module")
def fleet():
    return make_fleet_events(), make_services()


@pytest.fixture(scope="module")
def plain_outputs(fleet):
    """Whole-day, in-memory reference bytes per compute path."""
    events, services = fleet
    outputs = {}
    for fast, columnar in ALL_PATHS:
        job = make_job()
        job.ingest_events(events, PARTITION)
        job.run(PARTITION, services, use_fastpath=fast,
                use_columnar=columnar)
        outputs[(fast, columnar)] = output_bytes(job)
    return outputs


def spill_store(tmp_path) -> tuple[TableStore, SpillTable]:
    store = TableStore()
    table = SpillTable(EVENTS_TABLE, events_schema(),
                       spool_dir=tmp_path / "spool", spill_bytes=512)
    store.add(table)
    return store, table


class TestOutOfCoreDifferential:
    def test_plain_paths_agree(self, plain_outputs):
        assert len(set(plain_outputs.values())) == 1

    @pytest.mark.parametrize("fast,columnar", ALL_PATHS)
    def test_byte_identical_on_every_compute_path(self, tmp_path, fleet,
                                                  plain_outputs, fast,
                                                  columnar):
        events, services = fleet
        store, table = spill_store(tmp_path)
        job = make_job(store)
        ingest_sharded(job, events, services)
        spilled = sum(
            table._partitions[part].spilled_rows
            for part in table.partitions
        )
        assert spilled > 0  # the day really staged on disk
        job.run_checkpointed(
            PARTITION, services,
            checkpoint=JobCheckpoint(tmp_path / "ck.json"),
            shards=SHARDS, sharded_events=True,
            use_fastpath=fast, use_columnar=columnar,
        )
        assert output_bytes(job) == plain_outputs[(fast, columnar)]

    def test_sharded_events_fingerprint_is_distinct(self, fleet):
        _, services = fleet
        job = make_job()
        plain = job.checkpoint_fingerprint(PARTITION, services,
                                           shards=SHARDS)
        sharded = job.checkpoint_fingerprint(PARTITION, services,
                                             shards=SHARDS,
                                             sharded_events=True)
        assert plain != sharded

    def test_outputs_survive_chunked_persistence(self, tmp_path, fleet,
                                                 plain_outputs):
        """Spill-staged compute → v3 save → lazy load → identical rows,
        and a v2 re-save of the lazy store is byte-stable."""
        events, services = fleet
        store, _ = spill_store(tmp_path)
        job = make_job(store)
        ingest_sharded(job, events, services)
        job.run_checkpointed(
            PARTITION, services,
            checkpoint=JobCheckpoint(tmp_path / "ck.json"),
            shards=SHARDS, sharded_events=True,
        )
        path = tmp_path / "store.v3.jsonl"
        save_table_store(store, path, layout="chunked", chunk_rows=7)
        restored = load_table_store(path)
        for name in ("vm_cdi", "event_cdi"):
            assert (restored.get(name).rows(partition=PARTITION)
                    == store.get(name).rows(partition=PARTITION))
        direct = tmp_path / "direct.json"
        lazy = tmp_path / "lazy.json"
        save_table_store(store, direct)
        save_table_store(restored, lazy)
        assert direct.read_bytes() == lazy.read_bytes()

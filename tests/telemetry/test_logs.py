"""Tests for synthetic log rendering."""

import pytest

from repro.telemetry.faults import Fault, FaultKind
from repro.telemetry.logs import LogGenerator, render_fault_logs


class TestRenderFaultLogs:
    def test_nic_flapping_matches_paper_fig1(self):
        fault = Fault(FaultKind.NIC_FLAPPING, "nc-1", 100.0, 30.0)
        lines = render_fault_logs(fault)
        assert any("NIC Link is Down" in l.line for l in lines)
        assert any("NIC Link is Up" in l.line for l in lines)
        assert all(l.target == "nc-1" for l in lines)

    def test_ddos_emits_add_and_del(self):
        fault = Fault(FaultKind.DDOS_BLACKHOLE, "vm-1", 0.0, 120.0)
        lines = render_fault_logs(fault)
        assert lines[0].time == 0.0
        assert "added" in lines[0].line
        assert lines[1].time == 120.0
        assert "removed" in lines[1].line

    def test_unloggable_kind_is_silent(self):
        fault = Fault(FaultKind.POWER_SENSOR_ZERO, "nc-1", 0.0, 60.0)
        assert render_fault_logs(fault) == []


class TestLogGenerator:
    def test_fault_lines_within_window_kept(self):
        gen = LogGenerator(seed=0, noise_per_target_per_hour=0.0)
        fault = Fault(FaultKind.VM_DOWN, "vm-1", 100.0, 60.0)
        lines = gen.emit(["vm-1"], 0.0, 3600.0, [fault])
        assert len(lines) == 1
        assert "panicked" in lines[0].line

    def test_fault_lines_outside_window_dropped(self):
        gen = LogGenerator(seed=0, noise_per_target_per_hour=0.0)
        fault = Fault(FaultKind.VM_DOWN, "vm-1", 5000.0, 60.0)
        assert gen.emit(["vm-1"], 0.0, 3600.0, [fault]) == []

    def test_noise_lines_emitted(self):
        gen = LogGenerator(seed=0, noise_per_target_per_hour=10.0)
        lines = gen.emit(["vm-1", "vm-2"], 0.0, 3600.0)
        assert lines
        assert all(0.0 <= l.time < 3600.0 for l in lines)

    def test_output_sorted(self):
        gen = LogGenerator(seed=0, noise_per_target_per_hour=5.0)
        fault = Fault(FaultKind.NIC_FLAPPING, "nc-1", 1800.0, 30.0)
        lines = gen.emit(["nc-1"], 0.0, 3600.0, [fault])
        times = [l.time for l in lines]
        assert times == sorted(times)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            LogGenerator(noise_per_target_per_hour=-1.0)
        with pytest.raises(ValueError):
            LogGenerator().emit(["vm-1"], 10.0, 5.0)

"""Tests for fault injection ground truth."""

import pytest

from repro.core.events import EventCategory
from repro.telemetry.faults import (
    FAULT_CATEGORY,
    Fault,
    FaultInjector,
    FaultKind,
    FaultRate,
    baseline_rates,
)


class TestFault:
    def test_end_and_category(self):
        fault = Fault(FaultKind.SLOW_IO, "vm-1", 100.0, 60.0)
        assert fault.end == 160.0
        assert fault.category is EventCategory.PERFORMANCE

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Fault(FaultKind.SLOW_IO, "vm-1", 100.0, -1.0)

    def test_every_kind_has_a_category(self):
        assert set(FAULT_CATEGORY) == set(FaultKind)


class TestFaultRate:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRate(FaultKind.SLOW_IO, -0.1, 60.0)
        with pytest.raises(ValueError):
            FaultRate(FaultKind.SLOW_IO, 0.1, 0.0)


class TestFaultInjector:
    def test_deterministic_for_seed(self):
        rates = [FaultRate(FaultKind.SLOW_IO, 5.0, 60.0)]
        a = FaultInjector(rates, seed=3).sample(["vm-1", "vm-2"], 0.0, 86400.0)
        b = FaultInjector(rates, seed=3).sample(["vm-1", "vm-2"], 0.0, 86400.0)
        assert a == b

    def test_faults_within_window(self):
        rates = [FaultRate(FaultKind.SLOW_IO, 10.0, 600.0)]
        faults = FaultInjector(rates, seed=0).sample(["vm-1"], 1000.0, 87400.0)
        assert faults
        for fault in faults:
            assert 1000.0 <= fault.start < 87400.0
            assert fault.end <= 87400.0

    def test_rate_scales_expected_count(self):
        low = FaultInjector([FaultRate(FaultKind.SLOW_IO, 1.0, 60.0)], seed=0)
        high = FaultInjector([FaultRate(FaultKind.SLOW_IO, 20.0, 60.0)], seed=0)
        targets = [f"vm-{i}" for i in range(50)]
        assert len(high.sample(targets, 0.0, 86400.0)) > len(
            low.sample(targets, 0.0, 86400.0)
        )

    def test_zero_rate_produces_nothing(self):
        injector = FaultInjector([FaultRate(FaultKind.SLOW_IO, 0.0, 60.0)])
        assert injector.sample(["vm-1"], 0.0, 86400.0) == []

    def test_reversed_window_rejected(self):
        injector = FaultInjector([])
        with pytest.raises(ValueError):
            injector.sample(["vm-1"], 10.0, 5.0)

    def test_output_sorted_by_time(self):
        rates = [FaultRate(FaultKind.SLOW_IO, 10.0, 60.0)]
        faults = FaultInjector(rates, seed=0).sample(
            [f"vm-{i}" for i in range(10)], 0.0, 86400.0
        )
        times = [f.start for f in faults]
        assert times == sorted(times)


class TestBaselineRates:
    def test_scaling(self):
        full = baseline_rates(1.0)
        half = baseline_rates(0.5)
        for a, b in zip(full, half):
            assert b.per_target_per_day == pytest.approx(
                a.per_target_per_day / 2
            )

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            baseline_rates(-1.0)

    def test_covers_all_three_categories(self):
        categories = {FAULT_CATEGORY[r.kind] for r in baseline_rates()}
        assert categories == set(EventCategory)

"""Tests for ticket generation."""

import pytest

from repro.core.events import EventCategory
from repro.telemetry.tickets import (
    PAPER_TICKET_MIXTURE,
    TicketGenerator,
    ticket_counts_by_event,
)


class TestTicketGenerator:
    def test_mixture_approximated(self):
        generator = TicketGenerator(seed=0)
        tickets = generator.generate(5000, targets=["vm-1"])
        for category, expected in PAPER_TICKET_MIXTURE.items():
            observed = sum(1 for t in tickets if t.category is category) / 5000
            assert observed == pytest.approx(expected, abs=0.03)

    def test_deterministic(self):
        a = TicketGenerator(seed=9).generate(50, targets=["vm-1"])
        b = TicketGenerator(seed=9).generate(50, targets=["vm-1"])
        assert a == b

    def test_times_within_window(self):
        tickets = TicketGenerator(seed=0).generate(
            100, targets=["vm-1"], start=100.0, end=200.0
        )
        assert all(100.0 <= t.time < 200.0 for t in tickets)
        assert [t.time for t in tickets] == sorted(t.time for t in tickets)

    def test_related_event_attribution(self):
        names = {
            EventCategory.UNAVAILABILITY: ["vm_down"],
            EventCategory.PERFORMANCE: ["slow_io", "packet_loss"],
            EventCategory.CONTROL_PLANE: ["vm_start_failed"],
        }
        tickets = TicketGenerator(seed=0).generate(
            200, targets=["vm-1"], event_names=names
        )
        for ticket in tickets:
            assert ticket.related_event in names[ticket.category]

    def test_no_event_names_leaves_attribution_empty(self):
        tickets = TicketGenerator(seed=0).generate(10, targets=["vm-1"])
        assert all(t.related_event is None for t in tickets)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            TicketGenerator(mixture={EventCategory.PERFORMANCE: 0.0})
        with pytest.raises(ValueError):
            TicketGenerator().generate(-1, targets=["vm-1"])
        with pytest.raises(ValueError):
            TicketGenerator().generate(1, targets=[])

    def test_text_nonempty_and_category_flavored(self):
        tickets = TicketGenerator(seed=0).generate(50, targets=["vm-1"])
        assert all(t.text for t in tickets)


class TestTicketCounts:
    def test_counts_by_event(self):
        names = {
            EventCategory.UNAVAILABILITY: ["vm_down"],
            EventCategory.PERFORMANCE: ["slow_io"],
            EventCategory.CONTROL_PLANE: ["vm_start_failed"],
        }
        tickets = TicketGenerator(seed=0).generate(
            300, targets=["vm-1"], event_names=names
        )
        counts = ticket_counts_by_event(tickets)
        assert set(counts) <= {"vm_down", "slow_io", "vm_start_failed"}
        assert sum(counts.values()) == 300

    def test_unattributed_tickets_skipped(self):
        tickets = TicketGenerator(seed=0).generate(10, targets=["vm-1"])
        assert ticket_counts_by_event(tickets) == {}

"""Tests for synthetic metric generation and fault overlays."""

import numpy as np
import pytest

from repro.telemetry.faults import Fault, FaultKind
from repro.telemetry.metrics import (
    CPU_POWER,
    HEARTBEAT,
    READ_LATENCY,
    DEFAULT_SPECS,
    MetricGenerator,
    apply_fault,
    healthy_series,
)


class TestHealthySeries:
    def test_stays_above_floor(self):
        rng = np.random.default_rng(0)
        times = np.arange(0.0, 86400.0, 60.0)
        spec = DEFAULT_SPECS[READ_LATENCY]
        values = healthy_series(spec, times, rng)
        assert (values >= spec.floor).all()

    def test_daily_seasonality_present(self):
        rng = np.random.default_rng(0)
        times = np.arange(0.0, 86400.0, 60.0)
        spec = DEFAULT_SPECS[CPU_POWER]
        values = healthy_series(spec, times, rng)
        # Evening (18:00-22:00) should average higher than early morning.
        evening = values[(times >= 18 * 3600) & (times < 22 * 3600)].mean()
        morning = values[(times >= 3 * 3600) & (times < 7 * 3600)].mean()
        assert evening > morning

    def test_heartbeat_is_constant_one(self):
        rng = np.random.default_rng(0)
        times = np.arange(0.0, 3600.0, 60.0)
        values = healthy_series(DEFAULT_SPECS[HEARTBEAT], times, rng)
        assert (values == 1.0).all()


class TestApplyFault:
    times = np.arange(0.0, 3600.0, 60.0)

    def test_slow_io_raises_latency(self):
        base = np.full_like(self.times, 2.0)
        fault = Fault(FaultKind.SLOW_IO, "vm-1", 600.0, 300.0)
        out = apply_fault(base, self.times, fault, READ_LATENCY)
        mask = (self.times >= 600.0) & (self.times < 900.0)
        assert (out[mask] >= 20.0).all()
        assert (out[~mask] == 2.0).all()

    def test_power_sensor_zero(self):
        base = np.full_like(self.times, 180.0)
        fault = Fault(FaultKind.POWER_SENSOR_ZERO, "nc-1", 0.0, 3600.0)
        out = apply_fault(base, self.times, fault, CPU_POWER)
        assert (out == 0.0).all()

    def test_vm_down_kills_heartbeat(self):
        base = np.ones_like(self.times)
        fault = Fault(FaultKind.VM_DOWN, "vm-1", 1200.0, 600.0)
        out = apply_fault(base, self.times, fault, HEARTBEAT)
        mask = (self.times >= 1200.0) & (self.times < 1800.0)
        assert (out[mask] == 0.0).all()
        assert (out[~mask] == 1.0).all()

    def test_unrelated_metric_untouched(self):
        base = np.full_like(self.times, 2.0)
        fault = Fault(FaultKind.VM_DOWN, "vm-1", 0.0, 3600.0)
        out = apply_fault(base, self.times, fault, READ_LATENCY)
        assert (out == base).all()

    def test_input_not_mutated(self):
        base = np.full_like(self.times, 2.0)
        fault = Fault(FaultKind.SLOW_IO, "vm-1", 0.0, 3600.0)
        apply_fault(base, self.times, fault, READ_LATENCY)
        assert (base == 2.0).all()

    def test_zero_duration_fault_touches_one_sample(self):
        base = np.full_like(self.times, 2.0)
        fault = Fault(FaultKind.SLOW_IO, "vm-1", 600.0, 0.0)
        out = apply_fault(base, self.times, fault, READ_LATENCY)
        assert (out != base).sum() == 1


class TestMetricGenerator:
    def test_deterministic_per_target(self):
        gen = MetricGenerator(seed=5)
        times = gen.sample_times(0.0, 3600.0)
        a = gen.series_for("vm-1", READ_LATENCY, times)
        b = gen.series_for("vm-1", READ_LATENCY, times)
        assert (a == b).all()

    def test_targets_are_independent(self):
        gen = MetricGenerator(seed=5)
        times = gen.sample_times(0.0, 3600.0)
        a = gen.series_for("vm-1", READ_LATENCY, times)
        b = gen.series_for("vm-2", READ_LATENCY, times)
        assert not (a == b).all()

    def test_fault_applied_only_to_its_target(self):
        gen = MetricGenerator(seed=5)
        times = gen.sample_times(0.0, 3600.0)
        fault = Fault(FaultKind.SLOW_IO, "vm-1", 0.0, 3600.0)
        faulted = gen.series_for("vm-1", READ_LATENCY, times, [fault])
        clean = gen.series_for("vm-2", READ_LATENCY, times, [fault])
        baseline_2 = gen.series_for("vm-2", READ_LATENCY, times)
        assert faulted.mean() > 10.0
        assert (clean == baseline_2).all()

    def test_emit_cross_product(self):
        gen = MetricGenerator(seed=5)
        samples = gen.emit(["vm-1", "vm-2"], [READ_LATENCY, HEARTBEAT],
                           0.0, 600.0, interval=60.0)
        assert len(samples) == 2 * 2 * 10
        assert {s.target for s in samples} == {"vm-1", "vm-2"}

    def test_invalid_windows(self):
        gen = MetricGenerator()
        with pytest.raises(ValueError):
            gen.sample_times(10.0, 0.0)
        with pytest.raises(ValueError):
            gen.sample_times(0.0, 10.0, interval=0.0)

"""Tests for shard-parallel fleet fault generation."""

import pytest

from repro.pipeline.checkpoint import shard_units, split_shards
from repro.telemetry.faults import FaultKind, baseline_rates
from repro.telemetry.fleetgen import (
    InjectedIncident,
    incident_faults,
    iter_fleet_faults,
    labeled_day_faults,
    shard_faults,
    shard_unit,
    split_fleet,
)

DAY = 86400.0


class TestSplitFleet:
    def test_pins_pipeline_split(self):
        """The deliberate duplication of the checkpointed job's split
        must never drift: same shard contents, same unit labels."""
        targets = [f"vm-{i:03d}" for i in range(23)]
        for shards in (1, 2, 5, 8, 23, 40):
            fleet = split_fleet(targets, shards)
            expected = split_shards(targets, shards)
            assert [list(s.targets) for s in fleet] == [
                list(part) for part in expected
            ]
            assert [s.unit for s in fleet] == shard_units(len(expected))

    def test_contiguous_and_complete(self):
        targets = [f"vm-{i:03d}" for i in range(17)]
        fleet = split_fleet(targets, 5)
        flattened = [vm for shard in fleet for vm in shard.targets]
        assert flattened == targets
        assert [s.index for s in fleet] == list(range(5))

    def test_empty_fleet_single_shard(self):
        (shard,) = split_fleet([], 4)
        assert shard.targets == ()
        assert shard.unit == "shard-0000"

    def test_never_more_shards_than_targets(self):
        fleet = split_fleet(["a", "b"], 8)
        assert len(fleet) == 2

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match=">= 1"):
            split_fleet(["a"], 0)

    def test_unit_labels(self):
        assert shard_unit(0) == "shard-0000"
        assert shard_unit(123) == "shard-0123"


class TestShardDeterminism:
    def targets(self, count=40):
        return [f"vm-{i:03d}" for i in range(count)]

    def rates(self):
        return baseline_rates(scale=50.0)

    def test_isolated_regeneration_matches_full_pass(self):
        """Generating shard k alone equals shard k of the full sweep —
        the property resume/distribution depends on."""
        full = {
            shard.unit: faults
            for shard, faults in iter_fleet_faults(
                self.targets(), 4, self.rates(), 0.0, DAY, seed=7
            )
        }
        for shard in split_fleet(self.targets(), 4):
            alone = shard_faults(shard, self.rates(), 0.0, DAY, seed=7)
            assert alone == full[shard.unit]

    def test_deterministic_across_calls(self):
        first = list(iter_fleet_faults(self.targets(), 4, self.rates(),
                                       0.0, DAY, seed=3))
        second = list(iter_fleet_faults(self.targets(), 4, self.rates(),
                                        0.0, DAY, seed=3))
        assert [(s.unit, f) for s, f in first] == [
            (s.unit, f) for s, f in second
        ]

    def test_seed_decorrelates_output(self):
        (shard,) = split_fleet(self.targets(8), 1)
        assert (shard_faults(shard, self.rates(), 0.0, DAY, seed=0)
                != shard_faults(shard, self.rates(), 0.0, DAY, seed=1))

    def test_shards_are_decorrelated(self):
        """Two shards with *identical* targets must not replay the same
        fault stream — the per-shard seed mixes the shard index."""
        same_targets = ("vm-000", "vm-001", "vm-002")
        from repro.telemetry.fleetgen import FleetShard
        first = FleetShard(index=0, unit=shard_unit(0),
                           targets=same_targets)
        second = FleetShard(index=1, unit=shard_unit(1),
                            targets=same_targets)
        assert (shard_faults(first, self.rates(), 0.0, DAY, seed=0)
                != shard_faults(second, self.rates(), 0.0, DAY, seed=0))

    def test_faults_stay_inside_shard_targets(self):
        for shard, faults in iter_fleet_faults(self.targets(), 4,
                                               self.rates(), 0.0, DAY):
            owned = set(shard.targets)
            assert all(fault.target in owned for fault in faults)

    def test_generator_yields_shards_in_order(self):
        units = [
            shard.unit
            for shard, _ in iter_fleet_faults(self.targets(), 6,
                                              self.rates(), 0.0, DAY)
        ]
        assert units == shard_units(6)


def make_incident(**overrides) -> InjectedIncident:
    spec = dict(
        incident_id="inc-a", kind=FaultKind.SLOW_IO,
        targets=("vm-000", "vm-001"), onset_day=2, duration_days=3,
        seconds_per_day=43200.0, dimension="cluster", value="c0",
    )
    spec.update(overrides)
    return InjectedIncident(**spec)


class TestInjectedIncident:
    def test_validation(self):
        with pytest.raises(ValueError, match="no targets"):
            make_incident(targets=())
        with pytest.raises(ValueError, match="onset_day"):
            make_incident(onset_day=-1)
        with pytest.raises(ValueError, match="duration_days"):
            make_incident(duration_days=0)
        with pytest.raises(ValueError, match="seconds_per_day"):
            make_incident(seconds_per_day=0.0)

    def test_active_window_is_half_open(self):
        incident = make_incident(onset_day=2, duration_days=3)
        assert not incident.active_on(1)
        assert incident.active_on(2)
        assert incident.active_on(4)
        assert not incident.active_on(5)

    def test_category_follows_fault_kind(self):
        assert (make_incident(kind=FaultKind.VM_DOWN).category.value
                == "unavailability")
        assert (make_incident(kind=FaultKind.SLOW_IO).category.value
                == "performance")

    def test_incident_faults_deterministic_and_excludable(self):
        incident = make_incident()
        faults = incident_faults(incident)
        assert [f.target for f in faults] == ["vm-000", "vm-001"]
        assert all(f.kind is FaultKind.SLOW_IO for f in faults)
        assert all(f.duration == 43200.0 for f in faults)
        remediated = incident_faults(incident, excluded={"vm-000"})
        assert [f.target for f in remediated] == ["vm-001"]


class TestLabeledDayFaults:
    def targets(self):
        return [f"vm-{i:03d}" for i in range(10)]

    def rates(self):
        return baseline_rates(scale=50.0)

    def day(self, day_index, **kwargs):
        return labeled_day_faults(self.targets(), self.rates(),
                                  day_index, seed=7, **kwargs)

    def test_background_days_are_deterministic_and_decorrelated(self):
        assert self.day(3) == self.day(3)
        assert self.day(3) != self.day(4)

    def test_background_faults_are_unlabeled(self):
        labeled = self.day(0)
        assert labeled
        assert all(lf.incident_id is None for lf in labeled)
        assert not any(lf.injected for lf in labeled)

    def test_incident_faults_carry_their_label(self):
        incident = make_incident(onset_day=2, duration_days=1)
        quiet = self.day(1, incidents=(incident,))
        assert all(lf.incident_id is None for lf in quiet)
        active = self.day(2, incidents=(incident,))
        injected = [lf for lf in active if lf.injected]
        assert {lf.incident_id for lf in injected} == {"inc-a"}
        assert sorted(lf.fault.target for lf in injected) == [
            "vm-000", "vm-001",
        ]

    def test_incident_does_not_perturb_background_draws(self):
        incident = make_incident(onset_day=2, duration_days=1)
        background = [lf for lf in self.day(2, incidents=(incident,))
                      if not lf.injected]
        assert background == self.day(2)

    def test_excluded_targets_skip_incident_not_background(self):
        incident = make_incident(onset_day=0, duration_days=5)
        labeled = self.day(0, incidents=(incident,),
                           excluded=frozenset({"vm-000"}))
        injected_targets = {lf.fault.target for lf in labeled
                           if lf.injected}
        assert injected_targets == {"vm-001"}
        background = [lf for lf in labeled if not lf.injected]
        assert background == self.day(0)

"""Tests for shard-parallel fleet fault generation."""

import pytest

from repro.pipeline.checkpoint import shard_units, split_shards
from repro.telemetry.faults import baseline_rates
from repro.telemetry.fleetgen import (
    iter_fleet_faults,
    shard_faults,
    shard_unit,
    split_fleet,
)

DAY = 86400.0


class TestSplitFleet:
    def test_pins_pipeline_split(self):
        """The deliberate duplication of the checkpointed job's split
        must never drift: same shard contents, same unit labels."""
        targets = [f"vm-{i:03d}" for i in range(23)]
        for shards in (1, 2, 5, 8, 23, 40):
            fleet = split_fleet(targets, shards)
            expected = split_shards(targets, shards)
            assert [list(s.targets) for s in fleet] == [
                list(part) for part in expected
            ]
            assert [s.unit for s in fleet] == shard_units(len(expected))

    def test_contiguous_and_complete(self):
        targets = [f"vm-{i:03d}" for i in range(17)]
        fleet = split_fleet(targets, 5)
        flattened = [vm for shard in fleet for vm in shard.targets]
        assert flattened == targets
        assert [s.index for s in fleet] == list(range(5))

    def test_empty_fleet_single_shard(self):
        (shard,) = split_fleet([], 4)
        assert shard.targets == ()
        assert shard.unit == "shard-0000"

    def test_never_more_shards_than_targets(self):
        fleet = split_fleet(["a", "b"], 8)
        assert len(fleet) == 2

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError, match=">= 1"):
            split_fleet(["a"], 0)

    def test_unit_labels(self):
        assert shard_unit(0) == "shard-0000"
        assert shard_unit(123) == "shard-0123"


class TestShardDeterminism:
    def targets(self, count=40):
        return [f"vm-{i:03d}" for i in range(count)]

    def rates(self):
        return baseline_rates(scale=50.0)

    def test_isolated_regeneration_matches_full_pass(self):
        """Generating shard k alone equals shard k of the full sweep —
        the property resume/distribution depends on."""
        full = {
            shard.unit: faults
            for shard, faults in iter_fleet_faults(
                self.targets(), 4, self.rates(), 0.0, DAY, seed=7
            )
        }
        for shard in split_fleet(self.targets(), 4):
            alone = shard_faults(shard, self.rates(), 0.0, DAY, seed=7)
            assert alone == full[shard.unit]

    def test_deterministic_across_calls(self):
        first = list(iter_fleet_faults(self.targets(), 4, self.rates(),
                                       0.0, DAY, seed=3))
        second = list(iter_fleet_faults(self.targets(), 4, self.rates(),
                                        0.0, DAY, seed=3))
        assert [(s.unit, f) for s, f in first] == [
            (s.unit, f) for s, f in second
        ]

    def test_seed_decorrelates_output(self):
        (shard,) = split_fleet(self.targets(8), 1)
        assert (shard_faults(shard, self.rates(), 0.0, DAY, seed=0)
                != shard_faults(shard, self.rates(), 0.0, DAY, seed=1))

    def test_shards_are_decorrelated(self):
        """Two shards with *identical* targets must not replay the same
        fault stream — the per-shard seed mixes the shard index."""
        same_targets = ("vm-000", "vm-001", "vm-002")
        from repro.telemetry.fleetgen import FleetShard
        first = FleetShard(index=0, unit=shard_unit(0),
                           targets=same_targets)
        second = FleetShard(index=1, unit=shard_unit(1),
                            targets=same_targets)
        assert (shard_faults(first, self.rates(), 0.0, DAY, seed=0)
                != shard_faults(second, self.rates(), 0.0, DAY, seed=0))

    def test_faults_stay_inside_shard_targets(self):
        for shard, faults in iter_fleet_faults(self.targets(), 4,
                                               self.rates(), 0.0, DAY):
            owned = set(shard.targets)
            assert all(fault.target in owned for fault in faults)

    def test_generator_yields_shards_in_order(self):
        units = [
            shard.unit
            for shard, _ in iter_fleet_faults(self.targets(), 6,
                                              self.rates(), 0.0, DAY)
        ]
        assert units == shard_units(6)

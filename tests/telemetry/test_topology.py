"""Tests for the fleet topology builder."""

import pytest

from repro.telemetry.topology import (
    DeploymentArch,
    NodeController,
    VirtualMachine,
    VmType,
    build_fleet,
)


class TestDataclasses:
    def test_vm_core_validation(self):
        with pytest.raises(ValueError):
            VirtualMachine("vm-1", "nc-1", VmType.SHARED, cores=0)

    def test_nc_core_validation(self):
        with pytest.raises(ValueError):
            NodeController("nc-1", "c-1", "M1", cores=0,
                           arch=DeploymentArch.HOMOGENEOUS)


class TestBuildFleet:
    def test_counts(self):
        fleet = build_fleet(regions=2, azs_per_region=2, clusters_per_az=2,
                            ncs_per_cluster=3, vms_per_nc=4)
        assert len(fleet.regions) == 2
        assert len(fleet.azs) == 4
        assert len(fleet.clusters) == 8
        assert len(fleet.ncs) == 24
        assert len(fleet.vms) == 96

    def test_deterministic_for_seed(self):
        a = build_fleet(seed=42)
        b = build_fleet(seed=42)
        assert a.vms == b.vms
        assert a.ncs == b.ncs

    def test_different_seed_changes_models(self):
        a = build_fleet(seed=1, ncs_per_cluster=16)
        b = build_fleet(seed=2, ncs_per_cluster=16)
        models_a = [nc.machine_model for nc in a.ncs.values()]
        models_b = [nc.machine_model for nc in b.ncs.values()]
        assert models_a != models_b

    def test_homogeneous_ncs_host_single_type(self):
        fleet = build_fleet(arch=DeploymentArch.HOMOGENEOUS, vms_per_nc=4,
                            ncs_per_cluster=4)
        for nc_id in fleet.ncs:
            types = {vm.vm_type for vm in fleet.vms_on(nc_id)}
            assert len(types) == 1

    def test_hybrid_ncs_host_both_types(self):
        fleet = build_fleet(arch=DeploymentArch.HYBRID, vms_per_nc=4,
                            shared_fraction=0.5)
        for nc_id in fleet.ncs:
            types = {vm.vm_type for vm in fleet.vms_on(nc_id)}
            assert types == {VmType.SHARED, VmType.DEDICATED}

    def test_shared_fraction_respected_globally(self):
        fleet = build_fleet(arch=DeploymentArch.HOMOGENEOUS,
                            shared_fraction=0.5, ncs_per_cluster=4)
        shared = sum(1 for vm in fleet.vms.values()
                     if vm.vm_type is VmType.SHARED)
        assert shared == len(fleet.vms) // 2

    def test_invalid_shared_fraction(self):
        with pytest.raises(ValueError):
            build_fleet(shared_fraction=1.5)


class TestDrillDownIndexes:
    def test_dimension_lookups_consistent(self):
        fleet = build_fleet(regions=2)
        for vm_id in fleet.iter_vm_ids():
            dims = fleet.dimensions_of(vm_id)
            assert dims["vm"] == vm_id
            assert dims["nc"] == fleet.vms[vm_id].nc_id
            assert dims["cluster"] == fleet.cluster_of(vm_id).cluster_id
            assert dims["az"] == fleet.az_of(vm_id).az_id
            assert dims["region"] == fleet.region_of(vm_id)
            assert dims["az"].startswith(dims["region"])
            assert dims["cluster"].startswith(dims["az"])
            assert dims["nc"].startswith(dims["cluster"])

    def test_vms_on_partition_the_fleet(self):
        fleet = build_fleet()
        total = sum(len(fleet.vms_on(nc_id)) for nc_id in fleet.ncs)
        assert total == len(fleet.vms)

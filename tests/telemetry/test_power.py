"""Tests for multi-granularity power telemetry (Section II-B, Case 7)."""

import numpy as np
import pytest

from repro.telemetry.faults import Fault, FaultKind
from repro.telemetry.power import (
    PowerTelemetry,
    build_power_topology,
    check_consistency,
)

TIMES = np.arange(0.0, 3600.0, 300.0)


def small_topology():
    return build_power_topology(racks=1, machines_per_rack=2,
                                sockets_per_machine=2, cores_per_socket=4)


class TestTopology:
    def test_node_counts(self):
        roots = small_topology()
        nodes = [n for root in roots for n in root.walk()]
        levels = {}
        for node in nodes:
            levels[node.level] = levels.get(node.level, 0) + 1
        assert levels == {"rack": 1, "machine": 2, "socket": 4, "core": 16}

    def test_ids_hierarchical(self):
        roots = small_topology()
        for root in roots:
            for node in root.walk():
                if node.level != "rack":
                    assert node.node_id.startswith("rack-")

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            build_power_topology(racks=0)


class TestReadings:
    def test_consistency_without_faults(self):
        roots = small_topology()
        readings = PowerTelemetry(seed=1).readings(roots, TIMES)
        assert check_consistency(roots, readings) == []

    def test_parent_equals_children_plus_overhead(self):
        roots = small_topology()
        readings = PowerTelemetry(seed=1).readings(roots, TIMES)
        machine = roots[0].children[0]
        children_sum = sum(
            readings[s.node_id] for s in machine.children
        ) + machine.overhead_watts
        assert np.allclose(readings[machine.node_id], children_sum)

    def test_core_power_positive_and_seasonal(self):
        roots = small_topology()
        times = np.arange(0.0, 86400.0, 600.0)
        readings = PowerTelemetry(seed=1).readings(roots, times)
        core_id = "rack-0/machine-0/socket-0/core-0"
        core = readings[core_id]
        assert (core > 0).all()
        afternoon = core[(times >= 12 * 3600) & (times < 16 * 3600)].mean()
        night = core[(times >= 0) & (times < 4 * 3600)].mean()
        assert afternoon > night

    def test_deterministic(self):
        roots = small_topology()
        a = PowerTelemetry(seed=2).readings(roots, TIMES)
        b = PowerTelemetry(seed=2).readings(roots, TIMES)
        for node_id in a:
            assert (a[node_id] == b[node_id]).all()


class TestCase7SensorBug:
    def test_zeroed_sensor_reports_zero(self):
        roots = small_topology()
        machine_id = "rack-0/machine-0"
        fault = Fault(FaultKind.POWER_SENSOR_ZERO, machine_id, 0.0, 3600.0)
        readings = PowerTelemetry(seed=1).readings(roots, TIMES, [fault])
        assert (readings[machine_id] == 0.0).all()

    def test_children_keep_reporting(self):
        roots = small_topology()
        machine_id = "rack-0/machine-0"
        fault = Fault(FaultKind.POWER_SENSOR_ZERO, machine_id, 0.0, 3600.0)
        readings = PowerTelemetry(seed=1).readings(roots, TIMES, [fault])
        socket_id = "rack-0/machine-0/socket-0"
        assert (readings[socket_id] > 0.0).all()

    def test_consistency_check_catches_the_bug(self):
        """The data-quality monitor Case 7 motivated: a zeroed parent
        is instantly inconsistent with its children."""
        roots = small_topology()
        machine_id = "rack-0/machine-0"
        fault = Fault(FaultKind.POWER_SENSOR_ZERO, machine_id, 0.0, 1500.0)
        readings = PowerTelemetry(seed=1).readings(roots, TIMES, [fault])
        violations = check_consistency(roots, readings)
        assert violations
        # The zeroed machine is inconsistent with its sockets; the rack
        # is inconsistent too because its *reported* children include
        # the zeroed machine.
        assert {v.node_id for v in violations} == {machine_id, "rack-0"}
        # Only during the fault window (first 5 samples).
        assert {v.time_index for v in violations} == {0, 1, 2, 3, 4}
        machine_violations = [v for v in violations
                              if v.node_id == machine_id]
        for violation in machine_violations:
            assert violation.parent_reading == 0.0
            assert violation.children_sum > 0.0

    def test_rack_aggregation_unaffected_by_machine_sensor_bug(self):
        """True power still flows up: the rack reads the real total."""
        roots = small_topology()
        fault = Fault(FaultKind.POWER_SENSOR_ZERO, "rack-0/machine-0",
                      0.0, 3600.0)
        clean = PowerTelemetry(seed=1).readings(roots, TIMES)
        faulty = PowerTelemetry(seed=1).readings(roots, TIMES, [fault])
        assert np.allclose(clean["rack-0"], faulty["rack-0"])

"""Write-generation plumbing and cache-invalidation coverage.

The invalidation contract: every mutating table operation bumps the
table's write generation (and the touched partition's), the query
service stamps results with the generations observed *before* reading,
and a stamp mismatch on lookup forces a recompute.  Stale serves are a
regression; needless recomputes are merely conservative.
"""

import pytest

from repro.serving import MISS, GenerationCache, QueryService
from repro.storage.schema import Column, Schema
from repro.storage.table import Table


@pytest.fixture
def table():
    return Table("t", Schema([Column("vm", str), Column("x", float)]))


ROW = {"vm": "vm-a", "x": 1.0}


class TestTableGenerations:
    def test_fresh_table_at_zero(self, table):
        assert table.generation == 0
        assert table.partition_generation("p") == 0

    def test_append_bumps(self, table):
        table.append([ROW], partition="p")
        assert table.generation == 1
        assert table.partition_generation("p") == 1
        assert table.partition_generation("other") == 0

    def test_empty_append_is_a_noop(self, table):
        table.append([], partition="p")
        table.append_columns({"vm": [], "x": []}, partition="p")
        assert table.generation == 0

    def test_append_columns_bumps(self, table):
        table.append_columns({"vm": ["vm-a"], "x": [2.0]}, partition="p")
        assert table.generation == 1

    def test_overwrite_bumps_even_when_empty(self, table):
        # Overwriting to empty still changes visible contents.
        table.append([ROW], partition="p")
        table.overwrite_partition([], partition="p")
        assert table.generation == 2
        assert table.partition_generation("p") == 2

    def test_overwrite_columns_bumps(self, table):
        table.overwrite_partition_columns({"vm": ["vm-b"], "x": [3.0]},
                                          partition="p")
        assert table.generation == 1

    def test_drop_bumps_only_existing(self, table):
        table.drop_partition("ghost")
        assert table.generation == 0
        table.append([ROW], partition="p")
        table.drop_partition("p")
        assert table.generation == 2

    def test_partition_generations_are_distinct(self, table):
        table.append([ROW], partition="a")
        table.append([ROW], partition="b")
        table.append([ROW], partition="a")
        assert table.partition_generation("a") == 3
        assert table.partition_generation("b") == 2

    def test_failed_validation_does_not_bump(self, table):
        with pytest.raises(Exception):
            table.append([{"vm": "vm-a", "x": "not-a-float"}], partition="p")
        assert table.generation == 0


class TestGenerationCache:
    def test_stamp_mismatch_is_invalidation(self):
        cache = GenerationCache()
        cache.put("k", (1, 1), "old")
        assert cache.get("k", (1, 1)) == "old"
        assert cache.get("k", (2, 1)) is MISS
        stats = cache.stats
        assert stats.invalidations == 1
        assert stats.hits == 1 and stats.misses == 1
        # The stale entry is gone even under the old stamp.
        assert cache.get("k", (1, 1)) is MISS

    def test_cached_none_is_not_a_miss(self):
        cache = GenerationCache()
        cache.put("k", 1, None)
        assert cache.get("k", 1) is None

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="maxsize"):
            GenerationCache(maxsize=0)


class TestServiceInvalidation:
    def test_write_forces_recompute(self, dataset):
        job, fleet, services = dataset
        from tests.serving.conftest import events_factory
        from repro.core.events import default_catalog
        # A private job copy so module-scoped fixtures stay pristine.
        service = QueryService(job.tables, resolver=fleet.dimensions_of)
        before = service.fleet("day00")
        assert service.fleet("day00") == before  # warm hit

        # Re-running the day with no events overwrites the partition;
        # the next query must see the new contents.  (Ingest appends,
        # so drop the raw events first, like the backfill re-run path.)
        from repro.pipeline.tables import EVENTS_TABLE
        job.tables.get(EVENTS_TABLE).drop_partition("day00")
        job.run("day00", services)
        after = service.fleet("day00")
        assert after != before  # no events → all-zero CDI
        assert after.unavailability == 0.0 and after.performance == 0.0

        stats = service.cache_stats
        assert stats.invalidations >= 1

        # Restore day00 for any later module-scoped consumers.
        catalog = default_catalog()
        events = events_factory(sorted(fleet.vms), catalog, 7)(0, "day00")
        job.ingest_events(events, "day00")
        job.run("day00", services)
        assert service.fleet("day00") == before

    def test_unrelated_query_stays_cached_by_key(self, dataset):
        job, fleet, _ = dataset
        service = QueryService(job.tables, resolver=fleet.dimensions_of)
        service.fleet("day00")
        service.fleet("day01")
        hits_before = service.cache_stats.hits
        service.fleet("day01")
        assert service.cache_stats.hits == hits_before + 1

    def test_stale_read_regression(self, dataset):
        """Interleaved write/read never serves the pre-write answer.

        This is the exact sequence that bites a cache stamped *after*
        reading: warm the cache, mutate the table, then query — the
        answer must reflect the write immediately, every time.
        """
        job, fleet, _ = dataset
        from repro.pipeline.tables import EVENT_CDI_TABLE
        service = QueryService(job.tables, resolver=fleet.dimensions_of)
        table = job.tables.get(EVENT_CDI_TABLE)
        for round_number in range(5):
            service.top_events("day01", 3)  # warm
            cdi = 0.9 + round_number / 100.0
            table.append(
                [{"vm": "vm-synthetic", "event": f"probe_{round_number}",
                  "cdi": cdi, "service_time": 86400.0}],
                partition="day01",
            )
            top = service.top_events("day01", 1)
            assert top and top[0][0] == f"probe_{round_number}", \
                f"stale answer after write round {round_number}: {top}"
            assert top[0][1] == pytest.approx(cdi)

"""Tests for QueryService semantics and the JSON wire protocol."""

import json

import pytest

from repro.core.indicator import CdiReport
from repro.serving import (
    CategoryTrendQuery,
    FleetQuery,
    GroupByQuery,
    QueryService,
    TopVmsQuery,
    parse_query,
    run_query,
    serve_lines,
    to_jsonable,
)


@pytest.fixture(scope="module")
def service(dataset):
    job, fleet, _ = dataset
    return QueryService(job.tables, resolver=fleet.dimensions_of)


class TestQuerySemantics:
    def test_fleet_point_lookup(self, service):
        report = service.fleet("day00")
        assert isinstance(report, CdiReport)
        assert report.service_time > 0

    def test_unknown_day_is_zero_report(self, service):
        assert service.fleet("day99") == CdiReport(0.0, 0.0, 0.0, 0.0)

    def test_range_bounds_inclusive(self, service):
        assert [d for d, _ in service.fleet_range()] == service.days()
        assert [d for d, _ in service.fleet_range("day01", "day01")] == \
            ["day01"]
        assert [d for d, _ in service.fleet_range(end="day00")] == ["day00"]
        assert service.fleet_range("day50") == []

    def test_trend_covers_every_day(self, service):
        trend = service.trend("performance")
        assert [d for d, _ in trend] == service.days()
        for day, value in trend:
            assert value == service.fleet(day).performance

    def test_trend_rejects_unknown_category(self, service):
        with pytest.raises(ValueError, match="unknown category"):
            service.trend("latency")

    def test_group_by_slices_fleet(self, service):
        reports = service.group_by("day00", "region")
        assert len(reports) == 2  # two regions in the fixture fleet
        # Group service times partition the fleet total exactly
        # (each VM lands in exactly one region).
        total = sum(r.service_time for r in reports.values())
        assert total == pytest.approx(service.fleet("day00").service_time)

    def test_top_vms_sorted_and_bounded(self, service):
        top = service.top_vms("day00", "performance", k=3)
        assert len(top) <= 3
        values = [value for _, value in top]
        assert values == sorted(values, reverse=True)
        assert all(value > 0 for value in values)

    def test_top_events_prefix_property(self, service):
        assert service.top_events("day00", 2) == \
            service.top_events("day00", 10)[:2]

    def test_event_series_zero_when_absent(self, service):
        series = service.event_series("no_such_event")
        assert series == [(day, 0.0) for day in service.days()]

    def test_vm_lookup(self, service):
        some_vm = service.top_vms("day00", "performance", 1)[0][0]
        row = service.vm_report("day00", some_vm)
        assert row["vm"] == some_vm
        assert row["service_time"] > 0
        assert service.vm_report("day00", "vm-nope") is None

    def test_vm_count(self, service):
        assert service.vm_count("day00") == 16
        assert service.vm_count("day99") == 0


class TestCaching:
    def test_repeat_query_hits(self, dataset):
        job, fleet, _ = dataset
        fresh = QueryService(job.tables, resolver=fleet.dimensions_of)
        fresh.fleet("day00")
        before = fresh.cache_stats
        fresh.fleet("day00")
        after = fresh.cache_stats
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_distinct_queries_are_distinct_keys(self, dataset):
        job, fleet, _ = dataset
        fresh = QueryService(job.tables, resolver=fleet.dimensions_of)
        fresh.top_vms("day00", "performance", 3)
        fresh.top_vms("day00", "performance", 4)
        assert fresh.cache_stats.misses == 2
        fresh.top_vms("day00", "performance", 3)
        assert fresh.cache_stats.hits == 1

    def test_lru_eviction(self, dataset):
        job, fleet, _ = dataset
        tiny = QueryService(job.tables, cache_size=1)
        tiny.fleet("day00")
        tiny.fleet("day01")  # evicts day00
        tiny.fleet("day00")  # miss again
        stats = tiny.cache_stats
        assert stats.misses == 3
        assert stats.size == 1


class TestWireProtocol:
    def test_parse_every_kind(self):
        assert parse_query({"kind": "fleet", "day": "d"}) == FleetQuery("d")
        assert parse_query({"kind": "trend", "category": "performance"}) == \
            CategoryTrendQuery("performance")
        assert parse_query(
            {"kind": "top-vms", "day": "d", "category": "performance"}
        ) == TopVmsQuery("d", "performance", k=5)

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            parse_query({"kind": "explain"})

    def test_parse_rejects_missing_and_extra_fields(self):
        with pytest.raises(ValueError, match="requires field 'day'"):
            parse_query({"kind": "fleet"})
        with pytest.raises(ValueError, match="unexpected fields"):
            parse_query({"kind": "fleet", "day": "d", "limit": 3})

    def test_run_query_success_and_error(self, service):
        ok = run_query(service, {"kind": "fleet", "day": "day00"})
        assert ok["ok"] is True and ok["kind"] == "fleet"
        assert set(ok["result"]) == {"unavailability", "performance",
                                     "control_plane", "service_time"}
        bad = run_query(service, {"kind": "trend", "category": "nope"})
        assert bad["ok"] is False
        assert bad["error"]["kind"] == "bad_request"
        assert "unknown category" in bad["error"]["message"]

    def test_to_jsonable_round_trips_through_json(self, service):
        query = GroupByQuery("day00", "az")
        payload = to_jsonable(query, service.execute(query))
        assert json.loads(json.dumps(payload)) == payload

    def test_serve_lines(self, service):
        lines = [
            json.dumps({"kind": "fleet", "day": "day00"}),
            "",
            "not json",
            json.dumps(["not", "an", "object"]),
            json.dumps({"kind": "top-events", "day": "day00", "k": 2}),
        ]
        responses = []
        answered = serve_lines(service, lines, responses.append)
        assert answered == 4  # the blank line is skipped
        decoded = [json.loads(r) for r in responses]
        assert [r["ok"] for r in decoded] == [True, False, False, True]
        assert decoded[1]["error"]["kind"] == "bad_request"
        assert "invalid JSON" in decoded[1]["error"]["message"]
        assert decoded[2]["error"]["kind"] == "bad_request"
        assert decoded[2]["error"]["message"] == "query must be a JSON object"

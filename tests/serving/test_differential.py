"""Differential suite: serving answers vs direct recompute, byte-identical.

For each of the three compute paths of the daily job (reference rows,
fastpath, columnar) this builds a QueryService over the job's output
tables and checks every query kind against an *independent* oracle that
rescans ``table.rows(partition)`` and recomputes with the reference
primitives (:func:`fleet_report_from_rows`,
:func:`repro.core.indicator.aggregate`, ``sorted``).  Answers are
compared as ``json.dumps(..., sort_keys=True)`` strings — byte-identical,
no tolerance — and additionally across the three paths themselves.
"""

import json

import pytest

from repro.core.indicator import aggregate
from repro.pipeline.daily import fleet_report_from_rows
from repro.pipeline.tables import EVENT_CDI_TABLE, VM_CDI_TABLE
from repro.serving import (
    CategoryTrendQuery,
    EventSeriesQuery,
    FleetQuery,
    FleetRangeQuery,
    GroupByQuery,
    QueryService,
    TopEventsQuery,
    TopVmsQuery,
    VmQuery,
    to_jsonable,
)
from repro.serving.rollups import CATEGORIES

from tests.serving.conftest import DAYS, build_dataset

PATHS = {
    "reference": dict(use_fastpath=False, use_columnar=False),
    "fastpath": dict(use_fastpath=True, use_columnar=False),
    "columnar": dict(use_fastpath=True, use_columnar=True),
}


@pytest.fixture(scope="module", params=sorted(PATHS))
def path_dataset(request):
    """One compute path's dataset plus a single-store QueryService.

    ``path_services`` wraps this with the sharded variant so every
    differential check runs through both configurations.
    """
    job, fleet, _ = build_dataset(**PATHS[request.param])
    service = QueryService(job.tables, resolver=fleet.dimensions_of)
    sharded = QueryService(job.tables, resolver=fleet.dimensions_of,
                           shards=3, parallelism=2)
    return request.param, job, fleet, ShardedPair(service, sharded)


class ShardedPair:
    """Single-store + sharded services over the same tables.

    ``execute`` runs the query through both and asserts their wire
    answers are byte-identical before returning the single-store
    result, so every existing oracle comparison transparently also
    proves the sharded path.
    """

    def __init__(self, single, sharded):
        self.single = single
        self.sharded = sharded

    def execute(self, query):
        result = self.single.execute(query)
        single_wire = json.dumps(to_jsonable(query, result), sort_keys=True)
        sharded_wire = json.dumps(
            to_jsonable(query, self.sharded.execute(query)), sort_keys=True
        )
        assert sharded_wire == single_wire, \
            f"sharded path diverges on {query}"
        return result

    def days(self):
        assert self.sharded.days() == self.single.days()
        return self.single.days()


def report_dict(report):
    return {
        "unavailability": report.unavailability,
        "performance": report.performance,
        "control_plane": report.control_plane,
        "service_time": report.service_time,
    }


# --- oracles: direct recompute from the output-table rows ---------------------

def oracle_fleet(job, day):
    return report_dict(
        fleet_report_from_rows(job.tables.get(VM_CDI_TABLE).rows(day))
    )


def oracle_group_by(job, fleet, day, dimension):
    rows = job.tables.get(VM_CDI_TABLE).rows(day)
    values = sorted({
        fleet.dimensions_of(row["vm"])[dimension] for row in rows
    })
    return {
        value: report_dict(fleet_report_from_rows([
            row for row in rows
            if fleet.dimensions_of(row["vm"])[dimension] == value
        ]))
        for value in values
    }


def oracle_top_vms(job, day, category, k):
    rows = job.tables.get(VM_CDI_TABLE).rows(day)
    damaged = [(row["vm"], row[category]) for row in rows
               if row[category] > 0]
    damaged.sort(key=lambda pair: (-pair[1], pair[0]))
    return [{"vm": vm, "value": value} for vm, value in damaged[:k]]


def oracle_event_values(job, day):
    rows = job.tables.get(EVENT_CDI_TABLE).rows(day)
    return {
        name: aggregate([
            (row["service_time"], row["cdi"])
            for row in rows if row["event"] == name
        ])
        for name in sorted({row["event"] for row in rows})
    }


def oracle_top_events(job, day, k):
    values = oracle_event_values(job, day)
    ranked = sorted(values.items(), key=lambda pair: -pair[1])
    return [{"event": name, "value": value}
            for name, value in ranked[:k] if value > 0]


def serve(service, query):
    """One query's wire-format answer as a canonical JSON string."""
    return json.dumps(
        to_jsonable(query, service.execute(query)), sort_keys=True
    )


def canonical(payload):
    return json.dumps(payload, sort_keys=True)


class TestDifferential:
    def test_fleet_point_lookups(self, path_dataset):
        _, job, _, service = path_dataset
        for day in service.days():
            assert serve(service, FleetQuery(day)) == \
                canonical(oracle_fleet(job, day))

    def test_fleet_range(self, path_dataset):
        _, job, _, service = path_dataset
        expected = [
            {"day": day, **oracle_fleet(job, day)} for day in service.days()
        ]
        assert serve(service, FleetRangeQuery()) == canonical(expected)

    def test_category_trends(self, path_dataset):
        _, job, _, service = path_dataset
        for category in CATEGORIES:
            expected = [
                {"day": day, "value": oracle_fleet(job, day)[category]}
                for day in service.days()
            ]
            assert serve(service, CategoryTrendQuery(category)) == \
                canonical(expected)

    def test_group_bys(self, path_dataset):
        _, job, fleet, service = path_dataset
        for day in service.days():
            for dimension in ("region", "az", "cluster"):
                assert serve(service, GroupByQuery(day, dimension)) == \
                    canonical(oracle_group_by(job, fleet, day, dimension))

    def test_top_vms(self, path_dataset):
        _, job, _, service = path_dataset
        for day in service.days():
            for category in CATEGORIES:
                for k in (1, 3, 100):
                    assert serve(
                        service, TopVmsQuery(day, category, k)
                    ) == canonical(oracle_top_vms(job, day, category, k))

    def test_top_events(self, path_dataset):
        _, job, _, service = path_dataset
        for day in service.days():
            for k in (1, 5, 100):
                assert serve(service, TopEventsQuery(day, k)) == \
                    canonical(oracle_top_events(job, day, k))

    def test_event_series(self, path_dataset):
        _, job, _, service = path_dataset
        names = set()
        for day in service.days():
            names |= set(oracle_event_values(job, day))
        assert names, "fixture produced no events"
        for name in sorted(names):
            expected = [
                {"day": day,
                 "value": oracle_event_values(job, day).get(name, 0.0)}
                for day in service.days()
            ]
            assert serve(service, EventSeriesQuery(name)) == \
                canonical(expected)

    def test_vm_point_lookups(self, path_dataset):
        _, job, _, service = path_dataset
        day = service.days()[0]
        for row in job.tables.get(VM_CDI_TABLE).rows(day):
            assert serve(service, VmQuery(day, row["vm"])) == \
                canonical(dict(row))


class TestCrossPath:
    """The three compute paths answer every query identically."""

    @pytest.fixture(scope="class")
    def services(self):
        built = {}
        for name, flags in PATHS.items():
            job, fleet, _ = build_dataset(**flags)
            built[name] = QueryService(job.tables,
                                       resolver=fleet.dimensions_of)
        return built

    def test_all_kinds_agree(self, services):
        queries = [FleetRangeQuery(), TopEventsQuery("day01", 5),
                   GroupByQuery("day02", "az"),
                   TopVmsQuery("day00", "unavailability", 4)]
        queries += [CategoryTrendQuery(c) for c in CATEGORIES]
        reference = services["reference"]
        for query in queries:
            expected = serve(reference, query)
            for name in ("fastpath", "columnar"):
                assert serve(services[name], query) == expected, \
                    f"{name} diverges from reference on {query}"


class TestReportParity:
    """The service-backed daily report renders byte-identical text."""

    def test_render_from_service_matches_rows(self, path_dataset):
        from repro.pipeline.reports import (
            DailyReportInput,
            render_daily_report,
            render_daily_report_from_service,
        )
        _, job, fleet, pair = path_dataset
        service = pair.single
        for position, day in enumerate(service.days()):
            previous = None
            if position > 0:
                previous = job.tables.get(VM_CDI_TABLE).rows(
                    service.days()[position - 1]
                )
            from_rows = render_daily_report(
                DailyReportInput(
                    day=day,
                    vm_rows=job.tables.get(VM_CDI_TABLE).rows(day),
                    event_rows=job.tables.get(EVENT_CDI_TABLE).rows(day),
                    previous_vm_rows=previous,
                ),
                resolver=fleet.dimensions_of,
            )
            from_service = render_daily_report_from_service(service, day)
            assert from_service == from_rows
            from_sharded = render_daily_report_from_service(
                pair.sharded, day
            )
            assert from_sharded == from_rows


class TestShardedDuringBackfill:
    """Sharded answers stay correct while a live backfill races them."""

    def test_sharded_matches_single_and_oracle_under_race(self):
        import threading

        from repro.core.events import default_catalog
        from repro.pipeline.backfill import run_days

        from tests.serving.conftest import events_factory

        job, fleet, vm_services = build_dataset(days=2)
        single = QueryService(job.tables, resolver=fleet.dimensions_of)
        sharded = QueryService(job.tables, resolver=fleet.dimensions_of,
                               shards=3, parallelism=2)
        finished = ("day00", "day01")
        baseline = {}
        for day in finished:
            baseline[day] = {
                "fleet": serve(single, FleetQuery(day)),
                "top-events": serve(single, TopEventsQuery(day, 3)),
                "group-by": serve(single, GroupByQuery(day, "region")),
            }
            assert baseline[day]["fleet"] == \
                canonical(oracle_fleet(job, day))

        stop = threading.Event()
        violations: list = []

        def reader(day):
            while not stop.is_set():
                got = {
                    "fleet": serve(sharded, FleetQuery(day)),
                    "top-events": serve(sharded, TopEventsQuery(day, 3)),
                    "group-by": serve(sharded, GroupByQuery(day, "region")),
                }
                if got != baseline[day]:
                    violations.append((day, got))
                    return

        threads = [
            threading.Thread(target=reader, args=(day,))
            for day in finished for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            run_days(job, events_factory(sorted(fleet.vms),
                                         default_catalog(), 7),
                     vm_services, 3, prefix="ext")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not violations, f"raced read diverged: {violations[:2]}"

        # Post-race: full differential over every kind, including the
        # freshly backfilled partitions and the cross-shard merges.
        for query in [FleetRangeQuery(),
                      *(CategoryTrendQuery(c) for c in CATEGORIES)]:
            assert serve(sharded, query) == serve(single, query)
        for day in sharded.days():
            assert serve(sharded, FleetQuery(day)) == \
                canonical(oracle_fleet(job, day))
            assert serve(sharded, TopEventsQuery(day, 5)) == \
                canonical(oracle_top_events(job, day, 5))
        sharded.close()
        single.close()


def test_dataset_spans_expected_days():
    job, _, _ = build_dataset()
    assert len(job.tables.get(VM_CDI_TABLE).partitions) == DAYS

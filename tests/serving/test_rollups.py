"""Unit tests for the serving kernels and materialized rollups.

Every kernel is checked against a hand-rolled scalar oracle — the same
left-to-right accumulation the reference implementations use — with
``==`` (not approx): float-identity is the contract.
"""

import numpy as np
import pytest

from repro.core.indicator import CdiReport, aggregate
from repro.pipeline.tables import EVENT_CDI_TABLE, VM_CDI_TABLE
from repro.serving.rollups import (
    CATEGORIES,
    RollupStore,
    aggregate_arrays,
    event_aggregates,
    group_reports,
    rank_leaderboard,
    report_from_arrays,
    sequential_sum,
    top_damaged,
)

from tests.serving.conftest import build_dataset


def scalar_sum(values) -> float:
    total = 0.0
    for value in values:
        total += float(value)
    return total


class TestSequentialSum:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 1000])
    def test_matches_scalar_loop_exactly(self, n):
        rng = np.random.default_rng(n)
        values = rng.uniform(-1e6, 1e6, size=n)
        assert sequential_sum(values) == scalar_sum(values)

    def test_adversarial_cancellation(self):
        # Pairwise summation (np.sum) rounds these differently; the
        # kernel must match the sequential order bit for bit.
        values = np.array([1e16, 1.0, -1e16, 1.0, 0.1, -0.1, 1e-8] * 13)
        assert sequential_sum(values) == scalar_sum(values)
        assert sequential_sum(values) != float(np.sum(values)) or (
            scalar_sum(values) == float(np.sum(values))
        )


class TestReportFromArrays:
    def test_matches_reference_loop(self):
        rng = np.random.default_rng(3)
        n = 57
        t = rng.uniform(0.0, 86400.0, size=n)
        u, p, c = (rng.uniform(0.0, 0.2, size=n) for _ in range(3))
        report = report_from_arrays(t, u, p, c)
        # The reference: per-row scalar products, sequential sums.
        total = scalar_sum(t)
        expect = CdiReport(
            unavailability=scalar_sum(t[i] * u[i] for i in range(n)) / total,
            performance=scalar_sum(t[i] * p[i] for i in range(n)) / total,
            control_plane=scalar_sum(t[i] * c[i] for i in range(n)) / total,
            service_time=total,
        )
        assert report == expect

    def test_empty_is_all_zero(self):
        empty = np.array([], dtype=np.float64)
        report = report_from_arrays(empty, empty, empty, empty)
        assert report == CdiReport(0.0, 0.0, 0.0, 0.0)

    def test_negative_service_time_rejected(self):
        t = np.array([10.0, -1.0])
        values = np.zeros(2)
        with pytest.raises(ValueError, match="negative service time"):
            report_from_arrays(t, values, values, values)


class TestAggregateArrays:
    def test_matches_core_aggregate(self):
        rng = np.random.default_rng(11)
        pairs = [(float(t), float(v)) for t, v in
                 zip(rng.uniform(0.0, 86400.0, 40), rng.uniform(0.0, 1.0, 40))]
        expected = aggregate(pairs)
        t = np.array([t for t, _ in pairs])
        v = np.array([v for _, v in pairs])
        assert aggregate_arrays(t, v) == expected

    def test_zero_denominator(self):
        t = np.zeros(3)
        assert aggregate_arrays(t, np.ones(3)) == 0.0


class TestGroupReports:
    def test_matches_per_group_reference(self):
        rng = np.random.default_rng(5)
        n = 30
        keys = [("a", "b", None, "c")[i % 4] for i in range(n)]
        t = rng.uniform(1.0, 100.0, n)
        u, p, c = (rng.uniform(0.0, 0.5, n) for _ in range(3))
        reports = group_reports(keys, t, u, p, c)
        assert list(reports) == ["a", "b", "c"]  # sorted, None dropped
        for key in reports:
            idx = [i for i, k in enumerate(keys) if k == key]
            assert reports[key] == report_from_arrays(
                t[idx], u[idx], p[idx], c[idx]
            )

    def test_empty(self):
        empty = np.array([], dtype=np.float64)
        assert group_reports([], empty, empty, empty, empty) == {}


class TestEventAggregates:
    def test_matches_filtered_aggregate(self):
        rng = np.random.default_rng(9)
        names = [("slow_io", "vm_down", "slow_io")[i % 3] for i in range(21)]
        t = rng.uniform(1.0, 86400.0, 21)
        cdi = rng.uniform(0.0, 1.0, 21)
        aggregates = event_aggregates(names, t, cdi)
        assert list(aggregates) == ["slow_io", "vm_down"]
        for name in aggregates:
            pairs = [(float(t[i]), float(cdi[i]))
                     for i in range(21) if names[i] == name]
            assert aggregates[name] == aggregate(pairs)


class TestRankLeaderboard:
    def test_cut_before_zero_filter(self):
        # Matches top_event_contributors: the cut happens before the
        # >0 filter, so zeros inside the top-k shrink the result.
        aggregates = {"a": 0.0, "b": 2.0, "c": 1.0}
        assert rank_leaderboard(aggregates, 2) == [("b", 2.0), ("c", 1.0)]
        assert rank_leaderboard({"a": 0.0, "b": 1.0}, 2) == [("b", 1.0)]

    def test_ties_stay_in_key_order(self):
        aggregates = dict.fromkeys(["alpha", "beta", "gamma"], 1.5)
        assert rank_leaderboard(aggregates, 3) == [
            ("alpha", 1.5), ("beta", 1.5), ("gamma", 1.5)
        ]


class TestTopDamaged:
    def test_descending_with_label_tiebreak(self):
        labels = np.array(["vm-c", "vm-a", "vm-b", "vm-d"], dtype=object)
        values = np.array([0.5, 0.9, 0.5, 0.0])
        assert top_damaged(labels, values, 3) == [
            ("vm-a", 0.9), ("vm-b", 0.5), ("vm-c", 0.5)
        ]

    def test_zeros_excluded_entirely(self):
        labels = np.array(["x", "y"], dtype=object)
        assert top_damaged(labels, np.zeros(2), 5) == []

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            top_damaged(np.array(["x"], dtype=object), np.ones(1), 0)


class TestRollupStore:
    @pytest.fixture(scope="class")
    def store(self):
        job, fleet, _ = build_dataset(days=2)
        return job, RollupStore(job.tables, resolver=fleet.dimensions_of)

    def test_days_union(self, store):
        job, rollups = store
        assert rollups.days() == ["day00", "day01"]

    def test_fleet_matches_rows(self, store):
        from repro.pipeline.daily import fleet_report_from_rows
        job, rollups = store
        rows = job.tables.get(VM_CDI_TABLE).rows("day00")
        assert rollups.rollup("day00").fleet == fleet_report_from_rows(rows)

    def test_unknown_partition_is_all_zero(self, store):
        _, rollups = store
        rollup = rollups.rollup("day99")
        assert rollup.fleet == CdiReport(0.0, 0.0, 0.0, 0.0)
        assert rollup.vm_count == 0
        assert rollup.event_leaderboard(3) == []
        for category in CATEGORIES:
            assert rollup.top_vms(category, 3) == []

    def test_rollup_cached_until_write(self, store):
        job, rollups = store
        first = rollups.rollup("day00")
        assert rollups.rollup("day00") is first
        # An append to the partition bumps its generation → rebuild.
        table = job.tables.get(EVENT_CDI_TABLE)
        table.append([{"vm": "vm-x", "event": "synthetic", "cdi": 0.25,
                       "service_time": 86400.0}], partition="day00")
        second = rollups.rollup("day00")
        assert second is not first
        assert second.event_value("synthetic") == 0.25

    def test_group_by_requires_resolver(self):
        job, _, _ = build_dataset(days=1)
        rollups = RollupStore(job.tables)
        with pytest.raises(ValueError, match="dimension resolver"):
            rollups.rollup("day00").group_by("region")

"""Thread-safety of the serving read path under concurrent writes.

The contract (DESIGN.md §11): readers snapshot generation stamps before
reading data and writers bump generations after mutating, so a racing
read returns either the pre-write or the post-write answer — never a
torn or stale one.  These tests hammer that window with real threads.
"""

import threading

import pytest

from repro.pipeline.backfill import run_days
from repro.pipeline.daily import fleet_report_from_rows
from repro.pipeline.tables import (
    EVENT_CDI_TABLE,
    VM_CDI_TABLE,
    event_cdi_schema,
    vm_cdi_schema,
)
from repro.serving import MISS, GenerationCache, QueryService
from repro.serving.service import FleetRangeQuery
from repro.storage.table import TableStore

from tests.serving.conftest import DAY, build_dataset, events_factory

ROUNDS = 200
READERS = 4


def make_rows(tag: str, performance: float) -> list[dict]:
    return [
        {"vm": f"vm-{tag}-{i:02d}", "unavailability": 0.0,
         "performance": performance * (i + 1), "control_plane": 0.0,
         "service_time": DAY}
        for i in range(8)
    ]


class TestReadersVsOverwrites:
    def test_answers_are_always_pre_or_post_write(self):
        tables = TableStore()
        tables.create(VM_CDI_TABLE, vm_cdi_schema())
        tables.create(EVENT_CDI_TABLE, event_cdi_schema())
        states = {
            "a": make_rows("a", 1e-4),
            "b": make_rows("b", 2e-4),
        }
        expected = {
            tag: fleet_report_from_rows(rows) for tag, rows in states.items()
        }
        vm_table = tables.get(VM_CDI_TABLE)
        vm_table.overwrite_partition(states["a"], partition="day00")
        service = QueryService(tables)

        stop = threading.Event()
        violations: list = []

        def reader():
            while not stop.is_set():
                report = service.fleet("day00")
                if report not in expected.values():
                    violations.append(report)
                    return

        threads = [threading.Thread(target=reader) for _ in range(READERS)]
        for thread in threads:
            thread.start()
        try:
            for round_number in range(ROUNDS):
                tag = "b" if round_number % 2 == 0 else "a"
                vm_table.overwrite_partition(states[tag], partition="day00")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not violations, f"torn/stale read: {violations[:3]}"
        # The loop ended on an even round count → back to state "a".
        assert service.fleet("day00") == expected["a"]

    def test_write_visible_to_next_read(self):
        """Sequential write→read on different threads observes the write."""
        tables = TableStore()
        tables.create(VM_CDI_TABLE, vm_cdi_schema())
        tables.create(EVENT_CDI_TABLE, event_cdi_schema())
        service = QueryService(tables)
        vm_table = tables.get(VM_CDI_TABLE)
        results = []

        def writer_then_signal(rows, done):
            vm_table.overwrite_partition(rows, partition="day00")
            done.set()

        for tag in ("a", "b", "a", "b"):
            rows = make_rows(tag, 3e-4)
            done = threading.Event()
            thread = threading.Thread(
                target=writer_then_signal, args=(rows, done)
            )
            thread.start()
            done.wait()
            results.append(
                service.fleet("day00") == fleet_report_from_rows(rows)
            )
            thread.join()
        assert all(results)


class TestReadersDuringBackfill:
    def test_completed_days_stable_while_backfill_extends(self):
        """Readers over day00/day01 see constant answers while a live
        backfill appends later partitions through the thread-backend
        engine."""
        job, fleet, services = build_dataset(days=2)
        service = QueryService(job.tables, resolver=fleet.dimensions_of)
        baseline = {
            day: (service.fleet(day), service.top_events(day, 3))
            for day in ("day00", "day01")
        }

        stop = threading.Event()
        violations: list = []

        def reader(day):
            while not stop.is_set():
                answer = (service.fleet(day), service.top_events(day, 3))
                if answer != baseline[day]:
                    violations.append((day, answer))
                    return

        threads = [
            threading.Thread(target=reader, args=(day,))
            for day in ("day00", "day01") for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            # Four fresh partitions (ext00..ext03) written through the
            # engine while the readers hammer the finished days.
            from repro.core.events import default_catalog
            run_days(job, events_factory(sorted(fleet.vms),
                                         default_catalog(), 7),
                     services, 4, prefix="ext")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not violations, f"finished day changed: {violations[:2]}"
        assert service.days() == \
            ["day00", "day01", "ext00", "ext01", "ext02", "ext03"]
        # The new partitions are queryable afterwards.
        assert service.fleet("ext03").service_time == pytest.approx(16 * DAY)


class TestGenerationCacheConcurrency:
    """The cache's counters and values stay consistent under contention."""

    def test_readers_vs_generation_bumping_writer(self):
        cache = GenerationCache(maxsize=32)
        current = {"gen": 0}
        lock = threading.Lock()
        stop = threading.Event()
        violations: list = []
        done_lookups = [0] * READERS

        def value_for(gen: int) -> tuple[str, int]:
            return ("value", gen)

        def reader(slot: int) -> None:
            while not stop.is_set():
                with lock:
                    gen = current["gen"]
                got = cache.get("key", gen)
                if got is MISS:
                    cache.put("key", gen, value_for(gen))
                elif got != value_for(gen):
                    # A hit under stamp `gen` must carry gen's value —
                    # anything else is a stale serve.
                    violations.append((gen, got))
                    return
                done_lookups[slot] += 1

        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(READERS)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(ROUNDS):
                with lock:
                    current["gen"] += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not violations, f"stale hit: {violations[:3]}"
        stats = cache.stats
        assert stats.hits + stats.misses == stats.lookups
        assert stats.lookups >= sum(done_lookups)
        assert stats.lookups > 0

    def test_lookups_counter_not_lost_under_threads(self):
        cache = GenerationCache(maxsize=8)
        per_thread = 500

        def worker(slot: int) -> None:
            for i in range(per_thread):
                key = f"k{(slot + i) % 16}"
                if cache.get(key, 0) is MISS:
                    cache.put(key, 0, slot)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats
        assert stats.lookups == READERS * per_thread
        assert stats.hits + stats.misses == stats.lookups


class TestShardedMergeUnderWrites:
    """Cross-shard merges are snapshots, never torn mixes."""

    def test_range_merge_never_mixes_write_rounds(self):
        # One VM per partition whose performance encodes the write
        # round.  The writer advances day00 then day01 to round v; a
        # merged range read must see (v0, v1) with v0 >= v1 and
        # v0 - v1 <= 1 — any other combination is a torn merge — and
        # each reader's rounds must be monotonic (no stale serve).
        tables = TableStore()
        tables.create(VM_CDI_TABLE, vm_cdi_schema())
        tables.create(EVENT_CDI_TABLE, event_cdi_schema())
        vm_table = tables.get(VM_CDI_TABLE)

        def round_rows(version: int) -> list[dict]:
            return [{"vm": "vm-00", "unavailability": 0.0,
                     "performance": float(version), "control_plane": 0.0,
                     "service_time": DAY}]

        for day in ("day00", "day01"):
            vm_table.overwrite_partition(round_rows(0), partition=day)
        service = QueryService(tables, shards=2, parallelism=2)
        assert service.shard_count == 2

        stop = threading.Event()
        violations: list = []

        def reader() -> None:
            last = (0, 0)
            while not stop.is_set():
                result = dict(service.execute(FleetRangeQuery()))
                observed = (
                    int(result["day00"].performance),
                    int(result["day01"].performance),
                )
                v0, v1 = observed
                if not (v0 >= v1 and v0 - v1 <= 1) or observed < last:
                    violations.append((last, observed))
                    return
                last = observed

        threads = [threading.Thread(target=reader) for _ in range(READERS)]
        for thread in threads:
            thread.start()
        try:
            for version in range(1, ROUNDS + 1):
                vm_table.overwrite_partition(round_rows(version),
                                             partition="day00")
                vm_table.overwrite_partition(round_rows(version),
                                             partition="day01")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not violations, f"torn/stale merge: {violations[:3]}"
        final = dict(service.execute(FleetRangeQuery()))
        assert int(final["day00"].performance) == ROUNDS
        assert int(final["day01"].performance) == ROUNDS
        service.close()

"""Concurrency regression: TCP readers vs. the streaming publisher.

A :class:`~repro.streaming.pipeline.StreamingCdiPipeline` republishes
its partition every tick through ``overwrite_partition_columns`` while
a :class:`~repro.serving.QueryService` serves live socket readers over
the same table store.  The generation-stamp protocol promises readers
an *atomic* view: every answer corresponds to some published tick —
never a torn mix of two publishes, never a value that moves backwards
on one connection while the monotone stream only adds damage.
"""

from __future__ import annotations

import json
import threading

from repro.core.events import Event, Severity
from repro.serving import LineClient, QueryService, ServerThread, run_query
from repro.storage.logstore import LogStore
from repro.storage.table import TableStore

from tests.strategies import make_services
from tests.streaming.conftest import PARTITION, make_pipeline

TICKS = 30
READERS = 4


def damage_event(step: int) -> Event:
    """Non-overlapping ``vm_down`` windows with monotone timestamps:
    each tick strictly grows vm-000's damage integral, so the fleet
    unavailability is strictly increasing across publishes."""
    return Event(name="vm_down", time=1_000.0 * (step + 1),
                 target="vm-000", expire_interval=600.0,
                 level=Severity.FATAL,
                 attributes={"duration": 600.0})


class TestStreamingPublisherConcurrency:
    def test_no_torn_or_stale_reads_while_publishing(self):
        services = make_services(4)
        store = LogStore()
        tables = TableStore()
        # Monotone timestamps → lateness 0 releases every record at
        # the tick it arrives in.
        pipeline = make_pipeline(store, services, allowed_lateness=0.0,
                                 tables=tables)
        payload = {"kind": "fleet", "day": PARTITION}

        pipeline.tick()  # publish the zero state before readers start
        with QueryService(tables, shards=2) as service, \
                ServerThread(service) as server:
            # The publisher records each tick's served value with a
            # direct (socket-free) query; between two ticks there is
            # no other writer, so this is exactly tick N's answer.
            published = [
                run_query(service, payload)["result"]["unavailability"]
            ]
            observed: list[list[float]] = [[] for _ in range(READERS)]
            failures: list[str] = []
            done = threading.Event()

            def reader(slot: int) -> None:
                with LineClient(server.address) as client:
                    last = float("-inf")
                    while not done.is_set():
                        response = client.request(payload)
                        if not response.get("ok"):
                            failures.append(json.dumps(response))
                            return
                        value = response["result"]["unavailability"]
                        if value < last:
                            failures.append(
                                f"reader {slot} went backwards: "
                                f"{value!r} after {last!r}"
                            )
                            return
                        last = value
                        observed[slot].append(value)

            threads = [
                threading.Thread(target=reader, args=(slot,))
                for slot in range(READERS)
            ]
            for thread in threads:
                thread.start()
            try:
                for step in range(TICKS):
                    event = damage_event(step)
                    store.append(event.time, event="vm_down",
                                 target=event.target,
                                 level=int(event.level),
                                 expire_interval=600.0, duration=600.0)
                    pipeline.tick()
                    published.append(
                        run_query(service, payload)
                        ["result"]["unavailability"]
                    )
            finally:
                done.set()
                for thread in threads:
                    thread.join()

            assert not failures, failures[0]
            # The damage stream is strictly monotone, so the published
            # sequence must be too — each tick really landed.
            assert published == sorted(published)
            assert len(set(published)) == len(published)
            # Atomic visibility: every value any reader ever saw is
            # one of the published states, never a torn in-between.
            valid = set(published)
            for slot in range(READERS):
                assert observed[slot], f"reader {slot} never got a response"
                stray = [v for v in observed[slot] if v not in valid]
                assert not stray, f"torn values on reader {slot}: {stray[:3]}"
            # And the final served answer is the final published state.
            final = run_query(service, payload)
            assert final["ok"] is True
            assert final["result"]["unavailability"] == published[-1]

    def test_direct_queries_match_wire_queries_between_ticks(self):
        """Socket parity holds against a streaming-published partition
        (not just the batch-built datasets the other suites use)."""
        services = make_services(3)
        store = LogStore()
        tables = TableStore()
        pipeline = make_pipeline(store, services, allowed_lateness=0.0,
                                 tables=tables)
        for step in range(3):
            event = damage_event(step)
            store.append(event.time, event=event.name,
                         target=event.target, level=int(event.level),
                         expire_interval=600.0, duration=600.0)
            pipeline.tick()
        payloads = [
            {"kind": "fleet", "day": PARTITION},
            {"kind": "top-vms", "day": PARTITION,
             "category": "unavailability", "k": 2},
            {"kind": "top-events", "day": PARTITION, "k": 2},
        ]
        with QueryService(tables) as service, \
                ServerThread(service) as server, \
                LineClient(server.address) as client:
            for payload in payloads:
                want = json.dumps(run_query(service, payload),
                                  sort_keys=True)
                got = json.dumps(client.request(payload), sort_keys=True)
                assert got == want, payload

"""Shared fixtures for the serving-layer suite.

One deterministic dataset builder used everywhere: a topology-aware
synthetic fleet (so group-by queries have real dimensions), per-day
fault events from the baseline injector, and the daily CDI job backfilled
over a few partitions.  Tests pick the compute path via the job flags.
"""

from __future__ import annotations

import pytest

from repro.core.events import default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.backfill import run_days
from repro.pipeline.daily import DailyCdiJob
from repro.scenarios.common import default_weights
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.topology import build_fleet

# The per-day event source now lives in tests.strategies; re-exported
# here because the serving tests import it from this conftest.
from tests.strategies import DAY, events_factory  # noqa: F401

SEED = 7
DAYS = 3


def build_dataset(*, use_fastpath: bool = True, use_columnar: bool = True,
                  days: int = DAYS, seed: int = SEED):
    """A backfilled daily job plus its fleet, on one compute path."""
    catalog = default_catalog()
    fleet = build_fleet(seed=seed, regions=2, azs_per_region=2,
                        clusters_per_az=1, ncs_per_cluster=2, vms_per_nc=2)
    vm_ids = sorted(fleet.vms)
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}
    job = DailyCdiJob(EngineContext(parallelism=2), TableStore(),
                      ConfigDB(), catalog,
                      use_fastpath=use_fastpath, use_columnar=use_columnar)
    job.store_weights(default_weights())
    run_days(job, events_factory(vm_ids, catalog, seed), services, days)
    return job, fleet, services


@pytest.fixture(scope="module")
def dataset():
    """The default-path dataset, built once per test module."""
    return build_dataset()

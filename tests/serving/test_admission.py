"""Admission control: token buckets, overload shedding, typed envelopes.

Time is injected everywhere so every rate-limit decision is
deterministic; the threaded test checks only invariants (counter
consistency, bounded concurrency), never timings.
"""

from __future__ import annotations

import threading

import pytest

from repro.serving import (
    AdmissionController,
    OverloadedError,
    QueryService,
    RateLimitedError,
    TokenBucket,
    run_query,
)

from .conftest import build_dataset


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.take() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.5)  # 1 token back at 2/s
        assert bucket.take() is True
        assert bucket.take() is False

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.take() and bucket.take()
        clock.advance(100.0)
        assert [bucket.take() for _ in range(3)] == [True, True, False]

    def test_zero_rate_grants_only_initial_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=2.0, clock=clock)
        assert bucket.take() and bucket.take()
        clock.advance(1e9)
        assert bucket.take() is False

    def test_invalid_parameters_rejected(self):
        clock = FakeClock()
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=-1.0, burst=1.0, clock=clock)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.0, clock=clock)


class TestAdmissionController:
    def test_overload_rejects_beyond_in_flight_limit(self):
        controller = AdmissionController(max_in_flight=2)
        with controller.admit("a"):
            with controller.admit("b"):
                with pytest.raises(OverloadedError):
                    with controller.admit("c"):
                        pass
            # slot released: admits again
            with controller.admit("c"):
                pass
        stats = controller.stats
        assert stats.admitted == 3
        assert stats.rejected_overload == 1
        assert stats.in_flight == 0

    def test_rate_limit_is_per_client(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate_per_client=0, burst=1, clock=clock
        )
        with controller.admit("alice"):
            pass
        with pytest.raises(RateLimitedError):
            with controller.admit("alice"):
                pass
        # bob has his own bucket, unaffected by alice's exhaustion
        with controller.admit("bob"):
            pass
        stats = controller.stats
        assert stats.rejected_rate == 1
        assert stats.admitted == 2

    def test_rate_refills_over_time(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate_per_client=1.0, burst=1, clock=clock
        )
        with controller.admit("c"):
            pass
        with pytest.raises(RateLimitedError):
            with controller.admit("c"):
                pass
        clock.advance(1.0)
        with controller.admit("c"):
            pass

    def test_slot_released_when_query_raises(self):
        controller = AdmissionController(max_in_flight=1)
        with pytest.raises(RuntimeError, match="boom"):
            with controller.admit("a"):
                raise RuntimeError("boom")
        with controller.admit("a"):
            pass
        assert controller.stats.in_flight == 0

    def test_stats_attempts_consistency_under_threads(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_in_flight=4, rate_per_client=0, burst=50, clock=clock
        )
        errors: list[Exception] = []
        barrier = threading.Barrier(8)

        def hammer(client: str) -> None:
            barrier.wait()
            for _ in range(25):
                try:
                    with controller.admit(client):
                        pass
                except (OverloadedError, RateLimitedError):
                    pass
                except Exception as error:  # pragma: no cover
                    errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(f"client-{i % 4}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = controller.stats
        assert stats.in_flight == 0
        assert stats.attempts == 8 * 25

    def test_invalid_max_in_flight_rejected(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            AdmissionController(max_in_flight=0)


class TestAdmissionEnvelope:
    """run_query maps admission rejections onto the typed envelope."""

    @pytest.fixture(scope="class")
    def service(self):
        job, fleet, _ = build_dataset(days=2)
        with QueryService(job.tables, resolver=fleet.dimensions_of,
                          shards=2) as svc:
            yield svc

    def test_rate_limited_envelope(self, service):
        clock = FakeClock()
        admission = AdmissionController(
            rate_per_client=0, burst=1, clock=clock
        )
        payload = {"kind": "fleet", "day": "day00"}
        ok = run_query(service, payload, admission=admission, client="c")
        assert ok["ok"] is True
        limited = run_query(service, payload, admission=admission,
                            client="c")
        assert limited["ok"] is False
        assert limited["error"]["kind"] == "rate_limited"

    def test_overloaded_envelope(self, service):
        admission = AdmissionController(max_in_flight=1)
        payload = {"kind": "fleet", "day": "day00"}
        with admission.admit("other"):
            response = run_query(service, payload, admission=admission,
                                 client="c")
        assert response["ok"] is False
        assert response["error"]["kind"] == "overloaded"

    def test_bad_request_bypasses_admission(self, service):
        # Parse errors are rejected before taking a slot or a token.
        admission = AdmissionController(max_in_flight=1)
        with admission.admit("other"):
            response = run_query(service, {"kind": "nope"},
                                 admission=admission, client="c")
        assert response["error"]["kind"] == "bad_request"
        assert admission.stats.rejected_overload == 0

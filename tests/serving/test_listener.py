"""Socket front end: wire parity, FIFO ordering, admission over TCP.

Every test runs against a real TCP socket (``ServerThread`` on an
ephemeral port), so this exercises the exact production path of
``repro serve --listen`` — encoding, framing, concurrency, and the
typed error envelope — without a subprocess.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.serving import (
    AdmissionController,
    LineClient,
    QueryService,
    ServerThread,
    run_query,
)

from .conftest import build_dataset


@pytest.fixture(scope="module")
def service():
    """A sharded query service over the shared dataset."""
    job, fleet, _ = build_dataset(days=3)
    with QueryService(job.tables, resolver=fleet.dimensions_of,
                      shards=4) as svc:
        yield svc


@pytest.fixture()
def server(service):
    """A live socket server around the module's service."""
    with ServerThread(service) as running:
        yield running


PAYLOADS = [
    {"kind": "fleet", "day": "day00"},
    {"kind": "range"},
    {"kind": "trend", "category": "performance"},
    {"kind": "group-by", "day": "day01", "dimension": "region"},
    {"kind": "top-vms", "day": "day00", "category": "performance", "k": 3},
    {"kind": "top-events", "day": "day02", "k": 2},
]


class TestWireParity:
    def test_socket_answers_match_direct_run_query(self, service, server):
        with LineClient(server.address) as client:
            for payload in PAYLOADS:
                want = json.dumps(run_query(service, payload),
                                  sort_keys=True)
                got = json.dumps(client.request(payload), sort_keys=True)
                assert got == want, payload

    def test_malformed_json_gets_bad_request_envelope(self, server):
        with LineClient(server.address) as client:
            response = client.send_raw("{this is not json")
            assert response["ok"] is False
            assert response["error"]["kind"] == "bad_request"
            assert "invalid JSON" in response["error"]["message"]

    def test_non_object_and_unknown_kind(self, server):
        with LineClient(server.address) as client:
            non_object = client.send_raw(json.dumps([1, 2, 3]))
            assert non_object["error"]["kind"] == "bad_request"
            unknown = client.request({"kind": "nope"})
            assert unknown["error"]["kind"] == "bad_request"
            assert "unknown query kind" in unknown["error"]["message"]

    def test_connection_survives_bad_queries(self, server):
        with LineClient(server.address) as client:
            client.send_raw("garbage")
            good = client.request({"kind": "fleet", "day": "day00"})
            assert good["ok"] is True


class TestPipelining:
    def test_responses_come_back_in_request_order(self, server):
        # Write several queries before reading anything; the per-
        # connection loop must answer strictly in order.
        with LineClient(server.address) as client:
            batch = PAYLOADS * 3
            for payload in batch:
                client._file.write((json.dumps(payload) + "\n").encode())
            client._file.flush()
            for payload in batch:
                response = json.loads(client._file.readline())
                assert response["ok"] is True
                assert response["kind"] == payload["kind"]


class TestConcurrentClients:
    def test_many_clients_all_get_correct_answers(self, service, server):
        want = {
            json.dumps(p, sort_keys=True):
            json.dumps(run_query(service, p), sort_keys=True)
            for p in PAYLOADS
        }
        errors: list[AssertionError] = []

        def worker() -> None:
            try:
                with LineClient(server.address) as client:
                    for _ in range(5):
                        for payload in PAYLOADS:
                            got = json.dumps(client.request(payload),
                                             sort_keys=True)
                            key = json.dumps(payload, sort_keys=True)
                            assert got == want[key]
            except AssertionError as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestWireCacheFreshness:
    def test_repeated_query_reflects_table_writes(self):
        # The listener's wire-level response cache must never serve a
        # stale answer: after a table write the same line recomputes.
        from repro.pipeline.tables import VM_CDI_TABLE

        job, fleet, _ = build_dataset(days=2, seed=11)
        payload = {"kind": "fleet", "day": "day00"}
        with QueryService(job.tables, resolver=fleet.dimensions_of,
                          shards=2) as svc, \
                ServerThread(svc) as server, \
                LineClient(server.address) as client:
            before = client.request(payload)
            assert before["ok"] is True
            # Second request is a wire-cache hit for the same bytes.
            assert client.request(payload) == before

            vm_table = job.tables.get(VM_CDI_TABLE)
            rows = vm_table.rows(partition="day00")
            vm_table.overwrite_partition(rows[: len(rows) // 2], "day00")

            after = client.request(payload)
            want = json.dumps(run_query(svc, payload), sort_keys=True)
            assert json.dumps(after, sort_keys=True) == want
            assert after != before


class TestAdmissionOverWire:
    def test_rate_limit_rejects_over_tcp(self, service):
        admission = AdmissionController(rate_per_client=0, burst=2)
        with ServerThread(service, admission=admission) as server:
            with LineClient(server.address) as client:
                payload = {"kind": "fleet", "day": "day00"}
                assert client.request(payload)["ok"] is True
                assert client.request(payload)["ok"] is True
                limited = client.request(payload)
                assert limited["ok"] is False
                assert limited["error"]["kind"] == "rate_limited"

    def test_clients_are_identified_per_connection(self, service):
        # Each connection is a distinct client: a second connection
        # gets its own bucket even after the first is exhausted.
        admission = AdmissionController(rate_per_client=0, burst=1)
        with ServerThread(service, admission=admission) as server:
            payload = {"kind": "fleet", "day": "day00"}
            with LineClient(server.address) as first:
                assert first.request(payload)["ok"] is True
                assert first.request(payload)["error"]["kind"] == \
                    "rate_limited"
            with LineClient(server.address) as second:
                assert second.request(payload)["ok"] is True

"""Sharded rollup store: routing, parity, bounded growth, availability.

The sharded store must be an invisible refactor: every query answers
byte-identically to the single-store configuration, partition→shard
assignment is stable across processes, memory stays bounded while a
backfill churns partitions, and snapshot-retry exhaustion surfaces as
the typed ``unavailable`` envelope instead of a torn merge.
"""

from __future__ import annotations

import json

import pytest

from repro.serving import (
    QueryService,
    RollupStore,
    ServiceUnavailableError,
    run_query,
)
from repro.serving.service import FleetRangeQuery

from .conftest import build_dataset


@pytest.fixture(scope="module")
def dataset6():
    """Six backfilled days so several shards own several partitions."""
    return build_dataset(days=6)


ALL_KINDS = [
    {"kind": "fleet", "day": "day00"},
    {"kind": "range"},
    {"kind": "range", "start": "day01", "end": "day04"},
    {"kind": "trend", "category": "performance"},
    {"kind": "trend", "category": "unavailability"},
    {"kind": "group-by", "day": "day02", "dimension": "region"},
    {"kind": "group-by", "day": "day03", "dimension": "az"},
    {"kind": "top-vms", "day": "day01", "category": "control_plane", "k": 5},
    {"kind": "top-events", "day": "day04", "k": 3},
    {"kind": "event-series", "event": "vm_down"},
]


class TestShardRouting:
    def test_assignment_is_deterministic_and_total(self, dataset6):
        job, fleet, _ = dataset6
        store = RollupStore(job.tables, shards=4)
        first = {day: store.shard_of(day) for day in store.days()}
        again = {day: store.shard_of(day) for day in store.days()}
        assert first == again
        assert all(0 <= idx < 4 for idx in first.values())
        # crc32 is process-stable: pin a couple of labels so an
        # accidental switch to randomized hash() fails loudly.
        import zlib
        for day, idx in first.items():
            assert idx == zlib.crc32(day.encode()) % 4

    def test_six_days_spread_over_multiple_shards(self, dataset6):
        job, _, _ = dataset6
        store = RollupStore(job.tables, shards=4)
        owners = {store.shard_of(day) for day in store.days()}
        assert len(owners) > 1

    def test_rollup_routes_to_owning_shard_only(self, dataset6):
        job, _, _ = dataset6
        store = RollupStore(job.tables, shards=4)
        for day in store.days():
            store.rollup(day)
        for shard in store.shards:
            for day in store.days():
                owned = store.shard_of(day) == shard.index
                hit = shard._cache.get(day, store.partition_stamps([day])[0])
                from repro.serving.cache import MISS
                assert (hit is not MISS) == owned

    def test_invalid_shard_count_rejected(self, dataset6):
        job, _, _ = dataset6
        with pytest.raises(ValueError, match="shards"):
            RollupStore(job.tables, shards=0)


class TestShardedParity:
    """Sharded answers must be byte-identical to the single store's."""

    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_every_kind_identical_to_single_store(self, dataset6, shards):
        job, fleet, _ = dataset6
        with QueryService(job.tables, resolver=fleet.dimensions_of,
                          shards=1) as single, \
             QueryService(job.tables, resolver=fleet.dimensions_of,
                          shards=shards) as sharded:
            assert sharded.shard_count == shards
            for payload in ALL_KINDS:
                want = json.dumps(run_query(single, payload), sort_keys=True)
                got = json.dumps(run_query(sharded, payload), sort_keys=True)
                assert got == want, payload

    def test_parallel_merge_identical_to_serial(self, dataset6):
        job, fleet, _ = dataset6
        serial = QueryService(job.tables, resolver=fleet.dimensions_of,
                              shards=4, parallelism=1)
        with QueryService(job.tables, resolver=fleet.dimensions_of,
                          shards=4, parallelism=4) as parallel:
            q = FleetRangeQuery()
            assert parallel.execute(q) == serial.execute(q)
        serial.close()


class TestBoundedGrowth:
    """Regression: the store must not grow without bound during backfill."""

    def test_superseded_generations_are_replaced_not_accumulated(self):
        job, _, _ = build_dataset(days=2)
        store = RollupStore(job.tables, shards=2)
        day = store.days()[0]
        vm_table = job.tables.get("vm_cdi")
        rows = vm_table.rows(partition=day)
        store.rollup(day)
        before = store.cached_rollups
        # Overwrite the same partition many times; each rewrite bumps
        # the generation, so each rollup access replaces (not adds).
        for _ in range(10):
            vm_table.overwrite_partition(rows, day)
            store.rollup(day)
        assert store.cached_rollups == before

    def test_lru_bounds_fresh_partition_churn(self):
        job, _, _ = build_dataset(days=2)
        store = RollupStore(job.tables, shards=2, shard_cache_size=4)
        day = store.days()[0]
        vm_table = job.tables.get("vm_cdi")
        event_table = job.tables.get("event_cdi")
        vm_rows = vm_table.rows(partition=day)
        event_rows = event_table.rows(partition=day)
        # A long backfill appending fresh partitions: cached rollups
        # must stay within shards * shard_cache_size forever.
        for i in range(40):
            fresh = f"ext{i:03d}"
            vm_table.overwrite_partition(vm_rows, fresh)
            event_table.overwrite_partition(event_rows, fresh)
            store.rollup(fresh)
            assert store.cached_rollups <= 2 * 4
        evictions = sum(
            shard.cache_stats.evictions for shard in store.shards
        )
        assert evictions > 0

    def test_cached_rollups_counts_across_shards(self, dataset6):
        job, _, _ = dataset6
        store = RollupStore(job.tables, shards=4)
        for day in store.days():
            store.rollup(day)
        assert store.cached_rollups == len(store.days())


class TestUnavailable:
    """Snapshot-retry exhaustion is a typed, non-torn failure."""

    def test_exhausted_retries_raise_service_unavailable(self, dataset6):
        job, fleet, _ = dataset6
        with QueryService(job.tables, resolver=fleet.dimensions_of,
                          shards=2) as service:
            counter = {"n": 0}
            real = service._rollups.partition_stamps

            def always_changing(partitions):
                counter["n"] += 1
                return tuple(
                    (counter["n"], counter["n"]) for _ in partitions
                )

            service._rollups.partition_stamps = always_changing
            try:
                with pytest.raises(ServiceUnavailableError):
                    service.execute(FleetRangeQuery())
            finally:
                service._rollups.partition_stamps = real

    def test_unavailable_maps_to_typed_envelope(self, dataset6):
        job, fleet, _ = dataset6
        with QueryService(job.tables, resolver=fleet.dimensions_of,
                          shards=2) as service:
            counter = {"n": 0}

            def always_changing(partitions):
                counter["n"] += 1
                return tuple(
                    (counter["n"], counter["n"]) for _ in partitions
                )

            service._rollups.partition_stamps = always_changing
            response = run_query(service, {"kind": "range"})
            assert response["ok"] is False
            assert response["error"]["kind"] == "unavailable"

"""Tests for the reproduction CLI."""

import pytest

from repro.cli import COMMANDS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_table4_exact_values(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "0.020" in out
        assert "Table IV" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "performance" in out

    @pytest.mark.slow
    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "20250107" in out

    @pytest.mark.slow
    def test_fig9(self, capsys):
        assert main(["fig9", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "spike detections" in out

    @pytest.mark.slow
    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "recommended action: B" in out

    @pytest.mark.slow
    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "year-over-year reduction" in out

    @pytest.mark.slow
    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out

    @pytest.mark.slow
    def test_all_runs_every_artifact(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in ("Fig. 2", "Table IV", "Fig. 5", "Fig. 6",
                       "Fig. 8", "Fig. 9", "Table V"):
            assert marker in out, marker

    def test_seed_flag_changes_output(self, capsys):
        main(["fig2", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig2", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])


class TestTraceCli:
    def test_daily_trace_dir_writes_complete_trace(self, tmp_path, capsys):
        assert main(["daily", "--vms", "12", "--chaos-seed", "1",
                     "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "complete" in out and "INCOMPLETE" not in out
        assert "critical path" in out
        files = list(tmp_path.glob("*.jsonl"))
        assert len(files) == 1

    def test_trace_command_summarizes_written_trace(self, tmp_path, capsys):
        assert main(["daily", "--vms", "12",
                     "--trace-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["trace", "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace file:" in out
        assert "slowest stages" in out

    def test_trace_file_flag_picks_a_specific_trace(self, tmp_path, capsys):
        assert main(["daily", "--vms", "12",
                     "--trace-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        (target,) = tmp_path.glob("*.jsonl")
        assert main(["trace", "--trace-file", str(target)]) == 0
        out = capsys.readouterr().out
        assert str(target) in out

    def test_trace_without_file_is_graceful(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "no trace file given" in out


class TestQueryServe:
    @pytest.mark.slow
    def test_query_fleet_defaults(self, capsys):
        import json
        assert main(["query", "--vms", "16", "--days", "2"]) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is True
        assert response["kind"] == "fleet"
        assert response["result"]["service_time"] > 0

    @pytest.mark.slow
    def test_query_top_vms(self, capsys):
        import json
        assert main(["query", "--vms", "16", "--days", "1",
                     "--kind", "top-vms", "--k", "3"]) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is True
        assert len(response["result"]) <= 3
        for entry in response["result"]:
            assert entry["value"] > 0

    @pytest.mark.slow
    def test_query_bad_category_reports_error(self, capsys):
        import json
        assert main(["query", "--vms", "16", "--days", "1",
                     "--kind", "trend", "--category", "nope"]) == 1
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is False
        assert response["error"]["kind"] == "bad_request"
        assert "unknown category" in response["error"]["message"]

    @pytest.mark.slow
    def test_serve_json_lines(self, capsys, monkeypatch):
        import io
        import json
        import sys as _sys
        queries = "\n".join([
            json.dumps({"kind": "fleet", "day": "day00"}),
            "garbage",
            json.dumps({"kind": "top-events", "day": "day00", "k": 2}),
        ])
        monkeypatch.setattr(_sys, "stdin", io.StringIO(queries + "\n"))
        assert main(["serve", "--vms", "16", "--days", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        decoded = [json.loads(line) for line in lines]
        assert [r["ok"] for r in decoded] == [True, False, True]
        assert decoded[1]["error"]["kind"] == "bad_request"
        assert "invalid JSON" in decoded[1]["error"]["message"]


class TestStreamCommand:
    def test_stream_reports_identical_differential(self, capsys):
        assert main(["stream", "--seed", "3", "--vms", "12",
                     "--ticks", "3"]) == 0
        out = capsys.readouterr().out
        assert "Streaming CDI" in out
        assert "differential vs batch recompute: IDENTICAL" in out
        assert "0 dropped" in out

    def test_stream_checkpoint_resume_is_idempotent(self, tmp_path,
                                                    capsys):
        args = ["stream", "--seed", "5", "--vms", "10",
                "--checkpoint-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "IDENTICAL" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "resumed from checkpoint" in second
        assert "IDENTICAL" in second

    def test_stream_listed(self, capsys):
        assert main(["list"]) == 0
        assert "stream" in capsys.readouterr().out

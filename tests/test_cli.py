"""Tests for the reproduction CLI."""

import pytest

from repro.cli import COMMANDS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_table4_exact_values(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "0.020" in out
        assert "Table IV" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "performance" in out

    @pytest.mark.slow
    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "20250107" in out

    @pytest.mark.slow
    def test_fig9(self, capsys):
        assert main(["fig9", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "spike detections" in out

    @pytest.mark.slow
    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "recommended action: B" in out

    @pytest.mark.slow
    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "year-over-year reduction" in out

    @pytest.mark.slow
    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "hybrid" in out

    @pytest.mark.slow
    def test_all_runs_every_artifact(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in ("Fig. 2", "Table IV", "Fig. 5", "Fig. 6",
                       "Fig. 8", "Fig. 9", "Table V"):
            assert marker in out, marker

    def test_seed_flag_changes_output(self, capsys):
        main(["fig2", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig2", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

"""Tests for JSON persistence of the storage substrates."""

import json

import pytest

from repro.storage.configdb import ConfigDB
from repro.storage.persistence import (
    load_config_db,
    load_table_store,
    save_config_db,
    save_table_store,
    snapshot_table,
)
from repro.storage.schema import Column, Schema
from repro.storage.table import TableStore


def make_store() -> TableStore:
    store = TableStore()
    table = store.create("vm_cdi", Schema([
        Column("vm", str), Column("cdi", float),
        Column("note", str, nullable=True),
    ]))
    table.append([{"vm": "a", "cdi": 0.1}], partition="d1")
    table.append([{"vm": "b", "cdi": 0.2, "note": "x"}], partition="d2")
    store.create("empty", Schema([Column("k", int)]))
    return store


class TestTableStorePersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "store.json"
        original = make_store()
        save_table_store(original, path)
        restored = load_table_store(path)
        assert restored.names() == original.names()
        table = restored.get("vm_cdi")
        assert table.partitions == ["d1", "d2"]
        assert table.rows(partition="d1") == [
            {"vm": "a", "cdi": 0.1, "note": None}
        ]
        assert table.schema.names == ("vm", "cdi", "note")
        assert table.schema.column("note").nullable

    def test_empty_table_preserved(self, tmp_path):
        path = tmp_path / "store.json"
        save_table_store(make_store(), path)
        restored = load_table_store(path)
        assert restored.get("empty").count() == 0

    def test_restored_rows_revalidated(self, tmp_path):
        path = tmp_path / "store.json"
        save_table_store(make_store(), path)
        payload = json.loads(path.read_text())
        columns = payload["tables"]["vm_cdi"]["partitions"]["d1"]["columns"]
        columns["cdi"][0] = "corrupted"
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception):
            load_table_store(path)

    def test_columnar_envelope_on_disk(self, tmp_path):
        path = tmp_path / "store.json"
        save_table_store(make_store(), path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-table-store"
        assert payload["version"] == 2
        assert payload["layout"] == "columnar"
        part = payload["tables"]["vm_cdi"]["partitions"]["d1"]
        assert part["rows"] == 1
        assert part["columns"] == {
            "vm": ["a"], "cdi": [0.1], "note": [None],
        }

    def test_legacy_rows_layout_roundtrip(self, tmp_path):
        """v1 row-major files (and ``layout="rows"`` writes) keep
        loading into the columnar store byte-for-byte."""
        legacy = tmp_path / "legacy.json"
        save_table_store(make_store(), legacy, layout="rows")
        payload = json.loads(legacy.read_text())
        assert "format" not in payload  # bare v1 mapping, no envelope
        restored = load_table_store(legacy)
        assert restored.get("vm_cdi").rows(partition="d1") == [
            {"vm": "a", "cdi": 0.1, "note": None}
        ]
        # Migration: legacy load → columnar save → reload is lossless.
        migrated = tmp_path / "migrated.json"
        save_table_store(restored, migrated)
        assert json.loads(migrated.read_text())["version"] == 2
        final = load_table_store(migrated)
        for name in ("vm_cdi", "empty"):
            assert final.get(name).rows() == restored.get(name).rows()
        assert final.get("vm_cdi").schema.column("note").nullable

    def test_empty_partition_survives_both_layouts(self, tmp_path):
        store = TableStore()
        table = store.create("t", Schema([Column("k", int)]))
        table.overwrite_partition([], partition="empty_day")
        table.append([{"k": 1}], partition="full_day")
        for layout in ("columnar", "rows"):
            path = tmp_path / f"{layout}.json"
            save_table_store(store, path, layout=layout)
            restored = load_table_store(path)
            assert restored.get("t").partitions == ["empty_day", "full_day"]
            assert restored.get("t").count("empty_day") == 0

    def test_nullable_column_roundtrip(self, tmp_path):
        store = TableStore()
        table = store.create("t", Schema([
            Column("k", int), Column("note", str, nullable=True),
        ]))
        table.append([
            {"k": 1, "note": None}, {"k": 2, "note": "x"}, {"k": 3},
        ])
        path = tmp_path / "store.json"
        save_table_store(store, path)
        restored = load_table_store(path)
        assert restored.get("t").rows() == [
            {"k": 1, "note": None}, {"k": 2, "note": "x"},
            {"k": 3, "note": None},
        ]

    def test_unknown_layout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown table-store layout"):
            save_table_store(make_store(), tmp_path / "x.json",
                             layout="parquet")

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "store.json"
        save_table_store(make_store(), path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported table-store version"):
            load_table_store(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({"format": "other-store", "tables": {}}))
        with pytest.raises(ValueError, match="unknown table-store format"):
            load_table_store(path)

    def test_row_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "store.json"
        save_table_store(make_store(), path)
        payload = json.loads(path.read_text())
        payload["tables"]["vm_cdi"]["partitions"]["d1"]["rows"] = 7
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="declares 7 rows"):
            load_table_store(path)

    def test_snapshot_table(self, tmp_path):
        path = tmp_path / "snap.json"
        store = make_store()
        count = snapshot_table(store.get("vm_cdi"), path)
        assert count == 2
        assert len(json.loads(path.read_text())) == 2

    def test_snapshot_one_partition(self, tmp_path):
        path = tmp_path / "snap.json"
        store = make_store()
        assert snapshot_table(store.get("vm_cdi"), path, partition="d1") == 1


class TestConfigDbPersistence:
    def test_roundtrip_with_history(self, tmp_path):
        path = tmp_path / "config.json"
        db = ConfigDB()
        db.put("weights", {"v": 1})
        db.put("weights", {"v": 2})
        db.put("other", [1, 2, 3])
        save_config_db(db, path)
        restored = load_config_db(path)
        assert restored.get("weights").version == 2
        assert restored.get("weights", version=1).value == {"v": 1}
        assert restored.get("other").value == [1, 2, 3]

    def test_non_contiguous_versions_rejected(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({
            "k": [{"version": 1, "value": 1}, {"version": 3, "value": 2}]
        }))
        with pytest.raises(ValueError, match="non-contiguous"):
            load_config_db(path)

    def test_empty_db(self, tmp_path):
        path = tmp_path / "config.json"
        save_config_db(ConfigDB(), path)
        assert load_config_db(path).keys() == []


class TestLayoutMigration:
    """Satellite: v1 → v2 → v3 migrations round-trip losslessly."""

    def rows_of(self, store):
        return {
            name: {
                partition: store.get(name).rows(partition=partition)
                for partition in store.get(name).partitions
            }
            for name in store.names()
        }

    def test_v1_to_v2_to_v3_round_trip(self, tmp_path):
        original = make_store()
        expected = self.rows_of(original)

        v1 = tmp_path / "v1.json"
        save_table_store(original, v1, layout="rows")
        from_v1 = load_table_store(v1)
        assert self.rows_of(from_v1) == expected

        v2 = tmp_path / "v2.json"
        save_table_store(from_v1, v2)
        assert json.loads(v2.read_text())["version"] == 2
        from_v2 = load_table_store(v2)
        assert self.rows_of(from_v2) == expected

        v3 = tmp_path / "v3.jsonl"
        save_table_store(from_v2, v3, layout="chunked")
        first = json.loads(v3.read_text().splitlines()[0])
        assert first["version"] == 3
        from_v3 = load_table_store(v3)
        assert self.rows_of(from_v3) == expected
        assert from_v3.get("vm_cdi").schema.column("note").nullable

        # And back down: a lazily-loaded v3 store still writes v2.
        back = tmp_path / "back.json"
        save_table_store(from_v3, back)
        assert self.rows_of(load_table_store(back)) == expected

    def test_every_layout_loads_identically(self, tmp_path):
        expected = self.rows_of(make_store())
        for layout in ("rows", "columnar", "chunked"):
            path = tmp_path / f"{layout}.json"
            save_table_store(make_store(), path, layout=layout)
            assert self.rows_of(load_table_store(path)) == expected


class TestAtomicWrites:
    def test_atomic_columnar_save(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("stale bytes")
        save_table_store(make_store(), path, atomic=True)
        assert not (tmp_path / "store.json.tmp").exists()
        assert load_table_store(path).names() == make_store().names()

    def test_non_atomic_is_default(self, tmp_path):
        path = tmp_path / "store.json"
        save_table_store(make_store(), path)
        assert not (tmp_path / "store.json.tmp").exists()

"""Tests for JSON persistence of the storage substrates."""

import json

import pytest

from repro.storage.configdb import ConfigDB
from repro.storage.persistence import (
    load_config_db,
    load_table_store,
    save_config_db,
    save_table_store,
    snapshot_table,
)
from repro.storage.schema import Column, Schema
from repro.storage.table import TableStore


def make_store() -> TableStore:
    store = TableStore()
    table = store.create("vm_cdi", Schema([
        Column("vm", str), Column("cdi", float),
        Column("note", str, nullable=True),
    ]))
    table.append([{"vm": "a", "cdi": 0.1}], partition="d1")
    table.append([{"vm": "b", "cdi": 0.2, "note": "x"}], partition="d2")
    store.create("empty", Schema([Column("k", int)]))
    return store


class TestTableStorePersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "store.json"
        original = make_store()
        save_table_store(original, path)
        restored = load_table_store(path)
        assert restored.names() == original.names()
        table = restored.get("vm_cdi")
        assert table.partitions == ["d1", "d2"]
        assert table.rows(partition="d1") == [
            {"vm": "a", "cdi": 0.1, "note": None}
        ]
        assert table.schema.names == ("vm", "cdi", "note")
        assert table.schema.column("note").nullable

    def test_empty_table_preserved(self, tmp_path):
        path = tmp_path / "store.json"
        save_table_store(make_store(), path)
        restored = load_table_store(path)
        assert restored.get("empty").count() == 0

    def test_restored_rows_revalidated(self, tmp_path):
        path = tmp_path / "store.json"
        save_table_store(make_store(), path)
        payload = json.loads(path.read_text())
        payload["vm_cdi"]["partitions"]["d1"][0]["cdi"] = "corrupted"
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception):
            load_table_store(path)

    def test_snapshot_table(self, tmp_path):
        path = tmp_path / "snap.json"
        store = make_store()
        count = snapshot_table(store.get("vm_cdi"), path)
        assert count == 2
        assert len(json.loads(path.read_text())) == 2

    def test_snapshot_one_partition(self, tmp_path):
        path = tmp_path / "snap.json"
        store = make_store()
        assert snapshot_table(store.get("vm_cdi"), path, partition="d1") == 1


class TestConfigDbPersistence:
    def test_roundtrip_with_history(self, tmp_path):
        path = tmp_path / "config.json"
        db = ConfigDB()
        db.put("weights", {"v": 1})
        db.put("weights", {"v": 2})
        db.put("other", [1, 2, 3])
        save_config_db(db, path)
        restored = load_config_db(path)
        assert restored.get("weights").version == 2
        assert restored.get("weights", version=1).value == {"v": 1}
        assert restored.get("other").value == [1, 2, 3]

    def test_non_contiguous_versions_rejected(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({
            "k": [{"version": 1, "value": 1}, {"version": 3, "value": 2}]
        }))
        with pytest.raises(ValueError, match="non-contiguous"):
            load_config_db(path)

    def test_empty_db(self, tmp_path):
        path = tmp_path / "config.json"
        save_config_db(ConfigDB(), path)
        assert load_config_db(path).keys() == []

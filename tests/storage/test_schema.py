"""Tests for row schemas."""

import pytest

from repro.storage.schema import Column, Schema, SchemaError


def make_schema() -> Schema:
    return Schema([
        Column("vm", str),
        Column("cdi", float),
        Column("count", int),
        Column("note", str, nullable=True),
    ])


class TestColumn:
    def test_accepts_matching_type(self):
        assert Column("x", int).validate(3) == 3

    def test_int_widens_to_float(self):
        assert Column("x", float).validate(3) == 3.0
        assert isinstance(Column("x", float).validate(3), float)

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            Column("x", int).validate(True)

    def test_bool_is_not_float(self):
        with pytest.raises(SchemaError):
            Column("x", float).validate(True)

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError, match="expects str"):
            Column("x", str).validate(3)

    def test_null_handling(self):
        assert Column("x", str, nullable=True).validate(None) is None
        with pytest.raises(SchemaError, match="not nullable"):
            Column("x", str).validate(None)


class TestSchema:
    def test_valid_row_normalized(self):
        schema = make_schema()
        row = schema.validate_row({"vm": "vm-1", "cdi": 0.1, "count": 2})
        assert row == {"vm": "vm-1", "cdi": 0.1, "count": 2, "note": None}

    def test_missing_required_column(self):
        with pytest.raises(SchemaError, match="missing required"):
            make_schema().validate_row({"vm": "vm-1", "count": 2})

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError, match="unknown columns"):
            make_schema().validate_row(
                {"vm": "a", "cdi": 0.1, "count": 1, "bogus": 1}
            )

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a", int), Column("a", str)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_names_and_lookup(self):
        schema = make_schema()
        assert schema.names == ("vm", "cdi", "count", "note")
        assert "cdi" in schema
        assert schema.column("cdi").dtype is float
        with pytest.raises(KeyError):
            schema.column("nope")


class TestColumnarValidation:
    """Vectorized per-column validation must keep per-cell semantics."""

    def test_validate_block_seals_typed_array(self):
        block = Column("x", float).validate_block([0.1, 0.2])
        assert block.to_pylist() == [0.1, 0.2]

    def test_validate_block_widens_ints(self):
        block = Column("x", float).validate_block([1, 2.5])
        assert block.to_pylist() == [1.0, 2.5]
        assert all(isinstance(v, float) for v in block.to_pylist())

    def test_validate_block_rejects_bool_for_numeric(self):
        with pytest.raises(SchemaError, match="got bool"):
            Column("x", int).validate_block([1, True])
        with pytest.raises(SchemaError, match="got bool"):
            Column("x", float).validate_block([0.5, True])

    def test_validate_block_nullability(self):
        block = Column("x", str, nullable=True).validate_block(["a", None])
        assert block.to_pylist() == ["a", None]
        with pytest.raises(SchemaError, match="not nullable"):
            Column("x", str).validate_block(["a", None])

    def test_validate_block_rejects_wrong_type(self):
        with pytest.raises(SchemaError, match="expects str"):
            Column("x", str).validate_block(["a", 3])

    def test_validate_columns_roundtrip(self):
        blocks, length = make_schema().validate_columns({
            "vm": ["a", "b"], "cdi": [0.1, 1], "count": [1, 2],
        })
        assert length == 2
        assert blocks["cdi"].to_pylist() == [0.1, 1.0]
        assert blocks["note"].to_pylist() == [None, None]

    def test_validate_columns_ragged_rejected(self):
        with pytest.raises(SchemaError, match="ragged"):
            make_schema().validate_columns({
                "vm": ["a"], "cdi": [0.1, 0.2], "count": [1],
            })

    def test_validate_columns_unknown_rejected(self):
        with pytest.raises(SchemaError, match="unknown columns"):
            make_schema().validate_columns({"bogus": [1]})

    def test_validate_columns_missing_required_rejected(self):
        with pytest.raises(SchemaError, match="missing required"):
            make_schema().validate_columns({"vm": ["a"]})

    def test_validate_columns_zero_rows_is_fine(self):
        blocks, length = make_schema().validate_columns({})
        assert length == 0
        assert all(len(block) == 0 for block in blocks.values())

"""Tests for row schemas."""

import pytest

from repro.storage.schema import Column, Schema, SchemaError


def make_schema() -> Schema:
    return Schema([
        Column("vm", str),
        Column("cdi", float),
        Column("count", int),
        Column("note", str, nullable=True),
    ])


class TestColumn:
    def test_accepts_matching_type(self):
        assert Column("x", int).validate(3) == 3

    def test_int_widens_to_float(self):
        assert Column("x", float).validate(3) == 3.0
        assert isinstance(Column("x", float).validate(3), float)

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            Column("x", int).validate(True)

    def test_bool_is_not_float(self):
        with pytest.raises(SchemaError):
            Column("x", float).validate(True)

    def test_wrong_type_rejected(self):
        with pytest.raises(SchemaError, match="expects str"):
            Column("x", str).validate(3)

    def test_null_handling(self):
        assert Column("x", str, nullable=True).validate(None) is None
        with pytest.raises(SchemaError, match="not nullable"):
            Column("x", str).validate(None)


class TestSchema:
    def test_valid_row_normalized(self):
        schema = make_schema()
        row = schema.validate_row({"vm": "vm-1", "cdi": 0.1, "count": 2})
        assert row == {"vm": "vm-1", "cdi": 0.1, "count": 2, "note": None}

    def test_missing_required_column(self):
        with pytest.raises(SchemaError, match="missing required"):
            make_schema().validate_row({"vm": "vm-1", "count": 2})

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError, match="unknown columns"):
            make_schema().validate_row(
                {"vm": "a", "cdi": 0.1, "count": 1, "bogus": 1}
            )

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a", int), Column("a", str)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_names_and_lookup(self):
        schema = make_schema()
        assert schema.names == ("vm", "cdi", "count", "note")
        assert "cdi" in schema
        assert schema.column("cdi").dtype is float
        with pytest.raises(KeyError):
            schema.column("nope")

"""Tests for the typed column blocks under the table store."""

import numpy as np
import pytest

from repro.storage.columns import (
    ColumnBatch,
    ColumnBlock,
    ColumnarPartition,
    factorize_block,
    slice_batches,
    try_dictionary_encode,
)


class TestColumnBlock:
    def test_build_float(self):
        block = ColumnBlock.build(float, [1.5, 2.5, -0.25])
        assert block.values.dtype == np.float64
        assert block.null_mask is None
        assert block.to_pylist() == [1.5, 2.5, -0.25]

    def test_build_with_nulls(self):
        block = ColumnBlock.build(float, [1.0, None, 3.0])
        assert block.null_mask is not None
        assert block.null_mask.tolist() == [False, True, False]
        # Masked slot carries a fill value in the typed array...
        assert block.values.tolist() == [1.0, 0.0, 3.0]
        # ...but the logical view restores the null.
        assert block.to_pylist() == [1.0, None, 3.0]

    def test_str_stays_object(self):
        block = ColumnBlock.build(str, ["a", None, "c"])
        assert block.values.dtype == object
        assert block.to_pylist() == ["a", None, "c"]

    def test_bool_block(self):
        block = ColumnBlock.build(bool, [True, False, True])
        assert block.values.dtype == np.bool_
        assert block.to_pylist() == [True, False, True]

    def test_int_roundtrips_exactly(self):
        values = [0, -1, 2**62, -(2**62)]
        block = ColumnBlock.build(int, values)
        assert block.values.dtype == np.int64
        assert block.to_pylist() == values

    def test_int_overflow_falls_back_to_object(self):
        huge = 2**100
        block = ColumnBlock.build(int, [1, huge])
        assert block.values.dtype == object
        assert block.to_pylist() == [1, huge]

    def test_sealed_arrays_are_read_only(self):
        block = ColumnBlock.build(float, [1.0, None])
        with pytest.raises(ValueError):
            block.values[0] = 9.0
        with pytest.raises(ValueError):
            block.null_mask[0] = True

    def test_slice_is_zero_copy(self):
        block = ColumnBlock.build(float, [1.0, 2.0, 3.0, 4.0])
        window = block[1:3]
        assert window.to_pylist() == [2.0, 3.0]
        assert window.values.base is not None

    def test_concat(self):
        merged = ColumnBlock.concat([
            ColumnBlock.build(float, [1.0, None]),
            ColumnBlock.build(float, [3.0]),
        ])
        assert merged.to_pylist() == [1.0, None, 3.0]

    def test_concat_mixed_object_and_typed(self):
        merged = ColumnBlock.concat([
            ColumnBlock.build(int, [1, 2]),
            ColumnBlock.build(int, [2**100]),
        ])
        assert merged.values.dtype == object
        assert merged.to_pylist() == [1, 2, 2**100]

    def test_empty(self):
        block = ColumnBlock.empty(int)
        assert len(block) == 0
        assert block.values.dtype == np.int64

    def test_all_null(self):
        block = ColumnBlock.all_null(str, 3)
        assert block.to_pylist() == [None, None, None]


class TestColumnarPartition:
    def make(self):
        return ColumnarPartition(("vm", "value"), {"vm": str, "value": float})

    def test_rows_roundtrip(self):
        part = self.make()
        part.extend_rows([{"vm": "a", "value": 0.1}, {"vm": "b", "value": 0.2}])
        assert len(part) == 2
        assert list(part.iter_rows()) == [
            {"vm": "a", "value": 0.1}, {"vm": "b", "value": 0.2},
        ]

    def test_block_cached_until_next_write(self):
        part = self.make()
        part.extend_rows([{"vm": "a", "value": 0.1}])
        first = part.block("value")
        assert part.block("value") is first
        part.extend_rows([{"vm": "b", "value": 0.2}])
        resealed = part.block("value")
        assert resealed is not first
        assert resealed.to_pylist() == [0.1, 0.2]

    def test_extend_blocks_adopts_sealed_arrays(self):
        part = self.make()
        blocks = {
            "vm": ColumnBlock.build(str, ["a"]),
            "value": ColumnBlock.build(float, [0.5]),
        }
        part.extend_blocks(blocks, 1)
        # No buffered tail → the sealed block is adopted, not copied.
        assert part.block("value") is blocks["value"]


class TestSliceBatches:
    def test_balanced_split(self):
        blocks = {"x": ColumnBlock.build(int, list(range(10)))}
        batches = slice_batches(blocks, 10, 3)
        assert [len(b) for b in batches] == [4, 3, 3]
        assert [b.values("x").tolist() for b in batches] == [
            [0, 1, 2, 3], [4, 5, 6], [7, 8, 9],
        ]

    def test_empty_input_still_yields_batches(self):
        blocks = {"x": ColumnBlock.empty(int)}
        batches = slice_batches(blocks, 0, 4)
        assert len(batches) == 4
        assert all(len(b) == 0 for b in batches)

    def test_rejects_zero_batches(self):
        with pytest.raises(ValueError, match=">= 1"):
            slice_batches({}, 0, 0)

    def test_batch_row_view(self):
        blocks = {
            "vm": ColumnBlock.build(str, ["a", "b"]),
            "value": ColumnBlock.build(float, [0.1, None]),
        }
        (batch,) = slice_batches(blocks, 2, 1)
        assert isinstance(batch, ColumnBatch)
        assert batch.names == ("vm", "value")
        assert list(batch.rows()) == [
            {"vm": "a", "value": 0.1}, {"vm": "b", "value": None},
        ]


class TestDictionaryEncoding:
    def test_build_str_dictionary_encodes(self):
        values = ["a", "b", "a", "a", "b"] * 4
        block = ColumnBlock.build(str, values)
        assert block.is_dictionary
        assert block.dictionary == ("a", "b")  # first-occurrence order
        assert block.codes.dtype == np.int32
        assert block.to_pylist() == values

    def test_nullable_dictionary_roundtrip(self):
        values = ["x", None, "y", "x", None] * 4
        block = ColumnBlock.build(str, values)
        assert block.is_dictionary
        assert block.null_mask is not None
        assert block.codes.tolist().count(-1) == 8
        assert block.to_pylist() == values

    def test_high_cardinality_stays_plain(self):
        # 64 distinct values in 64 rows exceeds max(16, n // 2).
        block = ColumnBlock.build(str, [f"v{i:02d}" for i in range(64)])
        assert not block.is_dictionary
        assert block.codes is None

    def test_try_encode_respects_limit(self):
        assert try_dictionary_encode(["a", "b", "c"], limit=2) is None
        encoded = try_dictionary_encode(["a", "b", "a"], limit=2)
        assert encoded is not None
        codes, dictionary = encoded
        assert codes.tolist() == [0, 1, 0]
        assert dictionary == ("a", "b")

    def test_from_codes_derives_null_mask(self):
        block = ColumnBlock.from_codes(
            np.array([0, -1, 1], dtype=np.int32), ("a", "b")
        )
        assert block.null_mask is not None
        assert block.null_mask.tolist() == [False, True, False]
        assert block.to_pylist() == ["a", None, "b"]

    def test_slice_stays_in_code_space(self):
        block = ColumnBlock.build(str, ["a", "b", "a", "c"] * 4)
        window = block[1:3]
        assert window.is_dictionary
        assert window.dictionary == block.dictionary
        assert window.codes.base is not None  # zero-copy
        assert window.to_pylist() == ["b", "a"]

    def test_concat_merges_dictionaries(self):
        merged = ColumnBlock.concat([
            ColumnBlock.build(str, ["a", "b", "a", "b"]),
            ColumnBlock.build(str, ["b", "c", None, "b"]),
        ])
        assert merged.is_dictionary
        assert merged.to_pylist() == [
            "a", "b", "a", "b", "b", "c", None, "b",
        ]
        assert set(merged.dictionary) == {"a", "b", "c"}

    def test_concat_identical_dictionaries_skips_remap(self):
        left = ColumnBlock.build(str, ["a", "b", "a", "b"])
        right = ColumnBlock.build(str, ["b", "a", "b", "a"])
        merged = ColumnBlock.concat([left, right])
        assert merged.dictionary == left.dictionary
        assert merged.to_pylist() == list("abab" "baba")

    def test_decoded_values_match_codes(self):
        block = ColumnBlock.build(str, ["b", None, "a"] * 8)
        decoded = block.values
        assert decoded.dtype == object
        assert decoded.tolist() == block.to_pylist()


class TestFactorizeBlock:
    def assert_matches_np_unique(self, block, raw):
        uniq, inverse = factorize_block(block)
        ref_uniq, ref_inverse = np.unique(
            np.array(raw, dtype=object), return_inverse=True
        )
        assert uniq.tolist() == ref_uniq.tolist()
        assert inverse.tolist() == ref_inverse.tolist()

    def test_dictionary_block_matches_np_unique(self):
        raw = ["b", "a", "c", "a", "b"] * 4
        self.assert_matches_np_unique(ColumnBlock.build(str, raw), raw)

    def test_plain_block_matches_np_unique(self):
        raw = [f"v{i:02d}" for i in range(40)]  # too wide to encode
        block = ColumnBlock.build(str, raw)
        assert not block.is_dictionary
        self.assert_matches_np_unique(block, raw)

    def test_sliced_block_excludes_absent_entries(self):
        # The slice shares the parent's full dictionary; entries not
        # present in the slice must not leak into the unique set.
        block = ColumnBlock.build(str, ["a", "b", "c", "a"] * 4)
        window = block[0:2]  # only "a", "b"
        self.assert_matches_np_unique(window, ["a", "b"])

    def test_single_name_block(self):
        raw = ["only"] * 12
        self.assert_matches_np_unique(ColumnBlock.build(str, raw), raw)

"""Tests for the MaxCompute-like table store."""

import pytest

from repro.storage.schema import Column, Schema, SchemaError
from repro.storage.table import Table, TableNotFoundError, TableStore


def make_table() -> Table:
    schema = Schema([Column("vm", str), Column("value", float)])
    return Table("indicators", schema)


class TestTable:
    def test_append_and_scan(self):
        table = make_table()
        assert table.append([{"vm": "a", "value": 0.1}]) == 1
        assert table.rows() == [{"vm": "a", "value": 0.1}]

    def test_append_validates_all_or_nothing(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.append([{"vm": "a", "value": 0.1}, {"vm": "b"}])
        assert table.count() == 0

    def test_partitioned_writes(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}], partition="20240101")
        table.append([{"vm": "b", "value": 0.2}], partition="20240102")
        assert table.partitions == ["20240101", "20240102"]
        assert table.count(partition="20240101") == 1
        assert [r["vm"] for r in table.scan(partition="20240102")] == ["b"]

    def test_overwrite_partition_is_idempotent(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}], partition="d")
        table.overwrite_partition([{"vm": "b", "value": 0.5}], partition="d")
        table.overwrite_partition([{"vm": "b", "value": 0.5}], partition="d")
        assert table.rows(partition="d") == [{"vm": "b", "value": 0.5}]

    def test_drop_partition(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}], partition="d")
        table.drop_partition("d")
        table.drop_partition("missing")  # no-op
        assert table.count() == 0

    def test_scan_with_predicate(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}, {"vm": "b", "value": 0.9}])
        hot = list(table.scan(lambda r: r["value"] > 0.5))
        assert [r["vm"] for r in hot] == ["b"]

    def test_scan_returns_copies(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}])
        row = next(table.scan())
        row["value"] = 999.0
        assert table.rows()[0]["value"] == 0.1

    def test_scan_missing_partition_is_empty(self):
        assert list(make_table().scan(partition="nope")) == []


class TestTableStore:
    def test_create_and_get(self):
        store = TableStore()
        schema = Schema([Column("x", int)])
        table = store.create("t", schema)
        assert store.get("t") is table
        assert "t" in store
        assert store.names() == ["t"]

    def test_duplicate_create_rejected(self):
        store = TableStore()
        schema = Schema([Column("x", int)])
        store.create("t", schema)
        with pytest.raises(SchemaError, match="already exists"):
            store.create("t", schema)

    def test_if_not_exists_returns_existing(self):
        store = TableStore()
        schema = Schema([Column("x", int)])
        first = store.create("t", schema)
        second = store.create("t", schema, if_not_exists=True)
        assert first is second

    def test_missing_table_raises(self):
        with pytest.raises(TableNotFoundError):
            TableStore().get("nope")

    def test_drop(self):
        store = TableStore()
        store.create("t", Schema([Column("x", int)]))
        store.drop("t")
        store.drop("t")  # no-op
        assert "t" not in store

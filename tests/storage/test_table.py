"""Tests for the MaxCompute-like table store."""

import numpy as np
import pytest

from repro.storage.schema import Column, Schema, SchemaError
from repro.storage.table import Table, TableNotFoundError, TableStore


def make_table() -> Table:
    schema = Schema([Column("vm", str), Column("value", float)])
    return Table("indicators", schema)


class TestTable:
    def test_append_and_scan(self):
        table = make_table()
        assert table.append([{"vm": "a", "value": 0.1}]) == 1
        assert table.rows() == [{"vm": "a", "value": 0.1}]

    def test_append_validates_all_or_nothing(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.append([{"vm": "a", "value": 0.1}, {"vm": "b"}])
        assert table.count() == 0

    def test_partitioned_writes(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}], partition="20240101")
        table.append([{"vm": "b", "value": 0.2}], partition="20240102")
        assert table.partitions == ["20240101", "20240102"]
        assert table.count(partition="20240101") == 1
        assert [r["vm"] for r in table.scan(partition="20240102")] == ["b"]

    def test_overwrite_partition_is_idempotent(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}], partition="d")
        table.overwrite_partition([{"vm": "b", "value": 0.5}], partition="d")
        table.overwrite_partition([{"vm": "b", "value": 0.5}], partition="d")
        assert table.rows(partition="d") == [{"vm": "b", "value": 0.5}]

    def test_drop_partition(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}], partition="d")
        table.drop_partition("d")
        table.drop_partition("missing")  # no-op
        assert table.count() == 0

    def test_scan_with_predicate(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}, {"vm": "b", "value": 0.9}])
        hot = list(table.scan(lambda r: r["value"] > 0.5))
        assert [r["vm"] for r in hot] == ["b"]

    def test_scan_returns_copies(self):
        table = make_table()
        table.append([{"vm": "a", "value": 0.1}])
        row = next(table.scan())
        row["value"] = 999.0
        assert table.rows()[0]["value"] == 0.1

    def test_scan_missing_partition_is_empty(self):
        assert list(make_table().scan(partition="nope")) == []

    def test_empty_append_is_a_noop(self):
        """Regression: an empty append must not create a phantom
        partition (``setdefault`` used to)."""
        table = make_table()
        assert table.append([], partition="ghost") == 0
        assert table.partitions == []
        assert table.append_columns({}, partition="ghost") == 0
        assert table.partitions == []

    def test_overwrite_keeps_empty_partition(self):
        table = make_table()
        table.overwrite_partition([], partition="d")
        assert table.partitions == ["d"]
        assert table.rows(partition="d") == []


class TestColumnarReads:
    def make_table(self) -> Table:
        schema = Schema([
            Column("vm", str), Column("value", float),
            Column("note", str, nullable=True),
        ])
        table = Table("t", schema)
        table.append([
            {"vm": "a", "value": 0.1},
            {"vm": "b", "value": 0.9, "note": "hot"},
        ], partition="p1")
        table.append([{"vm": "c", "value": 0.5}], partition="p2")
        return table

    def test_columns_single_partition(self):
        blocks = self.make_table().columns("p1")
        assert blocks["vm"].to_pylist() == ["a", "b"]
        assert blocks["value"].values.dtype == np.float64
        assert blocks["note"].to_pylist() == [None, "hot"]

    def test_columns_all_partitions_concat_sorted(self):
        blocks = self.make_table().columns()
        assert blocks["vm"].to_pylist() == ["a", "b", "c"]

    def test_column_pruning(self):
        blocks = self.make_table().columns("p1", ["value"])
        assert list(blocks) == ["value"]

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self.make_table().columns("p1", ["nope"])

    def test_missing_partition_returns_empty_blocks(self):
        blocks = self.make_table().columns("nope", ["value"])
        assert len(blocks["value"]) == 0
        assert blocks["value"].values.dtype == np.float64

    def test_zero_copy_single_partition(self):
        table = self.make_table()
        blocks = table.columns("p1", ["value"])
        again = table.columns("p1", ["value"])
        assert blocks["value"] is again["value"]

    def test_predicate_filters_rows(self):
        table = self.make_table()
        blocks = table.columns(
            "p1", ["vm"], predicate=lambda c: np.asarray(c["value"]) > 0.5
        )
        assert blocks["vm"].to_pylist() == ["b"]

    def test_predicate_bad_mask_shape_rejected(self):
        table = self.make_table()
        with pytest.raises(ValueError, match="mask has shape"):
            table.columns("p1", predicate=lambda c: np.array([True]))

    def test_column_batches_balanced(self):
        table = make_table()
        table.append([{"vm": f"v{i}", "value": float(i)} for i in range(7)])
        batches = table.column_batches(batches=3)
        assert [len(b) for b in batches] == [3, 2, 2]
        flattened = [
            vm for batch in batches for vm in batch.column("vm").to_pylist()
        ]
        assert flattened == [f"v{i}" for i in range(7)]

    def test_row_and_column_reads_agree(self):
        table = self.make_table()
        rows = table.rows()
        blocks = table.columns()
        rebuilt = [
            dict(zip(blocks, values))
            for values in zip(*(blocks[n].to_pylist() for n in blocks))
        ]
        assert rebuilt == rows


class _CountingTable(Table):
    """Instrumented table recording every block access."""

    def __init__(self, name, schema):
        super().__init__(name, schema)
        self.loads: list[tuple[str, tuple[str, ...]]] = []

    def _load_blocks(self, partition, names):
        self.loads.append((partition, tuple(names)))
        return super()._load_blocks(partition, names)


class TestPredicatePushdownPruning:
    """Satellite: pruned reads must never touch other partitions'
    blocks, and column pruning must never materialize other columns."""

    def make_counting_table(self) -> _CountingTable:
        schema = Schema([Column("vm", str), Column("value", float)])
        table = _CountingTable("t", schema)
        for partition in ("p1", "p2", "p3"):
            table.append(
                [{"vm": f"{partition}-vm", "value": 0.5}], partition
            )
        table.loads.clear()
        return table

    def test_partition_pruned_read_touches_one_partition(self):
        table = self.make_counting_table()
        table.columns("p2", ["value"])
        assert {partition for partition, _ in table.loads} == {"p2"}

    def test_column_pruned_read_touches_requested_columns_only(self):
        table = self.make_counting_table()
        table.columns("p1", ["value"])
        assert all(names == ("value",) for _, names in table.loads)

    def test_predicate_pushdown_stays_partition_pruned(self):
        table = self.make_counting_table()
        table.columns(
            "p3", ["vm"], predicate=lambda c: np.asarray(c["value"]) > 0.0
        )
        touched = {partition for partition, _ in table.loads}
        assert touched == {"p3"}
        # The predicate lazily loaded "value", the result "vm" — but
        # never any column of another partition.
        loaded_columns = {n for _, names in table.loads for n in names}
        assert loaded_columns == {"vm", "value"}

    def test_column_batches_partition_pruned(self):
        table = self.make_counting_table()
        table.column_batches("p1", ["value"], batches=4)
        assert {partition for partition, _ in table.loads} == {"p1"}

    def test_counting_table_registers_in_store(self):
        table = self.make_counting_table()
        store = TableStore()
        assert store.add(table) is table
        assert store.get("t") is table
        with pytest.raises(SchemaError, match="already exists"):
            store.add(table)
        assert store.add(table, if_not_exists=True) is table


class TestTableStore:
    def test_create_and_get(self):
        store = TableStore()
        schema = Schema([Column("x", int)])
        table = store.create("t", schema)
        assert store.get("t") is table
        assert "t" in store
        assert store.names() == ["t"]

    def test_duplicate_create_rejected(self):
        store = TableStore()
        schema = Schema([Column("x", int)])
        store.create("t", schema)
        with pytest.raises(SchemaError, match="already exists"):
            store.create("t", schema)

    def test_if_not_exists_returns_existing(self):
        store = TableStore()
        schema = Schema([Column("x", int)])
        first = store.create("t", schema)
        second = store.create("t", schema, if_not_exists=True)
        assert first is second

    def test_missing_table_raises(self):
        with pytest.raises(TableNotFoundError):
            TableStore().get("nope")

    def test_drop(self):
        store = TableStore()
        store.create("t", Schema([Column("x", int)]))
        store.drop("t")
        store.drop("t")  # no-op
        assert "t" not in store

"""Tests for the chunked v3 layout and spill-to-disk tables."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.chunked import (
    LazyChunkPartition,
    SpillTable,
    load_table_store_chunked,
    save_table_store_chunked,
)
from repro.storage.persistence import load_table_store, save_table_store
from repro.storage.schema import Column, Schema
from repro.storage.table import Table, TableStore


def sample_schema() -> Schema:
    return Schema([
        Column("vm", str), Column("cdi", float),
        Column("note", str, nullable=True), Column("n", int),
    ])


def sample_rows(count: int, offset: int = 0) -> list[dict]:
    return [
        {
            "vm": f"vm-{(offset + i) % 5}",
            "cdi": (offset + i) / 7.0,
            "note": None if i % 3 == 0 else f"note-{i % 4}",
            "n": offset + i,
        }
        for i in range(count)
    ]


def make_store(rows: int = 20) -> TableStore:
    store = TableStore()
    table = store.create("t", sample_schema())
    table.append(sample_rows(rows), partition="d1")
    table.append(sample_rows(rows // 2, offset=100), partition="d2")
    store.create("empty", Schema([Column("k", int)]))
    return store


def store_rows(store: TableStore) -> dict:
    return {
        name: {
            partition: store.get(name).rows(partition=partition)
            for partition in store.get(name).partitions
        }
        for name in store.names()
    }


class TestChunkedRoundtrip:
    def test_roundtrip_equals_original(self, tmp_path):
        path = tmp_path / "store.jsonl"
        original = make_store()
        save_table_store_chunked(original, path, chunk_rows=3)
        restored = load_table_store_chunked(path)
        assert store_rows(restored) == store_rows(original)
        assert restored.get("t").schema.column("note").nullable
        assert restored.get("empty").count() == 0

    def test_autodetected_by_generic_loader(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store(make_store(), path, layout="chunked", chunk_rows=4)
        restored = load_table_store(path)
        assert store_rows(restored) == store_rows(make_store())

    def test_envelope_on_disk(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store_chunked(make_store(), path, chunk_rows=3)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "repro-table-store"
        assert header["version"] == 3
        assert header["layout"] == "chunked"
        assert json.loads(lines[-1])["record"] == "footer"
        # 20 rows at 3 per chunk -> 7 chunks for d1.
        footer = json.loads(lines[-1])
        assert len(footer["index"]["t"]["d1"]["chunks"]) == 7

    def test_deterministic_bytes(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        save_table_store_chunked(make_store(), first, chunk_rows=3)
        save_table_store_chunked(make_store(), second, chunk_rows=3)
        assert first.read_bytes() == second.read_bytes()

    def test_string_columns_persist_as_codes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store_chunked(make_store(), path, chunk_rows=100)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        partition = next(r for r in records
                         if r.get("record") == "partition"
                         and r["partition"] == "d1")
        assert set(partition["dictionaries"]) == {"vm", "note"}
        chunk = next(r for r in records
                     if r.get("record") == "chunk" and r["partition"] == "d1")
        assert all(isinstance(code, int) for code in chunk["columns"]["vm"])

    def test_atomic_save_leaves_no_scratch(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store(make_store(), path, layout="chunked", atomic=True)
        assert not (tmp_path / "store.jsonl.tmp").exists()
        assert store_rows(load_table_store(path)) == store_rows(make_store())


class TestLazyLoading:
    def test_partitions_attach_lazily(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store_chunked(make_store(), path, chunk_rows=3)
        table = load_table_store_chunked(path).get("t")
        part = table._partitions["d1"]
        assert isinstance(part, LazyChunkPartition)
        # Row counts come from the footer — no column touched yet.
        assert table.count("d1") == 20
        assert part._pending == {"vm", "cdi", "note", "n"}

    def test_only_requested_columns_materialize(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store_chunked(make_store(), path, chunk_rows=3)
        table = load_table_store_chunked(path).get("t")
        part = table._partitions["d1"]
        block = part.block("cdi")
        assert block.to_pylist() == [i / 7.0 for i in range(20)]
        assert "cdi" not in part._pending
        assert {"vm", "note", "n"} <= part._pending

    def test_loaded_dictionary_column_stays_encoded(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store_chunked(make_store(), path, chunk_rows=3)
        table = load_table_store_chunked(path).get("t")
        block = table._partitions["d1"].block("vm")
        assert block.is_dictionary
        assert block.to_pylist() == [f"vm-{i % 5}" for i in range(20)]

    def test_append_after_lazy_load(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store_chunked(make_store(), path, chunk_rows=3)
        table = load_table_store_chunked(path).get("t")
        table.append([{"vm": "vm-x", "cdi": 9.0, "note": None, "n": 999}],
                     partition="d1")
        assert table.count("d1") == 21
        assert table.rows(partition="d1")[-1]["n"] == 999


class TestCorruptionDetection:
    def save(self, tmp_path):
        path = tmp_path / "store.jsonl"
        save_table_store_chunked(make_store(), path, chunk_rows=3)
        return path

    def test_truncated_file_rejected(self, tmp_path):
        path = self.save(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])  # crash mid-footer
        with pytest.raises(ValueError, match="truncated"):
            load_table_store_chunked(path)

    def test_missing_footer_rejected(self, tmp_path):
        path = self.save(tmp_path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]))  # crash before the footer
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_table_store_chunked(path)

    def test_corrupt_chunk_record_rejected(self, tmp_path):
        path = self.save(tmp_path)
        # Same-length mutation keeps every byte offset valid.
        data = path.read_bytes().replace(
            b'"record": "chunk"', b'"record": "chonk"', 1
        )
        path.write_bytes(data)
        store = load_table_store_chunked(path)  # header+footer still fine
        with pytest.raises(ValueError, match="expected a chunk record"):
            store.get("t").rows(partition="d1")

    def test_footer_row_count_mismatch_rejected(self, tmp_path):
        path = self.save(tmp_path)
        lines = path.read_text().splitlines()
        footer = json.loads(lines[-1])
        footer["index"]["t"]["d1"]["chunks"] = (
            footer["index"]["t"]["d1"]["chunks"][:-1]
        )
        path.write_text("\n".join(lines[:-1] + [json.dumps(footer)]) + "\n")
        store = load_table_store_chunked(path)
        with pytest.raises(ValueError, match="footer declares"):
            store.get("t").rows(partition="d1")

    def test_code_out_of_dictionary_rejected(self, tmp_path):
        path = self.save(tmp_path)
        lines = path.read_text().splitlines()
        # Shrink d1's vm dictionary to one entry; codes now overflow it.
        # The partition record is shortened, so rebuild the offsets by
        # rewriting every line and a fresh footer.
        records = [json.loads(line) for line in lines]
        for record in records:
            if (record.get("record") == "partition"
                    and record["partition"] == "d1"):
                record["dictionaries"]["vm"] = ["vm-0"]
        footer = records[-1]
        body = records[:-1]
        rewritten = path.with_name("rewritten.jsonl")
        with open(rewritten, "w", encoding="utf-8") as handle:
            offsets = []
            for position, record in enumerate(body):
                if position > 0:  # skip the header line
                    offsets.append(handle.tell())
                handle.write(json.dumps(record) + "\n")
            index = footer["index"]
            cursor = 0
            for name in index:
                for partition, entry in index[name].items():
                    entry["offset"] = offsets[cursor]
                    entry["chunks"] = offsets[
                        cursor + 1:cursor + 1 + len(entry["chunks"])
                    ]
                    cursor += 1 + len(entry["chunks"])
            handle.write(json.dumps(footer) + "\n")
        store = load_table_store_chunked(rewritten)
        with pytest.raises(ValueError, match="outside its dictionary"):
            store.get("t").rows(partition="d1")


class TestChunkedProperty:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "dd"]),
                st.floats(allow_nan=False, allow_infinity=False),
                st.one_of(st.none(), st.text(alphabet="xyz", max_size=3)),
                st.integers(min_value=-(2**40), max_value=2**40),
            ),
            max_size=50,
        ),
        chunk_rows=st.integers(min_value=1, max_value=64),
    )
    def test_chunked_load_equals_whole_store_load(self, tmp_path, rows,
                                                  chunk_rows):
        """Arbitrary chunk sizes produce the same logical store as the
        whole-file columnar layout."""
        store = TableStore()
        table = store.create("t", sample_schema())
        table.append([
            {"vm": vm, "cdi": cdi, "note": note, "n": n}
            for vm, cdi, note, n in rows
        ], partition="day")
        chunked = tmp_path / "chunked.jsonl"
        whole = tmp_path / "whole.json"
        save_table_store(store, chunked, layout="chunked",
                         chunk_rows=chunk_rows)
        save_table_store(store, whole)
        assert (store_rows(load_table_store(chunked))
                == store_rows(load_table_store(whole))
                == store_rows(store))


class TestSpillTable:
    def fill(self, table: Table, batches: int = 6, batch_rows: int = 8):
        for batch in range(batches):
            table.append(sample_rows(batch_rows, offset=batch * batch_rows),
                         partition="d1")

    def test_matches_plain_table(self, tmp_path):
        plain = Table("t", sample_schema())
        spill = SpillTable("t", sample_schema(), spool_dir=tmp_path,
                           spill_bytes=512)
        self.fill(plain)
        self.fill(spill)
        part = spill._partitions["d1"]
        assert part.spilled_rows > 0  # pressure actually spilled
        assert part.spool_path.exists()
        assert spill.count("d1") == plain.count("d1")
        assert spill.rows(partition="d1") == plain.rows(partition="d1")
        columns = spill.columns("d1")
        for name, block in plain.columns("d1").items():
            assert columns[name].to_pylist() == block.to_pylist()

    def test_spilled_dictionary_columns_roundtrip(self, tmp_path):
        spill = SpillTable("t", sample_schema(), spool_dir=tmp_path,
                           spill_bytes=256)
        self.fill(spill)
        block = spill.columns("d1")["vm"]
        assert block.is_dictionary
        assert block.to_pylist() == [
            row["vm"] for row in spill.rows(partition="d1")
        ]

    def test_below_threshold_never_spills(self, tmp_path):
        spill = SpillTable("t", sample_schema(), spool_dir=tmp_path,
                           spill_bytes=1 << 20)
        spill.append(sample_rows(4), partition="d1")
        part = spill._partitions["d1"]
        assert part.spilled_rows == 0
        assert not part.spool_path.exists()

    def test_drop_partition_removes_spool(self, tmp_path):
        spill = SpillTable("t", sample_schema(), spool_dir=tmp_path,
                           spill_bytes=256)
        self.fill(spill)
        spool = spill._partitions["d1"].spool_path
        assert spool.exists()
        spill.drop_partition("d1")
        assert not spool.exists()

    def test_overwrite_partition_resets_spool(self, tmp_path):
        spill = SpillTable("t", sample_schema(), spool_dir=tmp_path,
                           spill_bytes=256)
        self.fill(spill)
        old_spool = spill._partitions["d1"].spool_path
        spill.overwrite_partition(sample_rows(2), partition="d1")
        assert not old_spool.exists()
        assert spill.count("d1") == 2

    def test_close_removes_every_spool(self, tmp_path):
        spill = SpillTable("t", sample_schema(), spool_dir=tmp_path,
                           spill_bytes=256)
        self.fill(spill)
        spill.append(sample_rows(40), partition="d2")
        spill.close()
        assert not list(tmp_path.glob("*.spool.jsonl"))

    def test_spill_table_persists_through_chunked_layout(self, tmp_path):
        store = TableStore()
        spill = SpillTable("t", sample_schema(),
                           spool_dir=tmp_path / "spool", spill_bytes=256)
        store.add(spill)
        self.fill(spill)
        path = tmp_path / "store.jsonl"
        save_table_store(store, path, layout="chunked", chunk_rows=5)
        restored = load_table_store(path)
        assert restored.get("t").rows(partition="d1") == spill.rows(
            partition="d1"
        )

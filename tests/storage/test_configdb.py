"""Tests for the MySQL-like versioned config store."""

import pytest

from repro.storage.configdb import (
    ConfigDB,
    ConfigNotFoundError,
    StaleVersionError,
)


class TestConfigDB:
    def test_put_and_get_latest(self):
        db = ConfigDB()
        db.put("weights", {"slow_io": 2})
        record = db.get("weights")
        assert record.version == 1
        assert record.value == {"slow_io": 2}

    def test_versions_increment(self):
        db = ConfigDB()
        db.put("weights", {"v": 1})
        db.put("weights", {"v": 2})
        assert db.get("weights").version == 2
        assert db.get("weights", version=1).value == {"v": 1}

    def test_missing_key(self):
        with pytest.raises(ConfigNotFoundError):
            ConfigDB().get("nope")

    def test_missing_version(self):
        db = ConfigDB()
        db.put("k", 1)
        with pytest.raises(ConfigNotFoundError):
            db.get("k", version=7)

    def test_optimistic_concurrency(self):
        db = ConfigDB()
        db.put("k", 1)
        db.put("k", 2, expected_version=1)
        with pytest.raises(StaleVersionError):
            db.put("k", 3, expected_version=1)

    def test_non_serializable_rejected(self):
        db = ConfigDB()
        with pytest.raises(TypeError):
            db.put("k", object())

    def test_stored_value_isolated_from_caller(self):
        db = ConfigDB()
        value = {"nested": [1, 2]}
        db.put("k", value)
        value["nested"].append(3)
        assert db.get("k").value == {"nested": [1, 2]}

    def test_copy_value_isolated_from_store(self):
        db = ConfigDB()
        db.put("k", {"nested": [1]})
        copied = db.get("k").copy_value()
        copied["nested"].append(2)
        assert db.get("k").value == {"nested": [1]}

    def test_history_and_keys(self):
        db = ConfigDB()
        db.put("a", 1)
        db.put("a", 2)
        db.put("b", 1)
        assert [r.version for r in db.history("a")] == [1, 2]
        assert db.keys() == ["a", "b"]
        assert "a" in db
        with pytest.raises(ConfigNotFoundError):
            db.history("zzz")

"""Tests for the SLS-like log store."""

import pytest

from repro.storage.logstore import LogEntry, LogStore


class TestLogStore:
    def test_append_and_query_range(self):
        store = LogStore()
        store.append(10.0, name="slow_io", target="vm-1")
        store.append(20.0, name="vm_down", target="vm-2")
        store.append(30.0, name="slow_io", target="vm-1")
        hits = list(store.query(10.0, 30.0))
        assert [e.time for e in hits] == [10.0, 20.0]

    def test_query_end_exclusive_start_inclusive(self):
        store = LogStore()
        store.append(10.0, name="a")
        hits_in = list(store.query(10.0, 10.1))
        hits_out = list(store.query(9.0, 10.0))
        assert len(hits_in) == 1
        assert len(hits_out) == 0

    def test_field_filters(self):
        store = LogStore()
        store.append(1.0, name="slow_io", target="vm-1")
        store.append(2.0, name="slow_io", target="vm-2")
        hits = list(store.query(0.0, 10.0, target="vm-2"))
        assert len(hits) == 1
        assert hits[0].get("target") == "vm-2"

    def test_predicate_filter(self):
        store = LogStore()
        store.append(1.0, level=3)
        store.append(2.0, level=1)
        hits = list(store.query(0.0, 10.0, predicate=lambda e: e.get("level") > 2))
        assert [e.time for e in hits] == [1.0]

    def test_out_of_order_appends_sorted(self):
        store = LogStore()
        store.append(30.0, name="c")
        store.append(10.0, name="a")
        store.append(20.0, name="b")
        assert [e.get("name") for e in store.query(0.0, 100.0)] == ["a", "b", "c"]

    def test_count(self):
        store = LogStore()
        for t in range(5):
            store.append(float(t), name="x")
        assert store.count(1.0, 4.0) == 3

    def test_reversed_range_rejected(self):
        with pytest.raises(ValueError):
            list(LogStore().query(5.0, 1.0))

    def test_retention_expires_old_entries(self):
        store = LogStore(retention=100.0)
        store.append(0.0, name="old")
        store.append(50.0, name="mid")
        store.append(200.0, name="new")  # cutoff 100: drops t=0, t=50
        assert len(store) == 1
        assert store.latest_time == 200.0

    def test_explicit_expire(self):
        store = LogStore(retention=10.0)
        store.append(0.0, name="old")
        assert store.expire(now=100.0) == 1
        assert len(store) == 0

    def test_invalid_retention(self):
        with pytest.raises(ValueError):
            LogStore(retention=0.0)

    def test_extend_rows(self):
        store = LogStore()
        count = store.extend(rows=[(1.0, {"name": "a"}), (2.0, {"name": "b"})])
        assert count == 2
        assert len(store) == 2


class TestLogEntry:
    def test_get_default(self):
        entry = LogEntry(time=1.0, fields={"a": 1})
        assert entry.get("a") == 1
        assert entry.get("b", "dflt") == "dflt"


class TestPinnedQueryMutation:
    """Documented-and-raise mutation semantics: a live ``query``
    iterator detects any store mutation deterministically instead of
    silently surfacing (or skipping) concurrent appends."""

    def test_append_during_iteration_raises(self):
        store = LogStore()
        store.append(10.0, name="a")
        store.append(20.0, name="b")
        it = store.query(0.0, 100.0)
        next(it)
        store.append(30.0, name="c")
        with pytest.raises(RuntimeError, match="mutated during query"):
            next(it)

    def test_expire_during_iteration_raises(self):
        store = LogStore()
        store.append(10.0, name="a")
        store.append(20.0, name="b")
        it = store.query(0.0, 100.0)
        next(it)
        store.expire(store._retention + 15.0)  # drops the first entry
        with pytest.raises(RuntimeError, match="mutated during query"):
            next(it)

    def test_exhausted_iterator_then_append_is_fine(self):
        store = LogStore()
        store.append(10.0, name="a")
        hits = list(store.query(0.0, 100.0))
        assert len(hits) == 1
        store.append(20.0, name="b")  # no live iterator → no error
        assert [e.time for e in store.query(0.0, 100.0)] == [10.0, 20.0]

    def test_error_message_points_to_cursor_protocol(self):
        store = LogStore()
        store.append(10.0, name="a")
        store.append(20.0, name="b")
        it = store.query(0.0, 100.0)
        next(it)  # the snapshot is taken lazily, at the first step
        store.append(30.0, name="c")
        with pytest.raises(RuntimeError, match="appended_after"):
            next(it)

    def test_mutation_count_bumps_on_append_and_expire(self):
        store = LogStore(retention=100.0)
        base = store.mutation_count
        store.append(10.0, name="a")
        assert store.mutation_count == base + 1
        store.append(500.0, name="b")  # append + opportunistic expiry
        assert store.mutation_count == base + 3


class TestCursorProtocol:
    """``appended_after``: the tailer-facing read path is materialized
    and arrival-ordered, so it coexists with appends by design."""

    def test_arrival_order_independent_of_timestamps(self):
        store = LogStore()
        store.append(30.0, n=0)
        store.append(10.0, n=1)  # sorts before in time, after in seq
        store.append(20.0, n=2)
        batch = store.appended_after(-1)
        assert [entry.get("n") for _, entry in batch] == [0, 1, 2]
        assert [seq for seq, _ in batch] == [0, 1, 2]

    def test_exactly_once_with_cursor(self):
        store = LogStore()
        store.append(10.0, n=0)
        store.append(20.0, n=1)
        first = store.appended_after(-1)
        cursor = first[-1][0]
        assert store.appended_after(cursor) == []
        store.append(5.0, n=2)  # older timestamp, newer arrival
        fresh = store.appended_after(cursor)
        assert [entry.get("n") for _, entry in fresh] == [2]

    def test_batch_is_immune_to_later_appends(self):
        store = LogStore()
        store.append(10.0, n=0)
        batch = store.appended_after(-1)
        store.append(20.0, n=1)
        assert len(batch) == 1  # materialized, not a live view

    def test_expired_sequences_are_skipped(self):
        store = LogStore(retention=100.0)
        store.append(10.0, n=0)
        store.append(20.0, n=1)
        store.append(500.0, n=2)  # expires seqs 0 and 1
        batch = store.appended_after(-1)
        assert [seq for seq, _ in batch] == [2]

    def test_last_seq_tracks_arrivals_not_survivors(self):
        store = LogStore(retention=100.0)
        assert store.last_seq == -1
        store.append(10.0, n=0)
        store.append(500.0, n=1)  # expires seq 0
        assert store.last_seq == 1
        assert len(store) == 1

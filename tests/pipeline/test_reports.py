"""Tests for daily stability report rendering (Section VI-A)."""

import pytest

from repro.analytics.rca import RootCause
from repro.pipeline.monitor import MonitorFinding
from repro.pipeline.reports import (
    DailyReportInput,
    render_daily_report,
    top_event_contributors,
)


def vm_row(vm: str, performance: float = 0.0, unavailability: float = 0.0):
    return {"vm": vm, "unavailability": unavailability,
            "performance": performance, "control_plane": 0.0,
            "service_time": 86400.0}


def resolver(vm: str):
    region = "region-1" if vm.endswith(("1", "3")) else "region-0"
    return {"vm": vm, "region": region, "az": f"{region}/az-a"}


class TestTopEventContributors:
    def test_ranked_by_fleet_cdi(self):
        rows = [
            {"vm": "a", "event": "slow_io", "cdi": 0.5, "service_time": 100.0},
            {"vm": "b", "event": "slow_io", "cdi": 0.1, "service_time": 100.0},
            {"vm": "a", "event": "vm_down", "cdi": 0.9, "service_time": 100.0},
        ]
        top = top_event_contributors(rows)
        assert top[0][0] == "vm_down"
        assert top[1] == ("slow_io", pytest.approx(0.3))

    def test_limit_and_zero_filter(self):
        rows = [
            {"vm": "a", "event": f"e{i}", "cdi": 0.1 * i,
             "service_time": 10.0}
            for i in range(5)
        ]
        top = top_event_contributors(rows, limit=2)
        assert len(top) == 2
        assert all(value > 0 for _, value in top)

    def test_empty(self):
        assert top_event_contributors([]) == []


class TestRenderDailyReport:
    def test_fleet_section(self):
        report = render_daily_report(DailyReportInput(
            day="20240101",
            vm_rows=[vm_row("vm-0", performance=0.2), vm_row("vm-1")],
        ))
        assert "DAILY STABILITY REPORT — 20240101" in report
        assert "CDI-P  0.100000" in report
        assert "monitor findings: none" in report

    def test_day_over_day_movement(self):
        report = render_daily_report(DailyReportInput(
            day="d2",
            vm_rows=[vm_row("vm-0", performance=0.2)],
            previous_vm_rows=[vm_row("vm-0", performance=0.1)],
        ))
        assert "▲100%" in report

    def test_movement_down(self):
        report = render_daily_report(DailyReportInput(
            day="d2",
            vm_rows=[vm_row("vm-0", performance=0.1)],
            previous_vm_rows=[vm_row("vm-0", performance=0.2)],
        ))
        assert "▼50%" in report

    def test_new_damage_marker(self):
        report = render_daily_report(DailyReportInput(
            day="d2",
            vm_rows=[vm_row("vm-0", performance=0.1)],
            previous_vm_rows=[vm_row("vm-0", performance=0.0)],
        ))
        assert "(new)" in report

    def test_dimension_breakdown(self):
        rows = [vm_row("vm-0"), vm_row("vm-1", performance=0.4),
                vm_row("vm-2"), vm_row("vm-3", performance=0.2)]
        report = render_daily_report(
            DailyReportInput(day="d", vm_rows=rows),
            resolver=resolver,
        )
        assert "most damaged by region:" in report
        assert "region-1=0.3" in report

    def test_event_contributors_section(self):
        report = render_daily_report(DailyReportInput(
            day="d",
            vm_rows=[vm_row("vm-0", performance=0.1)],
            event_rows=[{"vm": "vm-0", "event": "slow_io", "cdi": 0.1,
                         "service_time": 86400.0}],
        ))
        assert "top event contributors:" in report
        assert "slow_io: 0.100000" in report

    def test_findings_section_with_rca(self):
        finding = MonitorFinding(
            curve="fleet.performance", day_index=1, day="d",
            direction="spike", value=0.3,
            root_cause=RootCause(dimension="region", values=("region-1",),
                                 explanatory_power=1.0, surprise=0.5),
        )
        report = render_daily_report(DailyReportInput(
            day="d", vm_rows=[vm_row("vm-0", performance=0.3)],
            findings=[finding],
        ))
        assert "SPIKE on fleet.performance" in report
        assert "root cause region=['region-1']" in report

    def test_findings_from_other_days_excluded(self):
        finding = MonitorFinding(
            curve="fleet.performance", day_index=0, day="other",
            direction="spike", value=0.3,
        )
        report = render_daily_report(DailyReportInput(
            day="d", vm_rows=[vm_row("vm-0")], findings=[finding],
        ))
        assert "monitor findings: none" in report

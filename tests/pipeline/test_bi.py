"""Tests for BI aggregation and drill-down (Section V)."""

import pytest

from repro.pipeline.bi import (
    aggregate_by,
    drill_down,
    event_level_series,
    global_report,
)
from repro.telemetry.topology import build_fleet


def make_rows_and_fleet():
    fleet = build_fleet(seed=0, regions=2, azs_per_region=2,
                        clusters_per_az=1, ncs_per_cluster=2, vms_per_nc=2)
    rows = []
    for index, vm_id in enumerate(fleet.iter_vm_ids()):
        region = fleet.region_of(vm_id)
        # Damage concentrated in region-1.
        value = 0.2 if region == "region-1" else 0.0
        rows.append({
            "vm": vm_id, "unavailability": value, "performance": value / 2,
            "control_plane": 0.0, "service_time": 86400.0,
        })
    return rows, fleet


class TestGlobalReport:
    def test_formula4_over_all_vms(self):
        rows, _ = make_rows_and_fleet()
        report = global_report(rows)
        region1_fraction = sum(
            1 for r in rows if r["unavailability"] > 0
        ) / len(rows)
        assert report.unavailability == pytest.approx(0.2 * region1_fraction)


class TestAggregateBy:
    def test_per_region(self):
        rows, fleet = make_rows_and_fleet()
        by_region = aggregate_by(rows, fleet.dimensions_of, "region")
        assert set(by_region) == {"region-0", "region-1"}
        assert by_region["region-0"].unavailability == 0.0
        assert by_region["region-1"].unavailability == pytest.approx(0.2)

    def test_rollup_consistent_with_global(self):
        """Region roll-ups re-aggregated must equal the global figure."""
        from repro.core.indicator import aggregate

        rows, fleet = make_rows_and_fleet()
        by_region = aggregate_by(rows, fleet.dimensions_of, "region")
        rolled = aggregate(
            (report.service_time, report.unavailability)
            for report in by_region.values()
        )
        assert rolled == pytest.approx(global_report(rows).unavailability)

    def test_unknown_dimension_yields_empty(self):
        rows, fleet = make_rows_and_fleet()
        assert aggregate_by(rows, fleet.dimensions_of, "nonexistent") == {}


class TestDrillDown:
    def test_region_to_az(self):
        rows, fleet = make_rows_and_fleet()
        azs = drill_down(rows, fleet.dimensions_of,
                         [("region", "region-1")], "az")
        assert all(az.startswith("region-1") for az in azs)
        for report in azs.values():
            assert report.unavailability == pytest.approx(0.2)

    def test_pinned_path_filters(self):
        rows, fleet = make_rows_and_fleet()
        azs = drill_down(rows, fleet.dimensions_of,
                         [("region", "region-0")], "az")
        total = sum(r.service_time for r in azs.values())
        vm_count = sum(
            1 for row in rows
            if fleet.region_of(row["vm"]) == "region-0"
        )
        assert total == pytest.approx(vm_count * 86400.0)


class TestEventLevelSeries:
    def test_daily_curve(self):
        rows_by_day = {
            "d1": [
                {"vm": "a", "event": "slow_io", "cdi": 0.1,
                 "service_time": 100.0},
                {"vm": "b", "event": "slow_io", "cdi": 0.3,
                 "service_time": 100.0},
                {"vm": "a", "event": "vm_down", "cdi": 0.9,
                 "service_time": 100.0},
            ],
            "d2": [
                {"vm": "a", "event": "slow_io", "cdi": 0.5,
                 "service_time": 100.0},
            ],
        }
        series = event_level_series(rows_by_day, "slow_io")
        assert series == [("d1", pytest.approx(0.2)), ("d2", pytest.approx(0.5))]

    def test_missing_event_gives_zeroes(self):
        series = event_level_series({"d1": []}, "slow_io")
        assert series == [("d1", 0.0)]

"""Unit tests for the multi-day backfill helper."""

import pytest

from repro.core.events import Event, EventCategory, Severity, default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.backfill import day_partitions, run_days
from repro.pipeline.daily import DailyCdiJob
from repro.scenarios.common import default_weights
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore

DAY = 86400.0


def make_job() -> DailyCdiJob:
    job = DailyCdiJob(EngineContext(parallelism=2), TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    return job


class TestDayPartitions:
    def test_labels(self):
        assert day_partitions(3) == ["day00", "day01", "day02"]

    def test_custom_prefix(self):
        assert day_partitions(2, prefix="2024-01-") == [
            "2024-01-00", "2024-01-01",
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            day_partitions(0)


class TestRunDays:
    def test_events_routed_per_day(self):
        job = make_job()
        services = {"vm-a": ServicePeriod(0.0, DAY)}

        def events_for_day(index, partition):
            if index == 2:
                # End timestamp late enough that the full measured
                # duration fits inside the service window.
                return [Event("vm_down", 10_000.0, "vm-a",
                              level=Severity.FATAL,
                              attributes={"duration": 8640.0})]
            return []

        result = run_days(job, events_for_day, services, days=4)
        curve = result.monitor.fleet_curve(EventCategory.UNAVAILABILITY)
        assert curve == [0.0, 0.0, pytest.approx(0.1), 0.0]
        assert [r.event_count for r in result.job_results] == [0, 0, 1, 0]

    def test_default_monitor_created(self):
        job = make_job()
        result = run_days(job, lambda i, p: [],
                          {"vm-a": ServicePeriod(0.0, DAY)}, days=2)
        assert result.monitor.days == ["day00", "day01"]

    def test_partitions_match_results(self):
        job = make_job()
        result = run_days(job, lambda i, p: [],
                          {"vm-a": ServicePeriod(0.0, DAY)}, days=3,
                          prefix="d")
        assert result.partitions == ("d00", "d01", "d02")
        assert len(result.job_results) == 3

"""Tests for the daily CDI job (the Spark application of Section V)."""

import pytest

from repro.core.events import Event, Severity, default_catalog
from repro.core.indicator import ServicePeriod
from repro.core.weights import expert_only_config
from repro.engine.dataset import EngineContext
from repro.pipeline.daily import (
    WEIGHTS_CONFIG_KEY,
    DailyCdiJob,
    event_to_row,
    row_to_event,
)
from repro.pipeline.tables import EVENT_CDI_TABLE, EVENTS_TABLE, VM_CDI_TABLE
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore

DAY = 86400.0


@pytest.fixture
def job() -> DailyCdiJob:
    job = DailyCdiJob(EngineContext(parallelism=2), TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(expert_only_config())
    return job


def make_events() -> list[Event]:
    return [
        Event("vm_down", 3600.0, "vm-a", expire_interval=600.0,
              level=Severity.FATAL, attributes={"duration": 1800.0}),
        Event("slow_io", 7200.0, "vm-a", expire_interval=600.0,
              level=Severity.CRITICAL),
        Event("vm_start_failed", 1000.0, "vm-b", expire_interval=600.0,
              level=Severity.CRITICAL),
    ]


class TestRowRoundtrip:
    def test_event_row_roundtrip(self):
        event = make_events()[0]
        assert row_to_event(event_to_row(event)) == event

    def test_roundtrip_without_duration(self):
        event = make_events()[1]
        restored = row_to_event(event_to_row(event))
        assert restored.duration_hint() is None
        assert restored == event


class TestDailyJob:
    def test_output_tables_created(self, job):
        assert EVENTS_TABLE in job._tables
        assert VM_CDI_TABLE in job._tables
        assert EVENT_CDI_TABLE in job._tables

    def test_run_produces_vm_rows(self, job):
        job.ingest_events(make_events(), "20240101")
        services = {
            "vm-a": ServicePeriod(0.0, DAY),
            "vm-b": ServicePeriod(0.0, DAY),
            "vm-quiet": ServicePeriod(0.0, DAY),
        }
        result = job.run("20240101", services)
        assert result.vm_count == 3
        assert result.event_count == 3
        rows = {r["vm"]: r for r in
                job._tables.get(VM_CDI_TABLE).rows("20240101")}
        # vm-a: 1800 s of unavailability (measured duration).
        assert rows["vm-a"]["unavailability"] == pytest.approx(1800.0 / DAY)
        assert rows["vm-a"]["performance"] > 0.0
        assert rows["vm-b"]["control_plane"] > 0.0
        # A quiet VM still contributes a zero row.
        assert rows["vm-quiet"]["unavailability"] == 0.0
        assert rows["vm-quiet"]["service_time"] == DAY

    def test_event_level_table(self, job):
        job.ingest_events(make_events(), "20240101")
        services = {"vm-a": ServicePeriod(0.0, DAY),
                    "vm-b": ServicePeriod(0.0, DAY)}
        job.run("20240101", services)
        rows = job._tables.get(EVENT_CDI_TABLE).rows("20240101")
        keys = {(r["vm"], r["event"]) for r in rows}
        assert ("vm-a", "vm_down") in keys
        assert ("vm-a", "slow_io") in keys
        assert ("vm-b", "vm_start_failed") in keys
        for row in rows:
            assert row["cdi"] > 0.0

    def test_events_outside_services_ignored(self, job):
        job.ingest_events(make_events(), "20240101")
        result = job.run("20240101", {"vm-b": ServicePeriod(0.0, DAY)})
        assert result.event_count == 1
        assert result.vm_count == 1

    def test_rerun_is_idempotent(self, job):
        job.ingest_events(make_events(), "20240101")
        services = {"vm-a": ServicePeriod(0.0, DAY)}
        first = job.run("20240101", services)
        second = job.run("20240101", services)
        assert first.fleet_report == second.fleet_report
        assert job._tables.get(VM_CDI_TABLE).count("20240101") == 1

    def test_partitions_isolated(self, job):
        job.ingest_events(make_events(), "day1")
        job.ingest_events([], "day2")
        services = {"vm-a": ServicePeriod(0.0, DAY)}
        busy = job.run("day1", services)
        quiet = job.run("day2", services)
        assert busy.fleet_report.unavailability > 0.0
        assert quiet.fleet_report.unavailability == 0.0

    def test_weights_versioning_respected(self, job):
        from repro.core.weights import WeightConfig
        job.ingest_events(make_events(), "d")
        services = {"vm-a": ServicePeriod(0.0, DAY)}
        before = job.run("d", services).fleet_report.performance
        # Downgrade performance weights drastically and re-run.
        job.store_weights(WeightConfig(
            alpha_expert=1.0, alpha_customer=0.0,
            expert_levels=100, customer_levels=1,
        ))
        after = job.run("d", services).fleet_report.performance
        assert after < before
        assert job._config_db.get(WEIGHTS_CONFIG_KEY).version == 2

    def test_stateful_events_resolved_in_job(self, job):
        events = [
            Event("ddos_blackhole_add", 1000.0, "vm-a",
                  level=Severity.FATAL),
            Event("ddos_blackhole_del", 4600.0, "vm-a"),
        ]
        job.ingest_events(events, "d")
        result = job.run("d", {"vm-a": ServicePeriod(0.0, DAY)})
        assert result.fleet_report.unavailability == pytest.approx(
            3600.0 / DAY
        )

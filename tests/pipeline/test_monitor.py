"""Tests for the daily CDI monitor (Sections VI-A / VI-C loop)."""

import numpy as np
import pytest

from repro.core.events import EventCategory
from repro.pipeline.monitor import CdiMonitor


def vm_rows(vm_values: dict[str, float], metric: str = "performance"):
    rows = []
    for vm, value in vm_values.items():
        row = {"vm": vm, "unavailability": 0.0, "performance": 0.0,
               "control_plane": 0.0, "service_time": 86400.0}
        row[metric] = value
        rows.append(row)
    return rows


def resolver_factory(region_of: dict[str, str]):
    return lambda vm: {"vm": vm, "region": region_of[vm]}


class TestCurves:
    def test_fleet_curve(self):
        monitor = CdiMonitor()
        monitor.observe_day("d1", vm_rows({"a": 0.1, "b": 0.3}))
        monitor.observe_day("d2", vm_rows({"a": 0.2, "b": 0.2}))
        assert monitor.fleet_curve(EventCategory.PERFORMANCE) == [
            pytest.approx(0.2), pytest.approx(0.2),
        ]
        assert monitor.days == ["d1", "d2"]

    def test_event_curve(self):
        monitor = CdiMonitor(tracked_events=["slow_io"])
        monitor.observe_day("d1", vm_rows({"a": 0.0}), [
            {"vm": "a", "event": "slow_io", "cdi": 0.4,
             "service_time": 100.0},
            {"vm": "a", "event": "vm_down", "cdi": 0.9,
             "service_time": 100.0},
        ])
        monitor.observe_day("d2", vm_rows({"a": 0.0}), [])
        assert monitor.event_curve("slow_io") == [pytest.approx(0.4), 0.0]


class TestFindings:
    def make_history(self, monitor: CdiMonitor, rng, days: int = 20,
                     spike_day: int | None = None):
        region_of = {f"vm-{i}": ("region-1" if i < 5 else "region-0")
                     for i in range(10)}
        for day in range(days):
            values = {
                vm: max(0.0, float(rng.normal(0.05, 0.005)))
                for vm in region_of
            }
            if spike_day is not None and day == spike_day:
                for vm, region in region_of.items():
                    if region == "region-1":
                        values[vm] = 0.9
            monitor.observe_day(f"d{day:02d}", vm_rows(values))
        return region_of

    def test_quiet_history_no_findings(self):
        monitor = CdiMonitor()
        rng = np.random.default_rng(0)
        self.make_history(monitor, rng)
        assert monitor.findings() == []

    def test_spike_detected_and_localized(self):
        region_of = {f"vm-{i}": ("region-1" if i < 5 else "region-0")
                     for i in range(10)}
        monitor = CdiMonitor(resolver=resolver_factory(region_of))
        rng = np.random.default_rng(1)
        self.make_history(monitor, rng, spike_day=15)
        findings = monitor.findings()
        performance = [f for f in findings
                       if f.curve == "fleet.performance"]
        assert performance
        spike = performance[0]
        assert spike.day == "d15"
        assert spike.direction == "spike"
        assert spike.root_cause is not None
        assert spike.root_cause.dimension == "region"
        assert spike.root_cause.values == ("region-1",)

    def test_event_curve_findings(self):
        monitor = CdiMonitor(tracked_events=["vm_allocation_failed"])
        rng = np.random.default_rng(2)
        for day in range(20):
            value = 0.5 if day == 15 else float(rng.normal(0.01, 0.002))
            monitor.observe_day(f"d{day:02d}", vm_rows({"a": 0.0}), [
                {"vm": "a", "event": "vm_allocation_failed",
                 "cdi": max(0.0, value), "service_time": 86400.0},
            ])
        findings = monitor.findings()
        assert any(
            f.curve == "event.vm_allocation_failed" and f.day == "d15"
            for f in findings
        )

    def test_direction_conflict_across_curves_same_day(self):
        """Satellite: a fleet spike and a tracked-event dip on the same
        day must surface as two findings with the correct per-curve
        direction (the old ``_merge`` could let one curve's direction
        masquerade as agreement)."""
        monitor = CdiMonitor(tracked_events=["inspect_cpu_power_tdp"])
        rng = np.random.default_rng(4)
        for day in range(20):
            fleet_value = (0.9 if day == 15
                           else max(0.0, float(rng.normal(0.05, 0.005))))
            event_value = (0.01 if day == 15
                           else max(0.0, float(rng.normal(0.5, 0.02))))
            monitor.observe_day(f"d{day:02d}", vm_rows({"a": fleet_value}), [
                {"vm": "a", "event": "inspect_cpu_power_tdp",
                 "cdi": event_value, "service_time": 86400.0},
            ])
        directions = {}
        for finding in monitor.findings():
            if finding.day == "d15":
                directions.setdefault(finding.curve, set()).add(
                    finding.direction
                )
        assert directions["fleet.performance"] == {"spike"}
        assert directions["event.inspect_cpu_power_tdp"] == {"dip"}

    def test_disappeared_vms_localize_the_dip(self):
        """Regression: VMs present in the baseline but absent from the
        anomalous day's rows were silently dropped from the RCA leaves,
        hiding exactly the incidents a dip represents (a region going
        dark).  A disappeared VM must contribute an actual-damage leaf
        of zero so the localization lands on the VMs that vanished."""
        region_of = {f"vm-{i}": ("region-1" if i < 5 else "region-0")
                     for i in range(10)}
        monitor = CdiMonitor(resolver=resolver_factory(region_of))
        rng = np.random.default_rng(5)
        for day in range(20):
            values = {
                vm: max(0.0, float(rng.normal(
                    0.9 if region_of[vm] == "region-1" else 0.1, 0.005,
                )))
                for vm in region_of
            }
            if day == 15:  # region-1 reports nothing at all that day
                values = {vm: value for vm, value in values.items()
                          if region_of[vm] == "region-0"}
            monitor.observe_day(f"d{day:02d}", vm_rows(values))
        dips = [f for f in monitor.findings()
                if f.curve == "fleet.performance" and f.day == "d15"
                and f.direction == "dip"]
        assert dips
        cause = dips[0].root_cause
        assert cause is not None
        assert cause.dimension == "region"
        assert cause.values == ("region-1",)

    def test_no_resolver_no_rca(self):
        monitor = CdiMonitor()
        rng = np.random.default_rng(3)
        self.make_history(monitor, rng, spike_day=15)
        findings = monitor.findings()
        assert findings
        assert all(f.root_cause is None for f in findings)

    def test_validation(self):
        with pytest.raises(ValueError):
            CdiMonitor(baseline_days=1)

"""Tests for the online seasonal-trend decomposition."""

import numpy as np
import pytest

from repro.analytics.stl import BacktrackStl


def seasonal_series(periods: int, period: int, level: float = 10.0,
                    amplitude: float = 2.0, noise: float = 0.05,
                    seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(periods * period)
    return (
        level
        + amplitude * np.sin(2 * np.pi * t / period)
        + rng.normal(0, noise, t.size)
    )


class TestBacktrackStl:
    def test_validation(self):
        with pytest.raises(ValueError):
            BacktrackStl(period=0)
        with pytest.raises(ValueError):
            BacktrackStl(period=10, trend_alpha=0.0)
        with pytest.raises(ValueError):
            BacktrackStl(period=10, shift_patience=0)

    def test_trend_converges_to_level(self):
        series = seasonal_series(periods=30, period=24)
        stl = BacktrackStl(period=24)
        decomposition = stl.decompose(series)
        assert decomposition.trend[-24:].mean() == pytest.approx(10.0, abs=0.5)

    def test_seasonal_profile_learned(self):
        series = seasonal_series(periods=40, period=24, noise=0.01)
        stl = BacktrackStl(period=24, seasonal_alpha=0.3)
        decomposition = stl.decompose(series)
        # In the last period the seasonal component should track the sine.
        tail = decomposition.seasonal[-24:]
        expected = 2.0 * np.sin(2 * np.pi * np.arange(24) / 24)
        correlation = np.corrcoef(tail, expected)[0, 1]
        assert correlation > 0.9

    def test_residuals_small_on_clean_series(self):
        series = seasonal_series(periods=40, period=24, noise=0.01)
        stl = BacktrackStl(period=24, seasonal_alpha=0.3)
        decomposition = stl.decompose(series)
        assert np.abs(decomposition.residual[-48:]).mean() < 0.5

    def test_level_shift_triggers_backtrack(self):
        series = np.concatenate([
            seasonal_series(periods=20, period=24, level=10.0, noise=0.01),
            seasonal_series(periods=20, period=24, level=30.0, noise=0.01,
                            seed=1),
        ])
        stl = BacktrackStl(period=24, shift_patience=5)
        decomposition = stl.decompose(series)
        assert stl.backtracks >= 1
        # Trend must have snapped up to the new level rather than slowly
        # drifting: shortly after the shift it should already be near 30.
        after = 20 * 24 + 30
        assert decomposition.trend[after] > 20.0

    def test_isolated_outlier_does_not_backtrack(self):
        series = seasonal_series(periods=20, period=24, noise=0.01)
        series[200] += 100.0
        stl = BacktrackStl(period=24, shift_patience=5)
        stl.decompose(series)
        assert stl.backtracks == 0

    def test_residual_exposes_anomaly(self):
        series = seasonal_series(periods=20, period=24, noise=0.01)
        series[300] += 50.0
        stl = BacktrackStl(period=24)
        decomposition = stl.decompose(series)
        assert decomposition.residual[300] > 10.0

"""Tests for direction-aware CDI curve detection (Cases 6 & 7)."""

import numpy as np

from repro.analytics.detect import CdiCurveDetector


def noisy_level(rng, level: float, n: int, sigma: float = 0.02) -> list[float]:
    return list(np.maximum(0.0, level + rng.normal(0, sigma, n)))


class TestCdiCurveDetector:
    def test_case6_spike_detected(self):
        """Day-14 spike in vm_allocation_failed CDI (Case 6 shape)."""
        rng = np.random.default_rng(0)
        curve = noisy_level(rng, 0.1, 13) + [2.0] + noisy_level(rng, 0.1, 16)
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        detections = detector.detect(curve)
        spikes = [d for d in detections if d.direction == "spike"]
        assert any(d.index == 13 for d in spikes)

    def test_case7_dip_detected(self):
        """Days 13-17 dip in inspect_cpu_power_tdp CDI (Case 7 shape)."""
        rng = np.random.default_rng(1)
        curve = (
            noisy_level(rng, 0.5, 12)
            + [0.3, 0.1, 0.02, 0.01, 0.01]
            + noisy_level(rng, 0.5, 13)
        )
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        detections = detector.detect(curve)
        dips = [d for d in detections if d.direction == "dip"]
        assert dips
        assert any(13 <= d.index <= 17 for d in dips)

    def test_quiet_curve_silent(self):
        rng = np.random.default_rng(2)
        curve = noisy_level(rng, 0.2, 30)
        detector = CdiCurveDetector(window=7, k=4.0, calibration=10)
        assert detector.detect(curve) == []

    def test_methods_recorded(self):
        rng = np.random.default_rng(3)
        curve = noisy_level(rng, 0.1, 20) + [5.0] + noisy_level(rng, 0.1, 5)
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        detections = {d.index: d for d in detector.detect(curve)}
        assert 20 in detections
        assert set(detections[20].methods) <= {"ksigma", "evt"}
        assert len(detections[20].methods) >= 1

    def test_consensus_subset_of_all(self):
        rng = np.random.default_rng(4)
        curve = noisy_level(rng, 0.1, 20) + [5.0] + noisy_level(rng, 0.1, 5)
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        all_d = {d.index for d in detector.detect(curve)}
        consensus = {d.index for d in detector.detect_consensus(curve)}
        assert consensus <= all_d

    def test_flat_calibration_does_not_crash_evt(self):
        curve = [0.0] * 15 + [1.0] + [0.0] * 5
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        detections = detector.detect(curve)
        assert any(d.index == 15 for d in detections)

    def test_short_series(self):
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        assert detector.detect([0.1, 0.2]) == []

"""Tests for direction-aware CDI curve detection (Cases 6 & 7)."""

import numpy as np

from repro.analytics.detect import CdiCurveDetector


def noisy_level(rng, level: float, n: int, sigma: float = 0.02) -> list[float]:
    return list(np.maximum(0.0, level + rng.normal(0, sigma, n)))


class TestCdiCurveDetector:
    def test_case6_spike_detected(self):
        """Day-14 spike in vm_allocation_failed CDI (Case 6 shape)."""
        rng = np.random.default_rng(0)
        curve = noisy_level(rng, 0.1, 13) + [2.0] + noisy_level(rng, 0.1, 16)
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        detections = detector.detect(curve)
        spikes = [d for d in detections if d.direction == "spike"]
        assert any(d.index == 13 for d in spikes)

    def test_case7_dip_detected(self):
        """Days 13-17 dip in inspect_cpu_power_tdp CDI (Case 7 shape)."""
        rng = np.random.default_rng(1)
        curve = (
            noisy_level(rng, 0.5, 12)
            + [0.3, 0.1, 0.02, 0.01, 0.01]
            + noisy_level(rng, 0.5, 13)
        )
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        detections = detector.detect(curve)
        dips = [d for d in detections if d.direction == "dip"]
        assert dips
        assert any(13 <= d.index <= 17 for d in dips)

    def test_quiet_curve_silent(self):
        rng = np.random.default_rng(2)
        curve = noisy_level(rng, 0.2, 30)
        detector = CdiCurveDetector(window=7, k=4.0, calibration=10)
        assert detector.detect(curve) == []

    def test_methods_recorded(self):
        rng = np.random.default_rng(3)
        curve = noisy_level(rng, 0.1, 20) + [5.0] + noisy_level(rng, 0.1, 5)
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        detections = {d.index: d for d in detector.detect(curve)}
        assert 20 in detections
        assert set(detections[20].methods) <= {"ksigma", "evt"}
        assert len(detections[20].methods) >= 1

    def test_consensus_subset_of_all(self):
        rng = np.random.default_rng(4)
        curve = noisy_level(rng, 0.1, 20) + [5.0] + noisy_level(rng, 0.1, 5)
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        all_d = {d.index for d in detector.detect(curve)}
        consensus = {d.index for d in detector.detect_consensus(curve)}
        assert consensus <= all_d

    def test_flat_calibration_does_not_crash_evt(self):
        curve = [0.0] * 15 + [1.0] + [0.0] * 5
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        detections = detector.detect(curve)
        assert any(d.index == 15 for d in detections)

    def test_short_series(self):
        detector = CdiCurveDetector(window=7, k=3.0, calibration=10)
        assert detector.detect([0.1, 0.2]) == []


def spike_curve(seed: int = 0) -> list[float]:
    rng = np.random.default_rng(seed)
    return noisy_level(rng, 0.1, 13) + [2.0] + noisy_level(rng, 0.1, 16)


class _EvtDipAt13(CdiCurveDetector):
    """EVT stub voting "dip" at index 13 (fires on the negated pass only)."""

    def _evt_indices(self, values):
        return {13} if values[13] < 0 else set()


class _EvtSpikeAt13(CdiCurveDetector):
    """EVT stub voting "spike" at index 13 (raw pass only)."""

    def _evt_indices(self, values):
        return {13} if values[13] > 0 else set()


class _EvtBothAt13(CdiCurveDetector):
    """EVT stub voting both directions at index 13."""

    def _evt_indices(self, values):
        return {13}


class TestDirectionSafety:
    """Regression: opposite-direction votes must not merge (the old
    ``_merge`` silently kept the existing direction, so an EVT dip
    vote rode along as confirmation of a K-Sigma spike)."""

    def test_opposite_vote_stays_a_separate_detection(self):
        detector = _EvtDipAt13(window=7, k=3.0, calibration=10)
        at_13 = [d for d in detector.detect(spike_curve()) if d.index == 13]
        by_direction = {d.direction: d for d in at_13}
        assert set(by_direction) == {"spike", "dip"}
        # The EVT dip vote did not leak into the spike's methods.
        assert by_direction["spike"].methods == ("ksigma",)
        assert by_direction["dip"].methods == ("evt",)

    def test_conflicting_directions_are_tagged(self):
        detector = _EvtDipAt13(window=7, k=3.0, calibration=10)
        at_13 = [d for d in detector.detect(spike_curve()) if d.index == 13]
        assert all(d.conflict for d in at_13)
        elsewhere = [d for d in detector.detect(spike_curve())
                     if d.index != 13]
        assert not any(d.conflict for d in elsewhere)

    def test_consensus_requires_direction_agreement(self):
        """A K-Sigma spike + an EVT dip is disagreement, not consensus."""
        detector = _EvtDipAt13(window=7, k=3.0, calibration=10)
        consensus = detector.detect_consensus(spike_curve())
        assert not any(d.index == 13 for d in consensus)

    def test_same_direction_votes_still_merge(self):
        detector = _EvtSpikeAt13(window=7, k=3.0, calibration=10)
        at_13 = [d for d in detector.detect(spike_curve()) if d.index == 13]
        assert len(at_13) == 1
        assert set(at_13[0].methods) == {"ksigma", "evt"}
        assert at_13[0].direction == "spike"
        assert not at_13[0].conflict
        assert any(d.index == 13
                   for d in detector.detect_consensus(spike_curve()))

    def test_both_directions_yield_two_tagged_detections(self):
        detector = _EvtBothAt13(window=7, k=3.0, calibration=10)
        at_13 = [d for d in detector.detect(spike_curve()) if d.index == 13]
        assert sorted(d.direction for d in at_13) == ["dip", "spike"]
        assert all(d.conflict for d in at_13)
        consensus = [d for d in detector.detect_consensus(spike_curve())
                     if d.index == 13]
        # Only the spike has two same-direction votes (ksigma + evt).
        assert [d.direction for d in consensus] == ["spike"]

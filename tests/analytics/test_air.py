"""Tests for the vectorized Annual Interruption Rate (AIR).

Three layers of evidence:

* hand-computed oracles — single VM, multi-interruption merging,
  partial-year exposure — pin the definition;
* a randomized differential pins the vectorized kernels to the scalar
  reference in :mod:`repro.core.baselines`;
* hypothesis invariance — AIR must not change under event reordering
  (the events-table front end sorts internally).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.air import (
    AirReport,
    air_from_arrays,
    air_from_rows,
    air_rollup,
    group_air_reports,
    merged_interruption_counts,
    unavailability_arrays,
)
from repro.core.baselines import (
    SECONDS_PER_YEAR,
    annual_interruption_rate,
    interruption_count,
)
from repro.core.events import Severity, default_catalog
from repro.core.indicator import ServicePeriod
from repro.core.periods import EventPeriod

DAY = 86400.0


def arrays(intervals):
    """``[(vm_index, start, end), ...]`` → kernel input arrays."""
    vm_idx = np.array([i[0] for i in intervals], dtype=np.int64)
    starts = np.array([i[1] for i in intervals], dtype=np.float64)
    ends = np.array([i[2] for i in intervals], dtype=np.float64)
    return vm_idx, starts, ends


def down_row(target, time, duration, name="vm_down", level=4):
    """One unavailability events-table row."""
    return {"name": name, "time": time, "target": target, "level": level,
            "expire_interval": 3600.0, "duration": duration}


class TestHandComputedOracles:
    def test_single_vm_single_interruption(self):
        # One VM, one year of service, one outage: AIR = 1 / 1 VM-year
        # * 100 = 100 by construction.
        report = air_from_arrays(
            *arrays([(0, 1000.0, 2000.0)]),
            np.array([0.0]), np.array([SECONDS_PER_YEAR]),
        )
        assert report.interruptions == 1
        assert report.vm_years == pytest.approx(1.0)
        assert report.air == pytest.approx(100.0)

    def test_multi_interruption_merging(self):
        # Three raw intervals on one VM: the first two overlap, the
        # second and third touch end-to-start — all one interruption;
        # a fourth after a gap is the second interruption.
        intervals = [
            (0, 100.0, 200.0),
            (0, 150.0, 300.0),   # overlaps the first
            (0, 300.0, 400.0),   # touches the merged end
            (0, 500.0, 600.0),   # gap: a new interruption
        ]
        report = air_from_arrays(
            *arrays(intervals), np.array([0.0]), np.array([DAY]),
        )
        assert report.interruptions == 2
        # 2 interruptions / (1 day / 365 days) VM-years * 100
        assert report.air == pytest.approx(2.0 / (DAY / SECONDS_PER_YEAR)
                                           * 100.0)

    def test_partial_year_exposure(self):
        # Half a year of service doubles the rate of the same count:
        # 1 interruption over 0.5 VM-years = 200 per 100 VM-years.
        report = air_from_arrays(
            *arrays([(0, 10.0, 20.0)]),
            np.array([0.0]), np.array([SECONDS_PER_YEAR / 2.0]),
        )
        assert report.vm_years == pytest.approx(0.5)
        assert report.air == pytest.approx(200.0)

    def test_clipping_to_service_window(self):
        # An interval entirely before the service window is dropped;
        # one straddling the start is clipped but still counts.
        report = air_from_arrays(
            *arrays([(0, -200.0, -100.0), (0, -50.0, 50.0)]),
            np.array([0.0]), np.array([DAY]),
        )
        assert report.interruptions == 1

    def test_zero_exposure_air_is_zero(self):
        report = AirReport(interruptions=5, exposure_seconds=0.0)
        assert report.air == 0.0

    def test_interruption_free_vms_dilute(self):
        # Same count over 1 vs 2 VMs: doubling exposure halves AIR.
        one = air_from_arrays(
            *arrays([(0, 10.0, 20.0)]), np.array([0.0]), np.array([DAY]),
        )
        two = air_from_arrays(
            *arrays([(0, 10.0, 20.0)]),
            np.array([0.0, 0.0]), np.array([DAY, DAY]),
        )
        assert two.air == pytest.approx(one.air / 2.0)


class TestScalarOracleDifferential:
    def test_matches_reference_on_random_fleets(self):
        catalog = default_catalog()
        rng = np.random.default_rng(42)
        for _ in range(50):
            num_vms = int(rng.integers(1, 8))
            services = [
                ServicePeriod(float(rng.uniform(0, 100)),
                              float(rng.uniform(200, 2000)))
                for _ in range(num_vms)
            ]
            per_vm = [[] for _ in range(num_vms)]
            intervals = []
            for _ in range(int(rng.integers(0, 30))):
                vm = int(rng.integers(0, num_vms))
                start = float(rng.uniform(-100, 2100))
                end = start + float(rng.uniform(0, 300))
                intervals.append((vm, start, end))
                per_vm[vm].append(EventPeriod(
                    name="vm_down", target=f"vm{vm}", start=start,
                    end=end, level=Severity.FATAL,
                ))
            vm_idx, starts, ends = arrays(intervals or [])
            report = air_from_arrays(
                vm_idx, starts, ends,
                np.array([s.start for s in services]),
                np.array([s.end for s in services]),
            )
            expected = sum(
                interruption_count(per_vm[vm], services[vm], catalog)
                for vm in range(num_vms)
            )
            assert report.interruptions == expected
            assert report.air == pytest.approx(annual_interruption_rate(
                list(zip(per_vm, services)), catalog,
            ))

    def test_empty_fleet(self):
        report = air_from_arrays(
            np.array([], dtype=np.int64), np.array([]), np.array([]),
            np.array([]), np.array([]),
        )
        assert report.interruptions == 0
        assert report.air == 0.0

    def test_negative_num_vms_rejected(self):
        with pytest.raises(ValueError):
            merged_interruption_counts(
                np.array([], dtype=np.int64), np.array([]), np.array([]),
                -1,
            )


class TestEventsTableFrontEnd:
    def test_category_filter_and_window_fallback(self):
        # Performance and unknown rows are ignored; a duration-less
        # unavailability row falls back to the catalog window.
        catalog = default_catalog()
        services = {"a": ServicePeriod(0.0, DAY)}
        rows = [
            down_row("a", 1000.0, None),                    # window 60 s
            down_row("a", 5000.0, 120.0, name="slow_io", level=3),
            down_row("a", 6000.0, 120.0, name="no_such_event"),
        ]
        report = air_from_rows(rows, services, catalog)
        assert report.interruptions == 1

    def test_negative_duration_raises(self):
        catalog = default_catalog()
        with pytest.raises(ValueError):
            air_from_rows([down_row("a", 100.0, -5.0)],
                          {"a": ServicePeriod(0.0, DAY)}, catalog)

    def test_stateful_pairing(self):
        # A ddos_blackhole add/del pair resolves to one interruption
        # via the reference pairing path.
        catalog = default_catalog()
        services = {"a": ServicePeriod(0.0, DAY)}
        rows = [
            down_row("a", 100.0, None, name="ddos_blackhole_add"),
            down_row("a", 400.0, None, name="ddos_blackhole_del"),
        ]
        report = air_from_rows(rows, services, catalog)
        assert report.interruptions == 1

    def test_rows_for_unknown_targets_skipped(self):
        catalog = default_catalog()
        report = air_from_rows(
            [down_row("ghost", 100.0, 50.0)],
            {"a": ServicePeriod(0.0, DAY)}, catalog,
        )
        assert report.interruptions == 0

    def test_rollup_additivity(self):
        catalog = default_catalog()
        services = {f"vm{i}": ServicePeriod(0.0, DAY) for i in range(6)}
        rows = [down_row(f"vm{i}", 1000.0 * (i + 1), 100.0)
                for i in range(4)]
        groups = {f"vm{i}": {"cluster": f"c{i % 2}"} for i in range(6)}
        rollup = air_rollup(rows, services, catalog,
                            lambda vm: groups[vm], "cluster")
        fleet = air_from_rows(rows, services, catalog)
        assert sum(r.interruptions for r in rollup.values()) \
            == fleet.interruptions
        assert sum(r.exposure_seconds for r in rollup.values()) \
            == pytest.approx(fleet.exposure_seconds)
        assert set(rollup) == {"c0", "c1"}

    def test_group_reports_empty_groups(self):
        reports = group_air_reports(
            np.array([], dtype=np.int64), np.array([]), np.array([]),
            np.array([0.0]), np.array([DAY]),
            np.array([0], dtype=np.int64), 2,
        )
        assert [r.interruptions for r in reports] == [0, 0]
        assert reports[1].exposure_seconds == 0.0

    def test_canonical_vm_order(self):
        catalog = default_catalog()
        services = {"b": ServicePeriod(0.0, DAY),
                    "a": ServicePeriod(0.0, DAY)}
        vm_list, *_ = unavailability_arrays([], services, catalog)
        assert vm_list == ["a", "b"]


@st.composite
def _event_rows(draw):
    """A small random batch of mixed events-table rows."""
    targets = ["vm0", "vm1", "vm2"]
    names = ["vm_down", "vm_hang", "slow_io", "api_error"]
    rows = []
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        duration = draw(st.one_of(
            st.none(),
            st.floats(min_value=0.0, max_value=5000.0,
                      allow_nan=False, allow_infinity=False),
        ))
        rows.append({
            "name": draw(st.sampled_from(names)),
            "time": draw(st.floats(min_value=0.0, max_value=DAY,
                                   allow_nan=False, allow_infinity=False)),
            "target": draw(st.sampled_from(targets)),
            "level": 4,
            "expire_interval": 3600.0,
            "duration": duration,
        })
    return rows


class TestReorderInvariance:
    @settings(max_examples=60, deadline=None)
    @given(rows=_event_rows(), seed=st.integers(min_value=0, max_value=2**31))
    def test_air_invariant_under_row_reordering(self, rows, seed):
        # AIR is a function of the event *set*: any ingest order —
        # late arrivals, shard interleavings — must yield the same
        # report.
        catalog = default_catalog()
        services = {f"vm{i}": ServicePeriod(0.0, DAY) for i in range(3)}
        baseline = air_from_rows(rows, services, catalog)
        shuffled = list(rows)
        np.random.default_rng(seed).shuffle(shuffled)
        report = air_from_rows(shuffled, services, catalog)
        assert report == baseline

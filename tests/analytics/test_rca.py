"""Tests for multi-dimensional root-cause localization."""

import pytest

from repro.analytics.rca import (
    LeafObservation,
    localize,
    score_dimension_values,
)


def leaf(region: str, model: str, expected: float, actual: float
         ) -> LeafObservation:
    return LeafObservation(
        dimensions={"region": region, "machine_model": model},
        expected=expected, actual=actual,
    )


class TestScoreDimensionValues:
    def test_explanatory_power_sums_to_one(self):
        leaves = [
            leaf("r1", "M1", 1.0, 3.0),
            leaf("r2", "M1", 1.0, 1.0),
            leaf("r2", "M2", 1.0, 2.0),
        ]
        scores = score_dimension_values(leaves, "region")
        assert sum(s.explanatory_power for s in scores) == pytest.approx(1.0)

    def test_sorted_by_ep(self):
        leaves = [leaf("r1", "M1", 1.0, 5.0), leaf("r2", "M1", 1.0, 1.5)]
        scores = score_dimension_values(leaves, "region")
        assert scores[0].value == "r1"
        assert scores[0].explanatory_power > scores[1].explanatory_power

    def test_missing_dimension_ignored(self):
        leaves = [
            LeafObservation({"region": "r1"}, 1.0, 2.0),
            LeafObservation({}, 1.0, 2.0),
        ]
        scores = score_dimension_values(leaves, "region")
        assert [s.value for s in scores] == ["r1"]


class TestLocalize:
    def test_concentrated_anomaly_localized_to_right_dimension(self):
        # Anomaly lives entirely on machine model M2, spread over regions.
        leaves = [
            leaf("r1", "M1", 1.0, 1.0),
            leaf("r1", "M2", 1.0, 6.0),
            leaf("r2", "M1", 1.0, 1.0),
            leaf("r2", "M2", 1.0, 6.0),
        ]
        cause = localize(leaves)
        assert cause is not None
        assert cause.dimension == "machine_model"
        assert cause.values == ("M2",)
        assert cause.explanatory_power == pytest.approx(1.0)

    def test_region_concentrated_anomaly(self):
        leaves = [
            leaf("r1", "M1", 1.0, 4.0),
            leaf("r1", "M2", 1.0, 4.0),
            leaf("r2", "M1", 1.0, 1.0),
            leaf("r2", "M2", 1.0, 1.0),
        ]
        cause = localize(leaves)
        assert cause is not None
        assert cause.dimension == "region"
        assert cause.values == ("r1",)

    def test_negative_anomaly_localized(self):
        """Dips (actual < expected) must localize too (Case 7)."""
        leaves = [
            leaf("r1", "M1", 5.0, 5.0),
            leaf("r1", "M2", 5.0, 0.5),
            leaf("r2", "M1", 5.0, 5.0),
            leaf("r2", "M2", 5.0, 0.5),
        ]
        cause = localize(leaves)
        assert cause is not None
        assert cause.dimension == "machine_model"
        assert cause.values == ("M2",)

    def test_no_anomaly_returns_none(self):
        leaves = [leaf("r1", "M1", 1.0, 1.0), leaf("r2", "M2", 2.0, 2.0)]
        assert localize(leaves) is None

    def test_empty_returns_none(self):
        assert localize([]) is None

    def test_explicit_dimension_list(self):
        leaves = [
            leaf("r1", "M1", 1.0, 5.0),
            leaf("r2", "M1", 1.0, 1.0),
        ]
        cause = localize(leaves, dimensions=["region"])
        assert cause is not None
        assert cause.dimension == "region"

    def test_diffuse_anomaly_may_need_multiple_values(self):
        leaves = [
            leaf("r1", "M1", 1.0, 3.0),
            leaf("r2", "M1", 1.0, 3.0),
            leaf("r3", "M1", 1.0, 1.0),
        ]
        cause = localize(leaves, dimensions=["region"], ep_threshold=0.9)
        assert cause is not None
        assert set(cause.values) == {"r1", "r2"}

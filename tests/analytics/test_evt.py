"""Tests for EVT (GPD fitting, POT thresholds, SPOT streaming)."""

import numpy as np
import pytest

from repro.analytics.evt import Spot, fit_gpd, pot_threshold


class TestFitGpd:
    def test_exponential_tail_recovered(self):
        # Exponential(scale=2) is GPD with gamma=0, sigma=2.
        rng = np.random.default_rng(0)
        excesses = rng.exponential(2.0, 5000)
        fit = fit_gpd(excesses)
        assert fit.gamma == pytest.approx(0.0, abs=0.1)
        assert fit.sigma == pytest.approx(2.0, rel=0.15)

    def test_pareto_tail_recovered(self):
        # genpareto(c=0.3, scale=1.5).
        rng = np.random.default_rng(1)
        u = rng.uniform(size=5000)
        gamma_true, sigma_true = 0.3, 1.5
        excesses = sigma_true / gamma_true * (u ** (-gamma_true) - 1.0)
        fit = fit_gpd(excesses)
        assert fit.gamma == pytest.approx(gamma_true, abs=0.1)
        assert fit.sigma == pytest.approx(sigma_true, rel=0.2)

    def test_degenerate_inputs_fall_back(self):
        fit = fit_gpd([1.0, 1.0, 1.0])
        assert fit.gamma == 0.0
        assert fit.sigma == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_gpd([])
        with pytest.raises(ValueError):
            fit_gpd([-1.0, 0.0])


class TestPotThreshold:
    def test_threshold_above_initial_for_small_q(self):
        rng = np.random.default_rng(2)
        data = rng.exponential(1.0, 10000)
        initial = float(np.quantile(data, 0.98))
        excesses = data[data > initial] - initial
        fit = fit_gpd(excesses)
        z = pot_threshold(fit, initial, len(data), len(excesses), q=1e-4)
        assert z > initial
        # Empirically, almost nothing should exceed z.
        assert (data > z).mean() < 5e-4

    def test_monotone_in_q(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(1.0, 5000)
        initial = float(np.quantile(data, 0.98))
        excesses = data[data > initial] - initial
        fit = fit_gpd(excesses)
        strict = pot_threshold(fit, initial, len(data), len(excesses), q=1e-5)
        loose = pot_threshold(fit, initial, len(data), len(excesses), q=1e-2)
        assert strict > loose

    def test_invalid_params(self):
        from repro.analytics.evt import GpdFit
        fit = GpdFit(gamma=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            pot_threshold(fit, 1.0, 100, 10, q=0.0)
        with pytest.raises(ValueError):
            pot_threshold(fit, 1.0, 100, 0, q=1e-3)


class TestSpot:
    def test_calibration_requirements(self):
        with pytest.raises(ValueError):
            Spot().fit([1.0] * 5)
        with pytest.raises(ValueError):
            Spot(q=0.0)
        with pytest.raises(ValueError):
            Spot(level=1.5)

    def test_step_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            Spot().step(1.0)

    def test_detects_injected_extreme(self):
        rng = np.random.default_rng(4)
        calibration = rng.normal(0.0, 1.0, 1000)
        spot = Spot(q=1e-4, level=0.98).fit(calibration)
        stream = list(rng.normal(0.0, 1.0, 200)) + [30.0]
        alerts = spot.run(stream)
        assert alerts
        assert alerts[-1].index == 200
        assert alerts[-1].value == 30.0

    def test_low_false_positive_rate_on_normal_stream(self):
        rng = np.random.default_rng(5)
        spot = Spot(q=1e-5, level=0.98).fit(rng.normal(0.0, 1.0, 2000))
        alerts = spot.run(rng.normal(0.0, 1.0, 2000))
        assert len(alerts) <= 2

    def test_normal_peaks_update_threshold(self):
        rng = np.random.default_rng(6)
        spot = Spot(q=1e-4, level=0.9).fit(rng.normal(0.0, 1.0, 500))
        before = spot.threshold
        for value in rng.normal(0.0, 1.0, 500):
            spot.step(float(value))
        # Threshold adapts with more evidence (may move either way, but
        # must remain finite and above the initial quantile).
        assert np.isfinite(spot.threshold)
        assert spot.threshold != before or True  # adaptivity is allowed

    def test_alerts_not_absorbed_into_model(self):
        rng = np.random.default_rng(7)
        spot = Spot(q=1e-4, level=0.98).fit(rng.normal(0.0, 1.0, 1000))
        z_before = spot.threshold
        alert = spot.step(1000.0)
        assert alert is not None
        assert spot.threshold == z_before

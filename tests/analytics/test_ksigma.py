"""Tests for K-Sigma detection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytics.ksigma import ksigma, rolling_ksigma


class TestGlobalKsigma:
    def test_detects_spike(self):
        values = [1.0] * 20 + [50.0] + [1.0] * 20
        rng = np.random.default_rng(0)
        noisy = [v + rng.normal(0, 0.01) for v in values]
        anomalies = ksigma(noisy, k=3.0)
        assert any(a.index == 20 and a.direction == "spike" for a in anomalies)

    def test_detects_dip(self):
        rng = np.random.default_rng(0)
        values = list(10.0 + rng.normal(0, 0.1, 30))
        values[15] = 0.0
        anomalies = ksigma(values, k=3.0)
        assert any(a.index == 15 and a.direction == "dip" for a in anomalies)

    def test_robust_to_the_anomaly_itself(self):
        # A huge spike must not inflate sigma enough to hide itself.
        rng = np.random.default_rng(1)
        values = list(rng.normal(5, 0.5, 100))
        values[50] = 1e6
        anomalies = ksigma(values, k=3.0)
        assert any(a.index == 50 for a in anomalies)

    def test_quiet_series_has_no_anomalies(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0, 1, 50)
        anomalies = ksigma(values, k=6.0)
        assert anomalies == []

    def test_flat_series_flags_any_deviation(self):
        values = [2.0] * 20 + [2.1] + [2.0] * 5
        anomalies = ksigma(values, k=3.0)
        assert [a.index for a in anomalies] == [20]

    def test_short_series_empty(self):
        assert ksigma([1.0, 2.0]) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ksigma([1, 2, 3], k=0.0)


class TestRollingKsigma:
    def test_detects_level_shift_at_onset(self):
        values = [1.0, 1.1, 0.9, 1.0, 1.05, 0.95, 1.0, 1.02] * 3 + [5.0, 5.0]
        anomalies = rolling_ksigma(values, window=8, k=3.0)
        assert anomalies
        assert anomalies[0].index == 24
        assert anomalies[0].direction == "spike"

    def test_no_flags_before_window_fills(self):
        values = [100.0] + [1.0] * 30
        anomalies = rolling_ksigma(values, window=10, k=3.0)
        assert all(a.index >= 10 for a in anomalies)

    def test_dip_detected(self):
        rng = np.random.default_rng(3)
        values = list(10 + rng.normal(0, 0.2, 30)) + [0.0]
        anomalies = rolling_ksigma(values, window=10, k=3.0)
        assert anomalies[-1].direction == "dip"

    def test_flat_window_flags_change(self):
        values = [1.0] * 10 + [2.0]
        anomalies = rolling_ksigma(values, window=10, k=3.0)
        assert len(anomalies) == 1
        assert anomalies[0].index == 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            rolling_ksigma([1.0] * 10, window=2)
        with pytest.raises(ValueError):
            rolling_ksigma([1.0] * 10, window=5, k=-1.0)


class TestFlatJitterShiftInvariance:
    """Regression: the exact ``sigma == 0.0`` comparison broke shift
    invariance.  A one-ulp wobble on a constant series survived the
    float subtraction at small magnitudes (flagged as a (k+1)-sigma
    anomaly) but was absorbed after adding a large constant (silent).
    Anomaly detection on a damage metric must not depend on the
    metric's offset; ulp-level wobble is summation noise, not signal.
    """

    SHIFT = 2.0 ** 20  # large enough to absorb a small base's ulp

    @given(st.floats(min_value=0.125, max_value=8.0))
    def test_rolling_ulp_wobble_is_shift_invariant(self, base):
        bumped = float(np.nextafter(base, np.inf))
        low = [base] * 8 + [bumped]
        high = [value + self.SHIFT for value in low]
        low_indices = [a.index for a in rolling_ksigma(low, window=8,
                                                       k=3.0)]
        high_indices = [a.index for a in rolling_ksigma(high, window=8,
                                                        k=3.0)]
        assert low_indices == high_indices
        assert low_indices == []

    @given(st.floats(min_value=0.125, max_value=8.0))
    def test_global_ulp_wobble_is_shift_invariant(self, base):
        bumped = float(np.nextafter(base, np.inf))
        low = [base] * 20 + [bumped] + [base] * 4
        high = [value + self.SHIFT for value in low]
        assert [a.index for a in ksigma(low, k=3.0)] == []
        assert [a.index for a in ksigma(high, k=3.0)] == []

    @given(st.floats(min_value=0.125, max_value=8.0))
    def test_real_level_shift_flagged_at_both_scales(self, base):
        """The jitter floor must not swallow genuine changes."""
        low = [base] * 8 + [base + 1.0]
        high = [value + self.SHIFT for value in low]
        for series in (low, high):
            anomalies = rolling_ksigma(series, window=8, k=3.0)
            assert [a.index for a in anomalies] == [8]
            assert anomalies[0].direction == "spike"

"""Tests for DSPOT (drift-aware streaming EVT)."""

import numpy as np
import pytest

from repro.analytics.evt import DriftSpot, Spot


def drifting_stream(rng, n: int, slope: float = 0.01,
                    sigma: float = 1.0) -> np.ndarray:
    return slope * np.arange(n) + rng.normal(0.0, sigma, n)


class TestDriftSpot:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftSpot(depth=1)
        with pytest.raises(ValueError):
            DriftSpot().fit([1.0] * 10)
        with pytest.raises(RuntimeError):
            DriftSpot().step(1.0)

    def test_detects_extreme_on_drifting_stream(self):
        rng = np.random.default_rng(0)
        detector = DriftSpot(q=1e-4, depth=10).fit(
            drifting_stream(rng, 1000)
        )
        stream = list(10.0 + drifting_stream(rng, 300, slope=0.01))
        stream.append(stream[-1] + 40.0)
        alerts = detector.run(stream)
        assert alerts
        assert alerts[-1].index == 300

    def test_tolerates_drift_plain_spot_does_not(self):
        """A steadily rising stream floods plain SPOT with alerts but
        stays quiet under DSPOT, whose local mean follows the drift."""
        rng = np.random.default_rng(1)
        calibration = drifting_stream(rng, 1000, slope=0.02)
        continuation = (
            0.02 * (1000 + np.arange(1500))
            + rng.normal(0.0, 1.0, 1500)
        )
        plain = Spot(q=1e-4, level=0.98).fit(calibration)
        drifty = DriftSpot(q=1e-4, depth=20).fit(calibration)
        plain_alerts = plain.run(continuation)
        drift_alerts = drifty.run(continuation)
        assert len(plain_alerts) > 10 * max(1, len(drift_alerts))
        assert len(drift_alerts) <= 5

    def test_alert_threshold_reported_in_original_units(self):
        rng = np.random.default_rng(2)
        detector = DriftSpot(q=1e-4, depth=10).fit(
            100.0 + rng.normal(0.0, 1.0, 500)
        )
        alert = detector.step(1000.0, index=0)
        assert alert is not None
        # The bound must be near the stream level, not near zero.
        assert 90.0 < alert.threshold < 130.0

    def test_alerts_do_not_pollute_drift_window(self):
        rng = np.random.default_rng(3)
        detector = DriftSpot(q=1e-4, depth=10).fit(
            rng.normal(0.0, 1.0, 500)
        )
        detector.step(1e6)  # huge anomaly
        # The local window must still be near zero afterwards.
        assert abs(float(np.mean(detector._window))) < 5.0

    def test_low_false_positives_on_stationary_stream(self):
        rng = np.random.default_rng(4)
        detector = DriftSpot(q=1e-5, depth=10).fit(
            rng.normal(0.0, 1.0, 2000)
        )
        alerts = detector.run(rng.normal(0.0, 1.0, 2000))
        assert len(alerts) <= 5

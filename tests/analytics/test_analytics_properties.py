"""Property-based tests on the anomaly analytics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.evt import Spot, fit_gpd, pot_threshold
from repro.analytics.ksigma import ksigma, rolling_ksigma
from repro.analytics.rca import LeafObservation, localize
from repro.analytics.stl import BacktrackStl

series_st = st.lists(
    st.floats(min_value=-1e4, max_value=1e4,
              allow_nan=False, allow_infinity=False),
    min_size=5, max_size=80,
)


class TestKsigmaProperties:
    @given(series_st, st.floats(min_value=1.0, max_value=6.0))
    @settings(max_examples=80, deadline=None)
    def test_indices_valid_and_directions_consistent(self, series, k):
        for anomaly in ksigma(series, k=k):
            assert 0 <= anomaly.index < len(series)
            assert anomaly.value == series[anomaly.index]
            if anomaly.direction == "spike":
                assert anomaly.score > 0
            else:
                assert anomaly.score < 0

    @given(series_st)
    @settings(max_examples=80, deadline=None)
    def test_higher_k_flags_subset(self, series):
        loose = {a.index for a in ksigma(series, k=2.0)}
        strict = {a.index for a in ksigma(series, k=4.0)}
        assert strict <= loose

    @given(series_st, st.integers(min_value=3, max_value=15))
    @settings(max_examples=80, deadline=None)
    def test_rolling_never_flags_warmup(self, series, window):
        for anomaly in rolling_ksigma(series, window=window, k=3.0):
            assert anomaly.index >= window


class TestEvtProperties:
    excess_st = st.lists(
        st.floats(min_value=1e-3, max_value=1e3,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200,
    )

    @given(excess_st)
    @settings(max_examples=60, deadline=None)
    def test_gpd_fit_has_positive_scale(self, excesses):
        fit = fit_gpd(excesses)
        assert fit.sigma > 0.0
        assert np.isfinite(fit.gamma)

    @given(excess_st, st.floats(min_value=1e-6, max_value=1e-2))
    @settings(max_examples=60, deadline=None)
    def test_pot_threshold_monotone_in_q(self, excesses, q):
        fit = fit_gpd(excesses)
        loose = pot_threshold(fit, 1.0, 1000, len(excesses), q=q)
        strict = pot_threshold(fit, 1.0, 1000, len(excesses), q=q / 10)
        assert strict >= loose - 1e-9

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_spot_threshold_above_calibration_quantile(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.exponential(1.0, 300)
        spot = Spot(q=1e-4, level=0.95).fit(data)
        assert spot.threshold >= float(np.quantile(data, 0.95)) - 1e-9


class TestStlProperties:
    @given(st.lists(
        st.floats(min_value=-100, max_value=100,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=120,
    ), st.integers(min_value=1, max_value=24))
    @settings(max_examples=40, deadline=None)
    def test_components_finite(self, series, period):
        stl = BacktrackStl(period=period)
        decomposition = stl.decompose(series)
        assert np.isfinite(decomposition.trend).all()
        assert np.isfinite(decomposition.seasonal).all()
        assert np.isfinite(decomposition.residual).all()

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False),
           st.integers(min_value=1, max_value=24))
    @settings(max_examples=40, deadline=None)
    def test_constant_series_fully_explained_by_trend(self, level, period):
        stl = BacktrackStl(period=period)
        decomposition = stl.decompose([level] * 60)
        assert np.allclose(decomposition.residual, 0.0, atol=1e-9)
        assert np.allclose(decomposition.trend, level, atol=1e-9)


class TestRcaProperties:
    leaves_st = st.lists(
        st.tuples(
            st.sampled_from(["r0", "r1", "r2"]),
            st.sampled_from(["M1", "M2"]),
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        min_size=1, max_size=30,
    )

    @given(leaves_st)
    @settings(max_examples=80, deadline=None)
    def test_localize_returns_known_values_or_none(self, raw):
        leaves = [
            LeafObservation({"region": r, "model": m}, expected, actual)
            for r, m, expected, actual in raw
        ]
        cause = localize(leaves)
        if cause is not None:
            assert cause.dimension in ("region", "model")
            observed = {
                leaf.dimensions[cause.dimension] for leaf in leaves
            }
            assert set(cause.values) <= observed
            assert cause.explanatory_power > 0.0

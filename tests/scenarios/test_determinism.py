"""Determinism guarantees: same seed, same experiment, always.

Reproducibility is the whole point of simulator-backed experiments;
every scenario must be a pure function of its seed.
"""

import pytest

from repro.scenarios.architecture import simulate_architecture_comparison
from repro.scenarios.event_level import simulate_event_level_curves
from repro.scenarios.fiscal_year import simulate_fiscal_year
from repro.scenarios.incidents import simulate_incident_days


@pytest.mark.slow
class TestScenarioDeterminism:
    def test_incidents(self):
        a = simulate_incident_days(seed=11, vm_count=100)
        b = simulate_incident_days(seed=11, vm_count=100)
        for day in a:
            assert a[day].cdi == b[day].cdi
            assert a[day].air == b[day].air

    def test_incidents_seed_sensitivity(self):
        a = simulate_incident_days(seed=11, vm_count=100)
        b = simulate_incident_days(seed=12, vm_count=100)
        assert a["daily"].cdi != b["daily"].cdi

    def test_fiscal_year(self):
        a = simulate_fiscal_year(seed=5, vm_count=64, months=6)
        b = simulate_fiscal_year(seed=5, vm_count=64, months=6)
        assert [m.report for m in a] == [m.report for m in b]

    def test_architecture(self):
        a = simulate_architecture_comparison(seed=3, days=10, bug_onset=5,
                                             rollback_start=8)
        b = simulate_architecture_comparison(seed=3, days=10, bug_onset=5,
                                             rollback_start=8)
        assert a == b

    def test_event_level(self):
        a = simulate_event_level_curves(seed=4, days=12, spike_day=6,
                                        dip_start=5, dip_end=8, vm_count=40)
        b = simulate_event_level_curves(seed=4, days=12, spike_day=6,
                                        dip_start=5, dip_end=8, vm_count=40)
        assert a.allocation_failed == b.allocation_failed
        assert a.power_tdp == b.power_tdp

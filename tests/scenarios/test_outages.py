"""Tests for the outage family and the AIR-vs-CDI faceoff study.

The family is deterministic per seed, so the tests pin hard facts:
scenario shapes, per-seed KPI verdicts, RCA localization accuracy,
and byte-identical serialization across executor backends.
"""

import pytest

from repro.scenarios.faceoff import (
    FLAG_RATIO,
    faceoff_json,
    run_faceoff,
    run_scenario,
)
from repro.scenarios.outages import (
    BASELINE_DAYS,
    OutageScenario,
    family_names,
    outage_family,
)
from repro.telemetry.faults import FaultKind
from repro.telemetry.fleetgen import InjectedIncident, incident_faults


@pytest.fixture(scope="module")
def faceoff_seed0():
    return run_faceoff(0)


class TestFamilyShape:
    def test_member_names_and_order(self):
        assert family_names() == [
            "quiet", "hard-downtime", "nc-batch-outage",
            "performance-degradation", "control-plane-outage",
            "brief-but-wide",
        ]

    def test_deterministic_per_seed(self):
        a, b = outage_family(7), outage_family(7)
        assert [s.name for s in a] == [s.name for s in b]
        for x, y in zip(a, b):
            assert x.incidents == y.incidents
            assert x.vm_ids == y.vm_ids

    def test_fleet_layout(self):
        family = outage_family(0)
        assert len(family[0].vm_ids) == 36
        assert len(family[0].fleet.clusters) == 4

    def test_incidents_cluster_concentrated(self):
        for scenario in outage_family(0):
            for incident in scenario.incidents:
                assert incident.dimension == "cluster"
                cluster_of = scenario.fleet.cluster_of
                assert {cluster_of(vm).cluster_id
                        for vm in incident.targets} == {incident.value}

    def test_incident_misses_last_day_rejected(self):
        scenario = outage_family(0)[1]
        early = InjectedIncident(
            incident_id="early", kind=FaultKind.VM_DOWN,
            targets=scenario.incidents[0].targets,
            onset_day=0, duration_days=1, seconds_per_day=100.0,
        )
        with pytest.raises(ValueError):
            OutageScenario(
                name="bad", seed=0, fleet=scenario.fleet,
                rates=scenario.rates, incidents=(early,),
                description="", expect_air=True, expect_cdi=True,
                rca_scored=False,
            )


class TestPulsedIncidents:
    def test_pulse_fault_layout(self):
        incident = InjectedIncident(
            incident_id="p", kind=FaultKind.VM_DOWN, targets=("vm0",),
            onset_day=0, duration_days=1, seconds_per_day=24.0,
            pulses=12, pulse_interval=600.0,
        )
        faults = incident_faults(incident)
        assert len(faults) == 12
        assert all(f.duration == pytest.approx(2.0) for f in faults)
        assert [f.start for f in faults] == [600.0 * i for i in range(12)]
        # Total injected duration is independent of the pulse count.
        assert sum(f.duration for f in faults) == pytest.approx(24.0)

    def test_single_pulse_unchanged(self):
        incident = InjectedIncident(
            incident_id="s", kind=FaultKind.VM_DOWN, targets=("vm0",),
            onset_day=0, duration_days=1, seconds_per_day=300.0,
        )
        (fault,) = incident_faults(incident)
        assert fault.start == 0.0
        assert fault.duration == 300.0

    def test_overlapping_pulses_rejected(self):
        with pytest.raises(ValueError):
            InjectedIncident(
                incident_id="bad", kind=FaultKind.VM_DOWN,
                targets=("vm0",), onset_day=0, duration_days=1,
                seconds_per_day=1200.0, pulses=2, pulse_interval=300.0,
            )

    def test_zero_pulses_rejected(self):
        with pytest.raises(ValueError):
            InjectedIncident(
                incident_id="bad", kind=FaultKind.VM_DOWN,
                targets=("vm0",), onset_day=0, duration_days=1,
                seconds_per_day=100.0, pulses=0,
            )


class TestFaceoffSeed0:
    def test_every_scenario_matches_designed_verdict(self, faceoff_seed0):
        verdicts = {r["name"]: r["verdict"]
                    for r in faceoff_seed0["scenarios"]}
        assert verdicts == {
            "quiet": "both_quiet",
            "hard-downtime": "both_flag",
            "nc-batch-outage": "both_flag",
            "performance-degradation": "air_blind",
            "control-plane-outage": "air_blind",
            "brief-but-wide": "cdi_blind",
        }
        assert faceoff_seed0["summary"]["expectations_met"] is True

    def test_air_blind_divergence_present(self, faceoff_seed0):
        # The paper's thesis, quantified: at least one scenario where
        # AIR calls the fleet fine while CDI flags damage.
        assert faceoff_seed0["summary"]["air_blind_scenarios"]

    def test_rca_accuracy_pinned(self, faceoff_seed0):
        rca = faceoff_seed0["summary"]["rca"]
        assert rca["scored"] == 4
        assert rca["correct"] == 4
        assert rca["accuracy"] == 1.0

    def test_nc_batch_localizes_at_cluster(self, faceoff_seed0):
        record = next(r for r in faceoff_seed0["scenarios"]
                      if r["name"] == "nc-batch-outage")
        # Correlated failure of two NCs must localize at their shared
        # cluster (one value), not the two-value NC set.
        assert record["rca"]["dimension"] == "cluster"
        assert record["rca"]["values"] == record["rca"]["truth_values"]
        assert record["rca"]["correct"] is True

    def test_brief_but_wide_air_explodes_cdi_flat(self, faceoff_seed0):
        record = next(r for r in faceoff_seed0["scenarios"]
                      if r["name"] == "brief-but-wide")
        assert record["kpis"]["air"]["ratio"] > 10 * FLAG_RATIO
        assert record["kpis"]["cdi_unavailability"]["ratio"] < FLAG_RATIO

    def test_days_and_baseline_shape(self, faceoff_seed0):
        assert faceoff_seed0["days"] == BASELINE_DAYS + 1
        for record in faceoff_seed0["scenarios"]:
            assert len(record["kpis"]["air"]["daily"]) == BASELINE_DAYS + 1


class TestFaceoffDeterminism:
    def test_rerun_byte_identical(self, faceoff_seed0):
        assert faceoff_json(run_faceoff(0)) == faceoff_json(faceoff_seed0)

    def test_backends_byte_identical_single_scenario(self):
        scenario = outage_family(0)[1]  # hard-downtime
        thread = run_scenario(scenario, backend="thread")
        process = run_scenario(scenario, backend="process")
        assert faceoff_json(thread) == faceoff_json(process)

"""Direct tests for scenario builders (beyond their integration uses)."""

import pytest

from repro.abtest.experiment import AbExperiment
from repro.core.events import EventCategory
from repro.scenarios.abtest_case8 import PAPER_MEANS, build_case8_experiment
from repro.scenarios.nic_case import nic_rules, run_nic_incident


class TestCase8Builder:
    def test_observation_counts(self):
        experiment = build_case8_experiment(hits_per_variant=30, seed=1)
        assert isinstance(experiment, AbExperiment)
        assert experiment.counts() == {"A": 30, "B": 30, "C": 30}

    def test_performance_means_near_paper(self):
        experiment = build_case8_experiment(hits_per_variant=200, seed=1)
        sequences = experiment.sequences(EventCategory.PERFORMANCE)
        for name, paper_mean in PAPER_MEANS.items():
            observed = sum(sequences[name]) / len(sequences[name])
            assert observed == pytest.approx(paper_mean, abs=0.04)

    def test_reports_bounded(self):
        experiment = build_case8_experiment(hits_per_variant=50, seed=2)
        for observation in experiment.observations:
            report = observation.report
            for value in (report.unavailability, report.performance,
                          report.control_plane):
                assert 0.0 <= value <= 1.0

    def test_deterministic(self):
        a = build_case8_experiment(hits_per_variant=10, seed=3)
        b = build_case8_experiment(hits_per_variant=10, seed=3)
        assert a.observations == b.observations

    def test_non_performance_arms_indistinguishable_by_design(self):
        experiment = build_case8_experiment(hits_per_variant=200, seed=4)
        for category in (EventCategory.UNAVAILABILITY,
                         EventCategory.CONTROL_PLANE):
            sequences = experiment.sequences(category)
            means = [sum(s) / len(s) for s in sequences.values()]
            assert max(means) - min(means) < 0.02


class TestNicCaseBuilder:
    def test_rules_cover_fig1(self):
        rules = {r.name: r for r in nic_rules()}
        assert set(rules) == {"nic_error_cause_slow_io",
                              "nic_error_cause_vm_hang"}
        assert rules["nic_error_cause_slow_io"].referenced_events == {
            "slow_io", "nic_flapping",
        }
        assert len(rules["nic_error_cause_slow_io"].actions) == 3

    def test_outcome_structure(self):
        outcome = run_nic_incident(seed=1)
        assert outcome.vm in outcome.fleet.vms
        assert outcome.nc == outcome.fleet.vms[outcome.vm].nc_id
        assert outcome.bundle.metrics
        assert outcome.bundle.logs
        assert outcome.matches
        assert outcome.records

    def test_different_seed_still_resolves(self):
        outcome = run_nic_incident(seed=7)
        assert any(m.rule.name == "nic_error_cause_slow_io"
                   for m in outcome.matches)

"""Tests for the experiment scenarios (paper-shape assertions)."""

import pytest

from repro.core.events import EventCategory, default_catalog
from repro.scenarios.architecture import (
    divergence_ratio,
    simulate_architecture_comparison,
)
from repro.scenarios.common import (
    FAULT_EVENT_NAME,
    fault_to_period,
    fleet_cdi,
    full_day_services,
    periods_by_vm,
)
from repro.scenarios.event_level import simulate_event_level_curves
from repro.scenarios.fiscal_year import (
    simulate_fiscal_year,
    smoothed,
    year_over_year_reduction,
)
from repro.scenarios.incidents import normalize_to_daily, simulate_incident_days
from repro.telemetry.faults import Fault, FaultKind


class TestCommon:
    def test_every_fault_kind_maps_to_a_catalog_event(self):
        catalog = default_catalog()
        assert set(FAULT_EVENT_NAME) == set(FaultKind)
        for name in FAULT_EVENT_NAME.values():
            assert catalog.logical_name(name) is not None

    def test_fault_to_period(self):
        catalog = default_catalog()
        fault = Fault(FaultKind.SLOW_IO, "vm-1", 100.0, 60.0)
        period = fault_to_period(fault, catalog)
        assert period.name == "slow_io"
        assert (period.start, period.end) == (100.0, 160.0)

    def test_fleet_cdi_dilution(self):
        catalog = default_catalog()
        faults = [Fault(FaultKind.VM_DOWN, "vm-0", 0.0, 86400.0)]
        periods = periods_by_vm(faults, catalog)
        one = fleet_cdi(periods, full_day_services(["vm-0"]))
        diluted = fleet_cdi(periods, full_day_services(
            [f"vm-{i}" for i in range(10)]
        ))
        assert one.unavailability == pytest.approx(1.0)
        assert diluted.unavailability == pytest.approx(0.1)


@pytest.mark.slow
class TestFig5Incidents:
    @pytest.fixture(scope="class")
    def rows(self):
        return normalize_to_daily(simulate_incident_days(seed=0))

    def test_data_plane_incidents_move_air_dp_and_cdi_u(self, rows):
        for day in ("20240425", "20240702"):
            assert rows[day]["AIR"] > 1.5
            assert rows[day]["DP"] > 5.0
            assert rows[day]["CDI-U"] > 5.0

    def test_control_plane_incident_invisible_to_air_dp(self, rows):
        """The paper's key claim: AIR and DP cannot reflect 20250107."""
        assert 0.5 < rows["20250107"]["AIR"] < 1.5
        assert 0.5 < rows["20250107"]["DP"] < 1.5

    def test_control_plane_incident_visible_to_cdi(self, rows):
        assert rows["20250107"]["CDI-C"] > 10.0


@pytest.mark.slow
class TestFig6FiscalYear:
    @pytest.fixture(scope="class")
    def curve(self):
        return simulate_fiscal_year(seed=0)

    def test_twelve_months(self, curve):
        assert len(curve) == 12
        assert curve[0].month == "Apr"
        assert curve[-1].month == "Mar"

    def test_reductions_match_paper_shape(self, curve):
        """Paper: -40% U, -80% P, -35% C; Performance falls the most."""
        reductions = year_over_year_reduction(curve)
        assert 0.15 <= reductions[EventCategory.UNAVAILABILITY] <= 0.60
        assert 0.55 <= reductions[EventCategory.PERFORMANCE] <= 0.95
        assert 0.10 <= reductions[EventCategory.CONTROL_PLANE] <= 0.55
        assert reductions[EventCategory.PERFORMANCE] == max(
            reductions.values()
        )

    def test_smoothing_preserves_length_and_reduces_variance(self, curve):
        import numpy as np

        smooth = smoothed(curve, window=3)
        assert len(smooth) == len(curve)
        raw = np.array([m.report.performance for m in curve])
        flat = np.array([m.report.performance for m in smooth])
        assert np.std(np.diff(flat)) <= np.std(np.diff(raw)) + 1e-12

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            simulate_fiscal_year(months=1)
        with pytest.raises(ValueError):
            year_over_year_reduction(simulate_fiscal_year(months=4), edge=3)


@pytest.mark.slow
class TestFig8Architecture:
    @pytest.fixture(scope="class")
    def curve(self):
        return simulate_architecture_comparison(seed=0)

    def test_arms_track_before_onset(self, curve):
        assert 0.5 < divergence_ratio(curve, (1, 12)) < 2.0

    def test_hybrid_diverges_after_day_13(self, curve):
        assert divergence_ratio(curve, (14, 20)) > 5.0

    def test_converged_by_day_28(self, curve):
        assert 0.4 < divergence_ratio(curve, (27, 28)) < 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_architecture_comparison(days=10, bug_onset=20)


@pytest.mark.slow
class TestFig9EventLevel:
    @pytest.fixture(scope="class")
    def curves(self):
        return simulate_event_level_curves(seed=0)

    def test_case6_spike_on_day_14(self, curves):
        spike = curves.allocation_failed[curves.spike_day - 1]
        others = [
            v for i, v in enumerate(curves.allocation_failed)
            if i != curves.spike_day - 1
        ]
        assert spike > 5.0 * max(others)

    def test_case6_reverts_next_day(self, curves):
        after = curves.allocation_failed[curves.spike_day]
        spike = curves.allocation_failed[curves.spike_day - 1]
        assert after < spike / 5.0

    def test_case7_dip_window_low(self, curves):
        import numpy as np

        normal = np.mean(curves.power_tdp[: curves.dip_start - 1])
        bottom = curves.power_tdp[curves.dip_end - 1]
        assert bottom < normal / 5.0

    def test_case7_recovers(self, curves):
        import numpy as np

        normal = np.mean(curves.power_tdp[: curves.dip_start - 1])
        recovered = np.mean(curves.power_tdp[curves.dip_end + 1:])
        assert recovered > normal / 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_event_level_curves(days=10, spike_day=20)

"""Tests for the Case 2 AccessKey incident scenario."""

import pytest

from repro.scenarios.access_key import simulate_access_key_incident


@pytest.fixture(scope="module")
def result():
    return simulate_access_key_incident(seed=0)


class TestCase2AccessKey:
    def test_control_plane_damage_dominates(self, result):
        """The control plane 'encountered more severe issues' — CDI-C
        must dwarf the baseline while CDI-U moves only modestly."""
        control_ratio = (
            result.incident_cdi.control_plane
            / max(result.baseline_cdi.control_plane, 1e-12)
        )
        unavail_ratio = (
            result.incident_cdi.unavailability
            / max(result.baseline_cdi.unavailability, 1e-12)
        )
        assert control_ratio > 10.0
        assert control_ratio > 3.0 * unavail_ratio

    def test_most_servers_kept_running(self, result):
        """'Most of the existing cloud servers continued to run
        normally' — only the encrypted-disk minority went down."""
        assert result.affected_data_plane_vms < result.total_vms * 0.1

    def test_downtime_percentage_understates_the_incident(self, result):
        """DP sees only the ~4% encrypted-disk victims; its incident
        ratio must be far below the CDI-C ratio."""
        dp_ratio = result.incident_dp / max(result.baseline_dp, 1e-12)
        control_ratio = (
            result.incident_cdi.control_plane
            / max(result.baseline_cdi.control_plane, 1e-12)
        )
        assert control_ratio > 3.0 * dp_ratio

    def test_data_plane_damage_present_but_small(self, result):
        # Encrypted-disk VMs were genuinely down: CDI-U rises above
        # baseline, bounded by the affected share x duration.
        assert result.incident_cdi.unavailability > (
            result.baseline_cdi.unavailability
        )
        upper_bound = (
            result.affected_data_plane_vms / result.total_vms
            * (3.5 / 24.0)
        )
        assert result.incident_cdi.unavailability < upper_bound * 2.0

    def test_control_plane_magnitude_matches_blast_radius(self, result):
        """Every VM was uncontrollable for 3.5 h at weight <= 1."""
        assert result.incident_cdi.control_plane <= 3.5 / 24.0 + 0.01
        assert result.incident_cdi.control_plane > 0.5 * 3.5 / 24.0 * 0.5

"""Tests for the learned failure predictor."""

import numpy as np
import pytest

from repro.cloudbot.predictor import (
    FEATURES,
    LogisticFailurePredictor,
    featurize_window,
)
from repro.telemetry.metrics import MetricSample


def make_dataset(seed=0, n=400):
    """Healthy windows (low mean) vs pre-failure windows (rising trend)."""
    rng = np.random.default_rng(seed)
    features, labels = [], []
    for _ in range(n // 2):
        healthy = rng.normal(2.0, 0.2, 30)
        features.append(featurize_window(healthy))
        labels.append(0)
        failing = 2.0 + np.linspace(0.0, 6.0, 30) + rng.normal(0, 0.2, 30)
        features.append(featurize_window(failing))
        labels.append(1)
    return np.array(features), np.array(labels)


class TestFeaturize:
    def test_feature_vector_shape(self):
        assert featurize_window([1.0, 2.0, 3.0]).shape == (len(FEATURES),)

    def test_slope_sign(self):
        rising = featurize_window([1.0, 2.0, 3.0, 4.0])
        falling = featurize_window([4.0, 3.0, 2.0, 1.0])
        assert rising[-1] > 0 > falling[-1]

    def test_single_sample_window(self):
        features = featurize_window([5.0])
        assert features[0] == 5.0
        assert features[-1] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            featurize_window([])


class TestLogisticFailurePredictor:
    def test_learns_separable_problem(self):
        x, y = make_dataset()
        predictor = LogisticFailurePredictor(epochs=400)
        report = predictor.fit(x, y)
        assert report.accuracy > 0.95
        assert report.final_loss < 0.3

    def test_generalizes_to_fresh_data(self):
        x, y = make_dataset(seed=0)
        predictor = LogisticFailurePredictor(epochs=400)
        predictor.fit(x, y)
        x_test, y_test = make_dataset(seed=99, n=100)
        predictions = predictor.predict_proba(x_test) > predictor.threshold
        assert (predictions == (y_test > 0.5)).mean() > 0.9

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LogisticFailurePredictor().predict_proba(np.zeros((1, 5)))
        with pytest.raises(RuntimeError):
            LogisticFailurePredictor().predict_events([])

    def test_shape_validation(self):
        predictor = LogisticFailurePredictor()
        with pytest.raises(ValueError):
            predictor.fit(np.zeros((3, 5)), np.zeros(4))
        with pytest.raises(ValueError):
            predictor.fit(np.zeros((1, 5)), np.zeros(1))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LogisticFailurePredictor(threshold=1.0)

    def test_predict_events_flags_risky_target(self):
        x, y = make_dataset()
        predictor = LogisticFailurePredictor(epochs=400)
        predictor.fit(x, y)
        rng = np.random.default_rng(5)
        failing = [
            MetricSample(time=float(i * 60), target="nc-risky",
                         metric="read_latency",
                         value=float(2.0 + i * 0.2 + rng.normal(0, 0.2)))
            for i in range(30)
        ]
        healthy = [
            MetricSample(time=float(i * 60), target="nc-fine",
                         metric="read_latency",
                         value=float(rng.normal(2.0, 0.2)))
            for i in range(30)
        ]
        events = predictor.predict_events(failing + healthy)
        targets = {e.target for e in events}
        assert "nc-risky" in targets
        assert "nc-fine" not in targets
        assert all(e.name == "nc_down_prediction" for e in events)
        assert all(0.5 < e.attributes["probability"] <= 1.0 for e in events)

"""Property tests: the rule-expression parser vs a reference evaluator.

Random boolean expressions over a small event vocabulary are rendered
to text, parsed by the production parser, and evaluated against a
direct AST interpretation on random active-event sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloudbot.rules import parse_expression

EVENTS = ["slow_io", "nic_flapping", "vm_hang", "vcpu_high", "gpu_drop"]


@st.composite
def expression_ast(draw, depth: int = 0):
    """Random expression AST: ('event', name) | ('not', x) |
    ('and'|'or', left, right)."""
    if depth >= 4:
        return ("event", draw(st.sampled_from(EVENTS)))
    kind = draw(st.sampled_from(["event", "event", "not", "and", "or"]))
    if kind == "event":
        return ("event", draw(st.sampled_from(EVENTS)))
    if kind == "not":
        return ("not", draw(expression_ast(depth + 1)))
    return (kind, draw(expression_ast(depth + 1)),
            draw(expression_ast(depth + 1)))


def render(ast) -> str:
    """Render an AST with explicit parentheses."""
    kind = ast[0]
    if kind == "event":
        return ast[1]
    if kind == "not":
        return f"NOT ({render(ast[1])})"
    return f"({render(ast[1])}) {kind.upper()} ({render(ast[2])})"


def evaluate(ast, active: frozenset) -> bool:
    """Reference evaluator."""
    kind = ast[0]
    if kind == "event":
        return ast[1] in active
    if kind == "not":
        return not evaluate(ast[1], active)
    if kind == "and":
        return evaluate(ast[1], active) and evaluate(ast[2], active)
    return evaluate(ast[1], active) or evaluate(ast[2], active)


def referenced(ast) -> set:
    kind = ast[0]
    if kind == "event":
        return {ast[1]}
    if kind == "not":
        return referenced(ast[1])
    return referenced(ast[1]) | referenced(ast[2])


class TestParserProperties:
    @given(expression_ast(),
           st.sets(st.sampled_from(EVENTS), max_size=len(EVENTS)))
    @settings(max_examples=300)
    def test_parser_matches_reference_evaluator(self, ast, active_set):
        active = frozenset(active_set)
        predicate, names = parse_expression(render(ast))
        assert predicate(active) == evaluate(ast, active)
        assert names == frozenset(referenced(ast))

    @given(expression_ast())
    @settings(max_examples=100)
    def test_rendered_expressions_always_parse(self, ast):
        predicate, _ = parse_expression(render(ast))
        assert callable(predicate)

    @given(expression_ast(),
           st.sets(st.sampled_from(EVENTS), max_size=len(EVENTS)))
    @settings(max_examples=100)
    def test_double_negation_is_identity(self, ast, active_set):
        active = frozenset(active_set)
        base, _ = parse_expression(render(ast))
        doubled, _ = parse_expression(f"NOT (NOT ({render(ast)}))")
        assert base(active) == doubled(active)

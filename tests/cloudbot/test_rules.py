"""Tests for operation rule expressions and the rule engine."""

import pytest

from repro.cloudbot.actions import Action, ActionType
from repro.cloudbot.rules import (
    OperationRule,
    RuleEngine,
    RuleSyntaxError,
    parse_expression,
)
from repro.core.events import Event, Severity


def active(*names: str) -> frozenset:
    return frozenset(names)


class TestParseExpression:
    def test_single_event(self):
        predicate, names = parse_expression("slow_io")
        assert names == {"slow_io"}
        assert predicate(active("slow_io"))
        assert not predicate(active("vm_hang"))

    def test_and(self):
        predicate, _ = parse_expression("slow_io AND nic_flapping")
        assert predicate(active("slow_io", "nic_flapping"))
        assert not predicate(active("nic_flapping"))

    def test_or(self):
        predicate, _ = parse_expression("vm_down OR vm_hang")
        assert predicate(active("vm_hang"))
        assert not predicate(active("slow_io"))

    def test_not(self):
        predicate, _ = parse_expression("nic_flapping AND NOT vm_hang")
        assert predicate(active("nic_flapping"))
        assert not predicate(active("nic_flapping", "vm_hang"))

    def test_parentheses_and_precedence(self):
        # AND binds tighter than OR.
        predicate, _ = parse_expression("a OR b AND c")
        assert predicate(active("a"))
        assert predicate(active("b", "c"))
        assert not predicate(active("b"))
        grouped, _ = parse_expression("(a OR b) AND c")
        assert not grouped(active("a"))
        assert grouped(active("a", "c"))

    def test_case_insensitive_keywords(self):
        predicate, _ = parse_expression("a and not b")
        assert predicate(active("a"))
        assert not predicate(active("a", "b"))

    def test_nested_not(self):
        predicate, _ = parse_expression("NOT NOT a")
        assert predicate(active("a"))

    def test_syntax_errors(self):
        for bad in ("", "AND", "a AND", "(a", "a )", "a b", "a && b"):
            with pytest.raises(RuleSyntaxError):
                parse_expression(bad)

    def test_referenced_names_collected(self):
        _, names = parse_expression("(a OR b) AND NOT c")
        assert names == {"a", "b", "c"}


class TestOperationRule:
    def test_fig1_nic_error_cause_slow_io(self):
        """Fig. 1: slow_io + nic_flapping matches; nic_flapping alone
        does not match nic_error_cause_vm_hang."""
        slow_io_rule = OperationRule(
            name="nic_error_cause_slow_io",
            expression="slow_io AND nic_flapping",
        )
        vm_hang_rule = OperationRule(
            name="nic_error_cause_vm_hang",
            expression="nic_flapping AND vm_hang",
        )
        observed = {"slow_io", "nic_flapping"}
        assert slow_io_rule.matches(observed)
        assert not vm_hang_rule.matches(observed)

    def test_invalid_expression_raises_at_construction(self):
        with pytest.raises(RuleSyntaxError):
            OperationRule(name="bad", expression="AND AND")

    def test_referenced_events_exposed(self):
        rule = OperationRule(name="r", expression="a AND (b OR c)")
        assert rule.referenced_events == {"a", "b", "c"}


class TestRuleEngine:
    def make_engine(self) -> RuleEngine:
        rule = OperationRule(
            name="nic_error_cause_slow_io",
            expression="slow_io AND nic_flapping",
            actions=(
                Action(ActionType.LIVE_MIGRATION, target="", priority=10),
                Action(ActionType.REPAIR_REQUEST, target=""),
                Action(ActionType.NC_LOCK, target=""),
            ),
        )
        return RuleEngine([rule])

    def test_match_produces_target_bound_actions(self):
        engine = self.make_engine()
        events = [
            Event("slow_io", 100.0, "vm-1", expire_interval=600.0),
            Event("nic_flapping", 110.0, "vm-1", expire_interval=600.0),
        ]
        matches = engine.evaluate(events, now=120.0)
        assert len(matches) == 1
        actions = matches[0].actions()
        assert [a.type for a in actions] == [
            ActionType.LIVE_MIGRATION, ActionType.REPAIR_REQUEST,
            ActionType.NC_LOCK,
        ]
        assert all(a.target == "vm-1" for a in actions)
        assert all(a.source_rule == "nic_error_cause_slow_io" for a in actions)

    def test_expired_events_do_not_match(self):
        engine = self.make_engine()
        events = [
            Event("slow_io", 100.0, "vm-1", expire_interval=60.0),
            Event("nic_flapping", 500.0, "vm-1", expire_interval=600.0),
        ]
        assert engine.evaluate(events, now=550.0) == []

    def test_events_from_other_targets_do_not_combine(self):
        engine = self.make_engine()
        events = [
            Event("slow_io", 100.0, "vm-1", expire_interval=600.0),
            Event("nic_flapping", 100.0, "vm-2", expire_interval=600.0),
        ]
        assert engine.evaluate(events, now=120.0) == []

    def test_future_events_not_active(self):
        engine = self.make_engine()
        events = [
            Event("slow_io", 500.0, "vm-1", expire_interval=600.0),
            Event("nic_flapping", 500.0, "vm-1", expire_interval=600.0),
        ]
        assert engine.evaluate(events, now=100.0) == []

    def test_register_replaces_rule(self):
        engine = self.make_engine()
        engine.register(OperationRule(
            name="nic_error_cause_slow_io", expression="vm_hang",
        ))
        assert len(engine.rules()) == 1
        assert engine.rules()[0].expression == "vm_hang"

    def test_active_events_helper(self):
        events = [
            Event("a", 0.0, "t1", expire_interval=100.0),
            Event("b", 0.0, "t1", expire_interval=10.0),
        ]
        assert RuleEngine.active_events(events, 50.0) == {"t1": {"a"}}

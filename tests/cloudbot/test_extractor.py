"""Tests for the Event Extractor (expert, statistical, learned)."""

import numpy as np
import pytest

from repro.cloudbot.extractor import (
    EventExtractor,
    LogRegexRule,
    MetricThresholdRule,
    StatisticalMetricExtractor,
    default_log_rules,
    default_metric_rules,
)
from repro.core.events import Severity
from repro.telemetry import metrics as m
from repro.telemetry.faults import Fault, FaultKind
from repro.telemetry.logs import LogLine
from repro.telemetry.metrics import MetricGenerator, MetricSample


def sample(metric: str, value: float, time: float = 100.0,
           target: str = "vm-1") -> MetricSample:
    return MetricSample(time=time, target=target, metric=metric, value=value)


class TestMetricThresholdRule:
    def test_above_threshold_fires(self):
        rule = MetricThresholdRule(m.READ_LATENCY, 10.0, "slow_io")
        event = rule.extract(sample(m.READ_LATENCY, 42.0))
        assert event is not None
        assert event.name == "slow_io"
        assert event.attributes["value"] == 42.0

    def test_below_threshold_silent(self):
        rule = MetricThresholdRule(m.READ_LATENCY, 10.0, "slow_io")
        assert rule.extract(sample(m.READ_LATENCY, 2.0)) is None

    def test_below_direction(self):
        rule = MetricThresholdRule(m.HEARTBEAT, 0.5, "vm_down",
                                   direction="below")
        assert rule.extract(sample(m.HEARTBEAT, 0.0)) is not None
        assert rule.extract(sample(m.HEARTBEAT, 1.0)) is None

    def test_wrong_metric_ignored(self):
        rule = MetricThresholdRule(m.READ_LATENCY, 10.0, "slow_io")
        assert rule.extract(sample(m.CPU_STEAL, 99.0)) is None

    def test_level_by_value(self):
        """Table II: same event name, severity depends on conditions."""
        rule = MetricThresholdRule(
            m.READ_LATENCY, 10.0, "slow_io",
            level_by_value=lambda v: Severity.FATAL if v > 100 else
            Severity.CRITICAL,
        )
        assert rule.extract(sample(m.READ_LATENCY, 50.0)).level is (
            Severity.CRITICAL
        )
        assert rule.extract(sample(m.READ_LATENCY, 500.0)).level is (
            Severity.FATAL
        )

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            MetricThresholdRule(m.READ_LATENCY, 1.0, "x", direction="sideways")


class TestLogRegexRule:
    def test_fig1_nic_line_matches(self):
        rule = LogRegexRule(r"NIC Link is Down", "nic_flapping")
        line = LogLine(time=100.0, target="nc-1",
                       line="kernel: eth0 NIC Link is Down")
        event = rule.extract(line)
        assert event is not None
        assert event.name == "nic_flapping"
        assert event.target == "nc-1"

    def test_non_matching_line_discarded(self):
        rule = LogRegexRule(r"NIC Link is Down", "nic_flapping")
        line = LogLine(time=100.0, target="nc-1",
                       line="systemd[1]: Started Daily apt")
        assert rule.extract(line) is None


class TestStatisticalExtractor:
    def test_detects_injected_anomaly(self):
        rng = np.random.default_rng(0)
        times = list(np.arange(0.0, 500 * 60.0, 60.0))
        values = list(2.0 + 0.5 * np.sin(2 * np.pi * np.arange(500) / 100)
                      + rng.normal(0, 0.05, 500))
        values[400] += 8.0
        extractor = StatisticalMetricExtractor(
            m.READ_LATENCY, "slow_io", period=100, calibration=200, q=1e-3,
        )
        events = extractor.extract_series("vm-1", times, values)
        assert any(abs(e.time - times[400]) < 1.0 for e in events)

    def test_quiet_series_mostly_silent(self):
        rng = np.random.default_rng(1)
        times = list(np.arange(0.0, 400 * 60.0, 60.0))
        values = list(2.0 + rng.normal(0, 0.05, 400))
        extractor = StatisticalMetricExtractor(
            m.READ_LATENCY, "slow_io", period=100, calibration=200, q=1e-5,
        )
        events = extractor.extract_series("vm-1", times, values)
        assert len(events) <= 2

    def test_short_series_empty(self):
        extractor = StatisticalMetricExtractor(
            m.READ_LATENCY, "slow_io", period=10, calibration=50,
        )
        assert extractor.extract_series("vm-1", [1.0], [2.0]) == []

    def test_length_mismatch_rejected(self):
        extractor = StatisticalMetricExtractor(
            m.READ_LATENCY, "slow_io", period=10,
        )
        with pytest.raises(ValueError):
            extractor.extract_series("vm-1", [1.0, 2.0], [1.0])

    def test_invalid_calibration(self):
        with pytest.raises(ValueError):
            StatisticalMetricExtractor(m.READ_LATENCY, "x", period=10,
                                       calibration=5)


class TestEventExtractorEndToEnd:
    def test_fault_recovered_from_rendered_telemetry(self):
        """slow_io fault -> raised read_latency -> slow_io events."""
        generator = MetricGenerator(seed=3)
        fault = Fault(FaultKind.SLOW_IO, "vm-1", 1800.0, 600.0)
        samples = generator.emit(
            ["vm-1", "vm-2"], [m.READ_LATENCY], 0.0, 3600.0, faults=[fault],
        )
        extractor = EventExtractor(metric_rules=default_metric_rules())
        events = extractor.extract_from_metrics(samples)
        assert events
        assert all(e.name == "slow_io" for e in events)
        assert all(e.target == "vm-1" for e in events)
        assert all(1800.0 <= e.time < 2400.0 for e in events)

    def test_log_extraction_discards_noise(self):
        extractor = EventExtractor(log_rules=default_log_rules())
        lines = [
            LogLine(10.0, "nc-1", "kernel: eth0 NIC Link is Down"),
            LogLine(11.0, "nc-1", "sshd[2211]: Accepted publickey"),
            LogLine(12.0, "nc-1", "chronyd[801]: Selected source"),
        ]
        events = extractor.extract_from_logs(lines)
        assert [e.name for e in events] == ["nic_flapping"]

    def test_extract_all_sorted(self):
        extractor = EventExtractor(
            metric_rules=default_metric_rules(),
            log_rules=default_log_rules(),
        )
        events = extractor.extract_all(
            metrics=[sample(m.READ_LATENCY, 50.0, time=200.0)],
            logs=[LogLine(100.0, "nc-1", "kernel: eth0 NIC Link is Down")],
        )
        assert [e.name for e in events] == ["nic_flapping", "slow_io"]
        assert events[0].time <= events[1].time

    def test_heartbeat_zero_yields_vm_down(self):
        extractor = EventExtractor(metric_rules=default_metric_rules())
        events = extractor.extract_from_metrics(
            [sample(m.HEARTBEAT, 0.0)]
        )
        assert [e.name for e in events] == ["vm_down"]
        assert events[0].level is Severity.FATAL

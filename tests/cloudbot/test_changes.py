"""Tests for gradual releases and circuit breaking (Section VI-C)."""

import pytest

from repro.cloudbot.changes import (
    ChangeRelease,
    CircuitBreaker,
    RolloutState,
    performance_damage_by_cohort,
    run_gradual_release,
)
from repro.core.events import Event, Severity, default_catalog

CATALOG = default_catalog()
TARGETS = [f"vm-{i:02d}" for i in range(10)]


def make_change(batch_size: int = 3,
                max_fatal: int = 0) -> ChangeRelease:
    return ChangeRelease(
        name="virt-update-42",
        targets=TARGETS,
        batch_size=batch_size,
        breaker=CircuitBreaker(max_fatal_events=max_fatal, catalog=CATALOG),
    )


def fatal_event(target: str) -> Event:
    return Event("vm_down", 0.0, target, level=Severity.FATAL)


def perf_event(target: str, time: float = 0.0) -> Event:
    return Event("slow_io", time, target, level=Severity.WARNING)


class TestChangeRelease:
    def test_batched_rollout_progresses(self):
        change = make_change(batch_size=3)
        assert change.release_next_batch() == TARGETS[:3]
        assert change.state is RolloutState.IN_PROGRESS
        assert change.coverage == pytest.approx(0.3)
        assert change.release_next_batch() == TARGETS[3:6]

    def test_rollout_completes(self):
        change = make_change(batch_size=4)
        for _ in range(3):
            change.release_next_batch()
        assert change.state is RolloutState.COMPLETED
        assert change.coverage == 1.0
        assert change.release_next_batch() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            make_change(batch_size=0)
        with pytest.raises(ValueError):
            ChangeRelease("c", [], 1, CircuitBreaker())


class TestCircuitBreaker:
    def test_fatal_spike_trips_breaker(self):
        change = make_change(max_fatal=1)
        batch = change.release_next_batch()
        decision = change.soak([fatal_event(t) for t in batch[:2]])
        assert decision.tripped
        assert change.state is RolloutState.HALTED
        with pytest.raises(RuntimeError):
            change.release_next_batch()

    def test_fatal_events_outside_batch_ignored(self):
        change = make_change(max_fatal=0)
        change.release_next_batch()
        decision = change.soak([fatal_event("vm-99")])
        assert not decision.tripped

    def test_blind_to_performance_degradation(self):
        """The paper's stated gap: the breaker only sees fatal
        signals, so a mild perf regression sails through."""
        change = make_change(max_fatal=0)
        batch = change.release_next_batch()
        decision = change.soak([perf_event(t) for t in batch] * 5)
        assert not decision.tripped
        assert change.state is RolloutState.IN_PROGRESS

    def test_roll_back(self):
        change = make_change()
        change.release_next_batch()
        reverted = change.roll_back()
        assert reverted == TARGETS[:3]
        assert change.state is RolloutState.ROLLED_BACK
        assert change.coverage == 0.0


class TestRunGradualRelease:
    def test_clean_change_completes(self):
        change = make_change(batch_size=3)
        state = run_gradual_release(change, lambda i, batch: [])
        assert state is RolloutState.COMPLETED
        assert len(change.decisions) == 4

    def test_bad_change_halts_early(self):
        change = make_change(batch_size=3, max_fatal=0)

        def soak(index, batch):
            return [fatal_event(batch[0])] if index == 1 else []

        state = run_gradual_release(change, soak)
        assert state is RolloutState.HALTED
        assert change.coverage == pytest.approx(0.6)  # two batches out

    def test_slow_burn_perf_issue_escapes_the_breaker(self):
        """End-to-end statement of the gap that motivates CDI-based
        detection: a change that degrades performance everywhere rolls
        out to 100% without tripping anything."""
        change = make_change(batch_size=2, max_fatal=0)

        def soak(index, batch):
            return [perf_event(t, time=float(index)) for t in batch]

        state = run_gradual_release(change, soak)
        assert state is RolloutState.COMPLETED
        assert all(not d.tripped for d in change.decisions)

    def test_max_batches_limit(self):
        change = make_change(batch_size=2)
        state = run_gradual_release(change, lambda i, b: [], max_batches=2)
        assert state is RolloutState.IN_PROGRESS
        assert change.coverage == pytest.approx(0.4)


class TestCohortComparison:
    def test_changed_cohort_shows_the_damage(self):
        changed = set(TARGETS[:5])
        events = [perf_event(t) for t in TARGETS[:5]] * 3 + [
            perf_event(t) for t in TARGETS[5:]
        ]
        damage = performance_damage_by_cohort(events, changed, CATALOG)
        assert damage["changed"] == pytest.approx(3.0)
        assert damage["unchanged"] == pytest.approx(1.0)

    def test_non_performance_events_ignored(self):
        changed = set(TARGETS[:5])
        events = [fatal_event(t) for t in TARGETS]
        damage = performance_damage_by_cohort(events, changed, CATALOG)
        assert damage == {"changed": 0.0, "unchanged": 0.0}

    def test_empty_cohorts(self):
        damage = performance_damage_by_cohort([], set(), CATALOG)
        assert damage == {"changed": 0.0, "unchanged": 0.0}

"""Tests for the Data Collector."""

import pytest

from repro.cloudbot.collector import DataCollector
from repro.storage.logstore import LogStore
from repro.telemetry.faults import Fault, FaultKind
from repro.telemetry.topology import build_fleet


def make_collector(**kwargs):
    fleet = build_fleet(regions=1, azs_per_region=1, clusters_per_az=1,
                        ncs_per_cluster=2, vms_per_nc=2)
    return fleet, DataCollector(fleet, seed=0, **kwargs)


class TestDataCollector:
    def test_collect_bundle_shape(self):
        fleet, collector = make_collector()
        targets = sorted(fleet.vms)[:2]
        bundle = collector.collect(targets, 0.0, 600.0)
        assert bundle.start == 0.0 and bundle.end == 600.0
        assert bundle.targets == tuple(targets)
        # 2 targets x 4 default metrics x 10 samples.
        assert len(bundle.metrics) == 2 * 4 * 10

    def test_unknown_target_rejected(self):
        _, collector = make_collector()
        with pytest.raises(KeyError):
            collector.collect(["vm-nope"], 0.0, 600.0)

    def test_nc_targets_allowed(self):
        fleet, collector = make_collector()
        nc = sorted(fleet.ncs)[0]
        bundle = collector.collect([nc], 0.0, 600.0)
        assert all(s.target == nc for s in bundle.metrics)

    def test_fault_visible_in_collected_metrics(self):
        fleet, collector = make_collector()
        vm = sorted(fleet.vms)[0]
        fault = Fault(FaultKind.SLOW_IO, vm, 0.0, 600.0)
        bundle = collector.collect([vm], 0.0, 600.0, faults=[fault])
        latencies = [s.value for s in bundle.metrics
                     if s.metric == "read_latency"]
        assert max(latencies) > 10.0

    def test_logs_persisted_to_log_store(self):
        store = LogStore()
        fleet, collector = make_collector(log_store=store)
        vm = sorted(fleet.vms)[0]
        fault = Fault(FaultKind.NIC_FLAPPING, vm, 100.0, 30.0)
        bundle = collector.collect([vm], 0.0, 600.0, faults=[fault])
        assert len(store) == len(bundle.logs)
        hits = list(store.query(0.0, 600.0, target=vm))
        assert any("NIC Link is Down" in e.get("line") for e in hits)

    def test_custom_metric_names(self):
        fleet, _ = make_collector()
        collector = DataCollector(fleet, metric_names=["cpu_power"])
        vm = sorted(fleet.vms)[0]
        bundle = collector.collect([vm], 0.0, 600.0)
        assert {s.metric for s in bundle.metrics} == {"cpu_power"}

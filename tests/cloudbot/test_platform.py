"""Tests for the Operation Platform."""

from repro.cloudbot.actions import Action, ActionCategory, ActionType
from repro.cloudbot.platform import (
    ExecutionStatus,
    OperationPlatform,
)
from repro.telemetry.topology import build_fleet


def make_platform() -> OperationPlatform:
    fleet = build_fleet(regions=1, azs_per_region=1, clusters_per_az=1,
                        ncs_per_cluster=4, vms_per_nc=2)
    return OperationPlatform(fleet)


def first_vm(platform: OperationPlatform) -> str:
    return sorted(platform.placements)[0]


class TestActionModel:
    def test_types_have_table3_categories(self):
        assert ActionType.LIVE_MIGRATION.category is ActionCategory.VM_OPERATION
        assert ActionType.DISK_CLEAN.category is (
            ActionCategory.NC_SOFTWARE_REPAIR
        )
        assert ActionType.REPAIR_REQUEST.category is (
            ActionCategory.NC_HARDWARE_REPAIR
        )
        assert ActionType.NC_LOCK.category is ActionCategory.NC_CONTROL

    def test_disruptive_actions_conflict_on_same_target(self):
        a = Action(ActionType.LIVE_MIGRATION, "vm-1")
        b = Action(ActionType.IN_PLACE_REBOOT, "vm-1")
        c = Action(ActionType.IN_PLACE_REBOOT, "vm-2")
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)

    def test_non_disruptive_actions_coexist(self):
        a = Action(ActionType.DISK_CLEAN, "nc-1")
        b = Action(ActionType.REPAIR_REQUEST, "nc-1")
        assert not a.conflicts_with(b)

    def test_decommission_conflicts_with_everything(self):
        a = Action(ActionType.NC_DECOMMISSION, "nc-1")
        b = Action(ActionType.DISK_CLEAN, "nc-1")
        assert a.conflicts_with(b)


class TestMigration:
    def test_live_migration_moves_vm(self):
        platform = make_platform()
        vm = first_vm(platform)
        source = platform.placements[vm]
        records = platform.submit([Action(ActionType.LIVE_MIGRATION, vm)])
        assert records[0].status is ExecutionStatus.EXECUTED
        assert platform.placements[vm] != source

    def test_migration_to_explicit_destination(self):
        platform = make_platform()
        vm = first_vm(platform)
        destination = sorted(platform._fleet.ncs)[-1]
        platform.submit([
            Action(ActionType.LIVE_MIGRATION, vm,
                   params={"destination": destination})
        ])
        assert platform.placements[vm] == destination

    def test_migration_avoids_locked_ncs(self):
        platform = make_platform()
        vm = first_vm(platform)
        source = platform.placements[vm]
        for nc_id in platform._fleet.ncs:
            if nc_id != source:
                platform.locked_ncs.add(nc_id)
        records = platform.submit([Action(ActionType.LIVE_MIGRATION, vm)])
        assert records[0].status is ExecutionStatus.FAILED
        assert platform.placements[vm] == source

    def test_migration_to_locked_destination_rejected(self):
        platform = make_platform()
        vm = first_vm(platform)
        destination = sorted(platform._fleet.ncs)[-1]
        platform.locked_ncs.add(destination)
        records = platform.submit([
            Action(ActionType.LIVE_MIGRATION, vm,
                   params={"destination": destination})
        ])
        assert records[0].status is ExecutionStatus.REJECTED_LOCKED

    def test_unknown_vm_fails(self):
        platform = make_platform()
        records = platform.submit([
            Action(ActionType.LIVE_MIGRATION, "vm-zzz")
        ])
        assert records[0].status is ExecutionStatus.FAILED


class TestConflictsAndOrdering:
    def test_conflicting_actions_discarded(self):
        platform = make_platform()
        vm = first_vm(platform)
        records = platform.submit([
            Action(ActionType.LIVE_MIGRATION, vm, priority=10),
            Action(ActionType.COLD_MIGRATION, vm, priority=1),
        ])
        statuses = {r.action.type: r.status for r in records}
        assert statuses[ActionType.LIVE_MIGRATION] is ExecutionStatus.EXECUTED
        assert statuses[ActionType.COLD_MIGRATION] is (
            ExecutionStatus.DISCARDED_CONFLICT
        )

    def test_priority_orders_execution(self):
        platform = make_platform()
        vm = first_vm(platform)
        records = platform.submit([
            Action(ActionType.COLD_MIGRATION, vm, priority=1),
            Action(ActionType.LIVE_MIGRATION, vm, priority=10),
        ])
        # Higher priority runs (and wins the conflict) despite being
        # submitted second.
        assert records[0].action.type is ActionType.LIVE_MIGRATION
        assert records[0].status is ExecutionStatus.EXECUTED

    def test_fig1_workflow_actions_all_execute(self):
        """Fig. 1: migration + repair ticket + NC lock coexist."""
        platform = make_platform()
        vm = first_vm(platform)
        nc = platform.placements[vm]
        records = platform.submit([
            Action(ActionType.LIVE_MIGRATION, vm, priority=10),
            Action(ActionType.REPAIR_REQUEST, nc, priority=5),
            Action(ActionType.NC_LOCK, nc, priority=5),
        ])
        assert all(r.status is ExecutionStatus.EXECUTED for r in records)
        assert platform.is_locked(nc)
        assert len(platform.open_tickets) == 1


class TestLockAndDecommission:
    def test_lock_then_unlock(self):
        platform = make_platform()
        nc = sorted(platform._fleet.ncs)[0]
        platform.submit([Action(ActionType.NC_LOCK, nc)])
        assert platform.is_locked(nc)
        platform.unlock(nc)
        assert not platform.is_locked(nc)

    def test_decommission_requires_empty_nc(self):
        platform = make_platform()
        nc = sorted(platform._fleet.ncs)[0]
        records = platform.submit([Action(ActionType.NC_DECOMMISSION, nc)])
        assert records[0].status is ExecutionStatus.FAILED

    def test_decommission_after_evacuation(self):
        platform = make_platform()
        nc = sorted(platform._fleet.ncs)[0]
        for vm in platform.vms_on(nc):
            platform.submit([Action(ActionType.LIVE_MIGRATION, vm)])
        records = platform.submit([Action(ActionType.NC_DECOMMISSION, nc)])
        assert records[0].status is ExecutionStatus.EXECUTED
        assert platform.is_locked(nc)


class TestAudit:
    def test_summary_counts(self):
        platform = make_platform()
        vm = first_vm(platform)
        platform.submit([
            Action(ActionType.LIVE_MIGRATION, vm),
            Action(ActionType.COLD_MIGRATION, vm),
        ])
        summary = platform.summary()
        assert summary["executed"] == 1
        assert summary["discarded_conflict"] == 1

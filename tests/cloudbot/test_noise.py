"""Tests for operation-noise reduction (Section II-F1)."""

import pytest

from repro.cloudbot.noise import (
    ProductSuppressor,
    SuppressionRule,
    TrendSuppressor,
    shared_vm_contention_rule,
)
from repro.core.events import Event
from repro.telemetry.topology import DeploymentArch, VmType, build_fleet


def vcpu_event(target: str, time: float = 0.0) -> Event:
    return Event("vcpu_high", time, target)


class TestProductSuppressor:
    def make_fleet(self):
        return build_fleet(seed=0, regions=1, azs_per_region=1,
                           clusters_per_az=1, ncs_per_cluster=4,
                           vms_per_nc=2, arch=DeploymentArch.HYBRID)

    def test_shared_vm_contention_suppressed(self):
        """The paper's example: vcpu_high on shared VMs needs no action."""
        fleet = self.make_fleet()
        shared = next(v.vm_id for v in fleet.vms.values()
                      if v.vm_type is VmType.SHARED)
        dedicated = next(v.vm_id for v in fleet.vms.values()
                         if v.vm_type is VmType.DEDICATED)
        suppressor = ProductSuppressor([shared_vm_contention_rule(fleet)])
        kept = suppressor.filter([vcpu_event(shared), vcpu_event(dedicated)])
        assert [e.target for e in kept] == [dedicated]
        assert suppressor.stats.by_rule == {"shared_vm_cpu_contention": 1}

    def test_other_events_untouched(self):
        fleet = self.make_fleet()
        shared = next(v.vm_id for v in fleet.vms.values()
                      if v.vm_type is VmType.SHARED)
        suppressor = ProductSuppressor([shared_vm_contention_rule(fleet)])
        event = Event("slow_io", 0.0, shared)
        assert suppressor.filter([event]) == [event]

    def test_unknown_target_not_suppressed(self):
        fleet = self.make_fleet()
        suppressor = ProductSuppressor([shared_vm_contention_rule(fleet)])
        event = vcpu_event("vm-not-in-fleet")
        assert suppressor.filter([event]) == [event]

    def test_multiple_rules_first_match_counts(self):
        always = SuppressionRule("always", "x", lambda e: True, "test")
        suppressor = ProductSuppressor([always])
        suppressor.add_rule(
            SuppressionRule("never_reached", "x", lambda e: True, "test")
        )
        suppressor.filter([Event("x", 0.0, "vm")])
        assert suppressor.stats.by_rule == {"always": 1}
        assert suppressor.stats.total == 1


class TestTrendSuppressor:
    def window(self, count: int, name: str = "slow_io") -> list[Event]:
        return [Event(name, float(i), f"vm-{i}") for i in range(count)]

    def test_first_windows_pass_through(self):
        suppressor = TrendSuppressor(min_history=3)
        events = self.window(5)
        assert suppressor.filter_window(events) == sorted(
            events, key=lambda e: (e.time, e.target, e.name)
        )

    def test_steady_volume_suppressed(self):
        suppressor = TrendSuppressor(min_history=3, sigmas=3.0)
        for _ in range(6):
            suppressor.filter_window(self.window(10))
        kept = suppressor.filter_window(self.window(11))
        assert kept == []  # 11 vs baseline ~10: ambient noise

    def test_surge_passes_through(self):
        suppressor = TrendSuppressor(min_history=3, sigmas=3.0)
        for count in (10, 11, 9, 10, 11, 10):
            suppressor.filter_window(self.window(count))
        kept = suppressor.filter_window(self.window(100))
        assert len(kept) == 100

    def test_vanishing_event_passes_through(self):
        """Case 7 logic: an event stream going quiet is anomalous too —
        but zero events means nothing to forward; the anomaly shows in
        the CDI dip, which CdiCurveDetector handles."""
        suppressor = TrendSuppressor(min_history=3, sigmas=3.0)
        for count in (10, 11, 9, 10, 11, 10):
            suppressor.filter_window(self.window(count))
        kept = suppressor.filter_window(self.window(1))
        assert len(kept) == 1  # the single residual event is anomalous

    def test_baselines_independent_per_event(self):
        suppressor = TrendSuppressor(min_history=3, sigmas=3.0)
        for _ in range(5):
            suppressor.filter_window(self.window(50, "slow_io"))
        # packet_loss has no history -> passes.
        kept = suppressor.filter_window(self.window(5, "packet_loss"))
        assert len(kept) == 5

    def test_baseline_inspection(self):
        suppressor = TrendSuppressor(min_history=2)
        suppressor.filter_window(self.window(10))
        suppressor.filter_window(self.window(12))
        assert suppressor.baseline()["slow_io"] == pytest.approx(11.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrendSuppressor(history=2, min_history=5)
        with pytest.raises(ValueError):
            TrendSuppressor(sigmas=0.0)

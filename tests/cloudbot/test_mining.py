"""Tests for FP-growth association mining."""

import pytest

from repro.cloudbot.mining import (
    association_rules,
    fp_growth,
    transactions_from_events,
)
from repro.core.events import Event


class TestFpGrowth:
    TRANSACTIONS = [
        ["slow_io", "nic_flapping"],
        ["slow_io", "nic_flapping"],
        ["slow_io", "nic_flapping", "vm_hang"],
        ["slow_io"],
        ["vm_hang"],
    ]

    def test_supports_match_brute_force(self):
        itemsets = fp_growth(self.TRANSACTIONS, min_support=0.2)
        assert itemsets[frozenset({"slow_io"})] == 4
        assert itemsets[frozenset({"nic_flapping"})] == 3
        assert itemsets[frozenset({"slow_io", "nic_flapping"})] == 3
        assert itemsets[frozenset({"vm_hang"})] == 2

    def test_min_support_prunes(self):
        itemsets = fp_growth(self.TRANSACTIONS, min_support=0.7)
        assert frozenset({"slow_io"}) in itemsets
        assert frozenset({"vm_hang"}) not in itemsets

    def test_exhaustive_against_bruteforce(self):
        """Every itemset FP-growth reports matches a brute-force count,
        and no frequent itemset is missed."""
        from itertools import combinations

        transactions = [
            ["a", "b", "c"], ["a", "b"], ["a", "c"], ["b", "c"],
            ["a", "b", "c", "d"], ["d"],
        ]
        min_support = 2 / len(transactions)
        found = fp_growth(transactions, min_support=min_support)
        items = {i for t in transactions for i in t}
        for size in range(1, len(items) + 1):
            for combo in combinations(sorted(items), size):
                count = sum(
                    1 for t in transactions if set(combo) <= set(t)
                )
                key = frozenset(combo)
                if count >= 2:
                    assert found.get(key) == count, combo
                else:
                    assert key not in found, combo

    def test_empty_transactions(self):
        assert fp_growth([], min_support=0.5) == {}

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            fp_growth([["a"]], min_support=0.0)

    def test_duplicate_items_in_transaction_count_once(self):
        itemsets = fp_growth([["a", "a", "b"]], min_support=0.5)
        assert itemsets[frozenset({"a"})] == 1


class TestAssociationRules:
    def test_fig1_style_rule_discovered(self):
        transactions = (
            [["nic_flapping", "slow_io"]] * 8
            + [["slow_io"]] * 4
            + [["vcpu_high"]] * 4
        )
        rules = association_rules(transactions, min_support=0.2,
                                  min_confidence=0.8)
        best = rules[0]
        assert best.antecedent == frozenset({"nic_flapping"})
        assert best.consequent == frozenset({"slow_io"})
        assert best.confidence == pytest.approx(1.0)
        assert best.lift > 1.0

    def test_low_confidence_pruned(self):
        transactions = [["a", "b"]] * 2 + [["a"]] * 8
        rules = association_rules(transactions, min_support=0.1,
                                  min_confidence=0.9)
        assert not any(r.antecedent == frozenset({"a"}) for r in rules)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            association_rules([["a"]], min_confidence=0.0)


class TestTransactionsFromEvents:
    def test_window_grouping(self):
        events = [
            Event("slow_io", 100.0, "vm-1"),
            Event("nic_flapping", 150.0, "vm-1"),
            Event("slow_io", 5000.0, "vm-1"),
            Event("vm_hang", 120.0, "vm-2"),
        ]
        transactions = transactions_from_events(events, window=600.0)
        assert sorted(map(tuple, transactions)) == [
            ("nic_flapping", "slow_io"), ("slow_io",), ("vm_hang",),
        ]

    def test_empty(self):
        assert transactions_from_events([]) == []

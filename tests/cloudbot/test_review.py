"""Tests for rule-coverage review (Section II-F2)."""

import pytest

from repro.cloudbot.review import (
    complaint_gaps,
    coverage_report,
    propose_rules,
)
from repro.cloudbot.rules import OperationRule, RuleEngine
from repro.core.events import Event, EventCategory
from repro.telemetry.tickets import Ticket


def make_engine() -> RuleEngine:
    return RuleEngine([
        OperationRule(name="r1", expression="slow_io AND nic_flapping"),
        OperationRule(name="r2", expression="vm_down"),
    ])


def events_mixed() -> list[Event]:
    return [
        Event("slow_io", 100.0, "vm-1"),
        Event("nic_flapping", 110.0, "vm-1"),
        Event("gpu_drop", 200.0, "vm-2"),
        Event("gpu_drop", 900.0, "vm-3"),
    ]


class TestCoverageReport:
    def test_partitions_event_names(self):
        report = coverage_report(events_mixed(), make_engine())
        assert report.covered == {"slow_io", "nic_flapping", "vm_down"}
        assert report.observed == {"slow_io", "nic_flapping", "gpu_drop"}
        assert report.uncovered == {"gpu_drop"}
        assert report.occurrences["gpu_drop"] == 2

    def test_coverage_fraction(self):
        report = coverage_report(events_mixed(), make_engine())
        assert report.coverage_fraction == pytest.approx(2 / 3)

    def test_empty_stream_fully_covered(self):
        report = coverage_report([], make_engine())
        assert report.coverage_fraction == 1.0
        assert report.uncovered == frozenset()


class TestComplaintGaps:
    def ticket(self, target: str, time: float) -> Ticket:
        return Ticket(time=time, target=target, text="perf degraded",
                      category=EventCategory.PERFORMANCE)

    def test_correlated_complaint_surfaces_gap(self):
        events = events_mixed()
        tickets = [self.ticket("vm-2", 1200.0)]  # 1000 s after gpu_drop
        gaps = complaint_gaps(events, tickets, make_engine())
        assert len(gaps) == 1
        assert gaps[0].event_name == "gpu_drop"
        assert gaps[0].complaint_count == 1
        assert gaps[0].sample_targets == ("vm-2",)

    def test_covered_events_never_reported(self):
        events = events_mixed()
        tickets = [self.ticket("vm-1", 200.0)]
        gaps = complaint_gaps(events, tickets, make_engine())
        assert all(g.event_name != "slow_io" for g in gaps)

    def test_complaint_outside_window_ignored(self):
        events = events_mixed()
        tickets = [self.ticket("vm-2", 200.0 + 7 * 3600.0)]
        assert complaint_gaps(events, tickets, make_engine()) == []

    def test_complaint_before_event_ignored(self):
        events = events_mixed()
        tickets = [self.ticket("vm-2", 50.0)]
        assert complaint_gaps(events, tickets, make_engine()) == []

    def test_sorted_by_pain(self):
        events = events_mixed() + [
            Event("mem_bandwidth_low", 300.0, "vm-4"),
        ]
        tickets = [
            self.ticket("vm-2", 300.0), self.ticket("vm-3", 1000.0),
            self.ticket("vm-4", 400.0),
        ]
        gaps = complaint_gaps(events, tickets, make_engine())
        assert gaps[0].event_name == "gpu_drop"
        assert gaps[0].complaint_count == 2


class TestProposeRules:
    def test_candidates_touch_uncovered_events(self):
        # gpu_drop repeatedly co-occurs with slow_io.
        events = []
        for i in range(10):
            base = i * 10_000.0
            events.append(Event("gpu_drop", base, f"vm-{i}"))
            events.append(Event("slow_io", base + 30.0, f"vm-{i}"))
        engine = make_engine()
        candidates = propose_rules(events, engine, min_support=0.3,
                                   min_confidence=0.7)
        assert candidates
        for rule in candidates:
            assert "gpu_drop" in (rule.antecedent | rule.consequent)

    def test_full_coverage_proposes_nothing(self):
        events = [
            Event("slow_io", 0.0, "vm-1"),
            Event("vm_down", 10.0, "vm-1"),
        ]
        assert propose_rules(events, make_engine()) == []

"""Tests for weight-aware action prioritization (Section VIII-C)."""

import pytest

from repro.cloudbot.actions import ActionType
from repro.cloudbot.prioritize import (
    choose_action,
    prioritize_actions,
    score_targets,
    TargetPriority,
)
from repro.core.events import Event, Severity, default_catalog
from repro.core.weights import expert_only_config

CATALOG = default_catalog()
WEIGHTS = expert_only_config()


class TestScoreTargets:
    def test_higher_severity_target_ranks_first(self):
        events = [
            Event("slow_io", 0.0, "vm-mild", level=Severity.WARNING),
            Event("gpu_drop", 0.0, "vm-bad", level=Severity.FATAL),
        ]
        priorities = score_targets(events, CATALOG, WEIGHTS)
        assert priorities[0].target == "vm-bad"
        assert priorities[0].dominant_event == "gpu_drop"

    def test_max_not_sum_semantics(self):
        events = [
            Event("packet_loss", 0.0, "vm-many", level=Severity.WARNING),
            Event("packet_loss", 1.0, "vm-many", level=Severity.WARNING),
            Event("packet_loss", 2.0, "vm-many", level=Severity.WARNING),
            Event("slow_io", 0.0, "vm-one", level=Severity.FATAL),
        ]
        priorities = score_targets(events, CATALOG, WEIGHTS)
        # One fatal event outranks many warnings (max semantics), even
        # though the warnings sum higher.
        assert priorities[0].target == "vm-one"

    def test_unknown_events_ignored(self):
        events = [Event("mystery", 0.0, "vm-1", level=Severity.FATAL)]
        assert score_targets(events, CATALOG, WEIGHTS) == []

    def test_tie_breaks_by_event_pressure_then_name(self):
        events = [
            Event("slow_io", 0.0, "vm-b", level=Severity.CRITICAL),
            Event("slow_io", 0.0, "vm-a", level=Severity.CRITICAL),
            Event("packet_loss", 0.0, "vm-a", level=Severity.WARNING),
        ]
        priorities = score_targets(events, CATALOG, WEIGHTS)
        assert priorities[0].target == "vm-a"  # extra weighted event


class TestChooseAction:
    def test_high_score_migrates(self):
        action = choose_action(TargetPriority("vm-1", 0.9, "gpu_drop"))
        assert action is not None
        assert action.type is ActionType.LIVE_MIGRATION

    def test_medium_score_tickets(self):
        action = choose_action(TargetPriority("vm-1", 0.5, "packet_loss"))
        assert action.type is ActionType.REPAIR_REQUEST

    def test_low_score_no_action(self):
        assert choose_action(TargetPriority("vm-1", 0.1, "packet_loss")) is None

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            choose_action(TargetPriority("vm-1", 0.5, "x"),
                          migrate_above=0.2, ticket_above=0.7)


class TestPrioritizeActions:
    def test_end_to_end_ordering(self):
        events = [
            Event("packet_loss", 0.0, "vm-low", level=Severity.WARNING),
            Event("gpu_drop", 0.0, "vm-high", level=Severity.FATAL),
            Event("slow_io", 0.0, "vm-mid", level=Severity.CRITICAL),
        ]
        actions = prioritize_actions(events, CATALOG, WEIGHTS,
                                     migrate_above=0.8, ticket_above=0.6)
        assert [a.target for a in actions] == ["vm-high", "vm-mid"]
        assert actions[0].type is ActionType.LIVE_MIGRATION
        assert actions[1].type is ActionType.REPAIR_REQUEST

    def test_all_quiet_no_actions(self):
        events = [
            Event("packet_loss", 0.0, "vm-1", level=Severity.INFO),
        ]
        assert prioritize_actions(events, CATALOG, WEIGHTS,
                                  ticket_above=0.3) == []

"""Tests for event-surge alerting (Section II-F2)."""

import pytest

from repro.cloudbot.alerting import SurgeDetector
from repro.core.events import Event


def window_events(name: str, count: int, targets: int = 1,
                  base_time: float = 0.0) -> list[Event]:
    return [
        Event(name, base_time + i, f"vm-{i % targets}")
        for i in range(count)
    ]


def feed_baseline(detector: SurgeDetector, name: str, windows: int = 5,
                  per_window: int = 12) -> float:
    time = 0.0
    for _ in range(windows):
        detector.observe_window(window_events(name, per_window), time)
        time += 3600.0
    return time


class TestSurgeDetector:
    def test_surge_escalates_for_system_event(self):
        detector = SurgeDetector(surge_factor=3.0, min_count=10)
        time = feed_baseline(detector, "slow_io")
        alerts = detector.observe_window(
            window_events("slow_io", 100, targets=5), time
        )
        assert len(alerts) == 1
        assert alerts[0].escalate
        assert "unrelated to user behavior" in alerts[0].reason

    def test_no_alert_at_baseline_volume(self):
        detector = SurgeDetector(surge_factor=3.0, min_count=10)
        time = feed_baseline(detector, "slow_io")
        alerts = detector.observe_window(
            window_events("slow_io", 13), time
        )
        assert alerts == []

    def test_user_driven_single_customer_not_escalated(self):
        detector = SurgeDetector(
            surge_factor=3.0, min_count=10,
            user_behavior_events=["vm_reboot_requested"],
            multi_customer_threshold=3,
        )
        time = feed_baseline(detector, "vm_reboot_requested")
        alerts = detector.observe_window(
            window_events("vm_reboot_requested", 100, targets=1), time
        )
        assert len(alerts) == 1
        assert not alerts[0].escalate

    def test_user_driven_multi_customer_escalated(self):
        detector = SurgeDetector(
            surge_factor=3.0, min_count=10,
            user_behavior_events=["vm_reboot_requested"],
            multi_customer_threshold=3,
        )
        time = feed_baseline(detector, "vm_reboot_requested")
        alerts = detector.observe_window(
            window_events("vm_reboot_requested", 100, targets=8), time
        )
        assert alerts[0].escalate
        assert alerts[0].distinct_targets == 8

    def test_needs_history_before_alerting(self):
        detector = SurgeDetector(surge_factor=3.0, min_count=10)
        alerts = detector.observe_window(window_events("slow_io", 500), 0.0)
        assert alerts == []

    def test_small_absolute_counts_ignored(self):
        detector = SurgeDetector(surge_factor=3.0, min_count=10)
        time = feed_baseline(detector, "rare_event", per_window=1)
        alerts = detector.observe_window(window_events("rare_event", 5), time)
        assert alerts == []

    def test_independent_event_histories(self):
        detector = SurgeDetector(surge_factor=3.0, min_count=10)
        time = feed_baseline(detector, "slow_io")
        # A different event surging must not be judged on slow_io history.
        alerts = detector.observe_window(
            window_events("packet_loss", 100), time
        )
        assert alerts == []  # packet_loss has no history yet

    def test_validation(self):
        with pytest.raises(ValueError):
            SurgeDetector(window=0.0)
        with pytest.raises(ValueError):
            SurgeDetector(history=1)
        with pytest.raises(ValueError):
            SurgeDetector(surge_factor=1.0)

"""Shared fixtures for the closed-loop controller tests."""

import os

import pytest


@pytest.fixture(scope="session")
def control_seed() -> int:
    """Scenario seed, overridable by CI (REPRO_CONTROL_SEED matrix).

    The structural assertions (recall, precision, latency, RCA
    accuracy) must hold for every matrix seed; exact-value pins are
    skipped unless the seed is 0.
    """
    return int(os.environ.get("REPRO_CONTROL_SEED", "0"))

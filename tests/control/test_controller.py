"""End-to-end tests of the closed detect→act→evaluate loop.

The seeded scenario injects one cluster-concentrated incident per
stability sub-metric (onsets 12/14/16); a correct controller detects
each on its onset day, localizes it to the right cluster, and its
action beats the null arm.  The quiet scenario must produce zero
episodes.  The scorecard assertions are hand-computed from the
scenario plan, not regression-recorded from a previous run — except
the seed-0 exact-value pins, which also document the expected output.
"""

import pytest

from repro.control import (
    ClosedLoopController,
    ControllerConfig,
    ControlScenario,
    quiet_scenario,
    scorecard_json,
    seeded_scenario,
)
from repro.core.events import EventCategory
from repro.engine.dataset import EngineContext
from repro.telemetry.faults import FaultKind
from repro.telemetry.fleetgen import InjectedIncident

#: Category → operation action, as the controller should submit them.
EXPECTED_ACTION = {
    "unavailability": "live_migration",
    "performance": "in_place_reboot",
    "control_plane": "process_repair",
}


@pytest.fixture(scope="module")
def seeded_run(control_seed):
    controller = ClosedLoopController(seeded_scenario(control_seed))
    return controller, controller.run()


class TestConfigValidation:
    def test_rejects_zero_observation_days(self):
        with pytest.raises(ValueError, match="observation_days"):
            ControllerConfig(observation_days=0)

    def test_rejects_short_baseline(self):
        with pytest.raises(ValueError, match="baseline_days"):
            ControllerConfig(baseline_days=1)


class TestSeededRun:
    def test_every_incident_detected_on_onset_day(self, seeded_run):
        _, card = seeded_run
        assert card.recall == 1.0
        for inc in card.incidents:
            assert inc.detected
            assert inc.detected_day == inc.onset_day
            assert inc.latency_days == 0
        assert card.mean_latency_days == 0.0

    def test_no_false_positives(self, seeded_run):
        _, card = seeded_run
        assert card.precision == 1.0
        assert card.false_positives == 0
        assert card.true_positives == 3
        assert len(card.actions) == 3

    def test_each_category_gets_its_action(self, seeded_run):
        _, card = seeded_run
        assert {a.category: a.action for a in card.actions} == \
            EXPECTED_ACTION

    def test_rca_names_the_injected_cluster(self, control_seed,
                                            seeded_run):
        _, card = seeded_run
        assert card.rca_accuracy == 1.0
        truth = {i.incident_id: i.value
                 for i in seeded_scenario(control_seed).incidents}
        for action in card.actions:
            assert action.rca_dimension == "cluster"
            assert action.rca_values == (truth[action.matched_incident],)

    def test_actions_effective_and_rolled_out(self, seeded_run):
        _, card = seeded_run
        for action in card.actions:
            assert action.effective
            assert action.rolled_out
            assert action.omnibus_pvalue < 0.05
            assert action.failed == 0
            assert action.discarded_conflict == 0
            assert action.executed == action.treated
            # The improvement is the null-vs-action mean gap: the
            # incident damages ~half of every affected VM's day, so
            # the gap must be large (and exactly the difference).
            assert action.realized_improvement == pytest.approx(
                action.null_mean - action.action_mean
            )
            assert action.realized_improvement > 0.3

    def test_arms_cover_the_whole_cluster(self, seeded_run):
        controller, _ = seeded_run
        for episode in controller.episodes:
            assert len(episode.treated) + len(episode.control) == 8
            assert len(episode.treated) >= 2
            assert len(episode.control) >= 2
            assert not set(episode.treated) & set(episode.control)

    def test_remediation_feeds_back_into_the_curve(self, seeded_run):
        controller, _ = seeded_run
        curve = controller.curve(EventCategory.PERFORMANCE)
        # Onset spike on day 12; by day 16 the effective action has
        # been rolled out to the whole cluster, so the curve returns
        # to background level even though the incident is still "on".
        assert curve[12] > 5 * max(curve[:12])
        assert max(curve[16:]) < 0.5 * curve[12]

    def test_nothing_suppressed_or_pending(self, seeded_run):
        controller, card = seeded_run
        assert card.suppressed_detections == 0
        assert all(e.outcome is not None for e in controller.episodes)


class TestSeedZeroExactValues:
    """Pin the hand-checked seed-0 run (also what BENCH_control.json
    commits); other matrix seeds only exercise the structural tests."""

    @pytest.fixture(autouse=True)
    def only_seed_zero(self, control_seed):
        if control_seed != 0:
            pytest.skip("exact-value pins are for seed 0")

    def test_episode_shapes(self, seeded_run):
        _, card = seeded_run
        assert [(a.episode_id, a.opened_day, a.treated, a.control,
                 a.executed) for a in card.actions] == [
            ("ep-00", 12, 3, 5, 3),
            ("ep-01", 14, 4, 4, 4),
            ("ep-02", 16, 2, 6, 2),
        ]

    def test_realized_improvements(self, seeded_run):
        _, card = seeded_run
        improvements = [a.realized_improvement for a in card.actions]
        assert improvements == [
            pytest.approx(0.4365746470480598),
            pytest.approx(0.5000479498485232),
            pytest.approx(0.4374797577677209),
        ]
        assert card.realized_improvement_total == pytest.approx(
            1.3741023546643039
        )

    def test_null_arm_sees_the_incident(self, seeded_run):
        _, card = seeded_run
        # Each incident halts 43200 of 86400 s/day on untreated VMs:
        # the null-arm mean must sit near 0.5 damage, the treated arm
        # near the background (≈ 0).
        for action in card.actions:
            assert action.null_mean == pytest.approx(0.46, abs=0.05)
            assert action.action_mean < 0.01


class TestQuietRun:
    def test_no_actions_fire(self, control_seed):
        controller = ClosedLoopController(quiet_scenario(control_seed))
        card = controller.run()
        assert controller.episodes == []
        assert card.actions == ()
        assert card.incidents == ()
        assert card.false_positives == 0
        assert card.suppressed_detections == 0
        # Vacuous precision/recall: nothing injected, nothing claimed.
        assert card.precision == 1.0
        assert card.recall == 1.0


class TestDeterminism:
    def test_rerun_is_byte_identical(self, control_seed, seeded_run):
        _, first = seeded_run
        second = ClosedLoopController(
            seeded_scenario(control_seed)
        ).run()
        assert scorecard_json(second) == scorecard_json(first)

    def test_process_backend_is_byte_identical(self, control_seed,
                                               seeded_run):
        _, threaded = seeded_run
        processed = ClosedLoopController(
            seeded_scenario(control_seed),
            context=EngineContext(parallelism=2, backend="process"),
        ).run()
        assert scorecard_json(processed) == scorecard_json(threaded)


class TestConflictingEpisodes:
    """Two same-day incidents on one cluster force the day's batch to
    carry two disruptive action types for overlapping VMs: the
    higher-priority live migration must win and the reboot be
    discarded as a conflict — never silently double-treated."""

    def conflict_controller(self) -> ClosedLoopController:
        # Seed 1 is used because its A/B splits overlap (seed 0's
        # happen to be disjoint, which exercises nothing).
        base = seeded_scenario(1)
        cluster = sorted(base.fleet.clusters)[0]
        targets = tuple(sorted(
            vm for vm in base.fleet.vms
            if base.fleet.cluster_of(vm).cluster_id == cluster
        ))
        incidents = tuple(
            InjectedIncident(
                incident_id=incident_id, kind=kind, targets=targets,
                onset_day=14, duration_days=7, seconds_per_day=43200.0,
                dimension="cluster", value=cluster,
            )
            for incident_id, kind in (
                ("inc-down", FaultKind.VM_DOWN),
                ("inc-slow", FaultKind.SLOW_IO),
            )
        )
        scenario = ControlScenario(
            name="conflict", seed=1, days=21, fleet=base.fleet,
            rates=base.rates, incidents=incidents,
        )
        return ClosedLoopController(scenario)

    def test_lower_priority_action_discarded_on_overlap(self):
        controller = self.conflict_controller()
        card = controller.run()
        migration, reboot = controller.episodes
        assert migration.opened_day == reboot.opened_day == 14
        assert migration.category is EventCategory.UNAVAILABILITY
        assert reboot.category is EventCategory.PERFORMANCE
        overlap = set(migration.treated) & set(reboot.treated)
        assert overlap  # the scenario is only meaningful with overlap
        # Priority 10 migration executes everywhere; the priority 5
        # reboot is discarded exactly on the doubly-treated VMs.
        assert migration.discarded_conflict == 0
        assert migration.executed == len(migration.treated)
        assert reboot.discarded_conflict == len(overlap)
        assert reboot.executed == len(reboot.treated) - len(overlap)
        # Null-arm bookkeeping never conflicts.
        assert migration.failed == reboot.failed == 0
        assert card.recall == 1.0
        assert card.false_positives == 0

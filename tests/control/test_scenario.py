"""Tests for closed-loop scenario construction and validation."""

import pytest

from repro.control import ControlScenario, quiet_scenario, seeded_scenario
from repro.telemetry.faults import FaultKind
from repro.telemetry.fleetgen import InjectedIncident


def incident(**overrides) -> InjectedIncident:
    spec = dict(
        incident_id="inc-test", kind=FaultKind.SLOW_IO,
        targets=("vm-000000",), onset_day=5, duration_days=3,
        seconds_per_day=43200.0, dimension="cluster", value="c0",
    )
    spec.update(overrides)
    return InjectedIncident(**spec)


class TestValidation:
    def base(self, **overrides) -> ControlScenario:
        template = seeded_scenario(0)
        spec = dict(name="t", seed=0, days=21, fleet=template.fleet,
                    rates=template.rates)
        spec.update(overrides)
        return ControlScenario(**spec)

    def test_rejects_nonpositive_days(self):
        with pytest.raises(ValueError, match="days must be >= 1"):
            self.base(days=0)

    def test_rejects_nonpositive_day_seconds(self):
        with pytest.raises(ValueError, match="day_seconds"):
            self.base(day_seconds=0.0)

    def test_rejects_incident_beyond_run(self):
        with pytest.raises(ValueError, match="beyond the 21-day run"):
            self.base(incidents=(incident(onset_day=21),))

    def test_rejects_incident_longer_than_day(self):
        with pytest.raises(ValueError, match="s/day"):
            self.base(incidents=(incident(seconds_per_day=90000.0),))

    def test_rejects_unknown_targets(self):
        with pytest.raises(ValueError, match="unknown"):
            self.base(incidents=(incident(targets=("vm-nope",)),))

    def test_vm_ids_sorted(self):
        scenario = self.base()
        assert scenario.vm_ids == sorted(scenario.fleet.vms)


class TestSeededScenario:
    def test_needs_room_for_detection_and_evaluation(self):
        with pytest.raises(ValueError, match=">= 20 days"):
            seeded_scenario(0, days=19)

    def test_fleet_shape(self):
        scenario = seeded_scenario(0)
        assert len(scenario.vm_ids) == 32
        assert len(set(scenario.fleet.clusters)) == 4

    def test_one_incident_per_submetric(self):
        scenario = seeded_scenario(0)
        categories = {i.category.value for i in scenario.incidents}
        assert categories == {
            "unavailability", "performance", "control_plane",
        }

    def test_incidents_concentrated_on_distinct_clusters(self):
        scenario = seeded_scenario(0)
        clusters = {i.value for i in scenario.incidents}
        assert len(clusters) == len(scenario.incidents) == 3
        for inc in scenario.incidents:
            assert inc.dimension == "cluster"
            assert all(
                scenario.fleet.cluster_of(vm).cluster_id == inc.value
                for vm in inc.targets
            )

    def test_onsets_staggered_past_calibration(self):
        scenario = seeded_scenario(0)
        onsets = sorted(i.onset_day for i in scenario.incidents)
        assert onsets == [12, 14, 16]
        # Every incident runs to the end of the scenario.
        for inc in scenario.incidents:
            assert inc.onset_day + inc.duration_days == scenario.days

    def test_seed_changes_fleet_but_not_plan(self):
        first = seeded_scenario(0)
        second = seeded_scenario(1)
        assert [i.onset_day for i in first.incidents] == [
            i.onset_day for i in second.incidents
        ]
        assert [i.kind for i in first.incidents] == [
            i.kind for i in second.incidents
        ]


class TestQuietScenario:
    def test_no_incidents(self):
        scenario = quiet_scenario(0)
        assert scenario.incidents == ()
        assert scenario.name == "quiet"

    def test_same_fleet_and_mix_as_seeded(self):
        quiet = quiet_scenario(3)
        seeded = seeded_scenario(3)
        assert quiet.vm_ids == seeded.vm_ids
        assert quiet.rates == seeded.rates

"""Tests for the Analytic Hierarchy Process (paper Section IV-C)."""

import numpy as np
import pytest

from repro.core.ahp import (
    AhpResult,
    InconsistentJudgmentError,
    judgment_matrix_from_comparisons,
    priority_vector,
    two_perspective_alphas,
    validate_judgment_matrix,
)


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            validate_judgment_matrix(np.ones((2, 3)))

    def test_nonpositive_rejected(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="positive"):
            validate_judgment_matrix(matrix)

    def test_bad_diagonal_rejected(self):
        matrix = np.array([[2.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="diagonal"):
            validate_judgment_matrix(matrix)

    def test_non_reciprocal_rejected(self):
        matrix = np.array([[1.0, 2.0], [2.0, 1.0]])
        with pytest.raises(ValueError, match="reciprocal"):
            validate_judgment_matrix(matrix)


class TestPriorityVector:
    def test_identity_gives_equal_weights(self):
        result = priority_vector(np.ones((3, 3)))
        assert result.weights == pytest.approx((1 / 3, 1 / 3, 1 / 3))
        assert result.consistency_ratio == pytest.approx(0.0, abs=1e-9)

    def test_two_by_two_ratio(self):
        # a is 3x as important as b -> weights 0.75 / 0.25.
        matrix = [[1.0, 3.0], [1 / 3, 1.0]]
        result = priority_vector(matrix)
        assert result.weights == pytest.approx((0.75, 0.25))

    def test_weights_sum_to_one(self):
        matrix = judgment_matrix_from_comparisons(
            ("a", "b", "c"), {("a", "b"): 2, ("a", "c"): 4, ("b", "c"): 2}
        )
        result = priority_vector(matrix)
        assert sum(result.weights) == pytest.approx(1.0)

    def test_perfectly_consistent_matrix(self):
        # w = (4, 2, 1) normalized; a_ij = w_i / w_j is consistent.
        matrix = [[1, 2, 4], [0.5, 1, 2], [0.25, 0.5, 1]]
        result = priority_vector(matrix)
        assert result.weights == pytest.approx((4 / 7, 2 / 7, 1 / 7))
        assert result.lambda_max == pytest.approx(3.0)
        assert result.consistency_index == pytest.approx(0.0, abs=1e-9)

    def test_dominance_respected(self):
        matrix = judgment_matrix_from_comparisons(
            ("a", "b", "c"), {("a", "b"): 3, ("a", "c"): 5, ("b", "c"): 2}
        )
        weights = priority_vector(matrix).weights
        assert weights[0] > weights[1] > weights[2]

    def test_inconsistent_matrix_raises(self):
        # a > b, b > c, but c >> a: wildly intransitive.
        matrix = judgment_matrix_from_comparisons(
            ("a", "b", "c"), {("a", "b"): 9, ("b", "c"): 9, ("c", "a"): 9}
        )
        with pytest.raises(InconsistentJudgmentError):
            priority_vector(matrix)

    def test_inconsistent_matrix_allowed_when_unchecked(self):
        matrix = judgment_matrix_from_comparisons(
            ("a", "b", "c"), {("a", "b"): 9, ("b", "c"): 9, ("c", "a"): 9}
        )
        result = priority_vector(matrix, check_consistency=False)
        assert isinstance(result, AhpResult)
        assert not result.is_consistent


class TestJudgmentMatrixBuilder:
    def test_reciprocals_filled(self):
        matrix = judgment_matrix_from_comparisons(("a", "b"), {("a", "b"): 5})
        assert matrix[0, 1] == 5
        assert matrix[1, 0] == pytest.approx(0.2)

    def test_missing_pairs_default_to_one(self):
        matrix = judgment_matrix_from_comparisons(("a", "b", "c"), {})
        assert np.allclose(matrix, 1.0)

    def test_conflicting_reciprocals_rejected(self):
        with pytest.raises(ValueError, match="reciprocal"):
            judgment_matrix_from_comparisons(
                ("a", "b"), {("a", "b"): 5, ("b", "a"): 5}
            )

    def test_unknown_criterion_rejected(self):
        with pytest.raises(KeyError):
            judgment_matrix_from_comparisons(("a",), {("a", "zzz"): 2})

    def test_duplicate_criteria_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            judgment_matrix_from_comparisons(("a", "a"), {})

    def test_nonpositive_value_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            judgment_matrix_from_comparisons(("a", "b"), {("a", "b"): -2})


class TestTwoPerspectiveAlphas:
    def test_equal_importance_matches_example3(self):
        # Example 3 uses alpha_1 = alpha_2 = 0.5.
        alpha_expert, alpha_customer = two_perspective_alphas(1.0)
        assert alpha_expert == pytest.approx(0.5)
        assert alpha_customer == pytest.approx(0.5)

    def test_expert_heavier(self):
        alpha_expert, alpha_customer = two_perspective_alphas(3.0)
        assert alpha_expert == pytest.approx(0.75)
        assert alpha_customer == pytest.approx(0.25)

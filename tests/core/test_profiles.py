"""Tests for business-scenario profiles (Section VIII-A)."""

import pytest

from repro.core.events import EventCategory, Severity, default_catalog
from repro.core.indicator import CdiCalculator, ServicePeriod
from repro.core.periods import EventPeriod
from repro.core.profiles import (
    ProfiledCdiCalculator,
    ProfiledWeightConfig,
    ScenarioProfile,
    batch_compute_profile,
    redis_profile,
)
from repro.core.weights import expert_only_config

CATALOG = default_catalog()
WEIGHTS = expert_only_config()
SERVICE = ServicePeriod(0.0, 86400.0)


def packet_loss(duration: float = 600.0) -> EventPeriod:
    return EventPeriod("packet_loss", "vm-1", 0.0, duration, Severity.WARNING)


class TestScenarioProfile:
    def test_validation_of_multipliers(self):
        with pytest.raises(ValueError):
            ScenarioProfile("bad", weight_multipliers={"slow_io": 0.0})

    def test_unknown_event_rejected(self):
        profile = ScenarioProfile("p", severity_overrides={"zzz": Severity.FATAL})
        with pytest.raises(KeyError):
            profile.validate_against(CATALOG)

    def test_adjust_period_override(self):
        profile = redis_profile()
        adjusted = profile.adjust_period(packet_loss())
        assert adjusted is not None
        assert adjusted.level is Severity.CRITICAL

    def test_adjust_period_exclusion(self):
        profile = batch_compute_profile()
        period = EventPeriod("console_unreachable", "vm-1", 0.0, 600.0,
                             Severity.CRITICAL)
        assert profile.adjust_period(period) is None

    def test_adjust_period_passthrough(self):
        profile = redis_profile()
        period = EventPeriod("slow_io", "vm-1", 0.0, 600.0, Severity.CRITICAL)
        assert profile.adjust_period(period) is period


class TestProfiledWeightConfig:
    def test_multiplier_applied_and_clamped(self):
        profile = ScenarioProfile("p", weight_multipliers={"packet_loss": 3.0})
        config = ProfiledWeightConfig(WEIGHTS, profile)
        # WARNING expert weight 0.5 * 3 clamps at 1.0.
        assert config.resolve("packet_loss", Severity.WARNING,
                              EventCategory.PERFORMANCE) == 1.0

    def test_unlisted_event_unchanged(self):
        profile = ScenarioProfile("p", weight_multipliers={"packet_loss": 3.0})
        config = ProfiledWeightConfig(WEIGHTS, profile)
        assert config.resolve("slow_io", Severity.WARNING,
                              EventCategory.PERFORMANCE) == pytest.approx(0.5)


class TestProfiledCalculator:
    def test_redis_weighs_network_issues_heavier(self):
        """The paper's example: Redis needs a higher network warning
        level, so the same packet loss damages a Redis VM's CDI more."""
        generic = CdiCalculator(CATALOG, WEIGHTS)
        redis = ProfiledCdiCalculator(CATALOG, WEIGHTS, redis_profile())
        periods = [packet_loss()]
        assert (
            redis.vm_report(periods, SERVICE).performance
            > generic.vm_report(periods, SERVICE).performance
        )

    def test_batch_profile_ignores_control_console(self):
        batch = ProfiledCdiCalculator(CATALOG, WEIGHTS,
                                      batch_compute_profile())
        periods = [EventPeriod("console_unreachable", "vm-1", 0.0, 3600.0,
                               Severity.CRITICAL)]
        assert batch.vm_report(periods, SERVICE).control_plane == 0.0

    def test_batch_profile_downweights_slow_io(self):
        generic = CdiCalculator(CATALOG, WEIGHTS)
        batch = ProfiledCdiCalculator(CATALOG, WEIGHTS,
                                      batch_compute_profile())
        periods = [EventPeriod("slow_io", "vm-1", 0.0, 3600.0,
                               Severity.CRITICAL)]
        assert (
            batch.vm_report(periods, SERVICE).performance
            == pytest.approx(
                generic.vm_report(periods, SERVICE).performance * 0.5
            )
        )

    def test_invalid_profile_rejected_at_construction(self):
        profile = ScenarioProfile("p", excluded_events=frozenset({"nope"}))
        with pytest.raises(KeyError):
            ProfiledCdiCalculator(CATALOG, WEIGHTS, profile)

    def test_weights_stay_bounded(self):
        redis = ProfiledCdiCalculator(CATALOG, WEIGHTS, redis_profile())
        periods = [
            EventPeriod("nic_flapping", "vm-1", 0.0, 86400.0, Severity.FATAL)
        ]
        report = redis.vm_report(periods, SERVICE)
        assert report.performance <= 1.0

"""Tests for alternative overlap semantics (ablation support code)."""

import pytest

from repro.core.indicator import (
    ServicePeriod,
    WeightedInterval,
    damage_integral,
    damage_integral_with,
)

SERVICE = ServicePeriod(0.0, 100.0)


class TestDamageIntegralWith:
    def test_max_semantics_matches_primary_implementation(self):
        intervals = [
            WeightedInterval(0.0, 10.0, 0.5),
            WeightedInterval(5.0, 15.0, 0.8),
            WeightedInterval(50.0, 60.0, 0.3),
        ]
        assert damage_integral_with(intervals, SERVICE, max) == (
            pytest.approx(damage_integral(intervals, SERVICE))
        )

    def test_sum_semantics_exceeds_max_on_overlap(self):
        intervals = [
            WeightedInterval(0.0, 10.0, 0.4),
            WeightedInterval(0.0, 10.0, 0.4),
        ]
        capped_sum = damage_integral_with(
            intervals, SERVICE, lambda ws: min(1.0, sum(ws))
        )
        maxed = damage_integral_with(intervals, SERVICE, max)
        assert capped_sum == pytest.approx(8.0)
        assert maxed == pytest.approx(4.0)

    def test_mean_semantics_dilutes(self):
        intervals = [
            WeightedInterval(0.0, 10.0, 0.8),
            WeightedInterval(0.0, 10.0, 0.2),
        ]
        mean = damage_integral_with(
            intervals, SERVICE, lambda ws: sum(ws) / len(ws)
        )
        assert mean == pytest.approx(5.0)

    def test_clipping_applies(self):
        intervals = [WeightedInterval(-10.0, 10.0, 1.0)]
        assert damage_integral_with(intervals, SERVICE, max) == (
            pytest.approx(10.0)
        )

    def test_empty(self):
        assert damage_integral_with([], SERVICE, max) == 0.0

    def test_zero_weight_excluded(self):
        intervals = [WeightedInterval(0.0, 10.0, 0.0)]
        assert damage_integral_with(intervals, SERVICE, max) == 0.0

"""Property-based tests on core CDI invariants (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventCategory, EventKind, EventSpec
from repro.core.indicator import (
    ServicePeriod,
    WeightedInterval,
    aggregate,
    cdi,
    damage_integral,
)
from repro.core.periods import pair_stateful
from repro.core.weights import customer_levels_from_ticket_counts

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
weights_st = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def interval_strategy(draw):
    start = draw(finite)
    length = draw(st.floats(min_value=0.0, max_value=1e5))
    weight = draw(weights_st)
    return WeightedInterval(start, start + length, weight)


@st.composite
def service_strategy(draw):
    start = draw(finite)
    length = draw(st.floats(min_value=1e-3, max_value=1e6))
    return ServicePeriod(start, start + length)


class TestCdiBounds:
    @given(st.lists(interval_strategy(), max_size=30), service_strategy())
    def test_cdi_between_zero_and_max_weight(self, intervals, service):
        value = cdi(intervals, service)
        max_weight = max((iv.weight for iv in intervals), default=0.0)
        assert 0.0 <= value <= max_weight + 1e-9

    @given(st.lists(interval_strategy(), max_size=30), service_strategy())
    def test_integral_bounded_by_service_duration(self, intervals, service):
        integral = damage_integral(intervals, service)
        assert 0.0 <= integral <= service.duration + 1e-6

    @given(st.lists(interval_strategy(), max_size=20), service_strategy(),
           interval_strategy())
    def test_adding_an_interval_never_decreases_cdi(
        self, intervals, service, extra
    ):
        base = cdi(intervals, service)
        more = cdi(intervals + [extra], service)
        assert more >= base - 1e-12


class TestTranslationInvariance:
    @given(st.lists(interval_strategy(), max_size=20), service_strategy(),
           st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
    def test_cdi_invariant_under_time_translation(self, intervals, service,
                                                  shift):
        """Shifting every timestamp by the same constant changes
        nothing — CDI has no absolute-time dependence."""
        base = cdi(intervals, service)
        shifted_intervals = [
            WeightedInterval(iv.start + shift, iv.end + shift, iv.weight)
            for iv in intervals
        ]
        shifted_service = ServicePeriod(service.start + shift,
                                        service.end + shift)
        assert math.isclose(base, cdi(shifted_intervals, shifted_service),
                            rel_tol=1e-6, abs_tol=1e-9)


class TestQuantizedEquivalence:
    # Quantized weights like the real weight config produces.
    @st.composite
    @staticmethod
    def quantized_interval(draw):
        start = draw(finite)
        length = draw(st.floats(min_value=0.0, max_value=1e5))
        weight = draw(st.sampled_from(
            [0.0, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0]
        ))
        return WeightedInterval(start, start + length, weight)

    @given(st.lists(quantized_interval(), max_size=40), service_strategy())
    @settings(max_examples=150)
    def test_quantized_matches_sweep(self, intervals, service):
        from repro.core.indicator import damage_integral_quantized

        exact = damage_integral(intervals, service)
        quantized = damage_integral_quantized(intervals, service)
        assert math.isclose(exact, quantized, rel_tol=1e-9, abs_tol=1e-9)


class TestSplitInvariance:
    @given(service_strategy(), weights_st,
           st.floats(min_value=0.1, max_value=0.9))
    def test_splitting_an_interval_preserves_cdi(self, service, weight, frac):
        """Algorithm 1 must not care whether one issue is reported as one
        long event or two back-to-back events (Section IV-B notes
        persistent issues emit consecutive window events)."""
        start, end = service.start, service.end
        split = start + frac * (end - start)
        whole = [WeightedInterval(start, end, weight)]
        parts = [
            WeightedInterval(start, split, weight),
            WeightedInterval(split, end, weight),
        ]
        assert math.isclose(
            cdi(whole, service), cdi(parts, service),
            rel_tol=1e-9, abs_tol=1e-12,
        )

    @given(st.lists(interval_strategy(), min_size=1, max_size=10),
           service_strategy())
    def test_duplicating_intervals_is_idempotent(self, intervals, service):
        once = cdi(intervals, service)
        twice = cdi(intervals + intervals, service)
        assert math.isclose(once, twice, rel_tol=1e-9, abs_tol=1e-12)


class TestAggregateProperties:
    # Service times are either exactly zero or macroscopic: subnormal
    # floats (~5e-324) make t * q underflow to zero and are not
    # meaningful service durations.
    per_vm = st.lists(
        st.tuples(
            st.one_of(st.just(0.0),
                      st.floats(min_value=1e-6, max_value=1e6)),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        max_size=50,
    )

    @given(per_vm)
    def test_aggregate_within_min_max(self, pairs):
        value = aggregate(pairs)
        observed = [q for t, q in pairs if t > 0]
        if observed:
            assert min(observed) - 1e-12 <= value <= max(observed) + 1e-12
        else:
            assert value == 0.0

    @given(per_vm, per_vm)
    def test_grouped_rollup_matches_flat(self, group_a, group_b):
        """Formula 4 over all VMs equals Formula 4 over group aggregates
        weighted by group service time — the property the BI drill-down
        relies on (Section V)."""
        flat = aggregate(group_a + group_b)
        time_a = sum(t for t, _ in group_a)
        time_b = sum(t for t, _ in group_b)
        rolled = aggregate([(time_a, aggregate(group_a)),
                            (time_b, aggregate(group_b))])
        assert math.isclose(flat, rolled, rel_tol=1e-9, abs_tol=1e-12)


class TestPairingProperties:
    SPEC = EventSpec(
        "x", EventCategory.UNAVAILABILITY, kind=EventKind.STATEFUL,
        start_name="x_add", end_name="x_del",
    )

    @given(st.lists(
        st.tuples(st.sampled_from(["x_add", "x_del"]), finite),
        max_size=40,
    ))
    @settings(max_examples=200)
    def test_pairing_yields_disjoint_ordered_periods(self, raw):
        events = [Event(name=n, time=t, target="vm") for n, t in raw]
        horizon = max((t for _, t in raw), default=0.0) + 1.0
        periods = pair_stateful(events, self.SPEC, horizon=horizon)
        for period in periods:
            assert period.end >= period.start
        for first, second in zip(periods, periods[1:]):
            assert first.end <= second.start

    @given(st.lists(
        st.tuples(st.sampled_from(["x_add", "x_del"]), finite),
        max_size=40,
    ))
    def test_pairing_is_idempotent_under_duplication(self, raw):
        """Re-delivering the same detail events (at the same times) must
        not change the reconstructed periods — duplicates collapse."""
        events = [Event(name=n, time=t, target="vm") for n, t in raw]
        periods_once = pair_stateful(events, self.SPEC, horizon=1e7)
        periods_twice = pair_stateful(events + events, self.SPEC, horizon=1e7)
        spans = [(p.start, p.end) for p in periods_once]
        spans_twice = [(p.start, p.end) for p in periods_twice]
        assert spans == spans_twice


class TestCustomerLevelProperties:
    counts = st.dictionaries(
        st.text(min_size=1, max_size=8), st.integers(min_value=0, max_value=10**6),
        min_size=1, max_size=60,
    )

    @given(counts, st.integers(min_value=1, max_value=10))
    def test_levels_in_range(self, ticket_counts, levels):
        assignment = customer_levels_from_ticket_counts(ticket_counts, levels)
        assert set(assignment) == set(ticket_counts)
        assert all(1 <= v <= levels for v in assignment.values())

    @given(counts, st.integers(min_value=1, max_value=10))
    def test_levels_monotone_in_ticket_count(self, ticket_counts, levels):
        assignment = customer_levels_from_ticket_counts(ticket_counts, levels)
        ordered = sorted(ticket_counts.items(), key=lambda kv: (kv[1], kv[0]))
        ranks = [assignment[name] for name, _ in ordered]
        assert ranks == sorted(ranks)

    @given(counts)
    def test_top_name_gets_top_level(self, ticket_counts):
        assignment = customer_levels_from_ticket_counts(ticket_counts, 4)
        top = max(ticket_counts.items(), key=lambda kv: (kv[1], kv[0]))[0]
        assert assignment[top] == 4

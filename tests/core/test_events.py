"""Tests for the event model and catalog (paper Table II)."""

import pytest

from repro.core.events import (
    Event,
    EventCatalog,
    EventCategory,
    EventKind,
    EventSpec,
    InvalidEventError,
    Severity,
    default_catalog,
)


class TestEvent:
    def test_fields_roundtrip(self):
        event = Event(
            name="slow_io",
            time=1000.0,
            target="vm-1",
            expire_interval=600.0,
            level=Severity.CRITICAL,
            attributes={"duration": 120.0},
        )
        assert event.name == "slow_io"
        assert event.target == "vm-1"
        assert event.level is Severity.CRITICAL

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidEventError):
            Event(name="", time=0.0, target="vm-1")

    def test_empty_target_rejected(self):
        with pytest.raises(InvalidEventError):
            Event(name="slow_io", time=0.0, target="")

    def test_negative_expire_interval_rejected(self):
        with pytest.raises(InvalidEventError):
            Event(name="slow_io", time=0.0, target="vm-1", expire_interval=-1.0)

    def test_expiration(self):
        event = Event(name="slow_io", time=100.0, target="vm-1",
                      expire_interval=50.0)
        assert event.expires_at == 150.0
        assert not event.is_expired(150.0)
        assert event.is_expired(150.1)

    def test_duration_hint_present(self):
        event = Event(name="qemu_live_upgrade", time=100.0, target="vm-1",
                      attributes={"duration": 0.25})
        assert event.duration_hint() == 0.25

    def test_duration_hint_absent(self):
        event = Event(name="slow_io", time=100.0, target="vm-1")
        assert event.duration_hint() is None

    def test_events_are_hashable_and_frozen(self):
        event = Event(name="slow_io", time=1.0, target="vm-1")
        with pytest.raises(AttributeError):
            event.time = 2.0  # type: ignore[misc]


class TestSeverity:
    def test_increasing_order(self):
        assert Severity.INFO < Severity.WARNING < Severity.CRITICAL < Severity.FATAL

    def test_rank_matches_example3(self):
        # Example 3: critical is the third level of increasing severity.
        assert Severity.CRITICAL.rank == 3

    def test_count(self):
        assert Severity.count() == 4


class TestEventSpec:
    def test_stateful_requires_detail_names(self):
        with pytest.raises(InvalidEventError):
            EventSpec("x", EventCategory.UNAVAILABILITY, kind=EventKind.STATEFUL)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(InvalidEventError):
            EventSpec("x", EventCategory.PERFORMANCE, window=0.0)


class TestEventCatalog:
    def test_register_and_get(self):
        catalog = EventCatalog()
        spec = EventSpec("slow_io", EventCategory.PERFORMANCE)
        catalog.register(spec)
        assert catalog.get("slow_io") is spec
        assert "slow_io" in catalog
        assert len(catalog) == 1

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            EventCatalog().get("nope")

    def test_detail_name_resolution(self):
        catalog = EventCatalog([
            EventSpec("ddos_blackhole", EventCategory.UNAVAILABILITY,
                      kind=EventKind.STATEFUL,
                      start_name="ddos_blackhole_add",
                      end_name="ddos_blackhole_del"),
        ])
        assert catalog.logical_name("ddos_blackhole_add") == "ddos_blackhole"
        assert catalog.logical_name("ddos_blackhole_del") == "ddos_blackhole"
        assert catalog.logical_name("ddos_blackhole") == "ddos_blackhole"
        assert catalog.logical_name("other") is None

    def test_category_of_detail_name(self):
        catalog = default_catalog()
        assert (
            catalog.category_of("ddos_blackhole_add")
            is EventCategory.UNAVAILABILITY
        )

    def test_reregister_stateful_clears_old_detail_names(self):
        catalog = EventCatalog([
            EventSpec("x", EventCategory.UNAVAILABILITY,
                      kind=EventKind.STATEFUL,
                      start_name="x_add", end_name="x_del"),
        ])
        catalog.register(
            EventSpec("x", EventCategory.UNAVAILABILITY,
                      kind=EventKind.STATEFUL,
                      start_name="x_begin", end_name="x_end")
        )
        assert catalog.logical_name("x_add") is None
        assert catalog.logical_name("x_begin") == "x"

    def test_by_category_partition(self):
        catalog = default_catalog()
        names = set(catalog.names())
        partitioned = set()
        for category in EventCategory:
            for spec in catalog.by_category(category):
                partitioned.add(spec.name)
        assert partitioned == names


class TestDefaultCatalog:
    def test_paper_events_present(self):
        catalog = default_catalog()
        for name in ("slow_io", "nic_flapping", "vm_hang", "ddos_blackhole",
                     "vcpu_high", "packet_loss", "vm_allocation_failed",
                     "inspect_cpu_power_tdp", "qemu_live_upgrade"):
            assert name in catalog, name

    def test_categories_match_paper(self):
        catalog = default_catalog()
        assert catalog.category_of("slow_io") is EventCategory.PERFORMANCE
        assert catalog.category_of("vm_down") is EventCategory.UNAVAILABILITY
        assert catalog.category_of("vm_start_failed") is EventCategory.CONTROL_PLANE

    def test_all_categories_nonempty(self):
        catalog = default_catalog()
        for category in EventCategory:
            assert catalog.by_category(category), category

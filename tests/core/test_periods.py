"""Tests for period resolution (paper Section IV-B, Example 2)."""

import pytest

from repro.core.events import (
    Event,
    EventCatalog,
    EventCategory,
    EventKind,
    EventSpec,
    Severity,
    default_catalog,
)
from repro.core.periods import (
    EventPeriod,
    UnpairedPolicy,
    dedupe_consecutive,
    pair_stateful,
    resolve_periods,
    resolve_stateless,
)

DDOS = EventSpec(
    "ddos_blackhole", EventCategory.UNAVAILABILITY, kind=EventKind.STATEFUL,
    start_name="ddos_blackhole_add", end_name="ddos_blackhole_del",
)


def detail(name: str, time: float, target: str = "vm-1") -> Event:
    return Event(name=name, time=time, target=target)


class TestEventPeriod:
    def test_duration(self):
        assert EventPeriod("e", "vm", 10.0, 25.0).duration == 15.0

    def test_reversed_period_rejected(self):
        with pytest.raises(ValueError):
            EventPeriod("e", "vm", 25.0, 10.0)

    def test_overlap(self):
        a = EventPeriod("a", "vm", 0.0, 10.0)
        b = EventPeriod("b", "vm", 5.0, 15.0)
        c = EventPeriod("c", "vm", 10.0, 20.0)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # touching endpoints do not overlap


class TestResolveStateless:
    def test_window_fallback(self):
        # slow_io with a 1-minute window: start traced back 60 s.
        spec = default_catalog().get("slow_io")
        event = Event(name="slow_io", time=600.0, target="vm-1",
                      level=Severity.CRITICAL)
        period = resolve_stateless(event, spec)
        assert period.start == 540.0
        assert period.end == 600.0
        assert period.level is Severity.CRITICAL

    def test_measured_duration_overrides_window(self):
        # qemu_live_upgrade logs the impact duration in milliseconds.
        spec = default_catalog().get("qemu_live_upgrade")
        event = Event(name="qemu_live_upgrade", time=100.0, target="vm-1",
                      attributes={"duration": 0.035})
        period = resolve_stateless(event, spec)
        assert period.end - period.start == pytest.approx(0.035)

    def test_negative_duration_rejected(self):
        spec = default_catalog().get("slow_io")
        event = Event(name="slow_io", time=100.0, target="vm-1",
                      attributes={"duration": -5})
        with pytest.raises(ValueError):
            resolve_stateless(event, spec)


class TestDedupeConsecutive:
    def test_keeps_earliest_of_runs(self):
        events = [
            detail("ddos_blackhole_add", 2.0),
            detail("ddos_blackhole_add", 3.0),
            detail("ddos_blackhole_del", 4.0),
            detail("ddos_blackhole_del", 5.0),
        ]
        kept = dedupe_consecutive(events)
        assert [(e.name, e.time) for e in kept] == [
            ("ddos_blackhole_add", 2.0),
            ("ddos_blackhole_del", 4.0),
        ]

    def test_alternating_stream_untouched(self):
        events = [
            detail("ddos_blackhole_add", 1.0),
            detail("ddos_blackhole_del", 2.0),
            detail("ddos_blackhole_add", 3.0),
            detail("ddos_blackhole_del", 4.0),
        ]
        assert dedupe_consecutive(events) == events

    def test_empty(self):
        assert dedupe_consecutive([]) == []


class TestPairStateful:
    def test_example2_pairing(self):
        """Example 2: add@t2, add@t3, del@t4, del@t5 -> one period [t2, t4]."""
        events = [
            detail("ddos_blackhole_add", 2.0),
            detail("ddos_blackhole_add", 3.0),
            detail("ddos_blackhole_del", 4.0),
            detail("ddos_blackhole_del", 5.0),
        ]
        periods = pair_stateful(events, DDOS)
        assert len(periods) == 1
        assert periods[0].name == "ddos_blackhole"
        assert (periods[0].start, periods[0].end) == (2.0, 4.0)

    def test_multiple_episodes(self):
        events = [
            detail("ddos_blackhole_add", 1.0),
            detail("ddos_blackhole_del", 2.0),
            detail("ddos_blackhole_add", 10.0),
            detail("ddos_blackhole_del", 12.0),
        ]
        periods = pair_stateful(events, DDOS)
        assert [(p.start, p.end) for p in periods] == [(1.0, 2.0), (10.0, 12.0)]

    def test_leading_del_dropped(self):
        events = [
            detail("ddos_blackhole_del", 1.0),
            detail("ddos_blackhole_add", 2.0),
            detail("ddos_blackhole_del", 3.0),
        ]
        periods = pair_stateful(events, DDOS)
        assert [(p.start, p.end) for p in periods] == [(2.0, 3.0)]

    def test_open_start_clipped_to_horizon(self):
        events = [detail("ddos_blackhole_add", 5.0)]
        periods = pair_stateful(events, DDOS, horizon=20.0)
        assert [(p.start, p.end) for p in periods] == [(5.0, 20.0)]

    def test_open_start_dropped_under_drop_policy(self):
        events = [detail("ddos_blackhole_add", 5.0)]
        assert pair_stateful(
            events, DDOS, horizon=20.0, unpaired=UnpairedPolicy.DROP
        ) == []

    def test_unsorted_input_is_sorted_first(self):
        events = [
            detail("ddos_blackhole_del", 4.0),
            detail("ddos_blackhole_add", 2.0),
        ]
        periods = pair_stateful(events, DDOS)
        assert [(p.start, p.end) for p in periods] == [(2.0, 4.0)]

    def test_stateless_spec_rejected(self):
        spec = default_catalog().get("slow_io")
        with pytest.raises(ValueError):
            pair_stateful([], spec)

    def test_level_taken_from_start_event(self):
        events = [
            Event(name="ddos_blackhole_add", time=1.0, target="vm-1",
                  level=Severity.FATAL),
            Event(name="ddos_blackhole_del", time=2.0, target="vm-1",
                  level=Severity.INFO),
        ]
        periods = pair_stateful(events, DDOS)
        assert periods[0].level is Severity.FATAL


class TestResolvePeriods:
    def test_mixed_stream(self):
        catalog = default_catalog()
        events = [
            Event(name="slow_io", time=120.0, target="vm-1"),
            detail("ddos_blackhole_add", 10.0, target="vm-2"),
            detail("ddos_blackhole_del", 40.0, target="vm-2"),
        ]
        periods = resolve_periods(events, catalog)
        by_name = {p.name: p for p in periods}
        assert by_name["slow_io"].target == "vm-1"
        assert (by_name["ddos_blackhole"].start,
                by_name["ddos_blackhole"].end) == (10.0, 40.0)

    def test_stateful_streams_isolated_per_target(self):
        catalog = default_catalog()
        events = [
            detail("ddos_blackhole_add", 1.0, target="vm-a"),
            detail("ddos_blackhole_add", 2.0, target="vm-b"),
            detail("ddos_blackhole_del", 3.0, target="vm-a"),
            detail("ddos_blackhole_del", 4.0, target="vm-b"),
        ]
        periods = resolve_periods(events, catalog)
        spans = {p.target: (p.start, p.end) for p in periods}
        assert spans == {"vm-a": (1.0, 3.0), "vm-b": (2.0, 4.0)}

    def test_unknown_names_skipped_by_default(self):
        catalog = default_catalog()
        events = [Event(name="mystery", time=1.0, target="vm-1")]
        assert resolve_periods(events, catalog) == []

    def test_unknown_names_raise_in_strict_mode(self):
        catalog = default_catalog()
        events = [Event(name="mystery", time=1.0, target="vm-1")]
        with pytest.raises(KeyError):
            resolve_periods(events, catalog, strict=True)

    def test_output_sorted(self):
        catalog = default_catalog()
        events = [
            Event(name="slow_io", time=500.0, target="vm-1"),
            Event(name="slow_io", time=100.0, target="vm-1"),
        ]
        periods = resolve_periods(events, catalog)
        assert periods[0].start <= periods[1].start

"""Tests for the Customer-Perspective Indicator (Section VIII-B)."""

import pytest

from repro.core.customer import (
    DEFAULT_DISCLOSED_EVENTS,
    CustomerPerspectiveCalculator,
)
from repro.core.events import Severity, default_catalog
from repro.core.indicator import CdiCalculator, ServicePeriod
from repro.core.periods import EventPeriod
from repro.core.weights import expert_only_config


def make_calculator(**kwargs) -> CustomerPerspectiveCalculator:
    return CustomerPerspectiveCalculator(
        default_catalog(), expert_only_config(), **kwargs
    )


class TestCustomerPerspective:
    def test_disclosed_subset_visible(self):
        calc = make_calculator()
        periods = [EventPeriod("slow_io", "vm-1", 0.0, 60.0, Severity.CRITICAL)]
        report = calc.vm_report(periods, ServicePeriod(0.0, 600.0))
        assert report.performance > 0.0

    def test_internal_events_hidden(self):
        calc = make_calculator()
        # inspect_cpu_power_tdp is infrastructure-internal, not disclosed.
        periods = [
            EventPeriod("inspect_cpu_power_tdp", "vm-1", 0.0, 600.0,
                        Severity.WARNING)
        ]
        report = calc.vm_report(periods, ServicePeriod(0.0, 600.0))
        assert report.performance == 0.0

    def test_customer_cdi_never_exceeds_internal_cdi(self):
        customer = make_calculator()
        internal = CdiCalculator(default_catalog(), expert_only_config())
        periods = [
            EventPeriod("slow_io", "vm-1", 0.0, 60.0, Severity.CRITICAL),
            EventPeriod("inspect_cpu_power_tdp", "vm-1", 100.0, 400.0,
                        Severity.WARNING),
        ]
        service = ServicePeriod(0.0, 600.0)
        assert (
            customer.vm_report(periods, service).performance
            <= internal.vm_report(periods, service).performance
        )

    def test_custom_disclosure_set(self):
        calc = make_calculator(disclosed={"vm_down"})
        assert calc.disclosed == frozenset({"vm_down"})
        periods = [EventPeriod("slow_io", "vm-1", 0.0, 60.0, Severity.CRITICAL)]
        report = calc.vm_report(periods, ServicePeriod(0.0, 600.0))
        assert report.performance == 0.0

    def test_unknown_disclosed_name_rejected(self):
        with pytest.raises(KeyError):
            make_calculator(disclosed={"not_a_real_event"})

    def test_default_disclosure_is_valid(self):
        catalog = default_catalog()
        assert all(name in catalog for name in DEFAULT_DISCLOSED_EVENTS)

    def test_fleet_report(self):
        calc = make_calculator()
        vms = {
            "vm-1": (
                [EventPeriod("vm_down", "vm-1", 0.0, 50.0, Severity.FATAL)],
                ServicePeriod(0.0, 100.0),
            ),
            "vm-2": ([], ServicePeriod(0.0, 100.0)),
        }
        fleet = calc.fleet_report(vms)
        assert fleet.unavailability == pytest.approx(0.25)
        assert fleet.service_time == 200.0

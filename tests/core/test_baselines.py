"""Tests for baseline metrics: DP, AIR, MTBF/MTTR (Section III-A)."""

import pytest

from repro.core.baselines import (
    SECONDS_PER_YEAR,
    annual_interruption_rate,
    downtime_percentage,
    interruption_count,
    reliability_figures,
)
from repro.core.events import Severity, default_catalog
from repro.core.indicator import ServicePeriod
from repro.core.periods import EventPeriod

CATALOG = default_catalog()


def down(start: float, end: float, target: str = "vm-1") -> EventPeriod:
    return EventPeriod("vm_down", target, start, end, Severity.FATAL)


def perf(start: float, end: float, target: str = "vm-1") -> EventPeriod:
    return EventPeriod("slow_io", target, start, end, Severity.CRITICAL)


class TestDowntimePercentage:
    def test_basic(self):
        service = ServicePeriod(0.0, 1000.0)
        assert downtime_percentage([down(0.0, 100.0)], service, CATALOG) == 0.1

    def test_performance_events_ignored(self):
        service = ServicePeriod(0.0, 1000.0)
        assert downtime_percentage([perf(0.0, 500.0)], service, CATALOG) == 0.0

    def test_overlapping_downtime_not_double_counted(self):
        service = ServicePeriod(0.0, 1000.0)
        periods = [down(0.0, 100.0), down(50.0, 150.0)]
        assert downtime_percentage(periods, service, CATALOG) == pytest.approx(0.15)

    def test_no_events(self):
        assert downtime_percentage([], ServicePeriod(0.0, 10.0), CATALOG) == 0.0


class TestInterruptionCount:
    def test_disjoint_interruptions(self):
        service = ServicePeriod(0.0, 1000.0)
        periods = [down(0.0, 10.0), down(100.0, 110.0)]
        assert interruption_count(periods, service, CATALOG) == 2

    def test_touching_interruptions_merge(self):
        service = ServicePeriod(0.0, 1000.0)
        periods = [down(0.0, 10.0), down(10.0, 20.0)]
        assert interruption_count(periods, service, CATALOG) == 1

    def test_outside_service_window_excluded(self):
        service = ServicePeriod(0.0, 100.0)
        assert interruption_count([down(200.0, 300.0)], service, CATALOG) == 0

    def test_performance_events_not_interruptions(self):
        service = ServicePeriod(0.0, 1000.0)
        assert interruption_count([perf(0.0, 10.0)], service, CATALOG) == 0


class TestAnnualInterruptionRate:
    def test_one_interruption_per_vm_year(self):
        vms = [([down(0.0, 60.0)], ServicePeriod(0.0, SECONDS_PER_YEAR))]
        assert annual_interruption_rate(vms, CATALOG) == pytest.approx(100.0)

    def test_scales_with_service_time(self):
        half_year = SECONDS_PER_YEAR / 2
        vms = [([down(0.0, 60.0)], ServicePeriod(0.0, half_year))]
        assert annual_interruption_rate(vms, CATALOG) == pytest.approx(200.0)

    def test_no_service_time(self):
        assert annual_interruption_rate([], CATALOG) == 0.0

    def test_air_blind_to_duration(self):
        """AIR counts occurrences: a 1 s and a 1 h outage weigh the same."""
        year = ServicePeriod(0.0, SECONDS_PER_YEAR)
        short = [([down(0.0, 1.0)], year)]
        long = [([down(0.0, 3600.0)], year)]
        assert annual_interruption_rate(short, CATALOG) == pytest.approx(
            annual_interruption_rate(long, CATALOG)
        )


class TestReliabilityFigures:
    def test_no_failures(self):
        figures = reliability_figures([([], ServicePeriod(0.0, 1000.0))], CATALOG)
        assert figures.mtbf == 1000.0
        assert figures.mttr == 0.0
        assert figures.availability == 1.0

    def test_single_failure(self):
        vms = [([down(0.0, 100.0)], ServicePeriod(0.0, 1000.0))]
        figures = reliability_figures(vms, CATALOG)
        assert figures.mtbf == pytest.approx(900.0)
        assert figures.mttr == pytest.approx(100.0)
        assert figures.availability == pytest.approx(0.9)

    def test_zero_denominator_availability(self):
        vms = [([down(0.0, 1000.0)], ServicePeriod(0.0, 1000.0))]
        figures = reliability_figures(vms, CATALOG)
        assert figures.mtbf == 0.0
        assert figures.availability == 0.0

"""Tests for event weight assignment (paper Section IV-C, Example 3)."""

import pytest

from repro.core.events import EventCategory, Severity
from repro.core.weights import (
    WeightConfig,
    build_weight_config,
    customer_level_weight,
    customer_levels_from_ticket_counts,
    expert_level_weight,
    expert_only_config,
    fuse_weights,
)


class TestFormulas:
    def test_formula1_expert_levels(self):
        # l_i = i / m
        assert expert_level_weight(3, 4) == pytest.approx(0.75)
        assert expert_level_weight(1, 4) == pytest.approx(0.25)
        assert expert_level_weight(4, 4) == pytest.approx(1.0)

    def test_formula2_customer_levels(self):
        assert customer_level_weight(2, 4) == pytest.approx(0.5)

    def test_out_of_range_ranks_rejected(self):
        with pytest.raises(ValueError):
            expert_level_weight(0, 4)
        with pytest.raises(ValueError):
            expert_level_weight(5, 4)
        with pytest.raises(ValueError):
            customer_level_weight(0, 4)

    def test_formula3_fusion(self):
        assert fuse_weights(0.75, 0.5, 0.5, 0.5) == pytest.approx(0.625)

    def test_formula3_unequal_alphas(self):
        assert fuse_weights(1.0, 0.0, 0.75, 0.25) == pytest.approx(0.75)

    def test_formula3_zero_alphas_rejected(self):
        with pytest.raises(ValueError):
            fuse_weights(0.5, 0.5, 0.0, 0.0)

    def test_formula3_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            fuse_weights(0.5, 0.5, -0.1, 1.0)


class TestExample3:
    """Paper Example 3 end to end: critical event, m=n=4, alphas=0.5."""

    def test_worked_example(self):
        expert = expert_level_weight(Severity.CRITICAL.rank, 4)
        assert expert == pytest.approx(0.75)
        customer = customer_level_weight(2, 4)
        assert customer == pytest.approx(0.5)
        assert fuse_weights(expert, customer, 0.5, 0.5) == pytest.approx(0.625)

    def test_ticket_rank_position_43_percent_maps_to_level_2(self):
        """An event with ticket count above 43% of events falls in level 2 of 4."""
        # 100 event names; the target sits at ascending-rank position 44.
        counts = {f"e{i:03d}": i for i in range(100)}
        levels = customer_levels_from_ticket_counts(counts, 4)
        assert levels["e043"] == 2


class TestCustomerLevels:
    def test_quartile_assignment(self):
        counts = {"a": 1, "b": 2, "c": 3, "d": 4}
        levels = customer_levels_from_ticket_counts(counts, 4)
        assert levels == {"a": 1, "b": 2, "c": 3, "d": 4}

    def test_more_names_than_levels(self):
        counts = {f"e{i}": i for i in range(8)}
        levels = customer_levels_from_ticket_counts(counts, 4)
        assert sorted(set(levels.values())) == [1, 2, 3, 4]
        # Exactly two names per level.
        for level in range(1, 5):
            assert sum(1 for v in levels.values() if v == level) == 2

    def test_single_name_gets_top_level(self):
        assert customer_levels_from_ticket_counts({"only": 7}, 4) == {"only": 4}

    def test_ties_broken_deterministically(self):
        counts = {"b": 5, "a": 5}
        first = customer_levels_from_ticket_counts(counts, 2)
        second = customer_levels_from_ticket_counts(dict(reversed(counts.items())), 2)
        assert first == second

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            customer_levels_from_ticket_counts({"a": -1}, 4)

    def test_zero_levels_rejected(self):
        with pytest.raises(ValueError):
            customer_levels_from_ticket_counts({"a": 1}, 0)


class TestWeightConfig:
    def make_config(self) -> WeightConfig:
        return WeightConfig(
            alpha_expert=0.5,
            alpha_customer=0.5,
            expert_levels=4,
            customer_levels=4,
            customer_level_by_name={"slow_io": 2},
        )

    def test_resolve_fused(self):
        config = self.make_config()
        weight = config.resolve("slow_io", Severity.CRITICAL,
                                EventCategory.PERFORMANCE)
        assert weight == pytest.approx(0.625)

    def test_resolve_falls_back_to_expert_only(self):
        config = self.make_config()
        weight = config.resolve("brand_new_event", Severity.CRITICAL,
                                EventCategory.PERFORMANCE)
        assert weight == pytest.approx(0.75)

    def test_unavailability_always_full_weight(self):
        config = self.make_config()
        weight = config.resolve("vm_down", Severity.INFO,
                                EventCategory.UNAVAILABILITY)
        assert weight == 1.0

    def test_unavailability_gradation_when_disabled(self):
        config = WeightConfig(
            alpha_expert=1.0, alpha_customer=0.0,
            expert_levels=4, customer_levels=4,
            unavailability_full_weight=False,
        )
        weight = config.resolve("vm_down", Severity.WARNING,
                                EventCategory.UNAVAILABILITY)
        assert weight == pytest.approx(0.5)

    def test_weights_bounded(self):
        config = self.make_config()
        for severity in Severity:
            w = config.resolve("slow_io", severity, EventCategory.PERFORMANCE)
            assert 0.0 < w <= 1.0


class TestBuildWeightConfig:
    def test_roundtrip(self):
        config = build_weight_config(
            {"slow_io": 90, "packet_loss": 10, "vcpu_high": 50, "gpu_drop": 70},
            customer_levels=4,
        )
        assert config.alpha_expert == pytest.approx(0.5)
        assert config.customer_level_by_name["packet_loss"] == 1
        assert config.customer_level_by_name["slow_io"] == 4

    def test_expert_vs_customer_judgment(self):
        config = build_weight_config({"a": 1}, expert_vs_customer=3.0)
        assert config.alpha_expert == pytest.approx(0.75)
        assert config.alpha_customer == pytest.approx(0.25)

    def test_expert_only_config_ignores_tickets(self):
        config = expert_only_config()
        w = config.resolve("anything", Severity.FATAL, EventCategory.PERFORMANCE)
        assert w == pytest.approx(1.0)
        assert config.customer_weight("anything") is None

"""Tests for Algorithm 1 and Formula 4 (paper Section IV-D, Example 4).

Times are expressed in minutes throughout this file — CDI is a ratio
and therefore unit-agnostic, and the paper's Table IV is given in
minutes.
"""

import pytest

from repro.core.events import EventCategory, Severity, default_catalog
from repro.core.indicator import (
    CdiCalculator,
    CdiReport,
    ServicePeriod,
    WeightedInterval,
    aggregate,
    aggregate_reports,
    cdi,
    cdi_slotted,
    damage_integral,
)
from repro.core.periods import EventPeriod
from repro.core.weights import WeightConfig


def minutes(h: int, m: int) -> float:
    return h * 60.0 + m


class TestWeightedInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedInterval(5.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            WeightedInterval(0.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            WeightedInterval(0.0, 1.0, -0.1)

    def test_duration(self):
        assert WeightedInterval(2.0, 7.0, 0.5).duration == 5.0


class TestServicePeriod:
    def test_positive_length_required(self):
        with pytest.raises(ValueError):
            ServicePeriod(10.0, 10.0)

    def test_duration(self):
        assert ServicePeriod(0.0, 1440.0).duration == 1440.0


class TestDamageIntegral:
    def test_empty(self):
        assert damage_integral([], ServicePeriod(0.0, 100.0)) == 0.0

    def test_single_interval(self):
        iv = WeightedInterval(10.0, 30.0, 0.5)
        assert damage_integral([iv], ServicePeriod(0.0, 100.0)) == pytest.approx(10.0)

    def test_clipping_to_service_period(self):
        iv = WeightedInterval(-50.0, 50.0, 1.0)
        assert damage_integral([iv], ServicePeriod(0.0, 100.0)) == pytest.approx(50.0)

    def test_interval_outside_period_ignored(self):
        iv = WeightedInterval(200.0, 300.0, 1.0)
        assert damage_integral([iv], ServicePeriod(0.0, 100.0)) == 0.0

    def test_overlap_takes_max_weight(self):
        intervals = [
            WeightedInterval(0.0, 10.0, 0.5),
            WeightedInterval(5.0, 15.0, 0.8),
        ]
        # [0,5) at 0.5, [5,10) at 0.8, [10,15) at 0.8.
        expected = 5 * 0.5 + 5 * 0.8 + 5 * 0.8
        assert damage_integral(
            intervals, ServicePeriod(0.0, 100.0)
        ) == pytest.approx(expected)

    def test_nested_overlap(self):
        intervals = [
            WeightedInterval(0.0, 30.0, 0.3),
            WeightedInterval(10.0, 20.0, 0.9),
        ]
        expected = 10 * 0.3 + 10 * 0.9 + 10 * 0.3
        assert damage_integral(
            intervals, ServicePeriod(0.0, 100.0)
        ) == pytest.approx(expected)

    def test_identical_intervals_count_once(self):
        iv = WeightedInterval(0.0, 10.0, 0.7)
        assert damage_integral(
            [iv, iv, iv], ServicePeriod(0.0, 100.0)
        ) == pytest.approx(7.0)

    def test_zero_weight_ignored(self):
        iv = WeightedInterval(0.0, 10.0, 0.0)
        assert damage_integral([iv], ServicePeriod(0.0, 100.0)) == 0.0

    def test_zero_length_interval_contributes_nothing(self):
        iv = WeightedInterval(5.0, 5.0, 1.0)
        assert damage_integral([iv], ServicePeriod(0.0, 100.0)) == 0.0


class TestExample4:
    """Paper Example 4 / Table IV, reproduced exactly."""

    def test_vm1(self):
        intervals = [
            WeightedInterval(minutes(10, 8), minutes(10, 10), 0.3, "packet_loss"),
            WeightedInterval(minutes(10, 10), minutes(10, 12), 0.3, "packet_loss"),
        ]
        service = ServicePeriod(minutes(10, 0), minutes(11, 0))  # 60 min
        assert cdi(intervals, service) == pytest.approx(0.020)

    def test_vm2(self):
        intervals = [
            WeightedInterval(minutes(13, 25), minutes(13, 30), 0.6, "vcpu_high"),
        ]
        service = ServicePeriod(0.0, 1440.0)  # full day
        assert cdi(intervals, service) == pytest.approx(0.002, abs=5e-4)
        assert cdi(intervals, service) == pytest.approx(5 * 0.6 / 1440)

    def test_vm3_overlap_takes_higher_weight(self):
        intervals = [
            WeightedInterval(minutes(8, 8), minutes(8, 10), 0.5, "slow_io"),
            WeightedInterval(minutes(8, 10), minutes(8, 12), 0.5, "slow_io"),
            WeightedInterval(minutes(8, 10), minutes(8, 15), 0.6, "vcpu_high"),
        ]
        service = ServicePeriod(0.0, 1000.0)  # 1000 min
        assert cdi(intervals, service) == pytest.approx(0.004)

    def test_all_vms_formula4(self):
        q_all = aggregate([(60.0, 0.020), (1440.0, 0.002), (1000.0, 0.004)])
        # Paper rounds to 0.003.
        assert q_all == pytest.approx(0.003, abs=5e-4)


class TestAggregate:
    def test_empty_is_zero(self):
        assert aggregate([]) == 0.0

    def test_single_vm_identity(self):
        assert aggregate([(100.0, 0.42)]) == pytest.approx(0.42)

    def test_weighting_by_service_time(self):
        # A long-lived healthy VM dilutes a short-lived unhealthy one.
        assert aggregate([(10.0, 1.0), (990.0, 0.0)]) == pytest.approx(0.01)

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            aggregate([(-1.0, 0.5)])

    def test_zero_total_service_time(self):
        assert aggregate([(0.0, 0.9)]) == 0.0


class TestCdiSlotted:
    def test_matches_exact_on_aligned_input(self):
        intervals = [
            WeightedInterval(60.0, 180.0, 0.5),
            WeightedInterval(120.0, 300.0, 0.8),
        ]
        service = ServicePeriod(0.0, 600.0)
        assert cdi_slotted(intervals, service, slot=60.0) == pytest.approx(
            cdi(intervals, service)
        )

    def test_invalid_slot_rejected(self):
        with pytest.raises(ValueError):
            cdi_slotted([], ServicePeriod(0.0, 100.0), slot=0.0)

    def test_empty(self):
        assert cdi_slotted([], ServicePeriod(0.0, 100.0)) == 0.0


class TestCdiCalculator:
    def make_calculator(self) -> CdiCalculator:
        config = WeightConfig(
            alpha_expert=0.5, alpha_customer=0.5,
            expert_levels=4, customer_levels=4,
            customer_level_by_name={"slow_io": 2, "vcpu_high": 4},
        )
        return CdiCalculator(default_catalog(), config)

    def test_vm_report_separates_categories(self):
        calc = self.make_calculator()
        periods = [
            EventPeriod("vm_down", "vm-1", 0.0, 60.0, Severity.FATAL),
            EventPeriod("slow_io", "vm-1", 100.0, 160.0, Severity.CRITICAL),
            EventPeriod("vm_start_failed", "vm-1", 200.0, 260.0, Severity.CRITICAL),
        ]
        service = ServicePeriod(0.0, 600.0)
        report = calc.vm_report(periods, service)
        assert report.unavailability == pytest.approx(60.0 / 600.0)
        assert report.performance > 0.0
        assert report.control_plane > 0.0
        assert report.service_time == 600.0

    def test_unknown_event_names_excluded(self):
        calc = self.make_calculator()
        periods = [EventPeriod("mystery", "vm-1", 0.0, 600.0, Severity.FATAL)]
        report = calc.vm_report(periods, ServicePeriod(0.0, 600.0))
        assert report == CdiReport(0.0, 0.0, 0.0, 600.0)

    def test_event_level_cdi_narrows_input(self):
        calc = self.make_calculator()
        periods = [
            EventPeriod("slow_io", "vm-1", 0.0, 60.0, Severity.CRITICAL),
            EventPeriod("vcpu_high", "vm-1", 0.0, 600.0, Severity.CRITICAL),
        ]
        service = ServicePeriod(0.0, 600.0)
        narrow = calc.event_level_cdi(periods, service, "slow_io")
        # slow_io: fused weight (0.75 + 0.5)/2 = 0.625 over 60 of 600.
        assert narrow == pytest.approx(0.625 * 60 / 600)

    def test_fleet_report_matches_manual_formula4(self):
        calc = self.make_calculator()
        vms = {
            "vm-1": (
                [EventPeriod("vm_down", "vm-1", 0.0, 30.0, Severity.FATAL)],
                ServicePeriod(0.0, 100.0),
            ),
            "vm-2": ([], ServicePeriod(0.0, 300.0)),
        }
        fleet = calc.fleet_report(vms)
        assert fleet.unavailability == pytest.approx((100 * 0.3 + 300 * 0) / 400)
        assert fleet.service_time == 400.0


class TestCdiReport:
    def test_sub_metric_accessor(self):
        report = CdiReport(0.1, 0.2, 0.3, 1000.0)
        assert report.sub_metric(EventCategory.UNAVAILABILITY) == 0.1
        assert report.sub_metric(EventCategory.PERFORMANCE) == 0.2
        assert report.sub_metric(EventCategory.CONTROL_PLANE) == 0.3

    def test_combined_equal_weights(self):
        report = CdiReport(0.1, 0.2, 0.3, 1000.0)
        assert report.combined() == pytest.approx(0.2)

    def test_combined_custom_weights(self):
        report = CdiReport(0.1, 0.2, 0.3, 1000.0)
        weights = {
            EventCategory.UNAVAILABILITY: 2.0,
            EventCategory.PERFORMANCE: 1.0,
            EventCategory.CONTROL_PLANE: 1.0,
        }
        assert report.combined(weights) == pytest.approx(
            (2 * 0.1 + 0.2 + 0.3) / 4
        )

    def test_combined_zero_weights_rejected(self):
        report = CdiReport(0.1, 0.2, 0.3, 1000.0)
        with pytest.raises(ValueError):
            report.combined({c: 0.0 for c in EventCategory})

    def test_aggregate_reports(self):
        reports = [
            CdiReport(0.2, 0.0, 0.0, 100.0),
            CdiReport(0.0, 0.4, 0.0, 300.0),
        ]
        merged = aggregate_reports(reports)
        assert merged.unavailability == pytest.approx(0.05)
        assert merged.performance == pytest.approx(0.3)
        assert merged.service_time == 400.0

"""Tests for the logical plan DAG."""

import pytest

from repro.engine.plan import (
    GatherNode,
    NarrowNode,
    ShuffleNode,
    SourceNode,
    UnionNode,
    stage_boundaries,
)


class TestSourceNode:
    def test_partition_count(self):
        node = SourceNode([[1, 2], [3], [4, 5, 6]])
        assert node.num_partitions == 3
        assert node.chunks == ((1, 2), (3,), (4, 5, 6))

    def test_empty_source_gets_one_partition(self):
        node = SourceNode([])
        assert node.num_partitions == 1
        assert node.chunks == ((),)

    def test_describe_mentions_rows(self):
        node = SourceNode([[1, 2], [3]])
        assert "rows=3" in node.describe()


class TestNarrowNode:
    def test_inherits_partition_count(self):
        source = SourceNode([[1], [2], [3]])
        node = NarrowNode(source, lambda part: part, "map")
        assert node.num_partitions == 3
        assert node.parents == (source,)


class TestShuffleNode:
    def test_partition_of_is_stable(self):
        source = SourceNode([[("a", 1)]])
        node = ShuffleNode(source, 4)
        assert node.partition_of("a") == node.partition_of("a")
        assert 0 <= node.partition_of("a") < 4

    def test_invalid_partition_count(self):
        source = SourceNode([[("a", 1)]])
        with pytest.raises(ValueError):
            ShuffleNode(source, 0)


class TestUnionNode:
    def test_partitions_sum(self):
        a = SourceNode([[1], [2]])
        b = SourceNode([[3]])
        assert UnionNode((a, b)).num_partitions == 3

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UnionNode(())


class TestExplainAndStages:
    def test_explain_renders_tree(self):
        source = SourceNode([[("a", 1)]], name="events")
        shuffle = ShuffleNode(source, 2, name="by_vm")
        narrow = NarrowNode(shuffle, lambda p: p, "group")
        text = narrow.explain()
        assert "Narrow[group]" in text
        assert "Shuffle[by_vm]" in text
        assert "Source[events]" in text

    def test_stage_boundaries_in_dependency_order(self):
        source = SourceNode([[("a", 1)]])
        first = ShuffleNode(source, 2, name="first")
        mid = NarrowNode(first, lambda p: p, "mid")
        second = ShuffleNode(mid, 2, name="second")
        gather = GatherNode(second, lambda rows: rows, "sort")
        bounds = stage_boundaries(gather)
        assert [b.name for b in bounds] == ["first", "second", "sort"]

    def test_shared_subtree_visited_once(self):
        source = SourceNode([[("a", 1)]])
        shuffle = ShuffleNode(source, 2)
        union = UnionNode((shuffle, shuffle))
        assert len(stage_boundaries(union)) == 1

"""Property tests: engine semantics match plain-Python references."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.dataset import EngineContext

ints = st.lists(st.integers(min_value=-50, max_value=50), max_size=60)
pairs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9),
              st.integers(min_value=-100, max_value=100)),
    max_size=60,
)
parts = st.integers(min_value=1, max_value=6)


class TestReferenceEquivalence:
    @given(ints, parts)
    @settings(max_examples=40, deadline=None)
    def test_map_matches_builtin(self, data, num_parts):
        ctx = EngineContext(parallelism=2)
        result = ctx.parallelize(data, num_parts).map(lambda x: x * 3 + 1).collect()
        assert result == [x * 3 + 1 for x in data]

    @given(ints, parts)
    @settings(max_examples=40, deadline=None)
    def test_filter_matches_builtin(self, data, num_parts):
        ctx = EngineContext(parallelism=2)
        result = ctx.parallelize(data, num_parts).filter(lambda x: x > 0).collect()
        assert result == [x for x in data if x > 0]

    @given(pairs, parts)
    @settings(max_examples=40, deadline=None)
    def test_reduce_by_key_matches_counter(self, data, num_parts):
        ctx = EngineContext(parallelism=2)
        result = (
            ctx.parallelize(data, num_parts)
               .reduce_by_key(lambda a, b: a + b)
               .to_dict()
        )
        expected: Counter = Counter()
        for key, value in data:
            expected[key] += value
        assert result == dict(expected)

    @given(pairs, parts)
    @settings(max_examples=40, deadline=None)
    def test_group_by_key_preserves_multiset(self, data, num_parts):
        ctx = EngineContext(parallelism=2)
        grouped = dict(
            ctx.parallelize(data, num_parts).group_by_key().collect()
        )
        expected: dict[int, list[int]] = {}
        for key, value in data:
            expected.setdefault(key, []).append(value)
        assert {k: Counter(v) for k, v in grouped.items()} == {
            k: Counter(v) for k, v in expected.items()
        }

    @given(ints, parts)
    @settings(max_examples=40, deadline=None)
    def test_distinct_matches_set(self, data, num_parts):
        ctx = EngineContext(parallelism=2)
        result = ctx.parallelize(data, num_parts).distinct().collect()
        assert sorted(result) == sorted(set(data))

    @given(ints, parts)
    @settings(max_examples=40, deadline=None)
    def test_sort_matches_sorted(self, data, num_parts):
        ctx = EngineContext(parallelism=2)
        result = ctx.parallelize(data, num_parts).sort_by(lambda x: x).collect()
        assert result == sorted(data)

    @given(pairs, pairs)
    @settings(max_examples=40, deadline=None)
    def test_join_matches_nested_loop(self, left, right):
        ctx = EngineContext(parallelism=2)
        joined = ctx.parallelize(left).join(ctx.parallelize(right)).collect()
        expected = [
            (lk, (lv, rv))
            for lk, lv in left
            for rk, rv in right
            if lk == rk
        ]
        assert Counter(joined) == Counter(expected)

    @given(ints, parts, parts)
    @settings(max_examples=40, deadline=None)
    def test_repartition_preserves_elements(self, data, initial, target):
        ctx = EngineContext(parallelism=2)
        dataset = ctx.parallelize(data, initial).repartition(target)
        assert Counter(dataset.collect()) == Counter(data)
        assert dataset.num_partitions == target

"""Tests for retry policies: validation, backoff shape, determinism.

The hypothesis properties pin the two contracts chaos tests lean on:
for **every** seed/key/shape, backoff schedules are monotone
non-decreasing and bounded by the cap.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.retry import RetryPolicy, spark_like_policy


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_negative_base_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_multiplier_below_one_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=-1.0)

    def test_bad_attempt_arguments_rejected(self):
        policy = RetryPolicy()
        with pytest.raises(ValueError):
            policy.delay(0)
        with pytest.raises(ValueError):
            policy.schedule(-1)


class TestSemantics:
    def test_none_policy_never_retries(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert not policy.should_retry(1)

    def test_attempt_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.max_attempts == 3
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(max_retries=4, base_delay=0.1, multiplier=2.0,
                             max_delay=100.0)
        assert policy.schedule(4) == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_cap_applies(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=5.0)
        assert policy.schedule(3) == pytest.approx([1.0, 5.0, 5.0])

    def test_schedule_deterministic_per_key(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        assert policy.schedule(5, key=("node", 3)) == \
            policy.schedule(5, key=("node", 3))

    def test_different_keys_draw_different_jitter(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        schedules = {
            tuple(policy.schedule(4, key=("node", i))) for i in range(16)
        }
        assert len(schedules) > 1

    def test_delay_is_last_schedule_entry(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.3, seed=3)
        for attempt in range(1, 5):
            assert policy.delay(attempt, key="k") == \
                policy.schedule(attempt, key="k")[-1]

    def test_describe_mentions_all_knobs(self):
        text = RetryPolicy(timeout=2.0).describe()
        for fragment in ("retries=2", "cap=30.0s", "timeout=2.0s"):
            assert fragment in text

    def test_spark_like_policy_shape(self):
        policy = spark_like_policy(3, timeout=60.0, seed=5)
        assert policy.max_attempts == 4
        assert policy.base_delay == pytest.approx(0.1)
        assert policy.max_delay == pytest.approx(10.0)
        assert policy.jitter == pytest.approx(0.25)
        assert policy.timeout == pytest.approx(60.0)
        assert policy.seed == 5


policy_st = st.builds(
    RetryPolicy,
    max_retries=st.integers(min_value=0, max_value=6),
    base_delay=st.floats(min_value=0.0, max_value=10.0,
                         allow_nan=False, allow_infinity=False),
    multiplier=st.floats(min_value=1.0, max_value=8.0,
                         allow_nan=False, allow_infinity=False),
    max_delay=st.floats(min_value=0.0, max_value=60.0,
                        allow_nan=False, allow_infinity=False),
    jitter=st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**32),
)
key_st = st.one_of(
    st.none(),
    st.text(max_size=8),
    st.tuples(st.text(max_size=8), st.integers(min_value=0, max_value=99)),
)


class TestBackoffProperties:
    @given(policy_st, key_st, st.integers(min_value=0, max_value=10))
    @settings(max_examples=200)
    def test_schedule_monotone_and_bounded(self, policy, key, retries):
        """ISSUE property: monotone non-decreasing, bounded by the cap,
        for all seeds, keys, and policy shapes."""
        schedule = policy.schedule(retries, key=key)
        assert len(schedule) == retries
        for earlier, later in zip(schedule, schedule[1:]):
            assert later >= earlier
        for delay in schedule:
            assert 0.0 <= delay <= policy.max_delay

    @given(policy_st, key_st, st.integers(min_value=1, max_value=10))
    @settings(max_examples=100)
    def test_schedule_is_a_prefix_stream(self, policy, key, retries):
        """Growing the schedule never rewrites earlier delays, so
        per-attempt ``delay()`` calls walk one consistent stream."""
        longer = policy.schedule(retries, key=key)
        shorter = policy.schedule(retries - 1, key=key)
        assert longer[:retries - 1] == shorter

"""Tests for the Dataset API (Spark-RDD-style semantics)."""

import pytest

from repro.engine.dataset import EngineContext, _chunk


@pytest.fixture
def ctx() -> EngineContext:
    return EngineContext(parallelism=3)


class TestChunking:
    def test_balanced_chunks(self):
        chunks = _chunk(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_more_parts_than_rows(self):
        chunks = _chunk([1, 2], 5)
        assert sum(chunks, []) == [1, 2]
        assert len(chunks) == 5

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            _chunk([1], 0)


class TestNarrowOps:
    def test_map(self, ctx):
        assert ctx.parallelize([1, 2, 3]).map(lambda x: x * 2).collect() == [2, 4, 6]

    def test_filter(self, ctx):
        result = ctx.parallelize(range(10)).filter(lambda x: x % 2 == 0).collect()
        assert result == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        result = ctx.parallelize([1, 2]).flat_map(lambda x: [x] * x).collect()
        assert result == [1, 2, 2]

    def test_key_by_and_map_values(self, ctx):
        result = (
            ctx.parallelize(["aa", "b"])
               .key_by(len)
               .map_values(str.upper)
               .collect()
        )
        assert result == [(2, "AA"), (1, "B")]

    def test_chaining_preserves_order(self, ctx):
        result = (
            ctx.parallelize(range(20))
               .map(lambda x: x + 1)
               .filter(lambda x: x % 3 == 0)
               .collect()
        )
        assert result == [3, 6, 9, 12, 15, 18]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2])
        b = ctx.parallelize([3])
        assert sorted(a.union(b).collect()) == [1, 2, 3]

    def test_union_across_contexts_rejected(self, ctx):
        other = EngineContext()
        with pytest.raises(ValueError):
            ctx.parallelize([1]).union(other.parallelize([2]))


class TestWideOps:
    def test_group_by_key(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        grouped = dict(ctx.parallelize(pairs).group_by_key().collect())
        assert grouped == {"a": [1, 3], "b": [2]}

    def test_reduce_by_key(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 5)]
        reduced = ctx.parallelize(pairs).reduce_by_key(lambda x, y: x + y).to_dict()
        assert reduced == {"a": 4, "b": 7}

    def test_aggregate_by_key(self, ctx):
        pairs = [("a", 1), ("a", 2), ("b", 10)]
        result = (
            ctx.parallelize(pairs)
               .aggregate_by_key((0, 0),
                                 lambda acc, v: (acc[0] + v, acc[1] + 1),
                                 lambda x, y: (x[0] + y[0], x[1] + y[1]))
               .to_dict()
        )
        assert result == {"a": (3, 2), "b": (10, 1)}

    def test_distinct(self, ctx):
        assert sorted(ctx.parallelize([1, 2, 2, 3, 1]).distinct().collect()) == [1, 2, 3]

    def test_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2), ("c", 9)])
        right = ctx.parallelize([("a", "x"), ("b", "y"), ("b", "z")])
        joined = sorted(left.join(right).collect())
        assert joined == [("a", (1, "x")), ("b", (2, "y")), ("b", (2, "z"))]

    def test_left_join_keeps_unmatched(self, ctx):
        left = ctx.parallelize([("a", 1), ("c", 9)])
        right = ctx.parallelize([("a", "x")])
        joined = sorted(left.left_join(right).collect())
        assert joined == [("a", (1, "x")), ("c", (9, None))]

    def test_sort_by(self, ctx):
        data = ctx.parallelize([3, 1, 2])
        assert data.sort_by(lambda x: x).collect() == [1, 2, 3]
        assert data.sort_by(lambda x: x, reverse=True).collect() == [3, 2, 1]

    def test_repartition(self, ctx):
        data = ctx.parallelize(range(10), num_partitions=2).repartition(5)
        assert data.num_partitions == 5
        assert sorted(data.collect()) == list(range(10))

    def test_count_by_key(self, ctx):
        pairs = [("a", 1), ("a", 2), ("b", 1)]
        assert ctx.parallelize(pairs).count_by_key() == {"a": 2, "b": 1}


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(7)).count() == 7

    def test_take(self, ctx):
        assert ctx.parallelize(range(100)).take(3) == [0, 1, 2]

    def test_take_negative_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1]).take(-1)

    def test_first(self, ctx):
        assert ctx.parallelize([5, 6]).first() == 5

    def test_first_empty_raises(self, ctx):
        with pytest.raises(IndexError):
            ctx.empty().first()

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(5)).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.empty().reduce(lambda a, b: a)

    def test_lazy_until_action(self, ctx):
        calls = {"count": 0}

        def spy(x):
            calls["count"] += 1
            return x

        data = ctx.parallelize([1, 2, 3]).map(spy)
        assert calls["count"] == 0
        data.collect()
        assert calls["count"] == 3

    def test_explain(self, ctx):
        plan = ctx.parallelize([("a", 1)]).group_by_key().explain()
        assert "Shuffle" in plan and "Source" in plan

    def test_job_metrics_exposed_via_context(self, ctx):
        ctx.parallelize(range(10)).map(lambda x: x).collect()
        assert ctx.last_job_metrics.task_count > 0

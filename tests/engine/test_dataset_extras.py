"""Tests for the extended Dataset operations."""

from collections import Counter

import pytest

from repro.engine.dataset import EngineContext


@pytest.fixture
def ctx() -> EngineContext:
    return EngineContext(parallelism=3)


class TestMapPartitionsWithIndex:
    def test_index_passed(self, ctx):
        data = ctx.parallelize(range(9), num_partitions=3)
        tagged = data.map_partitions_with_index(
            lambda index, part: ((index, x) for x in part)
        ).collect()
        indices = {i for i, _ in tagged}
        assert indices == {0, 1, 2}
        assert sorted(x for _, x in tagged) == list(range(9))


class TestSample:
    def test_deterministic(self, ctx):
        data = ctx.parallelize(range(1000), num_partitions=4)
        a = data.sample(0.25, seed=5).collect()
        b = data.sample(0.25, seed=5).collect()
        assert a == b

    def test_fraction_respected(self, ctx):
        data = ctx.parallelize(range(2000), num_partitions=4)
        sampled = data.sample(0.25, seed=0).collect()
        assert 0.18 < len(sampled) / 2000 < 0.32

    def test_edge_fractions(self, ctx):
        data = ctx.parallelize(range(50))
        assert data.sample(0.0).collect() == []
        assert data.sample(1.0).collect() == list(range(50))

    def test_invalid_fraction(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1]).sample(1.5)

    def test_subset_of_source(self, ctx):
        data = ctx.parallelize(range(100), num_partitions=3)
        assert set(data.sample(0.5, seed=1).collect()) <= set(range(100))


class TestZipWithIndex:
    def test_global_indices_contiguous(self, ctx):
        data = ctx.parallelize(list("abcdefghij"), num_partitions=3)
        indexed = data.zip_with_index().collect()
        assert [i for _, i in indexed] == list(range(10))
        assert [x for x, _ in indexed] == list("abcdefghij")

    def test_empty(self, ctx):
        assert ctx.empty().zip_with_index().collect() == []


class TestPersist:
    def test_persist_skips_recompute(self, ctx):
        calls = {"count": 0}

        def spy(x):
            calls["count"] += 1
            return x

        data = ctx.parallelize(range(10)).map(spy).persist()
        assert calls["count"] == 10
        data.collect()
        data.collect()
        assert calls["count"] == 10  # never recomputed

    def test_persist_preserves_data_and_partitioning(self, ctx):
        data = ctx.parallelize(range(20), num_partitions=4).map(
            lambda x: x + 1
        )
        persisted = data.persist()
        assert persisted.num_partitions == 4
        assert persisted.collect() == data.collect()


class TestTakeOrdered:
    def test_smallest(self, ctx):
        data = ctx.parallelize([5, 1, 9, 3, 7, 2], num_partitions=3)
        assert data.take_ordered(3) == [1, 2, 3]

    def test_with_key(self, ctx):
        data = ctx.parallelize(range(100), num_partitions=4)
        assert data.take_ordered(3, key_fn=lambda x: -x) == [99, 98, 97]

    def test_n_larger_than_data(self, ctx):
        data = ctx.parallelize([3, 1, 2])
        assert data.take_ordered(10) == [1, 2, 3]

    def test_negative_n(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1]).take_ordered(-1)

    def test_matches_sorted_reference(self, ctx):
        import numpy as np

        rng = np.random.default_rng(0)
        values = [int(v) for v in rng.integers(0, 1000, 500)]
        data = ctx.parallelize(values, num_partitions=5)
        assert data.take_ordered(20) == sorted(values)[:20]
        assert Counter(data.collect()) == Counter(values)


class TestScanColumns:
    """The column-batch scan source over a columnar table."""

    def make_table(self):
        from repro.storage.schema import Column, Schema
        from repro.storage.table import Table

        table = Table("t", Schema([
            Column("vm", str), Column("value", float),
        ]))
        table.append(
            [{"vm": f"v{i}", "value": float(i)} for i in range(10)], "d"
        )
        return table

    def test_one_batch_per_engine_partition(self, ctx):
        ds = ctx.scan_columns(self.make_table(), partition="d")
        batches = ds.collect()
        assert len(batches) == 3  # ctx.parallelism
        assert sum(len(b) for b in batches) == 10

    def test_column_pruning_passed_through(self, ctx):
        ds = ctx.scan_columns(
            self.make_table(), partition="d", names=["value"],
            num_partitions=2,
        )
        batches = ds.collect()
        assert all(b.names == ("value",) for b in batches)
        values = [v for b in batches for v in b.values("value").tolist()]
        assert values == [float(i) for i in range(10)]

    def test_predicate_pushdown(self, ctx):
        import numpy as np

        ds = ctx.scan_columns(
            self.make_table(), partition="d", names=["vm"],
            predicate=lambda c: np.asarray(c["value"]) >= 8.0,
            num_partitions=1,
        )
        (batch,) = ds.collect()
        assert batch.column("vm").to_pylist() == ["v8", "v9"]

    def test_empty_table_yields_empty_source(self, ctx):
        ds = ctx.scan_columns(self.make_table(), partition="missing")
        assert sum(len(b) for b in ds.collect()) == 0

    def test_batches_compose_with_stages(self, ctx):
        ds = ctx.scan_columns(self.make_table(), partition="d")
        total = (
            ds.map(lambda batch: float(batch.values("value").sum()))
            .reduce(lambda a, b: a + b)
        )
        assert total == sum(range(10))

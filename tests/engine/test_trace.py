"""Tests for the run-tracing layer: spans, attempt records, JSONL."""

import time

import pytest

from repro.engine.chaos import ChaosInjector, FaultRule
from repro.engine.dataset import EngineContext
from repro.engine.executor import LocalExecutor, TaskFailedError
from repro.engine.plan import NarrowNode, SourceNode
from repro.engine.trace import (
    RunTrace,
    TaskAttemptRecord,
    executor_tracing,
    trace_span,
)


def _copy(part):
    return list(part)


def _nap(part):
    time.sleep(0.02)
    return list(part)


def _traced_run(**executor_kwargs):
    trace = RunTrace("t")
    executor = LocalExecutor(max_workers=2, trace=trace, **executor_kwargs)
    node = NarrowNode(SourceNode([[1, 2], [3]]), _copy, "copy")
    result = executor.execute(node)
    return trace, executor, result


class TestSpans:
    def test_spans_nest_under_innermost_open_span(self):
        trace = RunTrace()
        with trace.span("outer", "pipeline") as outer:
            with trace.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert 0.0 <= inner.duration <= outer.duration

    def test_end_span_closes_abandoned_children(self):
        trace = RunTrace()
        outer = trace.begin_span("outer")
        trace.begin_span("leaked")
        trace.end_span(outer)
        assert all(s.ended is not None for s in trace.spans)

    def test_attributes_are_recorded(self):
        trace = RunTrace()
        with trace.span("stage", "node", tasks=3) as span:
            span.attributes["rows_out"] = 7
        assert span.attributes == {"tasks": 3, "rows_out": 7}

    def test_trace_span_helper_is_inert_without_trace(self):
        with trace_span(None, "anything") as span:
            assert span is None

    def test_executor_tracing_scopes_the_attachment(self):
        executor = LocalExecutor()
        trace = RunTrace()
        assert executor.trace is None
        with executor_tracing(executor, trace):
            assert executor.trace is trace
        assert executor.trace is None


class TestCollection:
    def test_every_task_gets_attempt_records(self):
        trace, executor, result = _traced_run()
        assert result == [[1, 2], [3]]
        groups = trace.task_groups()
        metrics = executor.last_job_metrics
        assert len(groups) == metrics.task_count
        assert trace.validate(metrics) == []

    def test_node_span_carries_rows_and_job(self):
        trace, executor, _ = _traced_run()
        (span,) = [s for s in trace.spans if s.kind == "node"]
        assert span.name == "copy"
        assert span.attributes["rows_out"] == 3
        assert span.attributes["job"] == executor.last_job_metrics.job

    def test_job_ids_keep_re_executions_apart(self):
        trace = RunTrace()
        executor = LocalExecutor(max_workers=2, trace=trace)
        node = NarrowNode(SourceNode([[1], [2]]), _copy, "copy")
        executor.execute(node)
        executor.execute(node)
        jobs = {key[0] for key in trace.task_groups()}
        assert len(jobs) == 2
        assert trace.validate(executor.last_job_metrics) == []

    def test_queue_wait_is_reported_for_first_attempts(self):
        trace, _, _ = _traced_run()
        firsts = [r for r in trace.attempts if r.attempt == 1]
        assert firsts and all(r.queue_seconds >= 0.0 for r in firsts)

    def test_retries_and_backoff_are_visible(self):
        chaos = ChaosInjector([FaultRule(kind="crash", attempts=1)])
        trace, executor, _ = _traced_run(chaos=chaos)
        assert trace.validate(executor.last_job_metrics) == []
        failed = [r for r in trace.attempts if r.status == "injected"]
        assert len(failed) == 2                # one per partition
        assert all(r.chaos_kind == "crash" for r in failed)
        assert trace.retry_hot_spots()[0][2] == 1

    def test_failed_job_still_traces_every_attempt(self):
        chaos = ChaosInjector([FaultRule(kind="crash", attempts=2)])
        trace = RunTrace()
        executor = LocalExecutor(max_workers=1, max_task_retries=1,
                                 chaos=chaos, trace=trace)
        node = NarrowNode(SourceNode([[1]]), _copy, "doomed")
        with pytest.raises(TaskFailedError):
            executor.execute(node)
        records = trace.task_groups()[(1, "doomed", 0)]
        assert [r.attempt for r in records] == [1, 2]
        assert all(r.status == "injected" for r in records)
        assert trace.validate() == []

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_chaos_storm_traces_complete_on_both_backends(self, backend):
        chaos = ChaosInjector.storm(seed=5, probability=0.4, delay=0.002)
        trace = RunTrace(backend)
        context = EngineContext(parallelism=2, backend=backend,
                                chaos=chaos, trace=trace)
        result = (context.parallelize(range(20), name="nums")
                  .key_by(abs).group_by_key().collect())
        assert len(result) == 20
        assert trace.validate(context.last_job_metrics) == []
        assert {r.status for r in trace.attempts} > {"ok"}


class TestValidate:
    def test_open_span_is_a_problem(self):
        trace = RunTrace()
        trace.begin_span("leaked")
        assert any("never closed" in p for p in trace.validate())

    def test_negative_duration_is_a_problem(self):
        trace = RunTrace()
        with trace.span("s") as span:
            pass
        span.ended = span.started - 1.0
        assert any("negative duration" in p for p in trace.validate())

    def test_escaping_child_is_a_problem(self):
        trace = RunTrace()
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                pass
        inner.ended = outer.ended + 1.0
        assert any("escapes parent" in p for p in trace.validate())

    def test_non_consecutive_attempts_are_a_problem(self):
        trace, executor, _ = _traced_run()
        record = trace.attempts[0]
        trace.attempts[0] = TaskAttemptRecord(
            node_name=record.node_name, partition=record.partition,
            attempt=7, job=record.job, started=record.started,
            ended=record.ended, run_seconds=record.run_seconds,
        )
        assert any("not consecutive" in p for p in trace.validate())

    def test_unaccounted_gap_is_a_problem(self):
        trace = RunTrace()
        with trace.span("n", "node", job=0):
            pass
        base = trace.spans[0].started
        # A 10s hole between attempts that no backoff explains.
        trace.attempts = [
            TaskAttemptRecord(node_name="n", partition=0, attempt=1,
                              started=base, ended=base + 0.01,
                              run_seconds=0.01, status="error"),
            TaskAttemptRecord(node_name="n", partition=0, attempt=2,
                              started=base + 10.0, ended=base + 10.01,
                              run_seconds=0.01, status="ok"),
        ]
        assert any("account for" in p for p in trace.validate())

    def test_metrics_cross_check_catches_missing_task(self):
        trace, executor, _ = _traced_run()
        trace.attempts = [r for r in trace.attempts if r.partition != 1]
        problems = trace.validate(executor.last_job_metrics)
        assert any("has no records" in p for p in problems)

    def test_metrics_cross_check_catches_seconds_mismatch(self):
        trace, executor, _ = _traced_run()
        executor.last_job_metrics.tasks[0] = (
            executor.last_job_metrics.tasks[0].__class__(
                node_name="copy", partition=0, rows_out=2,
                seconds=99.0, attempts=1,
            )
        )
        problems = trace.validate(executor.last_job_metrics)
        assert any("busy seconds" in p for p in problems)

    def test_assert_complete_raises_with_details(self):
        trace = RunTrace()
        trace.begin_span("leaked")
        with pytest.raises(AssertionError, match="never closed"):
            trace.assert_complete()


class TestSummaryViews:
    def test_stage_seconds_aggregates_node_and_stage_spans(self):
        trace, _, _ = _traced_run()
        with trace.span("write", "stage"):
            pass
        totals = trace.stage_seconds()
        assert set(totals) == {"copy", "write"}
        assert all(v >= 0.0 for v in totals.values())

    def test_critical_path_follows_slowest_chain(self):
        trace = RunTrace()
        with trace.span("root", "pipeline"):
            with trace.span("fast"):
                pass
            with trace.span("slow"):
                time.sleep(0.02)
        path = [s.name for s in trace.critical_path()]
        assert path == ["root", "slow"]

    def test_rows_per_second_uses_node_spans(self):
        trace, _, _ = _traced_run()
        rates = trace.rows_per_second()
        assert set(rates) == {"copy"}
        assert rates["copy"] > 0.0

    def test_summary_mentions_the_headline_numbers(self):
        chaos = ChaosInjector([FaultRule(kind="crash", attempts=1)])
        trace, executor, _ = _traced_run(chaos=chaos)
        text = trace.summary()
        assert "critical path" in text
        assert "slowest stages" in text
        assert "retry hot spots" in text
        assert "copy" in text


class TestJsonlRoundTrip:
    def test_round_trip_preserves_spans_and_attempts(self, tmp_path):
        chaos = ChaosInjector.storm(seed=2, probability=0.5, delay=0.002)
        trace, executor, _ = _traced_run(chaos=chaos)
        path = trace.write_jsonl(tmp_path / "run.jsonl")
        loaded = RunTrace.load(path)
        assert loaded.name == trace.name
        assert len(loaded.spans) == len(trace.spans)
        assert len(loaded.attempts) == len(trace.attempts)
        assert loaded.validate() == []
        # Rebased timestamps: same durations, origin shifted to zero.
        for before, after in zip(trace.spans, loaded.spans):
            assert after.duration == pytest.approx(before.duration, abs=1e-6)
            assert after.attributes == before.attributes
        for before, after in zip(trace.attempts, loaded.attempts):
            assert after.status == before.status
            assert after.run_seconds == pytest.approx(before.run_seconds)
            assert after.chaos_kind == before.chaos_kind

    def test_load_rejects_unknown_line_types(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        target.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="mystery"):
            RunTrace.load(target)

    def test_summary_survives_the_round_trip(self, tmp_path):
        trace, _, _ = _traced_run()
        path = trace.write_jsonl(tmp_path / "run.jsonl")
        assert "critical path" in RunTrace.load(path).summary()

"""Tests for the deterministic executor-level chaos injector.

Covers rule validation and matching, plan determinism, every fault
kind flowing through the executor, and seed-for-seed equivalence of
the thread and process backends.
"""

import pytest

from repro.engine.chaos import (
    FAULT_KINDS,
    ChaosInjector,
    DroppedResult,
    FaultRule,
    InjectedFault,
)
from repro.engine.executor import LocalExecutor, TaskFailedError
from repro.engine.plan import NarrowNode, SourceNode
from repro.engine.retry import RetryPolicy


def _double(part):
    return [x * 2 for x in part]


def _chained_pipeline():
    source = SourceNode([[1, 2], [3, 4], [5], [6, 7, 8]])
    first = NarrowNode(source, _double, "stage_a")
    return NarrowNode(first, _double, "stage_b")


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="explode")

    def test_delay_kind_requires_positive_delay(self):
        with pytest.raises(ValueError):
            FaultRule(kind="delay")
        FaultRule(kind="delay", delay=0.01)  # valid

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError):
            FaultRule(kind="crash", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(kind="crash", probability=-0.1)

    def test_attempts_window(self):
        rule = FaultRule(kind="crash", attempts=2)
        assert rule.matches("n", 0, 1)
        assert rule.matches("n", 0, 2)
        assert not rule.matches("n", 0, 3)

    def test_node_glob_matching(self):
        rule = FaultRule(kind="crash", node="resolve_*")
        assert rule.matches("resolve_periods", 0, 1)
        assert not rule.matches("ingest", 0, 1)

    def test_partition_targeting(self):
        rule = FaultRule(kind="crash", partition=2)
        assert rule.matches("n", 2, 1)
        assert not rule.matches("n", 1, 1)


class TestInjectorPlan:
    def test_plan_is_deterministic(self):
        injector = ChaosInjector.storm(seed=3, probability=0.5)
        decisions = [
            injector.plan("node", part, attempt)
            for part in range(8) for attempt in (1, 2)
        ]
        again = [
            injector.plan("node", part, attempt)
            for part in range(8) for attempt in (1, 2)
        ]
        assert decisions == again

    def test_no_matching_rule_returns_none(self):
        injector = ChaosInjector([FaultRule(kind="crash", node="other")])
        assert injector.plan("node", 0, 1) is None

    def test_delay_rules_accumulate(self):
        injector = ChaosInjector([
            FaultRule(kind="delay", delay=0.01),
            FaultRule(kind="delay", delay=0.02),
        ])
        plan = injector.plan("node", 0, 1)
        assert plan.delay == pytest.approx(0.03)
        assert plan.kind is None

    def test_first_non_delay_rule_wins(self):
        injector = ChaosInjector([
            FaultRule(kind="drop"),
            FaultRule(kind="crash"),
        ])
        assert injector.plan("node", 0, 1).kind == "drop"

    def test_probability_zero_never_fires(self):
        injector = ChaosInjector([FaultRule(kind="crash", probability=0.0)])
        assert all(
            injector.plan("node", part, 1) is None for part in range(32)
        )

    def test_probability_fraction_fires_sometimes(self):
        injector = ChaosInjector([FaultRule(kind="crash", probability=0.5)],
                                 seed=1)
        fired = sum(
            injector.plan("node", part, 1) is not None for part in range(64)
        )
        assert 0 < fired < 64

    def test_different_seeds_differ(self):
        def pattern(seed):
            injector = ChaosInjector(
                [FaultRule(kind="crash", probability=0.5)], seed=seed
            )
            return tuple(
                injector.plan("node", part, 1) is not None
                for part in range(64)
            )

        assert pattern(0) != pattern(1)

    def test_storm_covers_all_kinds(self):
        injector = ChaosInjector.storm(seed=0)
        assert tuple(rule.kind for rule in injector.rules) == FAULT_KINDS

    def test_injector_pickles(self):
        import pickle

        injector = ChaosInjector.storm(seed=5, probability=0.3)
        clone = pickle.loads(pickle.dumps(injector))
        assert clone == injector
        assert [clone.plan("n", p, 1) for p in range(8)] == \
            [injector.plan("n", p, 1) for p in range(8)]


class TestFaultsThroughExecutor:
    def test_crash_is_retried_to_success(self):
        executor = LocalExecutor(
            max_workers=2,
            chaos=ChaosInjector([FaultRule(kind="crash", node="stage_a")]),
        )
        assert executor.execute(_chained_pipeline()) == \
            [[4, 8], [12, 16], [20], [24, 28, 32]]
        metrics = executor.last_job_metrics
        assert metrics.retried_tasks == 4
        assert metrics.retry_attempts == 4
        assert metrics.failed_tasks == 0
        assert all(f.kind == "injected" for f in metrics.failures)

    def test_permanent_crash_exhausts_retries(self):
        executor = LocalExecutor(
            max_workers=2, retry_policy=RetryPolicy(max_retries=1),
            chaos=ChaosInjector(
                [FaultRule(kind="crash", node="stage_b", attempts=99)]
            ),
        )
        with pytest.raises(TaskFailedError) as excinfo:
            executor.execute(_chained_pipeline())
        error = excinfo.value
        assert error.node_name == "stage_b"
        assert error.attempts == 2
        assert error.cause_type == "InjectedFault"
        assert executor.last_job_metrics.failed_tasks >= 1

    def test_drop_loses_result_then_retry_recovers(self):
        executor = LocalExecutor(
            max_workers=2,
            chaos=ChaosInjector([FaultRule(kind="drop", node="stage_b")]),
        )
        assert executor.execute(_chained_pipeline()) == \
            [[4, 8], [12, 16], [20], [24, 28, 32]]
        failures = executor.last_job_metrics.failures
        assert failures and all(f.kind == "dropped" for f in failures)

    def test_permanent_drop_raises_dropped_result(self):
        executor = LocalExecutor(
            max_workers=1, retry_policy=RetryPolicy.none(),
            chaos=ChaosInjector([FaultRule(kind="drop", attempts=99)]),
        )
        node = NarrowNode(SourceNode([[1]]), _double, "only")
        with pytest.raises(TaskFailedError) as excinfo:
            executor.execute(node)
        assert excinfo.value.cause_type == "DroppedResult"
        assert isinstance(excinfo.value.__cause__, DroppedResult)

    def test_duplicate_runs_body_twice(self):
        calls = []

        def recording(part):
            rows = list(part)
            calls.append(rows)
            return rows

        executor = LocalExecutor(
            max_workers=1,
            chaos=ChaosInjector([FaultRule(kind="duplicate")]),
        )
        node = NarrowNode(SourceNode([[1, 2]]), recording, "dup")
        assert executor.execute(node) == [[1, 2]]
        assert calls == [[1, 2], [1, 2]]  # speculative + kept execution
        assert executor.last_job_metrics.failures == []

    def test_delay_slows_the_attempt(self):
        executor = LocalExecutor(
            max_workers=1,
            chaos=ChaosInjector([FaultRule(kind="delay", delay=0.05)]),
        )
        node = NarrowNode(SourceNode([[1]]), _double, "slow")
        assert executor.execute(node) == [[2]]
        task, = executor.last_job_metrics.tasks
        assert task.seconds >= 0.05

    def test_injected_fault_not_visible_without_chaos(self):
        executor = LocalExecutor(max_workers=2)
        assert executor.chaos is None
        executor.execute(_chained_pipeline())
        assert executor.last_job_metrics.failures == []


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_storm_decisions_identical_across_backends(self, seed):
        """The same storm seed produces identical results and the same
        failure multiset on thread and process backends."""
        outcomes = {}
        for backend in ("thread", "process"):
            executor = LocalExecutor(
                max_workers=2, backend=backend,
                chaos=ChaosInjector.storm(seed=seed, probability=0.6,
                                          delay=0.001),
            )
            result = executor.execute(_chained_pipeline())
            failures = sorted(
                (f.node_name, f.partition, f.attempt, f.kind)
                for f in executor.last_job_metrics.failures
            )
            outcomes[backend] = (result, failures)
        assert outcomes["thread"] == outcomes["process"]
        assert outcomes["thread"][0] == [[4, 8], [12, 16], [20], [24, 28, 32]]

"""Tests for the local executor: scheduling, retries, metrics."""

import threading
import time

import pytest

from repro.engine.chaos import ChaosInjector, FaultRule
from repro.engine.dataset import EngineContext
from repro.engine.executor import (
    JobMetrics,
    LocalExecutor,
    TaskFailedError,
    TaskFailure,
    TaskMetrics,
)
from repro.engine.plan import NarrowNode, ShuffleNode, SourceNode
from repro.engine.retry import RetryPolicy
from repro.engine.trace import RunTrace


def _kaput(part):
    raise ValueError("kaput")


def _sleepy(part):
    time.sleep(0.5)
    return list(part)


class TestBasicExecution:
    def test_source_materialization(self):
        executor = LocalExecutor()
        parts = executor.execute(SourceNode([[1, 2], [3]]))
        assert parts == [[1, 2], [3]]

    def test_narrow_runs_per_partition(self):
        executor = LocalExecutor()
        source = SourceNode([[1, 2], [3]])
        node = NarrowNode(source, lambda part: [x * 10 for x in part], "x10")
        assert executor.execute(node) == [[10, 20], [30]]

    def test_shuffle_groups_keys(self):
        executor = LocalExecutor()
        source = SourceNode([[("a", 1), ("b", 2)], [("a", 3)]])
        node = ShuffleNode(source, 3)
        parts = executor.execute(node)
        merged = {}
        for part in parts:
            for key, value in part:
                merged.setdefault(key, []).append(value)
        assert merged == {"a": [1, 3], "b": [2]}
        # All pairs for one key land in one partition.
        for part in parts:
            keys = {k for k, _ in part}
            for key in keys:
                others = [p for p in parts if p is not part and
                          any(k == key for k, _ in p)]
                assert not others

    def test_shuffle_requires_pairs(self):
        executor = LocalExecutor(max_task_retries=0)
        source = SourceNode([[1, 2, 3]])
        node = ShuffleNode(source, 2)
        with pytest.raises(TaskFailedError):
            executor.execute(node)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            LocalExecutor(max_workers=0)


class TestRetries:
    def test_transient_failure_retried(self):
        failures = {"count": 0}

        def injector(name, partition, attempt):
            if name == "flaky" and attempt == 1:
                failures["count"] += 1
                raise RuntimeError("transient")

        executor = LocalExecutor(failure_injector=injector)
        source = SourceNode([[1], [2]])
        node = NarrowNode(source, lambda part: list(part), "flaky")
        assert executor.execute(node) == [[1], [2]]
        assert failures["count"] == 2
        assert executor.last_job_metrics.retried_tasks == 2

    def test_permanent_failure_exhausts_retries(self):
        def injector(name, partition, attempt):
            if name == "doomed":
                raise RuntimeError("permanent")

        executor = LocalExecutor(max_task_retries=1, failure_injector=injector)
        node = NarrowNode(SourceNode([[1]]), lambda part: list(part), "doomed")
        with pytest.raises(TaskFailedError, match="2 attempts"):
            executor.execute(node)

    def test_zero_retries(self):
        def injector(name, partition, attempt):
            raise RuntimeError("fail")

        executor = LocalExecutor(max_task_retries=0, failure_injector=injector)
        node = NarrowNode(SourceNode([[1]]), lambda part: list(part), "boom")
        with pytest.raises(TaskFailedError, match="1 attempts"):
            executor.execute(node)


class TestMetrics:
    def test_task_metrics_recorded(self):
        executor = LocalExecutor()
        source = SourceNode([[1, 2], [3]])
        node = NarrowNode(source, lambda part: list(part), "copy")
        executor.execute(node)
        metrics = executor.last_job_metrics
        copy_tasks = [t for t in metrics.tasks if t.node_name == "copy"]
        assert len(copy_tasks) == 2
        assert sum(t.rows_out for t in copy_tasks) == 3
        assert all(t.seconds >= 0 for t in metrics.tasks)

    def test_metrics_reset_between_jobs(self):
        executor = LocalExecutor()
        node = NarrowNode(SourceNode([[1]]), lambda part: list(part), "copy")
        executor.execute(node)
        first = executor.last_job_metrics.task_count
        executor.execute(node)
        assert executor.last_job_metrics.task_count == first

    def test_by_node_aggregation(self):
        executor = LocalExecutor()
        source = SourceNode([[("a", 1)], [("b", 2)]])
        node = ShuffleNode(source, 2, name="sh")
        executor.execute(node)
        assert "sh.map" in executor.last_job_metrics.by_node()

    def test_seconds_cumulative_across_attempts(self):
        """Regression: a crash-then-succeed task reports the failed
        attempt's runtime too, not just the final attempt's."""
        calls = {"n": 0}

        def crash_then_succeed(part):
            calls["n"] += 1
            time.sleep(0.05)
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return list(part)

        executor = LocalExecutor(max_workers=1)
        node = NarrowNode(SourceNode([[1]]), crash_then_succeed, "flaky")
        assert executor.execute(node) == [[1]]
        (task,) = executor.last_job_metrics.tasks
        assert task.attempts == 2
        # Both ~0.05s attempt bodies must be accounted (the old code
        # reset the timer every attempt and reported only the last).
        assert task.seconds >= 0.09

    def test_backoff_sleep_not_counted_as_busy_time(self):
        calls = {"n": 0}

        def crash_once(part):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return list(part)

        executor = LocalExecutor(
            max_workers=1,
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.1),
        )
        node = NarrowNode(SourceNode([[1]]), crash_once, "flaky")
        assert executor.execute(node) == [[1]]
        (task,) = executor.last_job_metrics.tasks
        assert task.seconds < 0.1   # the 0.1s backoff is idle, not busy

    def test_duplicate_speculation_not_double_counted(self):
        """Regression: a chaos-``duplicate`` speculative run is its own
        attempt record, not part of the kept attempt's busy time."""
        trace = RunTrace()
        chaos = ChaosInjector([FaultRule(kind="duplicate")])
        executor = LocalExecutor(max_workers=1, chaos=chaos, trace=trace)

        def nap(part):
            time.sleep(0.08)
            return list(part)

        node = NarrowNode(SourceNode([[1]]), nap, "dup")
        assert executor.execute(node) == [[1]]
        (task,) = executor.last_job_metrics.tasks
        # The body ran twice (~0.16s total) but only the kept run counts.
        assert 0.08 <= task.seconds < 0.14
        (spec,) = [r for r in trace.attempts if r.speculative]
        assert spec.run_seconds >= 0.08
        assert spec.chaos_kind == "duplicate"
        (kept,) = [r for r in trace.attempts if not r.speculative]
        # The speculative run happens inside the kept attempt's wall
        # interval — visible there, excluded from its run_seconds.
        assert kept.wall_seconds >= 0.16
        assert kept.run_seconds < 0.14
        assert trace.validate(executor.last_job_metrics) == []


class TestFailureAccounting:
    """Satellite: JobMetrics failure counters (retried/failed/timed out)."""

    def test_counters_from_synthetic_failures(self):
        metrics = JobMetrics(
            tasks=[
                TaskMetrics("a", 0, rows_out=1, seconds=0.0, attempts=1),
                TaskMetrics("a", 1, rows_out=1, seconds=0.0, attempts=3),
            ],
            failures=[
                TaskFailure("a", 1, attempt=1, kind="error", error="E"),
                TaskFailure("a", 1, attempt=2, kind="timeout", error="T"),
                TaskFailure("b", 0, attempt=1, kind="timeout", error="T"),
                TaskFailure("b", 0, attempt=2, kind="timeout", error="T",
                            fatal=True),
            ],
        )
        assert metrics.retried_tasks == 1       # only ("a", 1) succeeded late
        assert metrics.retry_attempts == 3      # non-fatal failures
        assert metrics.failed_tasks == 1        # the fatal one
        assert metrics.timed_out_tasks == 2     # distinct (node, partition)

    def test_retried_tasks_counts_tasks_not_attempts(self):
        executor = LocalExecutor(
            max_workers=2, retry_policy=RetryPolicy(max_retries=3),
            chaos=ChaosInjector([FaultRule(kind="crash", attempts=2)]),
        )
        node = NarrowNode(SourceNode([[1], [2]]), lambda p: list(p), "flaky")
        assert executor.execute(node) == [[1], [2]]
        metrics = executor.last_job_metrics
        assert metrics.retried_tasks == 2   # 2 tasks recovered
        assert metrics.retry_attempts == 4  # 2 injected crashes each
        assert metrics.failed_tasks == 0
        assert all(t.attempts == 3 for t in metrics.tasks)

    def test_failed_tasks_counted_on_exhaustion(self):
        executor = LocalExecutor(max_task_retries=1)
        node = NarrowNode(SourceNode([[1]]), _kaput, "doomed")
        with pytest.raises(TaskFailedError):
            executor.execute(node)
        metrics = executor.last_job_metrics
        assert metrics.failed_tasks == 1
        assert metrics.retry_attempts == 1
        assert [f.kind for f in metrics.failures] == ["error", "error"]
        assert [f.fatal for f in metrics.failures] == [False, True]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_timeout_attempts_counted(self, backend):
        executor = LocalExecutor(
            max_workers=1, backend=backend,
            retry_policy=RetryPolicy(max_retries=1, timeout=0.05),
        )
        node = NarrowNode(SourceNode([[1]]), _sleepy, "straggler")
        with pytest.raises(TaskFailedError) as excinfo:
            executor.execute(node)
        assert excinfo.value.cause_type == "TaskTimeoutError"
        metrics = executor.last_job_metrics
        assert metrics.timed_out_tasks == 1
        assert metrics.failed_tasks == 1
        assert all(f.kind == "timeout" for f in metrics.failures)

    def test_timeout_recovers_when_retry_is_fast(self):
        slow_once = {"done": False}

        def sometimes_slow(part):
            if not slow_once["done"]:
                slow_once["done"] = True
                time.sleep(0.5)
            return list(part)

        executor = LocalExecutor(
            max_workers=1, retry_policy=RetryPolicy(max_retries=1,
                                                    timeout=0.1),
        )
        node = NarrowNode(SourceNode([[7]]), sometimes_slow, "warmup")
        assert executor.execute(node) == [[7]]
        metrics = executor.last_job_metrics
        assert metrics.timed_out_tasks == 1
        assert metrics.retried_tasks == 1
        assert metrics.failed_tasks == 0


class TestErrorContext:
    """Satellite: TaskFailedError preserves node, cause, and traceback."""

    def test_thread_backend_chains_original_exception(self):
        executor = LocalExecutor(max_task_retries=1)
        node = NarrowNode(SourceNode([[1]]), _kaput, "exploding_node")
        with pytest.raises(TaskFailedError) as excinfo:
            executor.execute(node)
        error = excinfo.value
        assert error.node_name == "exploding_node"
        assert error.partition == 0
        assert error.attempts == 2
        assert error.cause_type == "ValueError"
        assert error.cause_message == "kaput"
        assert 'raise ValueError("kaput")' in error.cause_traceback
        assert isinstance(error.__cause__, ValueError)
        assert str(error.__cause__) == "kaput"

    def test_process_backend_preserves_traceback_text(self):
        executor = LocalExecutor(max_workers=2, backend="process",
                                 max_task_retries=1)
        node = NarrowNode(SourceNode([[1], [2]]), _kaput, "exploding_node")
        with pytest.raises(TaskFailedError) as excinfo:
            executor.execute(node)
        error = excinfo.value
        assert error.node_name == "exploding_node"
        assert error.attempts == 2
        assert error.cause_type == "ValueError"
        assert error.cause_message == "kaput"
        assert "ValueError: kaput" in error.cause_traceback
        assert 'raise ValueError("kaput")' in error.cause_traceback
        assert "-- original traceback --" in str(error)

    def test_message_names_node_and_attempts(self):
        executor = LocalExecutor(max_task_retries=0)
        node = NarrowNode(SourceNode([[1]]), _kaput, "boom")
        with pytest.raises(TaskFailedError,
                           match="task 'boom' partition 0 failed after "
                                 "1 attempts: ValueError: kaput"):
            executor.execute(node)


class TestConcurrency:
    def test_tasks_actually_run_concurrently(self):
        barrier = threading.Barrier(parties=4, timeout=10.0)

        def wait_at_barrier(part):
            barrier.wait()
            return list(part)

        context = EngineContext(parallelism=4)
        data = context.parallelize(range(8), num_partitions=4)
        result = data.map_partitions(wait_at_barrier).collect()
        assert sorted(result) == list(range(8))

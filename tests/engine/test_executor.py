"""Tests for the local executor: scheduling, retries, metrics."""

import threading

import pytest

from repro.engine.dataset import EngineContext
from repro.engine.executor import LocalExecutor, TaskFailedError
from repro.engine.plan import NarrowNode, ShuffleNode, SourceNode


class TestBasicExecution:
    def test_source_materialization(self):
        executor = LocalExecutor()
        parts = executor.execute(SourceNode([[1, 2], [3]]))
        assert parts == [[1, 2], [3]]

    def test_narrow_runs_per_partition(self):
        executor = LocalExecutor()
        source = SourceNode([[1, 2], [3]])
        node = NarrowNode(source, lambda part: [x * 10 for x in part], "x10")
        assert executor.execute(node) == [[10, 20], [30]]

    def test_shuffle_groups_keys(self):
        executor = LocalExecutor()
        source = SourceNode([[("a", 1), ("b", 2)], [("a", 3)]])
        node = ShuffleNode(source, 3)
        parts = executor.execute(node)
        merged = {}
        for part in parts:
            for key, value in part:
                merged.setdefault(key, []).append(value)
        assert merged == {"a": [1, 3], "b": [2]}
        # All pairs for one key land in one partition.
        for part in parts:
            keys = {k for k, _ in part}
            for key in keys:
                others = [p for p in parts if p is not part and
                          any(k == key for k, _ in p)]
                assert not others

    def test_shuffle_requires_pairs(self):
        executor = LocalExecutor(max_task_retries=0)
        source = SourceNode([[1, 2, 3]])
        node = ShuffleNode(source, 2)
        with pytest.raises(TaskFailedError):
            executor.execute(node)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            LocalExecutor(max_workers=0)


class TestRetries:
    def test_transient_failure_retried(self):
        failures = {"count": 0}

        def injector(name, partition, attempt):
            if name == "flaky" and attempt == 1:
                failures["count"] += 1
                raise RuntimeError("transient")

        executor = LocalExecutor(failure_injector=injector)
        source = SourceNode([[1], [2]])
        node = NarrowNode(source, lambda part: list(part), "flaky")
        assert executor.execute(node) == [[1], [2]]
        assert failures["count"] == 2
        assert executor.last_job_metrics.retried_tasks == 2

    def test_permanent_failure_exhausts_retries(self):
        def injector(name, partition, attempt):
            if name == "doomed":
                raise RuntimeError("permanent")

        executor = LocalExecutor(max_task_retries=1, failure_injector=injector)
        node = NarrowNode(SourceNode([[1]]), lambda part: list(part), "doomed")
        with pytest.raises(TaskFailedError, match="2 attempts"):
            executor.execute(node)

    def test_zero_retries(self):
        def injector(name, partition, attempt):
            raise RuntimeError("fail")

        executor = LocalExecutor(max_task_retries=0, failure_injector=injector)
        node = NarrowNode(SourceNode([[1]]), lambda part: list(part), "boom")
        with pytest.raises(TaskFailedError, match="1 attempts"):
            executor.execute(node)


class TestMetrics:
    def test_task_metrics_recorded(self):
        executor = LocalExecutor()
        source = SourceNode([[1, 2], [3]])
        node = NarrowNode(source, lambda part: list(part), "copy")
        executor.execute(node)
        metrics = executor.last_job_metrics
        copy_tasks = [t for t in metrics.tasks if t.node_name == "copy"]
        assert len(copy_tasks) == 2
        assert sum(t.rows_out for t in copy_tasks) == 3
        assert all(t.seconds >= 0 for t in metrics.tasks)

    def test_metrics_reset_between_jobs(self):
        executor = LocalExecutor()
        node = NarrowNode(SourceNode([[1]]), lambda part: list(part), "copy")
        executor.execute(node)
        first = executor.last_job_metrics.task_count
        executor.execute(node)
        assert executor.last_job_metrics.task_count == first

    def test_by_node_aggregation(self):
        executor = LocalExecutor()
        source = SourceNode([[("a", 1)], [("b", 2)]])
        node = ShuffleNode(source, 2, name="sh")
        executor.execute(node)
        assert "sh.map" in executor.last_job_metrics.by_node()


class TestConcurrency:
    def test_tasks_actually_run_concurrently(self):
        barrier = threading.Barrier(parties=4, timeout=10.0)

        def wait_at_barrier(part):
            barrier.wait()
            return list(part)

        context = EngineContext(parallelism=4)
        data = context.parallelize(range(8), num_partitions=4)
        result = data.map_partitions(wait_at_barrier).collect()
        assert sorted(result) == list(range(8))

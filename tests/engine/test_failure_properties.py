"""Property tests: task failures never corrupt engine results.

The executor retries failed tasks; under any injected transient
failure pattern the final result must equal the failure-free result —
the determinism contract that makes retries safe.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.dataset import Dataset, EngineContext
from repro.engine.executor import LocalExecutor

data_st = st.lists(st.integers(min_value=-100, max_value=100),
                   min_size=1, max_size=40)
failure_pattern_st = st.sets(
    st.tuples(st.integers(min_value=0, max_value=5),
              st.integers(min_value=1, max_value=2)),
    max_size=6,
)


def build_pipeline(ctx: EngineContext, data: list[int]) -> Dataset:
    return (
        ctx.parallelize(data, num_partitions=3)
           .map(lambda x: (x % 5, x))
           .reduce_by_key(lambda a, b: a + b)
    )


class TestFailureDeterminism:
    @given(data_st, failure_pattern_st)
    @settings(max_examples=40, deadline=None)
    def test_transient_failures_do_not_change_results(self, data, pattern):
        """Inject failures on arbitrary (partition, attempt<=2) pairs;
        with retries available, output matches the clean run."""

        def injector(name, partition, attempt):
            if (partition, attempt) in pattern:
                raise RuntimeError("injected")

        clean_ctx = EngineContext(parallelism=2)
        clean = dict(build_pipeline(clean_ctx, data).collect())

        flaky_ctx = EngineContext(
            parallelism=2,
            executor=LocalExecutor(max_workers=2, max_task_retries=3,
                                   failure_injector=injector),
        )
        flaky = dict(build_pipeline(flaky_ctx, data).collect())
        assert flaky == clean

    @given(data_st)
    @settings(max_examples=40, deadline=None)
    def test_first_attempt_always_fails_still_correct(self, data):
        def injector(name, partition, attempt):
            if attempt == 1:
                raise RuntimeError("cold start")

        ctx = EngineContext(
            parallelism=2,
            executor=LocalExecutor(max_workers=2, max_task_retries=2,
                                   failure_injector=injector),
        )
        result = ctx.parallelize(data, num_partitions=4).map(
            lambda x: x * 2
        ).collect()
        assert Counter(result) == Counter(x * 2 for x in data)
        # Every task needed a retry.
        assert ctx.last_job_metrics.retried_tasks == (
            ctx.last_job_metrics.task_count
        )

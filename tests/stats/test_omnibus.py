"""Tests for the omnibus tests (ANOVA, Welch, Kruskal-Wallis)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.omnibus import kruskal_wallis, one_way_anova, welch_anova


def shifted_groups(seed=0, shifts=(0.0, 0.0, 0.0), scale=1.0, n=50):
    rng = np.random.default_rng(seed)
    return [rng.normal(shift, scale, n) for shift in shifts]


class TestOneWayAnova:
    def test_matches_scipy(self):
        groups = shifted_groups(shifts=(0.0, 0.5, 1.0))
        ours = one_way_anova(groups)
        scipy_f, scipy_p = sps.f_oneway(*groups)
        assert ours.statistic == pytest.approx(float(scipy_f))
        assert ours.pvalue == pytest.approx(float(scipy_p))

    def test_detects_separation(self):
        result = one_way_anova(shifted_groups(shifts=(0.0, 3.0, 6.0)))
        assert result.significant(0.05)

    def test_null_not_significant(self):
        result = one_way_anova(shifted_groups(seed=5))
        assert not result.significant(0.01)

    def test_constant_identical_groups(self):
        result = one_way_anova([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0]])
        assert result.pvalue == 1.0

    def test_constant_distinct_groups(self):
        result = one_way_anova([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]])
        assert result.pvalue == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            one_way_anova([[1.0, 2.0]])
        with pytest.raises(ValueError):
            one_way_anova([[1.0], [2.0]])


class TestWelchAnova:
    def test_detects_separation_under_heteroscedasticity(self):
        groups = shifted_groups(shifts=(0.0, 2.0), scale=1.0)
        groups[1] = groups[1] * 3.0  # inflate variance of group 2
        result = welch_anova(groups)
        assert result.significant(0.05)

    def test_null_not_significant(self):
        rng = np.random.default_rng(2)
        groups = [rng.normal(0, 1, 50), rng.normal(0, 5, 80),
                  rng.normal(0, 0.5, 30)]
        result = welch_anova(groups)
        assert not result.significant(0.01)

    def test_two_equal_size_groups_matches_welch_ttest(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(0, 1, 40), rng.normal(1, 3, 40)
        ours = welch_anova([a, b])
        _, p_ttest = sps.ttest_ind(a, b, equal_var=False)
        assert ours.pvalue == pytest.approx(float(p_ttest), rel=1e-6)

    def test_constant_group_degenerate(self):
        result = welch_anova([[1.0, 1.0, 1.0], [2.0, 2.1, 1.9]])
        assert result.pvalue == 0.0

    def test_df_within_reasonable(self):
        groups = shifted_groups(shifts=(0.0, 0.0), n=30)
        result = welch_anova(groups)
        assert 0 < result.df_within <= 58


class TestKruskalWallis:
    def test_matches_scipy(self):
        rng = np.random.default_rng(4)
        groups = [rng.exponential(1.0, 50), rng.exponential(2.0, 60)]
        ours = kruskal_wallis(groups)
        scipy_h, scipy_p = sps.kruskal(*groups)
        assert ours.statistic == pytest.approx(float(scipy_h))
        assert ours.pvalue == pytest.approx(float(scipy_p))

    def test_detects_shift_in_skewed_data(self):
        rng = np.random.default_rng(5)
        groups = [rng.exponential(1.0, 80), rng.exponential(1.0, 80) + 2.0]
        assert kruskal_wallis(groups).significant(0.05)

    def test_all_identical_values(self):
        result = kruskal_wallis([[1.0, 1.0, 1.0], [1.0, 1.0]])
        assert result.pvalue == 1.0

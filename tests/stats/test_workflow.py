"""Tests for the Fig. 10 test-selection workflow."""

import numpy as np
import pytest

from repro.stats.workflow import HypothesisTestWorkflow


def named(groups):
    return {f"g{i}": g for i, g in enumerate(groups)}


class TestBranchSelection:
    def test_normal_homogeneous_uses_anova_and_tukey(self):
        rng = np.random.default_rng(0)
        groups = named([rng.normal(i * 2.0, 1.0, 60) for i in range(3)])
        result = HypothesisTestWorkflow().run(groups)
        assert result.omnibus.test == "one_way_anova"
        assert result.omnibus_significant
        assert result.posthoc_test == "tukey_hsd"
        assert result.pairs

    def test_normal_heteroscedastic_uses_welch_and_games_howell(self):
        rng = np.random.default_rng(1)
        groups = named([
            rng.normal(0.0, 0.2, 100),
            rng.normal(3.0, 4.0, 100),
            rng.normal(0.0, 0.2, 100),
        ])
        result = HypothesisTestWorkflow().run(groups)
        assert result.omnibus.test == "welch_anova"
        assert result.homogeneity is not None
        assert not result.homogeneity.passed
        assert result.posthoc_test == "games_howell"

    def test_non_normal_uses_kruskal_and_dunn(self):
        rng = np.random.default_rng(2)
        groups = named([
            rng.exponential(1.0, 80),
            rng.exponential(1.0, 80) + 3.0,
            rng.exponential(1.0, 80),
        ])
        result = HypothesisTestWorkflow().run(groups)
        assert result.omnibus.test == "kruskal_wallis"
        assert result.homogeneity is None
        assert result.posthoc_test == "dunn"

    def test_posthoc_skipped_when_not_significant(self):
        rng = np.random.default_rng(3)
        groups = named([rng.normal(0.0, 1.0, 50) for _ in range(3)])
        result = HypothesisTestWorkflow(alpha=0.01).run(groups)
        assert not result.omnibus_significant
        assert result.posthoc_test is None
        assert result.pairs == ()

    def test_posthoc_skipped_for_two_groups(self):
        rng = np.random.default_rng(4)
        groups = named([rng.normal(0.0, 1.0, 50),
                        rng.normal(5.0, 1.0, 50)])
        result = HypothesisTestWorkflow().run(groups)
        assert result.omnibus_significant
        assert result.posthoc_test is None

    def test_significant_pairs_labelled_with_names(self):
        rng = np.random.default_rng(5)
        groups = {
            "A": rng.normal(0.40, 0.05, 60),
            "B": rng.normal(0.08, 0.05, 60),
            "C": rng.normal(0.42, 0.05, 60),
        }
        result = HypothesisTestWorkflow().run(groups)
        # B differs from both A and C for sure; A-C (0.40 vs 0.42) is
        # borderline — the paper's own Table V finds it significant at
        # p = 0.03, so either outcome is acceptable here.
        assert {("A", "B"), ("B", "C")} <= set(result.significant_pairs)

    def test_validation(self):
        with pytest.raises(ValueError):
            HypothesisTestWorkflow(alpha=0.0)
        with pytest.raises(ValueError):
            HypothesisTestWorkflow().run({"only": [1.0, 2.0, 3.0]})

"""Property-based tests on the statistical test implementations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.omnibus import kruskal_wallis, one_way_anova, welch_anova
from repro.stats.posthoc import dunn, games_howell, tukey_hsd

group_st = st.lists(
    st.floats(min_value=-100.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=5, max_size=30,
)
groups_st = st.lists(group_st, min_size=2, max_size=4)
shift_st = st.floats(min_value=-50.0, max_value=50.0,
                     allow_nan=False, allow_infinity=False)


class TestOmnibusProperties:
    @given(groups_st)
    @settings(max_examples=60, deadline=None)
    def test_pvalues_in_unit_interval(self, groups):
        for test in (one_way_anova, welch_anova, kruskal_wallis):
            result = test(groups)
            assert 0.0 <= result.pvalue <= 1.0
            assert result.statistic >= 0.0 or result.statistic == float("inf")

    @given(groups_st, shift_st)
    @settings(max_examples=60, deadline=None)
    def test_anova_invariant_under_common_shift(self, groups, shift):
        """Adding the same constant to every observation changes
        nothing — the F statistic depends only on relative structure."""
        base = one_way_anova(groups)
        shifted = one_way_anova([[x + shift for x in g] for g in groups])
        assert np.isclose(base.pvalue, shifted.pvalue, atol=1e-9)

    @given(groups_st)
    @settings(max_examples=60, deadline=None)
    def test_anova_invariant_under_group_order(self, groups):
        base = one_way_anova(groups)
        reordered = one_way_anova(list(reversed(groups)))
        assert np.isclose(base.pvalue, reordered.pvalue, atol=1e-9)

    @given(group_st)
    @settings(max_examples=60, deadline=None)
    def test_identical_groups_never_significant(self, group):
        result = one_way_anova([list(group), list(group)])
        assert result.pvalue > 0.99 or np.isnan(result.statistic) is False
        assert not result.significant(0.05)

    # Scale up only (powers of two): scaling down can underflow
    # subnormal inputs to zero and create new ties.
    @given(groups_st, st.sampled_from([2.0, 4.0, 8.0]))
    @settings(max_examples=60, deadline=None)
    def test_kruskal_invariant_under_monotone_scaling(self, groups, scale):
        """Rank-based tests only see order, so positive scaling is a
        no-op (power-of-two scales keep float comparisons exact)."""
        base = kruskal_wallis(groups)
        scaled = kruskal_wallis([[x * scale for x in g] for g in groups])
        assert np.isclose(base.pvalue, scaled.pvalue, atol=1e-9)


class TestPosthocProperties:
    @given(groups_st)
    @settings(max_examples=40, deadline=None)
    def test_pair_count_and_pvalues(self, groups):
        k = len(groups)
        expected_pairs = k * (k - 1) // 2
        for test in (tukey_hsd, games_howell, dunn):
            results = test(groups)
            assert len(results) == expected_pairs
            for pair in results:
                assert 0.0 <= pair.pvalue <= 1.0
                assert pair.group_a < pair.group_b

    @given(groups_st)
    @settings(max_examples=40, deadline=None)
    def test_dunn_adjustment_only_raises_pvalues(self, groups):
        raw = dunn(groups, adjust="none")
        for method in ("holm", "bonferroni"):
            adjusted = dunn(groups, adjust=method)
            for r, a in zip(raw, adjusted):
                assert a.pvalue >= r.pvalue - 1e-12

    @given(group_st, shift_st)
    @settings(max_examples=40, deadline=None)
    def test_tukey_symmetric_in_group_swap(self, group, shift):
        a = list(group)
        b = [x + shift for x in group]
        first = tukey_hsd([a, b])[0]
        second = tukey_hsd([b, a])[0]
        assert np.isclose(first.pvalue, second.pvalue, atol=1e-9)

"""Tests for A/B sample-size and power analysis."""

import numpy as np
import pytest

from repro.stats.power import (
    achieved_power,
    detectable_difference,
    plan_experiment,
    required_sample_size,
)


class TestRequiredSampleSize:
    def test_textbook_value(self):
        # d = delta/sigma = 0.5, alpha 0.05 two-sided, power 0.8:
        # classic answer ~64 per arm.
        n = required_sample_size(0.5, 1.0)
        assert 62 <= n <= 66

    def test_smaller_effect_needs_more_samples(self):
        assert required_sample_size(0.1, 1.0) > required_sample_size(0.5, 1.0)

    def test_higher_power_needs_more_samples(self):
        assert (
            required_sample_size(0.5, 1.0, power=0.95)
            > required_sample_size(0.5, 1.0, power=0.8)
        )

    def test_one_sided_needs_fewer(self):
        assert (
            required_sample_size(0.5, 1.0, two_sided=False)
            < required_sample_size(0.5, 1.0, two_sided=True)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            required_sample_size(0.0, 1.0)
        with pytest.raises(ValueError):
            required_sample_size(0.5, 0.0)
        with pytest.raises(ValueError):
            required_sample_size(0.5, 1.0, alpha=1.5)
        with pytest.raises(ValueError):
            required_sample_size(0.5, 1.0, power=0.0)


class TestRoundTrips:
    def test_detectable_difference_inverts_sample_size(self):
        n = required_sample_size(0.2, 1.0)
        delta = detectable_difference(n, 1.0)
        assert delta <= 0.2 + 0.01  # ceil() only helps

    def test_achieved_power_at_planned_n(self):
        n = required_sample_size(0.3, 1.0, power=0.8)
        assert achieved_power(n, 0.3, 1.0) >= 0.8 - 1e-6

    def test_power_monotone_in_n(self):
        assert achieved_power(200, 0.2, 1.0) > achieved_power(50, 0.2, 1.0)

    def test_zero_delta_power_is_alpha_half(self):
        # With no true difference, "power" collapses to the one-tail
        # false positive rate.
        assert achieved_power(100, 0.0, 1.0, alpha=0.05) == pytest.approx(
            0.025, abs=1e-3
        )

    def test_empirical_power_matches_prediction(self):
        """Monte-Carlo check: the z-approximation predicts reality."""
        rng = np.random.default_rng(0)
        n = required_sample_size(0.5, 1.0, power=0.8)
        from scipy import stats as sps

        rejections = 0
        trials = 400
        for _ in range(trials):
            a = rng.normal(0.0, 1.0, n)
            b = rng.normal(0.5, 1.0, n)
            _, p = sps.ttest_ind(a, b)
            if p < 0.05:
                rejections += 1
        assert rejections / trials == pytest.approx(0.8, abs=0.08)


class TestPlanExperiment:
    def test_case8_shape_implies_months(self):
        """Three arms, sigma ~0.1, smallest interesting gap 0.02
        (the paper's A-C difference): detecting it takes months at a
        modest hit rate — consistent with the paper's 3-month run."""
        plan = plan_experiment(arms=3, hits_per_day=15, sigma=0.10,
                               target_delta=0.02)
        assert plan.days >= 60
        assert plan.per_arm_n >= required_sample_size(0.02, 0.10) - 1

    def test_big_effects_resolve_quickly(self):
        plan = plan_experiment(arms=2, hits_per_day=100, sigma=0.10,
                               target_delta=0.30)
        assert plan.days <= 2

    def test_detectable_delta_consistent(self):
        plan = plan_experiment(arms=3, hits_per_day=30, sigma=0.1,
                               target_delta=0.05)
        assert plan.detectable_delta <= 0.05 + 0.005

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_experiment(arms=1, hits_per_day=10, sigma=0.1,
                            target_delta=0.1)
        with pytest.raises(ValueError):
            plan_experiment(arms=2, hits_per_day=0.0, sigma=0.1,
                            target_delta=0.1)

"""Tests for normality and homogeneity checks."""

import numpy as np
import pytest

from repro.stats.assumptions import (
    all_normal,
    levene_homogeneity,
    shapiro_normality,
)


def normal_groups(seed=0, scale=(1.0, 1.0, 1.0), n=60):
    rng = np.random.default_rng(seed)
    return [rng.normal(0.0, s, n) for s in scale]


class TestShapiro:
    def test_normal_data_passes(self):
        results = shapiro_normality(normal_groups())
        assert all(r.passed for r in results)
        assert all_normal(normal_groups())

    def test_exponential_data_fails(self):
        rng = np.random.default_rng(1)
        groups = [rng.exponential(1.0, 100) for _ in range(2)]
        results = shapiro_normality(groups)
        assert not any(r.passed for r in results)
        assert not all_normal(groups)

    def test_constant_group_reported_non_normal(self):
        groups = [np.ones(20), np.random.default_rng(0).normal(0, 1, 20)]
        results = shapiro_normality(groups)
        assert not results[0].passed
        assert results[0].pvalue == 0.0

    def test_too_few_groups_rejected(self):
        with pytest.raises(ValueError):
            shapiro_normality([[1.0, 2.0, 3.0]])

    def test_tiny_group_rejected(self):
        with pytest.raises(ValueError):
            shapiro_normality([[1.0, 2.0], [1.0, 2.0, 3.0]])


class TestLevene:
    def test_equal_variances_pass(self):
        result = levene_homogeneity(normal_groups(scale=(1.0, 1.0, 1.0)))
        assert result.passed

    def test_unequal_variances_fail(self):
        result = levene_homogeneity(
            normal_groups(scale=(1.0, 10.0, 1.0), n=200)
        )
        assert not result.passed

    def test_all_constant_groups_trivially_pass(self):
        result = levene_homogeneity([np.ones(10), np.full(10, 2.0)])
        assert result.passed
        assert result.pvalue == 1.0

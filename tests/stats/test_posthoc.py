"""Tests for post-hoc pairwise comparisons."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.posthoc import dunn, games_howell, tukey_hsd, tukey_kramer


def groups_with_outlier_mean(seed=0, n=40):
    """Groups A and C similar, B clearly shifted."""
    rng = np.random.default_rng(seed)
    return [
        rng.normal(0.40, 0.05, n),
        rng.normal(0.08, 0.05, n),
        rng.normal(0.42, 0.05, n),
    ]


class TestTukeyHsd:
    def test_identifies_only_true_differences(self):
        groups = groups_with_outlier_mean()
        results = {(r.group_a, r.group_b): r for r in tukey_hsd(groups)}
        assert results[(0, 1)].significant(0.05)
        assert results[(1, 2)].significant(0.05)
        assert not results[(0, 2)].significant(0.05)

    def test_matches_scipy_tukey(self):
        groups = groups_with_outlier_mean(seed=1)
        ours = tukey_hsd(groups)
        scipy_result = sps.tukey_hsd(*groups)
        for r in ours:
            assert r.pvalue == pytest.approx(
                float(scipy_result.pvalue[r.group_a, r.group_b]), abs=1e-6
            )

    def test_kramer_handles_unequal_sizes(self):
        rng = np.random.default_rng(2)
        groups = [rng.normal(0, 1, 20), rng.normal(4, 1, 55),
                  rng.normal(0, 1, 33)]
        results = {(r.group_a, r.group_b): r for r in tukey_kramer(groups)}
        assert results[(0, 1)].significant(0.05)
        assert not results[(0, 2)].significant(0.05)

    def test_all_pairs_returned(self):
        groups = groups_with_outlier_mean()
        assert len(tukey_hsd(groups)) == 3

    def test_constant_groups(self):
        results = tukey_hsd([[1.0, 1.0], [2.0, 2.0]])
        assert results[0].pvalue == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            tukey_hsd([[1.0, 2.0]])


class TestGamesHowell:
    def test_heteroscedastic_difference_found(self):
        rng = np.random.default_rng(3)
        groups = [rng.normal(0, 0.1, 40), rng.normal(2, 3.0, 40),
                  rng.normal(0, 0.1, 40)]
        results = {(r.group_a, r.group_b): r for r in games_howell(groups)}
        assert results[(0, 1)].significant(0.05)
        assert not results[(0, 2)].significant(0.05)

    def test_null_no_findings(self):
        rng = np.random.default_rng(4)
        groups = [rng.normal(0, 1, 60) for _ in range(3)]
        assert not any(r.significant(0.01) for r in games_howell(groups))

    def test_zero_variance_pair(self):
        results = games_howell([[1.0, 1.0, 1.0], [5.0, 5.0, 5.0]])
        assert results[0].pvalue == 0.0


class TestDunn:
    def test_skewed_difference_found(self):
        rng = np.random.default_rng(5)
        groups = [rng.exponential(1.0, 60), rng.exponential(1.0, 60) + 3.0,
                  rng.exponential(1.0, 60)]
        results = {(r.group_a, r.group_b): r for r in dunn(groups)}
        assert results[(0, 1)].significant(0.05)
        assert results[(1, 2)].significant(0.05)
        assert not results[(0, 2)].significant(0.05)

    def test_adjustment_orders(self):
        rng = np.random.default_rng(6)
        groups = [rng.normal(i * 0.5, 1, 40) for i in range(3)]
        raw = {(r.group_a, r.group_b): r.pvalue
               for r in dunn(groups, adjust="none")}
        bonf = {(r.group_a, r.group_b): r.pvalue
                for r in dunn(groups, adjust="bonferroni")}
        holm = {(r.group_a, r.group_b): r.pvalue
                for r in dunn(groups, adjust="holm")}
        for pair in raw:
            assert raw[pair] <= holm[pair] + 1e-12
            assert holm[pair] <= bonf[pair] + 1e-12

    def test_holm_monotone_in_raw_order(self):
        rng = np.random.default_rng(7)
        groups = [rng.normal(i, 1, 30) for i in range(4)]
        raw = dunn(groups, adjust="none")
        holm = dunn(groups, adjust="holm")
        order_raw = sorted(range(len(raw)), key=lambda i: raw[i].pvalue)
        holm_sorted = [holm[i].pvalue for i in order_raw]
        assert holm_sorted == sorted(holm_sorted)

    def test_tied_data_does_not_crash(self):
        groups = [[1.0, 1.0, 2.0, 2.0], [1.0, 2.0, 2.0, 2.0],
                  [5.0, 5.0, 6.0, 6.0]]
        results = dunn(groups)
        assert len(results) == 3

    def test_unknown_adjustment_rejected(self):
        with pytest.raises(ValueError):
            dunn([[1.0, 2.0], [3.0, 4.0]], adjust="fdr")

"""Shared event-stream generators for the whole test suite.

One place for every synthetic fleet-day: the seeded random generator
(previously copy-pasted into the fault-tolerance, out-of-core, and
fastpath suites), the topology-aware fault-injector day source
(previously in the serving conftest), and the hypothesis strategies
behind the streaming differential harness.

The hypothesis side generates :class:`StreamCase` values: a fleet day
of adversarially shaped events (shuffled, duplicated, null-duration,
unknown-name, boundary-straddling ``*_add``/``*_del`` pairs, orphan
``*_del``), an out-of-order *arrival* order whose per-record lag is
bounded strictly below the case's allowed lateness, and tick
boundaries splitting the arrivals.  The lag bound is the equivalence
precondition: when every record arrives less than ``lateness`` after
a newer-timestamped record, the tailer's watermark can never pass an
unseen record, so nothing is dropped and the admitted set equals the
full event set — which is what lets the differential tests demand
*byte* identity against a batch run over all the events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from hypothesis import strategies as st

from repro.core.events import Event, Severity
from repro.core.indicator import ServicePeriod

DAY = 86400.0

#: Stateless names drawn by the generators.  ``nic_flap`` is *not* in
#: the default catalog — deliberately, so unknown-name handling (count
#: the row, produce no intervals) stays covered everywhere.
STATELESS_NAMES = ["vm_down", "slow_io", "vm_start_failed", "nic_flap"]

#: Known stateless names only (every one resolves to intervals).
KNOWN_STATELESS_NAMES = ["vm_down", "slow_io", "vm_start_failed"]

LEVELS = [Severity.WARNING, Severity.CRITICAL, Severity.FATAL]


def vm_name(index: int) -> str:
    """Canonical synthetic VM id (``vm-000`` style, sorts by index)."""
    return f"vm-{index:03d}"


def make_services(vm_count: int = 24, *,
                  day: float = DAY) -> dict[str, ServicePeriod]:
    """Full-day service periods for a ``vm_count``-VM fleet."""
    return {
        vm_name(index): ServicePeriod(0.0, day)
        for index in range(vm_count)
    }


def make_fleet_events(seed: int | random.Random, vm_count: int = 24,
                      events_per_vm: int = 3, *,
                      null_durations: bool = True, stateful: bool = True,
                      day: float = DAY) -> list[Event]:
    """Random fleet day with stateless, null-duration, and stateful
    events — the one seeded generator behind the fault-tolerance,
    out-of-core, fastpath, and streaming suites.

    ``seed`` may be an int or an already-seeded ``random.Random``.
    Each VM gets up to ``events_per_vm`` stateless events (30% with no
    explicit duration when ``null_durations``, falling back to the
    catalog window) and, when ``stateful``, a 50% chance of a
    ``ddos_blackhole_add`` — 30% of which stay open to exercise the
    horizon clip.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    events = []
    for index in range(vm_count):
        vm = vm_name(index)
        for _ in range(rng.randrange(events_per_vm + 1)):
            attributes = (
                {} if null_durations and rng.random() < 0.3
                else {"duration": rng.uniform(60.0, 7200.0)}
            )
            events.append(Event(
                name=rng.choice(STATELESS_NAMES),
                time=rng.uniform(0.0, day),
                target=vm, expire_interval=600.0,
                level=rng.choice(LEVELS), attributes=attributes,
            ))
        if stateful and rng.random() < 0.5:
            start = rng.uniform(0.0, day / 2)
            events.append(Event(
                name="ddos_blackhole_add", time=start, target=vm,
                expire_interval=3600.0, level=Severity.FATAL,
            ))
            if rng.random() < 0.7:  # some periods stay open → horizon
                events.append(Event(
                    name="ddos_blackhole_del",
                    time=start + rng.uniform(60.0, 7200.0), target=vm,
                    expire_interval=3600.0, level=Severity.FATAL,
                ))
    return events


def events_factory(vm_ids, catalog, seed):
    """Deterministic per-day event source (mirrors the CLI's dataset).

    The serving suite's day source: baseline fault-injector samples
    turned into catalog-typed events with measured durations.
    """
    from repro.scenarios.common import fault_to_period
    from repro.telemetry.faults import FaultInjector, baseline_rates

    def events_for_day(index: int, partition: str) -> list[Event]:
        injector = FaultInjector(baseline_rates(scale=20.0),
                                 seed=seed * 1000 + index)
        events = []
        for fault in injector.sample(vm_ids, 0.0, DAY):
            period = fault_to_period(fault, catalog)
            events.append(Event(
                name=period.name, time=period.end, target=period.target,
                expire_interval=600.0, level=period.level,
                attributes={"duration": period.duration},
            ))
        return events

    return events_for_day


@dataclass(frozen=True)
class StreamCase:
    """One adversarial streaming scenario: events, arrivals, ticks.

    ``arrival`` is the order records hit the log store (bounded-lag
    shuffle of ``events`` plus drawn duplicates); ``tick_sizes``
    partitions the arrivals into per-tick append batches (sizes sum to
    ``len(arrival)``); ``lateness`` is the tailer's allowed lateness,
    strictly greater than every arrival's lag so nothing is dropped.
    """

    vm_count: int
    lateness: float
    events: tuple[Event, ...]
    arrival: tuple[Event, ...]
    tick_sizes: tuple[int, ...]

    def services(self, *, day: float = DAY) -> dict[str, ServicePeriod]:
        """Service periods for the case's fleet."""
        return make_services(self.vm_count, day=day)

    def oracle_events(self) -> list[Event]:
        """Arrivals reordered to ``(time, arrival index)`` — exactly
        the order the tailer releases (and the state applies) them, so
        a batch job ingesting this list is the from-scratch oracle."""
        indexed = sorted(
            enumerate(self.arrival), key=lambda pair: (pair[1].time, pair[0])
        )
        return [event for _, event in indexed]

    def chunks(self) -> list[tuple[Event, ...]]:
        """The arrivals split into per-tick batches."""
        out = []
        offset = 0
        for size in self.tick_sizes:
            out.append(self.arrival[offset:offset + size])
            offset += size
        return out


@st.composite
def stream_events(draw, vm_count: int, max_events: int = 30,
                  day: float = DAY) -> list[Event]:
    """A fleet day biased toward resolution edge cases.

    Mixes known/unknown stateless names, null and boundary-straddling
    durations (an explicit duration larger than the timestamp starts
    the interval before the service period), stateful pairs whose
    ``*_del`` may straddle the day end or be missing entirely, and
    orphan ``*_del`` rows with no opening ``*_add``.
    """
    times = st.floats(min_value=0.0, max_value=day, allow_nan=False,
                      allow_infinity=False)
    vm_index = st.integers(min_value=0, max_value=vm_count - 1)
    events: list[Event] = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_events))):
        vm = vm_name(draw(vm_index))
        time = draw(times)
        kind = draw(st.sampled_from(
            ["stateless", "stateless", "stateless", "unknown",
             "pair", "open_add", "orphan_del"]
        ))
        if kind in ("stateless", "unknown"):
            name = (
                draw(st.sampled_from(KNOWN_STATELESS_NAMES))
                if kind == "stateless" else "nic_flap"
            )
            duration = draw(st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=2 * day,
                          allow_nan=False, allow_infinity=False),
            ))
            attributes = {} if duration is None else {"duration": duration}
            events.append(Event(
                name=name, time=time, target=vm, expire_interval=600.0,
                level=draw(st.sampled_from(list(Severity))),
                attributes=attributes,
            ))
        elif kind == "orphan_del":
            events.append(Event(
                name="ddos_blackhole_del", time=time, target=vm,
                expire_interval=3600.0, level=Severity.FATAL,
            ))
        else:
            events.append(Event(
                name="ddos_blackhole_add", time=time, target=vm,
                expire_interval=3600.0, level=Severity.FATAL,
            ))
            if kind == "pair":
                # The close may land past the day end (horizon clip).
                delta = draw(st.floats(min_value=0.0, max_value=day,
                                       allow_nan=False,
                                       allow_infinity=False))
                events.append(Event(
                    name="ddos_blackhole_del", time=time + delta,
                    target=vm, expire_interval=3600.0,
                    level=Severity.FATAL,
                ))
    return events


@st.composite
def stream_cases(draw, max_vms: int = 6, max_events: int = 30,
                 max_ticks: int = 5, day: float = DAY) -> StreamCase:
    """Adversarial :class:`StreamCase` values (see the module doc).

    Arrival order sorts events by ``time + lag`` with per-record lag
    drawn from ``[0, 0.9 * lateness)``; duplicated events re-enter the
    draw as independent arrivals.  The lag bound guarantees the
    watermark never drops a record, making full-stream byte identity a
    fair demand.
    """
    vm_count = draw(st.integers(min_value=1, max_value=max_vms))
    lateness = draw(st.sampled_from([600.0, 3600.0, 14400.0]))
    events = draw(stream_events(vm_count, max_events=max_events, day=day))
    arrivals = list(events)
    if events:
        # Duplicates: the same event delivered more than once counts
        # twice on both sides (the stream has no dedup contract).
        for index in draw(st.lists(
            st.integers(min_value=0, max_value=len(events) - 1),
            max_size=4,
        )):
            arrivals.append(events[index])
    lags = [
        draw(st.floats(min_value=0.0, max_value=0.9 * lateness,
                       allow_nan=False, allow_infinity=False,
                       exclude_max=True))
        for _ in arrivals
    ]
    order = sorted(
        range(len(arrivals)),
        key=lambda index: (arrivals[index].time + lags[index], index),
    )
    arrival = tuple(arrivals[index] for index in order)
    tick_count = draw(st.integers(min_value=1, max_value=max_ticks))
    bounds = sorted(
        draw(st.integers(min_value=0, max_value=len(arrival)))
        for _ in range(tick_count - 1)
    )
    edges = [0, *bounds, len(arrival)]
    tick_sizes = tuple(
        edges[i + 1] - edges[i] for i in range(len(edges) - 1)
    )
    return StreamCase(
        vm_count=vm_count, lateness=lateness, events=tuple(events),
        arrival=arrival, tick_sizes=tick_sizes,
    )

"""Tests for the naive-Bayes ticket classifier."""

import pytest

from repro.core.events import EventCategory
from repro.telemetry.tickets import TicketGenerator
from repro.tickets.classifier import (
    NaiveBayesTicketClassifier,
    tokenize,
    train_default_classifier,
)


class TestTokenize:
    def test_lowercase_alpha_tokens(self):
        assert tokenize("API latency INCREASED! on vm-42") == [
            "api", "latency", "increased", "on", "vm",
        ]

    def test_empty(self):
        assert tokenize("12345 !!!") == []


class TestClassifier:
    def test_fit_predict_separable(self):
        docs = ["server crashed down", "server crashed offline",
                "slow latency degraded", "slow throughput degraded"]
        labels = [EventCategory.UNAVAILABILITY, EventCategory.UNAVAILABILITY,
                  EventCategory.PERFORMANCE, EventCategory.PERFORMANCE]
        clf = NaiveBayesTicketClassifier().fit(docs, labels)
        assert clf.predict_one("machine crashed").category is (
            EventCategory.UNAVAILABILITY
        )
        assert clf.predict_one("very slow latency").category is (
            EventCategory.PERFORMANCE
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NaiveBayesTicketClassifier().predict_one("x")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            NaiveBayesTicketClassifier().fit(["a"], [])

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            NaiveBayesTicketClassifier().fit([], [])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            NaiveBayesTicketClassifier(alpha=0.0)

    def test_unknown_words_fall_back_to_prior(self):
        docs = ["down"] * 3 + ["slow"]
        labels = [EventCategory.UNAVAILABILITY] * 3 + [EventCategory.PERFORMANCE]
        clf = NaiveBayesTicketClassifier().fit(docs, labels)
        # Text with only unseen words: prior dominates (3:1 unavailability).
        assert clf.predict_one("zzz qqq").category is EventCategory.UNAVAILABILITY

    def test_log_scores_cover_all_classes(self):
        clf = train_default_classifier(samples_per_category=50)
        prediction = clf.predict_one("instance crashed")
        assert set(prediction.log_scores) == set(EventCategory)

    def test_accuracy_on_held_out_tickets(self):
        clf = train_default_classifier(seed=7, samples_per_category=200)
        holdout = TicketGenerator(seed=99).generate(600, targets=["vm-1"])
        accuracy = clf.accuracy([t.text for t in holdout],
                                [t.category for t in holdout])
        assert accuracy > 0.9

    def test_accuracy_empty_rejected(self):
        clf = train_default_classifier(samples_per_category=10)
        with pytest.raises(ValueError):
            clf.accuracy([], [])

"""Answer paper Example 4 with the serving layer's QueryService.

Example 4 of the paper computes the fleet-level CDI as the
service-time-weighted mean of per-VM CDIs (Formula 4).  This example
backfills the daily CDI job over a small synthetic fleet, then answers
the question through :class:`repro.serving.QueryService` — the cached
query path — and checks the weighted-mean identity by hand from the
service's own per-VM point lookups.

Run with::

    python examples/query_fleet_cdi.py
"""

from repro.core.events import Event, default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.backfill import run_days
from repro.pipeline.daily import DailyCdiJob
from repro.scenarios.common import default_weights, fault_to_period
from repro.serving import QueryService
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.faults import FaultInjector, baseline_rates
from repro.telemetry.topology import build_fleet

DAY = 86400.0
DAYS = 3


def main() -> None:
    # One small topology-aware fleet, three days of injected faults,
    # and the daily job backfilled over every partition.
    catalog = default_catalog()
    fleet = build_fleet(seed=4, regions=2, azs_per_region=2,
                        clusters_per_az=1, ncs_per_cluster=2, vms_per_nc=2)
    vm_ids = sorted(fleet.vms)
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}

    def events_for_day(index, partition):
        injector = FaultInjector(baseline_rates(scale=20.0), seed=40 + index)
        events = []
        for fault in injector.sample(vm_ids, 0.0, DAY):
            period = fault_to_period(fault, catalog)
            events.append(Event(
                name=period.name, time=period.end, target=period.target,
                expire_interval=600.0, level=period.level,
                attributes={"duration": period.duration},
            ))
        return events

    job = DailyCdiJob(EngineContext(parallelism=4), TableStore(),
                      ConfigDB(), catalog)
    job.store_weights(default_weights())
    run_days(job, events_for_day, services, DAYS)

    # The serving layer: typed queries over the output tables.
    service = QueryService(job.tables, resolver=fleet.dimensions_of)
    day = service.days()[-1]
    report = service.fleet(day)
    print(f"fleet of {service.vm_count(day)} VMs, day {day}")
    print(f"  CDI-U {report.unavailability:.6f}   "
          f"CDI-P {report.performance:.6f}   "
          f"CDI-C {report.control_plane:.6f}")

    # Example 4 by hand: Formula 4 is the service-time-weighted mean
    # of the per-VM CDIs.  Rebuild it from per-VM point lookups and
    # compare with the fleet query's answer.
    weighted = 0.0
    total_time = 0.0
    for vm in vm_ids:
        row = service.vm_report(day, vm)
        weighted += row["service_time"] * row["performance"]
        total_time += row["service_time"]
    print(f"  Example 4 check: sum(t_i * cdi_i)/sum(t_i) = "
          f"{weighted / total_time:.6f} "
          f"(fleet query said {report.performance:.6f})")

    # The same weighted mean, sliced by region (the BI drill-down).
    print("by region:")
    for region, regional in service.group_by(day, "region").items():
        print(f"  {region}: CDI-P {regional.performance:.6f} over "
              f"{regional.service_time / DAY:.0f} VM-days")

    # And over time (the FY-trend view of Section VI).
    print("CDI-P trend:")
    for trend_day, value in service.trend("performance"):
        print(f"  {trend_day}: {value:.6f}")

    stats = service.cache_stats
    print(f"cache: {stats.hits} hits / {stats.misses} misses "
          f"({stats.hit_rate:.0%} hit rate)")


if __name__ == "__main__":
    main()

"""The operation-rule lifecycle: mine → review → A/B-validate.

Walks the full governance loop around operation rules
(paper Sections II-D, II-F2, VI-D):

1. **Mine** — FP-growth over event co-occurrences proposes candidate
   associations;
2. **Review** — coverage analysis finds events no rule reacts to, and
   complaint correlation shows which gaps actually hurt customers;
3. **Validate** — a new rule's action is A/B-tested against a null
   (do-nothing) arm to confirm the rule is worth keeping.

Run with::

    python examples/rule_lifecycle.py
"""

import numpy as np

from repro.abtest.effectiveness import (
    evaluate_rule_effectiveness,
    is_rule_effective,
)
from repro.abtest.experiment import AbExperiment, Variant
from repro.cloudbot.review import (
    complaint_gaps,
    coverage_report,
    propose_rules,
)
from repro.cloudbot.rules import OperationRule, RuleEngine
from repro.core.events import Event, EventCategory
from repro.core.indicator import CdiReport
from repro.telemetry.tickets import Ticket


def build_event_history() -> list[Event]:
    """Six weeks of events: covered NIC issues + an uncovered GPU
    pattern (gpu_drop repeatedly followed by slow_io)."""
    events = []
    rng = np.random.default_rng(0)
    for i in range(30):
        base = i * 50_000.0
        events.append(Event("slow_io", base, f"vm-nic-{i}"))
        events.append(Event("nic_flapping", base + 20.0, f"vm-nic-{i}"))
    for i in range(25):
        base = i * 60_000.0 + 7_000.0
        events.append(Event("gpu_drop", base, f"vm-gpu-{i}"))
        events.append(Event("slow_io", base + 40.0, f"vm-gpu-{i}"))
        if rng.random() < 0.3:
            events.append(Event("vcpu_high", base + 60.0, f"vm-gpu-{i}"))
    return events


def main() -> None:
    engine = RuleEngine([
        OperationRule(name="nic_error_cause_slow_io",
                      expression="slow_io AND nic_flapping"),
    ])
    events = build_event_history()

    print("=== 1. Coverage review ===")
    report = coverage_report(events, engine)
    print(f"observed event names: {sorted(report.observed)}")
    print(f"rule-covered names:   {sorted(report.covered & report.observed)}")
    print(f"UNCOVERED:            {sorted(report.uncovered)} "
          f"(coverage {report.coverage_fraction:.0%})")

    tickets = [
        Ticket(time=e.time + 1800.0, target=e.target,
               text="GPU instance performance collapsed",
               category=EventCategory.PERFORMANCE)
        for e in events if e.name == "gpu_drop"
    ][:8]
    gaps = complaint_gaps(events, tickets, engine)
    for gap in gaps:
        print(f"complaint gap: {gap.event_name} — {gap.complaint_count} "
              f"complaints across {len(gap.sample_targets)}+ customers")

    print("\n=== 2. Rule mining ===")
    candidates = propose_rules(events, engine, min_support=0.1,
                               min_confidence=0.7)
    for rule in candidates[:3]:
        print(f"candidate: {set(rule.antecedent)} -> {set(rule.consequent)} "
              f"(conf {rule.confidence:.2f}, lift {rule.lift:.1f})")
    # Prefer the widest-support candidate: it will actually fire often.
    best = max(candidates, key=lambda r: r.support)
    new_rule = OperationRule(
        name="gpu_error_cause_slow_io",
        expression=" AND ".join(sorted(best.antecedent | best.consequent)),
        description="mined candidate pending A/B validation",
    )
    engine.register(new_rule)
    print(f"registered new rule: {new_rule.name!r} = "
          f"{new_rule.expression!r}")

    print("\n=== 3. A/B validation against a null action ===")
    experiment = AbExperiment(
        rule_name=new_rule.name,
        variants=[Variant("device_disable", 0.5,
                          "disable the dropped GPU and migrate"),
                  Variant("null", 0.5, "do nothing (control)")],
        seed=1,
    )
    rng = np.random.default_rng(1)
    for i in range(90):
        # Acting on the GPU pattern genuinely reduces performance
        # damage in this simulation.
        for variant, mean in (("device_disable", 0.08), ("null", 0.35)):
            experiment.record(
                f"vm-{variant}-{i}", variant,
                CdiReport(
                    unavailability=float(np.clip(rng.normal(0.02, 0.01), 0, 1)),
                    performance=float(np.clip(rng.normal(mean, 0.06), 0, 1)),
                    control_plane=float(np.clip(rng.normal(0.03, 0.01), 0, 1)),
                    service_time=2 * 86400.0,
                ),
            )
    results = evaluate_rule_effectiveness(experiment)
    for category, result in results.items():
        verdict = "EFFECTIVE" if result.effective else "no effect"
        print(f"  {category.value:15} null={result.null_mean:.3f} "
              f"actions={ {k: round(v, 3) for k, v in result.action_means.items()} } "
              f"-> {verdict}")
    print(f"\nrule verdict: "
          f"{'KEEP' if is_rule_effective(results) else 'DROP'} "
          f"{new_rule.name!r}")


if __name__ == "__main__":
    main()

"""Cases 6 & 7: potential problem detection on event-level CDI curves.

Regenerates the two Fig. 9 curves — the ``vm_allocation_failed`` spike
(a scheduler bug) and the ``inspect_cpu_power_tdp`` dip (a broken
power sensor) — runs the K-Sigma + EVT detector on both, and then uses
multi-dimensional root-cause localization to pin the spike's origin,
mirroring how engineers triage in production.

Run with::

    python examples/problem_detection.py
"""

import numpy as np

from repro.analytics.detect import CdiCurveDetector
from repro.analytics.rca import LeafObservation, localize
from repro.scenarios.event_level import simulate_event_level_curves


def sparkline(values, width: int = 60) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    top = max(values) or 1.0
    cells = [blocks[min(8, int(v / top * 8))] for v in values[:width]]
    return "".join(cells)


def main() -> None:
    curves = simulate_event_level_curves(seed=0)
    detector = CdiCurveDetector(window=7, k=3.0, calibration=10)

    print("=== Case 6: vm_allocation_failed (spike) ===")
    print(f"  {sparkline(curves.allocation_failed)}")
    detections = detector.detect(curves.allocation_failed)
    for detection in detections:
        print(f"  day {detection.index + 1}: {detection.direction} "
              f"(methods: {', '.join(detection.methods)})")
    print(f"  ground truth: scheduler bug on day {curves.spike_day}, "
          "fixed next day")

    print("\n=== Case 7: inspect_cpu_power_tdp (dip) ===")
    print(f"  {sparkline(curves.power_tdp)}")
    detections = detector.detect(curves.power_tdp)
    for detection in detections:
        print(f"  day {detection.index + 1}: {detection.direction} "
              f"(methods: {', '.join(detection.methods)})")
    print(f"  ground truth: power sensor reads zero on days "
          f"{curves.dip_start}-{curves.dip_end}")
    print("  (a dip looked like an improvement at first — Case 7 is why "
          "dips get equal scrutiny)")

    print("\n=== Root-cause localization of the spike ===")
    # Per-cluster leaves: expected = typical daily event CDI; actual =
    # spike-day values, with the damage concentrated on one machine
    # model (the scheduler bug hit a specific model's resource data).
    rng = np.random.default_rng(0)
    leaves = []
    for cluster in range(8):
        for model in ("M1", "M2"):
            expected = float(rng.uniform(0.8, 1.2))
            actual = expected * (14.0 if model == "M2" else 1.0)
            leaves.append(LeafObservation(
                dimensions={"cluster": f"cluster-{cluster}",
                            "machine_model": model},
                expected=expected, actual=actual,
            ))
    cause = localize(leaves)
    assert cause is not None
    print(f"  root cause dimension: {cause.dimension}")
    print(f"  culprit values: {list(cause.values)} "
          f"(explains {cause.explanatory_power:.0%} of the anomaly)")


if __name__ == "__main__":
    main()

"""Case 8: choosing the best operation action with an A/B test.

The ``nc_down_prediction`` rule has three candidate live-migration
actions.  The script reproduces the paper's three-month A/B test:
VM hits are randomly assigned to actions, post-action CDI is collected
per VM, and the Fig. 10 hypothesis workflow runs once per sub-metric.
Only the Performance Indicator separates the arms; Action B wins.

Run with::

    python examples/abtest_optimizer.py
"""

import numpy as np

from repro.abtest.analysis import analyze
from repro.core.events import EventCategory
from repro.scenarios.abtest_case8 import build_case8_experiment


def main() -> None:
    experiment = build_case8_experiment(hits_per_variant=450, seed=0)
    print(f"A/B test for rule {experiment.rule_name!r}")
    for variant in experiment.variants:
        print(f"  action {variant.name}: {variant.description} "
              f"(p={variant.probability:.2f})")
    counts = experiment.counts()
    print(f"observations: { {k: v for k, v in counts.items()} }")

    analysis = analyze(experiment)

    print("\nhypothesis tests (one per sub-metric, Fig. 10 workflow):")
    for category in EventCategory:
        sub = analysis.by_category[category]
        outcome = "SIGNIFICANT" if sub.significant else "no difference"
        print(f"  {category.value:15} omnibus={sub.workflow.omnibus.test:15} "
              f"p={sub.workflow.omnibus.pvalue:7.3f}  {outcome}")
        for pair in sub.workflow.pairs:
            marker = "*" if pair.significant else " "
            print(f"      {pair.pair[0]}-{pair.pair[1]}: "
                  f"p={pair.pvalue:.4f} {marker}")

    performance = analysis.by_category[EventCategory.PERFORMANCE]
    print("\nPerformance Indicator distribution per action (Fig. 11):")
    for name in ("A", "B", "C"):
        values = experiment.sequences(EventCategory.PERFORMANCE)[name]
        print(f"  {name}: mean={np.mean(values):.3f} "
              f"std={np.std(values):.3f} n={len(values)}")
    del performance

    print(f"\n=> recommended action: {analysis.recommendation} "
          "(lowest Performance Indicator where the difference is "
          "significant)")


if __name__ == "__main__":
    main()

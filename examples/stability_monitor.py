"""Daily stability monitoring: the full Fig. 4 + Section VI-C loop.

Runs the real daily CDI job over a 20-day window.  On day 15 a
Case 6-style scheduler bug corrupts resource data in one region,
causing ``vm_allocation_failed`` events across that region's VMs.
The monitor detects the resulting spike on both the fleet Performance
Indicator and the event-level drill-down curve, then localizes the
root cause across topology dimensions — the triage loop stability
engineers run.

Run with::

    python examples/stability_monitor.py
"""

import numpy as np

from repro.core.events import Event, Severity, default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.backfill import run_days
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.monitor import CdiMonitor
from repro.scenarios.common import default_weights
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.topology import build_fleet

DAY = 86400.0
SPIKE_DAY = 15


def main() -> None:
    fleet = build_fleet(seed=2, regions=2, azs_per_region=1,
                        clusters_per_az=1, ncs_per_cluster=2, vms_per_nc=3)
    vm_ids = sorted(fleet.vms)
    bad_region_vms = [vm for vm in vm_ids
                      if fleet.region_of(vm) == "region-1"]
    rng = np.random.default_rng(0)

    def events_for_day(index: int, partition: str) -> list[Event]:
        events = [
            Event("vm_allocation_failed",
                  time=float(rng.uniform(0, DAY)), target=str(vm),
                  level=Severity.CRITICAL,
                  attributes={"duration": float(rng.uniform(300, 900))})
            for vm in rng.choice(vm_ids, size=2, replace=False)
        ]
        if index == SPIKE_DAY:
            events += [
                Event("vm_allocation_failed", time=DAY / 2, target=vm,
                      level=Severity.CRITICAL,
                      attributes={"duration": 6 * 3600.0})
                for vm in bad_region_vms
            ]
        return events

    job = DailyCdiJob(EngineContext(parallelism=4), TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}
    monitor = CdiMonitor(resolver=fleet.dimensions_of,
                         tracked_events=["vm_allocation_failed"])

    print(f"running the daily CDI job for 20 days over {len(vm_ids)} VMs "
          f"(scheduler bug injected on day {SPIKE_DAY})...")
    result = run_days(job, events_for_day, services, days=20,
                      monitor=monitor)

    curve = monitor.event_curve("vm_allocation_failed")
    print("\nevent-level CDI curve (vm_allocation_failed):")
    for day, value in zip(result.partitions, curve):
        bar = "#" * int(value / (max(curve) or 1) * 40)
        print(f"  {day}  {value:8.5f}  {bar}")

    print("\nmonitor findings:")
    for finding in monitor.findings():
        line = (f"  {finding.day}: {finding.direction.upper()} on "
                f"{finding.curve} (value {finding.value:.5f})")
        if finding.root_cause is not None:
            line += (f" -> root cause: {finding.root_cause.dimension} = "
                     f"{list(finding.root_cause.values)} "
                     f"({finding.root_cause.explanatory_power:.0%} of the "
                     f"anomaly)")
        print(line)

    print("\nafter the day-15 investigation the resource data would be "
          "corrected and the excessive VMs migrated (Case 6); the curve "
          "reverts to expected levels the next day.")

    # The report an engineer would read for the spike day.
    from repro.pipeline.reports import DailyReportInput, render_daily_report
    from repro.pipeline.tables import EVENT_CDI_TABLE, VM_CDI_TABLE

    spike_partition = result.partitions[SPIKE_DAY]
    previous_partition = result.partitions[SPIKE_DAY - 1]
    report_text = render_daily_report(
        DailyReportInput(
            day=spike_partition,
            vm_rows=job._tables.get(VM_CDI_TABLE).rows(spike_partition),
            event_rows=job._tables.get(EVENT_CDI_TABLE).rows(spike_partition),
            previous_vm_rows=job._tables.get(VM_CDI_TABLE).rows(
                previous_partition
            ),
            findings=monitor.findings(),
        ),
        resolver=fleet.dimensions_of,
    )
    print("\n" + "=" * 60)
    print(report_text)


if __name__ == "__main__":
    main()

"""Example 1 / Fig. 1: the full CloudBot NIC-incident workflow.

A NIC fault degrades a VM's cloud-disk IO.  The script runs collection
→ extraction → rule matching → operation actions and narrates each
stage, mirroring the paper's walkthrough:

* the ``read_latency`` spike becomes a ``slow_io`` event;
* the ``eth0 NIC Link is Down`` log line becomes ``nic_flapping``
  (benign chatter is discarded);
* ``nic_error_cause_slow_io`` matches; ``nic_error_cause_vm_hang``
  does not (no ``vm_hang`` event);
* the platform live-migrates the VM, files an IDC repair ticket, and
  locks the NC.

Run with::

    python examples/nic_incident.py
"""

from repro.scenarios.nic_case import run_nic_incident


def main() -> None:
    outcome = run_nic_incident(seed=0)

    print("=== 1. Data Collector ===")
    print(f"collected {len(outcome.bundle.metrics)} metric samples and "
          f"{len(outcome.bundle.logs)} log lines for "
          f"[{outcome.vm}, {outcome.nc}]")
    nic_lines = [l for l in outcome.bundle.logs if "NIC Link" in l.line]
    for line in nic_lines:
        print(f"  log @ {line.time:9.0f}s  {line.target}: {line.line}")

    print("\n=== 2. Event Extractor ===")
    by_name: dict[str, int] = {}
    for event in outcome.events:
        by_name[event.name] = by_name.get(event.name, 0) + 1
    for name, count in sorted(by_name.items()):
        print(f"  {name}: {count} events")
    print(f"  ({len(outcome.bundle.logs) - len(nic_lines)} benign log "
          f"lines discarded)")

    print("\n=== 3. Rule Engine ===")
    for match in outcome.matches:
        print(f"  matched {match.rule.name!r} on {match.target} "
              f"(active events: {', '.join(match.active_events)})")
    print("  nic_error_cause_vm_hang did NOT match: no vm_hang event")

    print("\n=== 4. Operation Platform ===")
    for record in outcome.records:
        print(f"  {record.action.type.label:16} -> {record.status.value}"
              + (f" ({record.detail})" if record.detail else ""))
    print(f"\nVM now placed on: {outcome.platform.placements[outcome.vm]}")
    print(f"locked NCs: {sorted(outcome.platform.locked_ncs)}")
    print(f"open IDC tickets: "
          f"{[t.target for t in outcome.platform.open_tickets]}")


if __name__ == "__main__":
    main()

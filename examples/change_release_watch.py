"""Case 1 / Section VI-C: a change the circuit breaker cannot see.

A virtualization update rolls out gradually.  It never crashes
anything — the circuit breaker stays green through 100% coverage —
but it mildly degrades IO on every changed host, and keeps degrading
it after the soak passes.  The CDI machinery catches what the breaker
missed:

1. the rollout completes with zero tripped decisions;
2. the changed/unchanged cohort comparison shows the regression;
3. the daily event-level CDI curve climbs with rollout coverage and
   the rolling detector flags the shift.

After detection, the change is reclassified as disruptive and rolled
back (the paper's Case 1 ends with the change halted and future
deployments windowed with the customer).

Run with::

    python examples/change_release_watch.py
"""

import numpy as np

from repro.analytics.ksigma import rolling_ksigma
from repro.cloudbot.changes import (
    ChangeRelease,
    CircuitBreaker,
    RolloutState,
    performance_damage_by_cohort,
    run_gradual_release,
)
from repro.core.events import Event, Severity, default_catalog
from repro.core.indicator import CdiCalculator, ServicePeriod, aggregate
from repro.core.periods import EventPeriod
from repro.scenarios.common import default_weights

DAY = 86400.0
FLEET = [f"vm-{i:03d}" for i in range(60)]
BATCH = 6
QUIET_DAYS = 5   # monitoring history before the rollout starts


def degradation_events(targets: list[str], day: int,
                       rng: np.random.Generator) -> list[Event]:
    """Mild slow_io on changed hosts during one day — never fatal."""
    events = []
    for target in targets:
        for _ in range(int(rng.poisson(3))):
            events.append(Event(
                "slow_io", day * DAY + float(rng.uniform(0, DAY)),
                target, level=Severity.WARNING,
                attributes={"duration": float(rng.uniform(60, 240))},
            ))
    return events


def main() -> None:
    catalog = default_catalog()
    rng = np.random.default_rng(0)

    change = ChangeRelease(
        name="virtio-blk-update-7.3",
        targets=FLEET,
        batch_size=BATCH,
        breaker=CircuitBreaker(max_fatal_events=0, catalog=catalog),
        description="storage virtualization component update",
    )

    print("=== 1. Gradual release with circuit breaking ===")
    release_day = {}

    def soak_events(batch_index: int, batch: list[str]) -> list[Event]:
        day = QUIET_DAYS + batch_index
        for target in batch:
            release_day[target] = day
        return degradation_events(batch, day, rng)

    state = run_gradual_release(change, soak_events)
    print(f"rollout state: {state.value}, coverage {change.coverage:.0%}")
    print(f"breaker decisions: "
          f"{['TRIP' if d.tripped else 'pass' for d in change.decisions]}")
    assert state is RolloutState.COMPLETED

    # Re-simulate the whole observation window: before the rollout the
    # fleet is quiet; each changed host degrades from its release day on.
    total_days = QUIET_DAYS + len(change.decisions) + 3
    daily_events: list[list[Event]] = []
    for day in range(total_days):
        changed_now = [t for t, d in release_day.items() if d <= day]
        daily_events.append(degradation_events(changed_now, day, rng))

    print("\n=== 2. Cohort comparison (what the breaker missed) ===")
    flat = [e for day_events in daily_events for e in day_events]
    damage = performance_damage_by_cohort(flat, set(change.released), catalog)
    print(f"mean performance events/target — changed: "
          f"{damage['changed']:.1f}, unchanged: {damage['unchanged']:.1f}")

    print("\n=== 3. Daily event-level CDI across the rollout ===")
    calculator = CdiCalculator(catalog, default_weights())
    curve = []
    for day, day_events in enumerate(daily_events):
        periods: dict[str, list[EventPeriod]] = {}
        for event in day_events:
            periods.setdefault(event.target, []).append(EventPeriod(
                name=event.name, target=event.target,
                start=event.time - float(event.attributes["duration"]),
                end=event.time, level=event.level,
            ))
        service = ServicePeriod(day * DAY, (day + 1) * DAY)
        value = aggregate(
            (service.duration,
             calculator.event_level_cdi(periods.get(vm, []), service,
                                        "slow_io"))
            for vm in FLEET
        )
        curve.append(value)
        coverage = min(1.0, max(0, day - QUIET_DAYS + 1) * BATCH / len(FLEET))
        bar = "#" * int(value * 40_000)
        print(f"  day {day:2d} (coverage {coverage:4.0%})  {value:.6f} {bar}")

    anomalies = rolling_ksigma(curve, window=QUIET_DAYS, k=3.0)
    if anomalies:
        first = anomalies[0]
        print(f"\ndetector: {first.direction} from day {first.index} — "
              "investigation begins; cohort comparison points at the change")
    print("\noutcome (Case 1): the change is halted, reclassified as "
          "disruptive, and future deployments happen inside a window "
          "agreed with the customer.")


if __name__ == "__main__":
    main()

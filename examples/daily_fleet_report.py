"""Daily fleet stability report: the Fig. 4 dataflow end to end.

Simulates one day of a small fleet (with a regional slow-IO incident
injected), renders raw telemetry, extracts events, runs the daily CDI
job on the mini dataset engine, and drills the results down from
global → region → AZ like the production BI system.

Run with::

    python examples/daily_fleet_report.py
"""

from repro.cloudbot.collector import DataCollector
from repro.cloudbot.extractor import (
    EventExtractor,
    default_log_rules,
    default_metric_rules,
)
from repro.core.events import default_catalog
from repro.core.indicator import ServicePeriod
from repro.engine.dataset import EngineContext
from repro.pipeline.bi import aggregate_by, drill_down, global_report
from repro.pipeline.daily import DailyCdiJob
from repro.pipeline.tables import VM_CDI_TABLE
from repro.scenarios.common import default_weights
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore
from repro.telemetry.faults import Fault, FaultInjector, FaultKind, baseline_rates
from repro.telemetry.topology import build_fleet

DAY = 86400.0


def main() -> None:
    fleet = build_fleet(seed=7, regions=2, azs_per_region=2,
                        clusters_per_az=1, ncs_per_cluster=2, vms_per_nc=2)
    vm_ids = sorted(fleet.vms)
    print(f"fleet: {len(fleet.regions)} regions, {len(fleet.azs)} AZs, "
          f"{len(fleet.ncs)} NCs, {len(fleet.vms)} VMs")

    # Background faults everywhere + a slow-IO incident in region-1.
    injector = FaultInjector(baseline_rates(scale=3.0), seed=7)
    faults = injector.sample(vm_ids, 0.0, DAY)
    incident_vms = [vm for vm in vm_ids
                    if fleet.region_of(vm) == "region-1"]
    faults += [
        Fault(FaultKind.SLOW_IO, vm, 8 * 3600.0, 2 * 3600.0)
        for vm in incident_vms
    ]
    print(f"injected {len(faults)} faults "
          f"(incident: slow IO on {len(incident_vms)} region-1 VMs)")

    # Collect raw telemetry and extract events.
    collector = DataCollector(fleet, seed=7, interval=300.0)
    bundle = collector.collect(vm_ids, 0.0, DAY, faults=faults)
    extractor = EventExtractor(metric_rules=default_metric_rules(),
                               log_rules=default_log_rules())
    events = extractor.extract_all(metrics=bundle.metrics,
                                   logs=bundle.logs)
    print(f"extracted {len(events)} events from "
          f"{len(bundle.metrics)} samples / {len(bundle.logs)} log lines")

    # Run the daily job (events table + weights -> two output tables).
    job = DailyCdiJob(EngineContext(parallelism=4), TableStore(),
                      ConfigDB(), default_catalog())
    job.store_weights(default_weights())
    job.ingest_events(events, "today")
    services = {vm: ServicePeriod(0.0, DAY) for vm in vm_ids}
    result = job.run("today", services)
    metrics = job._context.last_job_metrics if hasattr(job, "_context") else None
    del metrics

    rows = job._tables.get(VM_CDI_TABLE).rows("today")

    # BI roll-ups: global -> region -> AZ.
    fleet_report = global_report(rows)
    print(f"\nGLOBAL  CDI-U={fleet_report.unavailability:.6f}  "
          f"CDI-P={fleet_report.performance:.6f}  "
          f"CDI-C={fleet_report.control_plane:.6f}  "
          f"({result.vm_count} VMs)")

    print("\nper region:")
    for region, report in aggregate_by(rows, fleet.dimensions_of,
                                       "region").items():
        print(f"  {region:10}  CDI-P={report.performance:.6f}")

    print("\ndrill-down into region-1 by AZ:")
    for az, report in drill_down(rows, fleet.dimensions_of,
                                 [("region", "region-1")], "az").items():
        print(f"  {az:22}  CDI-P={report.performance:.6f}")

    print("\nthe incident is clearly localized to region-1 — this is the "
          "BI navigation of paper Section V.")


if __name__ == "__main__":
    main()

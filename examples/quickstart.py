"""Quickstart: compute the Comprehensive Damage Indicator for a few VMs.

Walks through the core API in four steps:

1. resolve raw events into periods (stateless windows + stateful
   add/del pairing, paper Section IV-B);
2. build event weights (expert severity + customer tickets fused by
   AHP, Section IV-C);
3. run Algorithm 1 per VM and Formula 4 across the fleet;
4. compare CDI against the traditional Downtime Percentage.

Run with::

    python examples/quickstart.py
"""

from repro.core import (
    CdiCalculator,
    Event,
    ServicePeriod,
    Severity,
    build_weight_config,
    default_catalog,
    downtime_percentage,
    resolve_periods,
)

DAY = 86400.0


def main() -> None:
    catalog = default_catalog()

    # --- 1. raw events, as the CloudBot extractor would emit them ------
    raw_events = [
        # vm-1: ten minutes of slow cloud-disk IO (stateless, 1-min
        # windows emitted while the issue persists).
        *[
            Event("slow_io", time=3600.0 + 60.0 * i, target="vm-1",
                  level=Severity.CRITICAL)
            for i in range(1, 11)
        ],
        # vm-2: a DDoS blackhole reconstructed from paired detail events
        # (stateful, Example 2).
        Event("ddos_blackhole_add", time=50_000.0, target="vm-2",
              level=Severity.FATAL),
        Event("ddos_blackhole_del", time=53_600.0, target="vm-2"),
        # vm-3: a crash with a precisely measured 20-minute impact.
        Event("vm_down", time=30_000.0, target="vm-3",
              level=Severity.FATAL, attributes={"duration": 1200.0}),
    ]
    periods = resolve_periods(raw_events, catalog, horizon=DAY)
    print(f"resolved {len(raw_events)} raw events into "
          f"{len(periods)} event periods")

    # --- 2. weights: expert severity x customer ticket history ---------
    ticket_counts = {"slow_io": 420, "packet_loss": 80, "vcpu_high": 310}
    weights = build_weight_config(ticket_counts, customer_levels=4)
    print(f"AHP alphas: expert={weights.alpha_expert:.2f}, "
          f"customer={weights.alpha_customer:.2f}")

    # --- 3. Algorithm 1 per VM, Formula 4 across VMs --------------------
    calculator = CdiCalculator(catalog, weights)
    services = {vm: ServicePeriod(0.0, DAY) for vm in ("vm-1", "vm-2", "vm-3")}
    vms = {
        vm: ([p for p in periods if p.target == vm], service)
        for vm, service in services.items()
    }
    print(f"\n{'VM':6} {'CDI-U':>8} {'CDI-P':>8} {'CDI-C':>8} {'DP':>8}")
    for vm, (vm_periods, service) in vms.items():
        report = calculator.vm_report(vm_periods, service)
        dp = downtime_percentage(vm_periods, service, catalog)
        print(f"{vm:6} {report.unavailability:8.5f} "
              f"{report.performance:8.5f} {report.control_plane:8.5f} "
              f"{dp:8.5f}")

    fleet = calculator.fleet_report(vms)
    print(f"\nfleet: CDI-U={fleet.unavailability:.5f} "
          f"CDI-P={fleet.performance:.5f} CDI-C={fleet.control_plane:.5f}")
    print("note how vm-1's IO degradation is invisible to Downtime "
          "Percentage but captured by the Performance Indicator —")
    print("stability is not downtime.")


if __name__ == "__main__":
    main()

"""K-Sigma anomaly detection.

The paper applies "techniques like K-Sigma and EVT" to event-level CDI
curves to detect potential problems (Section VI-C).  K-Sigma flags a
point whose deviation from a reference mean exceeds ``k`` standard
deviations.  Both a whole-series and a rolling-window variant are
provided; both report the *direction* of the anomaly because the paper
explicitly scrutinizes dips as much as spikes (Case 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class Anomaly:
    """One detected anomalous point."""

    index: int
    value: float
    score: float        # signed deviation in sigma units
    direction: str      # "spike" or "dip"


def _classify(scores: np.ndarray, values: np.ndarray, k: float) -> list[Anomaly]:
    anomalies = []
    for index in np.flatnonzero(np.abs(scores) > k):
        anomalies.append(
            Anomaly(
                index=int(index),
                value=float(values[index]),
                score=float(scores[index]),
                direction="spike" if scores[index] > 0 else "dip",
            )
        )
    return anomalies


def ksigma(values: Sequence[float], k: float = 3.0) -> list[Anomaly]:
    """Whole-series K-Sigma: deviation from the global mean.

    Robust to the anomalies themselves being in the input: the mean
    and sigma are computed from the median and MAD (scaled to sigma
    for a normal distribution), so a single huge spike does not mask
    itself.
    """
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    data = np.asarray(values, dtype=float)
    if data.size < 3:
        return []
    center = float(np.median(data))
    mad = float(np.median(np.abs(data - center)))
    sigma = 1.4826 * mad
    if sigma == 0.0:
        # Degenerate flat series: any deviation at all is anomalous.
        scores = np.where(data != center, np.sign(data - center) * (k + 1), 0.0)
    else:
        scores = (data - center) / sigma
    return _classify(scores, data, k)


def rolling_ksigma(values: Sequence[float], window: int = 20,
                   k: float = 3.0) -> list[Anomaly]:
    """Rolling K-Sigma: each point judged against the preceding window.

    Points before a full window are never flagged.  The reference
    statistics exclude the point itself, so a level shift is flagged at
    its first occurrence.
    """
    if window < 3:
        raise ValueError(f"window must be >= 3, got {window}")
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    data = np.asarray(values, dtype=float)
    anomalies: list[Anomaly] = []
    for index in range(window, data.size):
        reference = data[index - window:index]
        mean = float(reference.mean())
        sigma = float(reference.std(ddof=1))
        if sigma == 0.0:
            if data[index] != mean:
                score = (k + 1) * (1.0 if data[index] > mean else -1.0)
            else:
                continue
        else:
            score = (float(data[index]) - mean) / sigma
        if abs(score) > k:
            anomalies.append(
                Anomaly(index=index, value=float(data[index]), score=score,
                        direction="spike" if score > 0 else "dip")
            )
    return anomalies

"""K-Sigma anomaly detection.

The paper applies "techniques like K-Sigma and EVT" to event-level CDI
curves to detect potential problems (Section VI-C).  K-Sigma flags a
point whose deviation from a reference mean exceeds ``k`` standard
deviations.  Both a whole-series and a rolling-window variant are
provided; both report the *direction* of the anomaly because the paper
explicitly scrutinizes dips as much as spikes (Case 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class Anomaly:
    """One detected anomalous point."""

    index: int
    value: float
    score: float        # signed deviation in sigma units
    direction: str      # "spike" or "dip"


def _sigma_floor(scale: float) -> float:
    """Scale-relative floor below which a sigma is float jitter.

    A constant series recomputed through a different float summation
    order (e.g. the columnar path) can pick up a few ulps of noise —
    a real but microscopic sigma.  Dividing by it turns that noise
    into huge scores, so anything at or below this floor is treated
    as an exactly-flat window (mirrors the ``one_way_anova`` fix).
    """
    return 1e-12 * (scale + 1.0)


def _flat_tolerance(scale: float) -> float:
    """Deviation a flat-window point must exceed to count as a change.

    Same scale-relative reasoning as :func:`_sigma_floor`: an
    ulp-level wobble on an otherwise constant series is noise, not a
    level shift, and must not be scored as a (k+1)-sigma anomaly.
    """
    return 1e-9 * (scale + 1.0)


def _classify(scores: np.ndarray, values: np.ndarray, k: float) -> list[Anomaly]:
    """Points whose |score| exceeds ``k``, tagged spike or dip."""
    anomalies = []
    for index in np.flatnonzero(np.abs(scores) > k):
        anomalies.append(
            Anomaly(
                index=int(index),
                value=float(values[index]),
                score=float(scores[index]),
                direction="spike" if scores[index] > 0 else "dip",
            )
        )
    return anomalies


def ksigma(values: Sequence[float], k: float = 3.0) -> list[Anomaly]:
    """Whole-series K-Sigma: deviation from the global mean.

    Robust to the anomalies themselves being in the input: the mean
    and sigma are computed from the median and MAD (scaled to sigma
    for a normal distribution), so a single huge spike does not mask
    itself.
    """
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    data = np.asarray(values, dtype=float)
    if data.size < 3:
        return []
    center = float(np.median(data))
    mad = float(np.median(np.abs(data - center)))
    sigma = 1.4826 * mad
    scale = float(np.abs(data).max())
    if sigma <= _sigma_floor(scale):
        # Degenerate flat series: any deviation beyond float jitter is
        # anomalous; jitter-sized wobble is not.
        deviation = data - center
        scores = np.where(np.abs(deviation) > _flat_tolerance(scale),
                          np.sign(deviation) * (k + 1), 0.0)
    else:
        scores = (data - center) / sigma
    return _classify(scores, data, k)


def rolling_ksigma(values: Sequence[float], window: int = 20,
                   k: float = 3.0) -> list[Anomaly]:
    """Rolling K-Sigma: each point judged against the preceding window.

    Points before a full window are never flagged.  The reference
    statistics exclude the point itself, so a level shift is flagged at
    its first occurrence.
    """
    if window < 3:
        raise ValueError(f"window must be >= 3, got {window}")
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    data = np.asarray(values, dtype=float)
    anomalies: list[Anomaly] = []
    for index in range(window, data.size):
        reference = data[index - window:index]
        mean = float(reference.mean())
        sigma = float(reference.std(ddof=1))
        scale = float(np.abs(reference).max())
        if sigma <= _sigma_floor(scale):
            deviation = float(data[index]) - mean
            if abs(deviation) > _flat_tolerance(scale):
                score = (k + 1) * (1.0 if deviation > 0 else -1.0)
            else:
                continue
        else:
            score = (float(data[index]) - mean) / sigma
        if abs(score) > k:
            anomalies.append(
                Anomaly(index=index, value=float(data[index]), score=score,
                        direction="spike" if score > 0 else "dip")
            )
    return anomalies

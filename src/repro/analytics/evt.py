"""Extreme Value Theory anomaly detection (POT / SPOT).

From-scratch implementation of the Peaks-Over-Threshold approach of
Siffer et al. (KDD '17), which the paper uses both inside the Event
Extractor (Section II-C, combined with BacktrackSTL) and for
potential-problem detection on CDI curves (Section VI-C):

* :func:`fit_gpd` — Generalized Pareto fit to threshold excesses via
  Grimshaw's maximum-likelihood trick with a method-of-moments
  fallback;
* :func:`pot_threshold` — the ``z_q`` quantile bound such that
  ``P(X > z_q) < q``;
* :class:`Spot` — the streaming detector that calibrates on an initial
  batch and updates its extreme quantile as normal peaks arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class GpdFit:
    """Generalized Pareto parameters fitted to excesses.

    ``gamma`` is the shape (ξ) and ``sigma`` the scale (σ).
    """

    gamma: float
    sigma: float


def _grimshaw_candidates(excesses: np.ndarray) -> np.ndarray:
    """Candidate x values for Grimshaw's scalar root-finding.

    Grimshaw reduces the 2-parameter GPD MLE to the scalar equation
    ``u(x) v(x) = 1`` with ``u = mean(1/(1+x·y))`` and
    ``v = 1 + mean(log(1+x·y))``; we evaluate a dense grid over the
    feasible range plus the moment estimate.
    """
    y_min = excesses.min()
    y_max = excesses.max()
    mean = excesses.mean()
    epsilon = 1e-8 / y_max
    lower = -1.0 / y_max + epsilon
    # Moment-based pivot recommended by Siffer et al.
    variance = excesses.var()
    pivot = mean / variance if variance > 0 else 1.0
    left = np.linspace(lower, -epsilon, 40)
    right = np.linspace(epsilon, 2 * pivot + 1.0 / (2 * y_min + 1e-12), 40)
    return np.concatenate([left, right])


def fit_gpd(excesses: Sequence[float]) -> GpdFit:
    """Fit a GPD to positive threshold excesses.

    Uses Grimshaw's likelihood maximization over candidate roots, with
    a method-of-moments fallback when the likelihood surface
    degenerates (few or near-identical excesses).
    """
    y = np.asarray(excesses, dtype=float)
    y = y[y > 0]
    if y.size == 0:
        raise ValueError("fit_gpd requires at least one positive excess")
    mean = float(y.mean())
    variance = float(y.var())
    if y.size < 4 or variance <= 1e-18:
        # Degenerate: exponential-tail assumption (gamma = 0).
        return GpdFit(gamma=0.0, sigma=mean)

    def log_likelihood(gamma: float, sigma: float) -> float:
        """GPD log-likelihood of the excesses; -inf off the support."""
        if sigma <= 0:
            return -np.inf
        if abs(gamma) < 1e-12:
            return -y.size * np.log(sigma) - y.sum() / sigma
        z = 1.0 + gamma * y / sigma
        if (z <= 0).any():
            return -np.inf
        return -y.size * np.log(sigma) - (1.0 + 1.0 / gamma) * np.log(z).sum()

    # Method-of-moments candidate.
    mom_gamma = 0.5 * (1.0 - mean * mean / variance)
    mom_sigma = 0.5 * mean * (mean * mean / variance + 1.0)
    best = GpdFit(gamma=mom_gamma, sigma=max(mom_sigma, 1e-12))
    best_ll = log_likelihood(best.gamma, best.sigma)

    for x in _grimshaw_candidates(y):
        with np.errstate(divide="ignore", invalid="ignore"):
            w = 1.0 + x * y
            if (w <= 0).any():
                continue
            gamma = float(np.mean(np.log(w)))
            if abs(gamma) < 1e-12 or abs(x) < 1e-15:
                continue
            sigma = gamma / x
        ll = log_likelihood(gamma, sigma)
        if ll > best_ll:
            best = GpdFit(gamma=gamma, sigma=sigma)
            best_ll = ll
    return best


def pot_threshold(fit: GpdFit, initial_threshold: float, n_total: int,
                  n_peaks: int, q: float = 1e-4) -> float:
    """The ``z_q`` bound with tail probability ``q`` (Siffer eq. 1).

    ``n_total`` is the number of calibration observations and
    ``n_peaks`` the number of excesses over ``initial_threshold``.
    """
    if not 0 < q < 1:
        raise ValueError(f"q must be in (0, 1), got {q}")
    if n_peaks <= 0 or n_total <= 0:
        raise ValueError("n_total and n_peaks must be positive")
    ratio = q * n_total / n_peaks
    if abs(fit.gamma) < 1e-12:
        return initial_threshold - fit.sigma * np.log(ratio)
    return initial_threshold + (fit.sigma / fit.gamma) * (
        ratio ** (-fit.gamma) - 1.0
    )


@dataclass(frozen=True, slots=True)
class SpotAlert:
    """One streaming alert."""

    index: int
    value: float
    threshold: float


class Spot:
    """Streaming POT detector (SPOT) for upper-tail anomalies.

    Calibrate with :meth:`fit` on an initial batch, then feed points
    through :meth:`step`: values above ``z_q`` are alerts (and are NOT
    absorbed into the model); values between the initial threshold and
    ``z_q`` are normal peaks that refine the GPD fit.
    """

    def __init__(self, q: float = 1e-4, level: float = 0.98) -> None:
        if not 0 < q < 1:
            raise ValueError(f"q must be in (0, 1), got {q}")
        if not 0 < level < 1:
            raise ValueError(f"level must be in (0, 1), got {level}")
        self._q = q
        self._level = level
        self._initial_threshold = 0.0
        self._peaks: list[float] = []
        self._count = 0
        self._z = float("inf")
        self._fitted = False

    @property
    def threshold(self) -> float:
        """Current anomaly bound ``z_q``."""
        return self._z

    def fit(self, batch: Sequence[float]) -> "Spot":
        """Calibrate on an initial batch; returns self."""
        data = np.asarray(batch, dtype=float)
        if data.size < 10:
            raise ValueError(
                f"SPOT calibration needs >= 10 points, got {data.size}"
            )
        self._initial_threshold = float(np.quantile(data, self._level))
        excesses = data[data > self._initial_threshold] - self._initial_threshold
        self._count = int(data.size)
        self._peaks = [float(e) for e in excesses if e > 0]
        self._refresh_threshold()
        self._fitted = True
        return self

    def _refresh_threshold(self) -> None:
        """Re-derive the alert threshold from the current peak set."""
        if not self._peaks:
            self._z = self._initial_threshold
            return
        fit = fit_gpd(self._peaks)
        self._z = pot_threshold(
            fit, self._initial_threshold, self._count, len(self._peaks), self._q
        )

    def step(self, value: float, index: int = -1) -> SpotAlert | None:
        """Process one streaming point; returns an alert or ``None``."""
        if not self._fitted:
            raise RuntimeError("Spot.step called before fit()")
        self._count += 1
        if value > self._z:
            return SpotAlert(index=index, value=float(value),
                             threshold=self._z)
        if value > self._initial_threshold:
            self._peaks.append(float(value) - self._initial_threshold)
            self._refresh_threshold()
        return None

    def run(self, stream: Sequence[float]) -> list[SpotAlert]:
        """Process a whole stream, returning all alerts."""
        alerts = []
        for index, value in enumerate(stream):
            alert = self.step(float(value), index)
            if alert is not None:
                alerts.append(alert)
        return alerts


class DriftSpot:
    """DSPOT: SPOT on a drifting stream (Siffer et al., Section 3.3).

    Plain SPOT assumes a stationary stream; under slow drift (e.g. a
    seasonally growing fleet's event volume) its fixed threshold decays
    into either blindness or alarm storms.  DSPOT models the local mean
    with a sliding window of the last ``depth`` values and runs SPOT on
    the *residuals* ``x_i - local_mean``, so the extreme-quantile bound
    rides the drift.
    """

    def __init__(self, q: float = 1e-4, level: float = 0.98,
                 depth: int = 10) -> None:
        if depth < 2:
            raise ValueError(f"depth must be >= 2, got {depth}")
        self._depth = depth
        self._window: list[float] = []
        self._spot = Spot(q=q, level=level)
        self._fitted = False

    @property
    def threshold(self) -> float:
        """Current residual-space anomaly bound."""
        return self._spot.threshold

    def fit(self, batch: Sequence[float]) -> "DriftSpot":
        """Calibrate on an initial batch; returns self."""
        data = [float(v) for v in batch]
        if len(data) <= self._depth + 10:
            raise ValueError(
                f"DSPOT calibration needs > depth+10 points, got {len(data)}"
            )
        residuals = []
        window = data[: self._depth]
        for value in data[self._depth:]:
            residuals.append(value - float(np.mean(window)))
            window.pop(0)
            window.append(value)
        self._spot.fit(residuals)
        self._window = window
        self._fitted = True
        return self

    def step(self, value: float, index: int = -1) -> SpotAlert | None:
        """Process one point; returns an alert in original units."""
        if not self._fitted:
            raise RuntimeError("DriftSpot.step called before fit()")
        local_mean = float(np.mean(self._window))
        residual = float(value) - local_mean
        alert = self._spot.step(residual, index)
        # Alerts do not enter the drift window either: a wild value
        # would drag the local mean toward the anomaly.
        if alert is None:
            self._window.pop(0)
            self._window.append(float(value))
            return None
        return SpotAlert(index=index, value=float(value),
                         threshold=alert.threshold + local_mean)

    def run(self, stream: Sequence[float]) -> list[SpotAlert]:
        """Process a whole stream, returning all alerts."""
        alerts = []
        for index, value in enumerate(stream):
            alert = self.step(float(value), index)
            if alert is not None:
                alerts.append(alert)
        return alerts

"""Statistical anomaly analytics used by CloudBot and CDI monitoring.

* :mod:`repro.analytics.ksigma` — K-Sigma detection (global + rolling).
* :mod:`repro.analytics.evt` — EVT: GPD fitting, POT thresholds, SPOT.
* :mod:`repro.analytics.stl` — online seasonal-trend decomposition with
  backtracking (BacktrackSTL stand-in).
* :mod:`repro.analytics.detect` — direction-aware spike/dip detection
  for CDI curves (Cases 6 and 7).
* :mod:`repro.analytics.rca` — multi-dimensional root-cause
  localization (Adtributor-style).
* :mod:`repro.analytics.air` — Azure's Annual Interruption Rate over
  the CDI event stream (the rival KPI of the faceoff study).
"""

from repro.analytics.air import (
    AirReport,
    air_from_arrays,
    air_from_rows,
    air_rollup,
    merged_interruption_counts,
)
from repro.analytics.detect import CdiCurveDetector, Detection
from repro.analytics.evt import (
    DriftSpot,
    GpdFit,
    Spot,
    SpotAlert,
    fit_gpd,
    pot_threshold,
)
from repro.analytics.ksigma import Anomaly, ksigma, rolling_ksigma
from repro.analytics.rca import (
    DimensionValueScore,
    LeafObservation,
    RootCause,
    localize,
    score_dimension_values,
)
from repro.analytics.stl import BacktrackStl, Decomposition

__all__ = [
    "AirReport",
    "Anomaly",
    "BacktrackStl",
    "CdiCurveDetector",
    "Decomposition",
    "Detection",
    "DriftSpot",
    "DimensionValueScore",
    "GpdFit",
    "LeafObservation",
    "RootCause",
    "Spot",
    "SpotAlert",
    "air_from_arrays",
    "air_from_rows",
    "air_rollup",
    "fit_gpd",
    "merged_interruption_counts",
    "ksigma",
    "localize",
    "pot_threshold",
    "rolling_ksigma",
    "score_dimension_values",
]

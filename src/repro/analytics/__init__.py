"""Statistical anomaly analytics used by CloudBot and CDI monitoring.

* :mod:`repro.analytics.ksigma` — K-Sigma detection (global + rolling).
* :mod:`repro.analytics.evt` — EVT: GPD fitting, POT thresholds, SPOT.
* :mod:`repro.analytics.stl` — online seasonal-trend decomposition with
  backtracking (BacktrackSTL stand-in).
* :mod:`repro.analytics.detect` — direction-aware spike/dip detection
  for CDI curves (Cases 6 and 7).
* :mod:`repro.analytics.rca` — multi-dimensional root-cause
  localization (Adtributor-style).
"""

from repro.analytics.detect import CdiCurveDetector, Detection
from repro.analytics.evt import (
    DriftSpot,
    GpdFit,
    Spot,
    SpotAlert,
    fit_gpd,
    pot_threshold,
)
from repro.analytics.ksigma import Anomaly, ksigma, rolling_ksigma
from repro.analytics.rca import (
    DimensionValueScore,
    LeafObservation,
    RootCause,
    localize,
    score_dimension_values,
)
from repro.analytics.stl import BacktrackStl, Decomposition

__all__ = [
    "Anomaly",
    "BacktrackStl",
    "CdiCurveDetector",
    "Decomposition",
    "Detection",
    "DriftSpot",
    "DimensionValueScore",
    "GpdFit",
    "LeafObservation",
    "RootCause",
    "Spot",
    "SpotAlert",
    "fit_gpd",
    "ksigma",
    "localize",
    "pot_threshold",
    "rolling_ksigma",
    "score_dimension_values",
]

"""Multi-dimensional root-cause localization.

When a CDI anomaly fires, engineers drill down across dimensions
(region, AZ, cluster, machine model, deployment arch...) to find where
the damage concentrates (paper Section VI-C cites generic
multi-dimensional root-cause localization [40]).  This module
implements an Adtributor-style localizer: given per-leaf actual vs
expected metric values tagged with dimension attributes, it scores
each dimension value by *explanatory power* (share of the total
anomaly it accounts for) and *surprise* (JS divergence between its
expected and actual share), then reports the most concentrated
dimension with the smallest value set explaining the change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence


@dataclass(frozen=True, slots=True)
class LeafObservation:
    """One leaf (e.g. one VM or one cluster-day) with its dimensions."""

    dimensions: Mapping[str, str]
    expected: float
    actual: float


@dataclass(frozen=True, slots=True)
class DimensionValueScore:
    """Score of one value within one dimension."""

    dimension: str
    value: str
    explanatory_power: float
    surprise: float


@dataclass(frozen=True, slots=True)
class RootCause:
    """The localized root cause: a dimension and its culprit values."""

    dimension: str
    values: tuple[str, ...]
    explanatory_power: float
    surprise: float
    scores: tuple[DimensionValueScore, ...] = field(default=())


def _js_divergence(p: float, q: float) -> float:
    """Jensen-Shannon term for a single (p, q) probability pair."""
    def term(a: float, b: float) -> float:
        """One directed half of the JS divergence (0 when a <= 0)."""
        if a <= 0:
            return 0.0
        return 0.5 * a * math.log(2 * a / (a + b))

    return term(p, q) + term(q, p)


def score_dimension_values(
    leaves: Sequence[LeafObservation], dimension: str
) -> list[DimensionValueScore]:
    """Explanatory power and surprise per value of one dimension."""
    total_expected = sum(leaf.expected for leaf in leaves)
    total_actual = sum(leaf.actual for leaf in leaves)
    delta = total_actual - total_expected
    by_value: dict[str, tuple[float, float]] = {}
    for leaf in leaves:
        value = leaf.dimensions.get(dimension)
        if value is None:
            continue
        expected, actual = by_value.get(value, (0.0, 0.0))
        by_value[value] = (expected + leaf.expected, actual + leaf.actual)

    scores = []
    for value, (expected, actual) in by_value.items():
        if delta == 0:
            ep = 0.0
        else:
            ep = (actual - expected) / delta
        p = expected / total_expected if total_expected > 0 else 0.0
        q = actual / total_actual if total_actual > 0 else 0.0
        scores.append(
            DimensionValueScore(
                dimension=dimension, value=value,
                explanatory_power=ep,
                surprise=_js_divergence(p, q),
            )
        )
    scores.sort(key=lambda s: s.explanatory_power, reverse=True)
    return scores


def vm_damage_leaves(
    expected: Mapping[str, Sequence[float]],
    actual: Mapping[str, float],
    resolver: Callable[[str], Mapping[str, str]],
) -> list[LeafObservation]:
    """Per-VM damage leaves from baseline histories and one day's values.

    ``expected`` maps each VM to its baseline-window damage samples
    (mean becomes the leaf's expected value); ``actual`` maps the VMs
    present on the anomalous day to their damage.  VMs that appear
    *only* in the baseline — e.g. they stopped reporting on the
    anomalous day — contribute a leaf with ``actual=0.0``: their
    vanished damage is exactly what a dip must be attributed to, so
    dropping them would bias localization toward the wrong dimension.
    """
    leaves = []
    for vm, value in actual.items():
        history = expected.get(vm)
        expected_value = sum(history) / len(history) if history else 0.0
        leaves.append(LeafObservation(
            dimensions=resolver(vm), expected=expected_value, actual=value,
        ))
    for vm, history in expected.items():
        if vm in actual:
            continue
        leaves.append(LeafObservation(
            dimensions=resolver(vm),
            expected=sum(history) / len(history),
            actual=0.0,
        ))
    return leaves


def localize(
    leaves: Sequence[LeafObservation],
    dimensions: Sequence[str] | None = None,
    *,
    ep_threshold: float = 0.67,
    max_values: int = 3,
) -> RootCause | None:
    """Localize the root cause of ``actual - expected`` across leaves.

    For each dimension, greedily accumulate its highest-EP values until
    their combined explanatory power exceeds ``ep_threshold`` (or
    ``max_values`` is hit); the winning dimension is the one whose
    explaining value set has the highest total surprise — i.e. the
    dimension along which the anomaly is most *concentrated*.  Returns
    ``None`` when there is no anomaly to explain.
    """
    if not leaves:
        return None
    total_delta = sum(l.actual for l in leaves) - sum(l.expected for l in leaves)
    if total_delta == 0:
        return None
    if dimensions is None:
        names: set[str] = set()
        for leaf in leaves:
            names.update(leaf.dimensions)
        dimensions = sorted(names)

    best: RootCause | None = None
    for dimension in dimensions:
        scores = score_dimension_values(leaves, dimension)
        if not scores:
            continue
        chosen: list[DimensionValueScore] = []
        cumulative_ep = 0.0
        for score in scores:
            if score.explanatory_power <= 0:
                break
            chosen.append(score)
            cumulative_ep += score.explanatory_power
            if cumulative_ep >= ep_threshold or len(chosen) >= max_values:
                break
        if not chosen or cumulative_ep < ep_threshold:
            continue
        surprise = sum(s.surprise for s in chosen)
        candidate = RootCause(
            dimension=dimension,
            values=tuple(s.value for s in chosen),
            explanatory_power=cumulative_ep,
            surprise=surprise,
            scores=tuple(scores),
        )
        better = (
            best is None
            or (len(candidate.values), -candidate.surprise)
            < (len(best.values), -best.surprise)
        )
        if better:
            best = candidate
    return best

"""Annual Interruption Rate (AIR) over the CDI event stream.

AIR is Azure's fleet-stability KPI (Pandey et al. / Levy et al.,
OSDI '20): the number of distinct *unavailability interruptions* per
100 VM-years of service.  It is frequency-based and availability-only
— an interruption counts the same whether it lasted two seconds or two
hours, and performance or control-plane damage does not count at all.
The paper's thesis ("stability is not downtime") is exactly that this
blindness matters; this module implements AIR *over the same per-VM
event stream the CDI path consumes* so the two KPIs can be driven
head-to-head on identical inputs (the ``repro faceoff`` study).

The scalar reference lives in :mod:`repro.core.baselines`
(:func:`~repro.core.baselines.interruption_count` /
:func:`~repro.core.baselines.annual_interruption_rate`).  Here the
computation is vectorized in the style of the fleet fastpath kernels
(:mod:`repro.core.fastpath`): all VMs' unavailability intervals are
counted in one numpy sweep — a lexsort by ``(vm, start)`` followed by
segment detection — instead of a Python merge loop per VM.  A test
suite pins the two implementations to each other.

Semantics shared with the scalar oracle:

* only events whose catalog category is ``UNAVAILABILITY`` count;
* intervals are clipped to each VM's service period, and intervals
  entirely outside it are dropped;
* overlapping *or touching* intervals on one VM merge into a single
  interruption (a reboot that flaps in and out of reachability is one
  interruption from the customer's point of view);
* exposure is the summed service time, converted to VM-years — a VM
  in service for half a year contributes half a VM-year of exposure,
  which is the "partial-year exposure" normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.baselines import SECONDS_PER_YEAR
from repro.core.events import EventCatalog, EventCategory
from repro.core.periods import resolve_periods

#: The conventional presentation scale: interruptions a customer
#: running this many VMs for a year would observe.
AIR_SCALE_VMS = 100.0


@dataclass(frozen=True, slots=True)
class AirReport:
    """AIR of one VM collection (fleet, cluster, or a single VM).

    ``interruptions`` is the merged occurrence count,
    ``exposure_seconds`` the summed service time, and ``air`` the
    normalized rate: interruptions per 100 VM-years of exposure.
    """

    interruptions: int
    exposure_seconds: float

    @property
    def vm_years(self) -> float:
        """Exposure in VM-years (partial years contribute fractions)."""
        return self.exposure_seconds / SECONDS_PER_YEAR

    @property
    def air(self) -> float:
        """Interruptions per 100 VM-years; 0.0 with no exposure."""
        if self.exposure_seconds <= 0.0:
            return 0.0
        return self.interruptions / self.vm_years * AIR_SCALE_VMS

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (plain data, byte-stable)."""
        return {
            "interruptions": self.interruptions,
            "exposure_seconds": self.exposure_seconds,
            "vm_years": self.vm_years,
            "air": self.air,
        }


def merged_interruption_counts(
    vm_idx: np.ndarray, starts: np.ndarray, ends: np.ndarray, num_vms: int,
) -> np.ndarray:
    """Per-VM count of merged interruption occurrences, vectorized.

    ``vm_idx``/``starts``/``ends`` are parallel arrays of already
    clipped, non-empty unavailability intervals (``ends > starts``).
    Intervals of one VM that overlap or touch are counted once.  One
    lexsort by ``(vm, start)`` orders the fleet; an interval then opens
    a *new* interruption exactly when it is its VM's first interval or
    its start exceeds the running maximum of all previous ends within
    the same VM — the vectorized form of the scalar merge loop in
    :func:`repro.core.baselines.interruption_count`.
    """
    if num_vms < 0:
        raise ValueError(f"num_vms must be >= 0, got {num_vms}")
    counts = np.zeros(num_vms, dtype=np.int64)
    if len(vm_idx) == 0:
        return counts
    order = np.lexsort((starts, vm_idx))
    vms = vm_idx[order]
    s = starts[order]
    e = ends[order]

    # Running max of ends, reset at each VM boundary: offset every VM's
    # ends by a per-VM constant larger than the global time span, so
    # one global maximum.accumulate never leaks across VMs.
    span = float(e.max() - min(s.min(), 0.0)) + 1.0
    offset = vms.astype(np.float64) * span
    running_end = np.maximum.accumulate(e + offset)

    new_vm = np.empty(len(vms), dtype=bool)
    new_vm[0] = True
    new_vm[1:] = vms[1:] != vms[:-1]
    opens = new_vm.copy()
    opens[1:] |= (s[1:] + offset[1:]) > running_end[:-1]
    np.add.at(counts, vms[opens], 1)
    return counts


def air_from_arrays(
    vm_idx: np.ndarray, starts: np.ndarray, ends: np.ndarray,
    svc_starts: np.ndarray, svc_ends: np.ndarray,
) -> AirReport:
    """Fleet AIR from interval arrays and per-VM service windows.

    ``vm_idx`` indexes into the service arrays; intervals are clipped
    to their VM's ``[svc_start, svc_end]`` window and empty results are
    dropped before counting.  Exposure is the summed service time of
    *all* VMs (interruption-free VMs dilute the rate, exactly as their
    service time dilutes Formula 4).
    """
    num_vms = len(svc_starts)
    exposure = float(np.sum(svc_ends - svc_starts)) if num_vms else 0.0
    if len(vm_idx) == 0:
        return AirReport(interruptions=0, exposure_seconds=exposure)
    clip_s = np.maximum(starts, svc_starts[vm_idx])
    clip_e = np.minimum(ends, svc_ends[vm_idx])
    keep = clip_e > clip_s
    counts = merged_interruption_counts(
        vm_idx[keep], clip_s[keep], clip_e[keep], num_vms
    )
    return AirReport(
        interruptions=int(counts.sum()), exposure_seconds=exposure
    )


def group_air_reports(
    vm_idx: np.ndarray, starts: np.ndarray, ends: np.ndarray,
    svc_starts: np.ndarray, svc_ends: np.ndarray,
    group_of_vm: np.ndarray, num_groups: int,
) -> list[AirReport]:
    """Per-group AIR rollup (e.g. per cluster) in one counting sweep.

    ``group_of_vm`` maps each VM index to its group code.  Interruption
    counts are computed once per VM and then summed per group, so the
    fleet total always equals the sum of the group totals — the same
    additivity the Formula 4 rollups rely on.
    """
    if num_groups < 0:
        raise ValueError(f"num_groups must be >= 0, got {num_groups}")
    num_vms = len(svc_starts)
    if len(vm_idx):
        clip_s = np.maximum(starts, svc_starts[vm_idx])
        clip_e = np.minimum(ends, svc_ends[vm_idx])
        keep = clip_e > clip_s
        counts = merged_interruption_counts(
            vm_idx[keep], clip_s[keep], clip_e[keep], num_vms
        )
    else:
        counts = np.zeros(num_vms, dtype=np.int64)
    exposure = svc_ends - svc_starts
    group_counts = np.zeros(num_groups, dtype=np.int64)
    group_exposure = np.zeros(num_groups, dtype=np.float64)
    np.add.at(group_counts, group_of_vm, counts)
    np.add.at(group_exposure, group_of_vm, exposure)
    return [
        AirReport(interruptions=int(group_counts[g]),
                  exposure_seconds=float(group_exposure[g]))
        for g in range(num_groups)
    ]


def unavailability_arrays(
    rows: Sequence[Mapping[str, Any]],
    services: Mapping[str, Any],
    catalog: EventCatalog,
) -> tuple[list[str], np.ndarray, np.ndarray, np.ndarray,
           np.ndarray, np.ndarray]:
    """Events-table rows → the interval arrays the AIR kernels consume.

    This is the front end that makes AIR read *the same stream* as the
    daily CDI job: ``rows`` are raw events-table rows (the output of
    :func:`repro.pipeline.daily.event_to_row`), and period resolution
    mirrors the CDI path — a stateless row's interval ends at ``time``
    and starts ``duration`` earlier (the catalog window when no
    explicit duration was recorded; negative explicit durations raise),
    while stateful detail rows go through the reference pairing in
    :func:`repro.core.periods.resolve_periods`.  Only rows whose
    catalog category is ``UNAVAILABILITY`` and whose target is in
    ``services`` survive; unknown names are skipped like the CDI
    calculator skips them.

    Returns ``(vm_list, vm_idx, starts, ends, svc_starts, svc_ends)``
    with ``vm_list`` sorted — the canonical fleet order shared with the
    daily job's output tables.
    """
    vm_list = sorted(services)
    vm_of = {vm: i for i, vm in enumerate(vm_list)}
    svc_starts = np.array(
        [services[vm].start for vm in vm_list], dtype=np.float64
    )
    svc_ends = np.array(
        [services[vm].end for vm in vm_list], dtype=np.float64
    )
    horizon = float(svc_ends.max()) if vm_list else 0.0

    vm_idx: list[int] = []
    starts: list[float] = []
    ends: list[float] = []
    stateful_by_vm: dict[str, list[Mapping[str, Any]]] = {}
    for row in rows:
        index = vm_of.get(row["target"])
        if index is None:
            continue
        name = row["name"]
        logical = catalog.logical_name(name)
        if logical is None:
            continue
        spec = catalog.get(logical)
        if spec.category is not EventCategory.UNAVAILABILITY:
            continue
        if logical != name or spec.start_name is not None:
            # Detail row of a stateful event: defer to the reference
            # pairing (rare — DDoS blackhole add/del in the catalog).
            stateful_by_vm.setdefault(row["target"], []).append(row)
            continue
        duration = row["duration"]
        if duration is None:
            duration = spec.window
        elif duration < 0:
            raise ValueError(
                f"negative duration {duration} on event {name!r}"
            )
        end = float(row["time"])
        vm_idx.append(index)
        starts.append(end - float(duration))
        ends.append(end)

    if stateful_by_vm:
        from repro.pipeline.daily import row_to_event

        for vm, vm_rows in stateful_by_vm.items():
            events = [row_to_event(r) for r in vm_rows]
            for period in resolve_periods(events, catalog, horizon=horizon):
                vm_idx.append(vm_of[vm])
                starts.append(period.start)
                ends.append(period.end)

    return (
        vm_list,
        np.asarray(vm_idx, dtype=np.int64),
        np.asarray(starts, dtype=np.float64),
        np.asarray(ends, dtype=np.float64),
        svc_starts,
        svc_ends,
    )


def air_from_rows(
    rows: Sequence[Mapping[str, Any]],
    services: Mapping[str, Any],
    catalog: EventCatalog,
) -> AirReport:
    """Fleet AIR straight from one partition's events-table rows."""
    _, vm_idx, starts, ends, svc_starts, svc_ends = unavailability_arrays(
        rows, services, catalog
    )
    return air_from_arrays(vm_idx, starts, ends, svc_starts, svc_ends)


def air_rollup(
    rows: Sequence[Mapping[str, Any]],
    services: Mapping[str, Any],
    catalog: EventCatalog,
    resolver: Callable[[str], Mapping[str, str]],
    dimension: str,
) -> dict[str, AirReport]:
    """Per-dimension-value AIR rollup from events-table rows.

    ``resolver`` maps a VM id to its topology dimensions (e.g.
    :meth:`repro.telemetry.topology.Fleet.dimensions_of`); the result
    maps each observed value of ``dimension`` (sorted) to its
    :class:`AirReport`.  Group interruption counts and exposures sum
    exactly to the fleet report's.
    """
    vm_list, vm_idx, starts, ends, svc_starts, svc_ends = (
        unavailability_arrays(rows, services, catalog)
    )
    values = sorted({resolver(vm).get(dimension, "") for vm in vm_list})
    code_of = {value: code for code, value in enumerate(values)}
    group_of_vm = np.array(
        [code_of[resolver(vm).get(dimension, "")] for vm in vm_list],
        dtype=np.int64,
    )
    reports = group_air_reports(
        vm_idx, starts, ends, svc_starts, svc_ends,
        group_of_vm, len(values),
    )
    return dict(zip(values, reports))

"""Spike *and* dip detection on CDI curves (paper Section VI-C).

Case 6 (a scheduler bug) shows why spikes matter; Case 7 (a broken
power sensor) shows why dips deserve equal scrutiny — "we have since
allocated equal scrutiny to both spikes and dips in the CDI."  This
module combines rolling K-Sigma with an EVT bound into a single
detector that reports direction-tagged findings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.analytics.evt import Spot
from repro.analytics.ksigma import Anomaly, rolling_ksigma


@dataclass(frozen=True, slots=True)
class Detection:
    """One detected change in a CDI curve.

    ``methods`` lists the detectors that flagged this index *in this
    direction* — opposite-direction votes never merge into one
    detection, they surface as two detections with ``conflict=True``.
    """

    index: int
    value: float
    direction: str        # "spike" or "dip"
    methods: tuple[str, ...]  # detectors that agreed ("ksigma", "evt")
    conflict: bool = False    # the opposite direction also fired here


class CdiCurveDetector:
    """Direction-aware anomaly detector for daily CDI series.

    K-Sigma runs on the raw series in both directions.  EVT (SPOT)
    runs on the series for spikes and on the negated series for dips,
    calibrated on the first ``calibration`` points.  A point is
    reported when any method flags it; the ``methods`` tuple records
    which ones agreed, letting callers require consensus.
    """

    def __init__(self, *, window: int = 7, k: float = 3.0,
                 calibration: int = 10, q: float = 1e-3) -> None:
        self._window = window
        self._k = k
        self._calibration = calibration
        self._q = q

    def _evt_indices(self, values: np.ndarray) -> set[int]:
        """Indices the SPOT/EVT detector alerts on, after calibration.

        Empty when the series is too short to calibrate or the
        calibration prefix is degenerate (flat or unfit-table).
        """
        if values.size <= self._calibration + 1:
            return set()
        head = values[: self._calibration]
        if np.allclose(head, head[0]):
            # Flat calibration: quantiles degenerate; skip EVT.
            return set()
        spot = Spot(q=self._q, level=0.9)
        try:
            spot.fit(head)
        except ValueError:
            return set()
        alerts = []
        for index in range(self._calibration, values.size):
            alert = spot.step(float(values[index]), index)
            if alert is not None:
                alerts.append(alert.index)
        return set(alerts)

    def detect(self, values: Sequence[float]) -> list[Detection]:
        """All spike/dip detections in ``values``, in index order.

        Detections are keyed by ``(index, direction)``, so a method
        voting "dip" can never merge into — and silently flip or ride
        along with — an existing "spike" detection at the same index.
        When both directions fire at one index, *two* detections come
        back, each tagged ``conflict=True``.
        """
        data = np.asarray(values, dtype=float)
        ks: dict[int, Anomaly] = {
            a.index: a for a in rolling_ksigma(data, self._window, self._k)
        }
        evt_spikes = self._evt_indices(data)
        evt_dips = self._evt_indices(-data)

        detections: dict[tuple[int, str], Detection] = {}
        for index, anomaly in ks.items():
            detections[(index, anomaly.direction)] = Detection(
                index=index, value=float(data[index]),
                direction=anomaly.direction, methods=("ksigma",),
            )
        for index in evt_spikes:
            key = (index, "spike")
            detections[key] = self._merge(detections.get(key), index,
                                          data, "spike")
        for index in evt_dips:
            key = (index, "dip")
            detections[key] = self._merge(detections.get(key), index,
                                          data, "dip")
        directions_at: dict[int, set[str]] = {}
        for index, direction in detections:
            directions_at.setdefault(index, set()).add(direction)
        return [
            (replace(detection, conflict=True)
             if len(directions_at[index]) > 1 else detection)
            for (index, _), detection in sorted(detections.items())
        ]

    @staticmethod
    def _merge(existing: Detection | None, index: int, data: np.ndarray,
               direction: str) -> Detection:
        """Fold an EVT vote into the same-direction detection, if any.

        Callers key detections by ``(index, direction)``, so
        ``existing`` (when present) is guaranteed to already point the
        same way as the vote — merging can extend ``methods`` but never
        change direction.
        """
        if existing is None:
            return Detection(index=index, value=float(data[index]),
                             direction=direction, methods=("evt",))
        assert existing.direction == direction
        methods = existing.methods
        if "evt" not in methods:
            methods = methods + ("evt",)
        return replace(existing, methods=methods)

    def detect_consensus(self, values: Sequence[float]) -> list[Detection]:
        """Only detections confirmed by both K-Sigma and EVT.

        Because detections are keyed by ``(index, direction)``, two or
        more methods here means two votes for the *same* direction —
        an EVT dip no longer counts as confirmation of a K-Sigma spike
        at the same index.
        """
        return [d for d in self.detect(values) if len(d.methods) >= 2]

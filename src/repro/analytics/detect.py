"""Spike *and* dip detection on CDI curves (paper Section VI-C).

Case 6 (a scheduler bug) shows why spikes matter; Case 7 (a broken
power sensor) shows why dips deserve equal scrutiny — "we have since
allocated equal scrutiny to both spikes and dips in the CDI."  This
module combines rolling K-Sigma with an EVT bound into a single
detector that reports direction-tagged findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analytics.evt import Spot
from repro.analytics.ksigma import Anomaly, rolling_ksigma


@dataclass(frozen=True, slots=True)
class Detection:
    """One detected change in a CDI curve."""

    index: int
    value: float
    direction: str        # "spike" or "dip"
    methods: tuple[str, ...]  # detectors that agreed ("ksigma", "evt")


class CdiCurveDetector:
    """Direction-aware anomaly detector for daily CDI series.

    K-Sigma runs on the raw series in both directions.  EVT (SPOT)
    runs on the series for spikes and on the negated series for dips,
    calibrated on the first ``calibration`` points.  A point is
    reported when any method flags it; the ``methods`` tuple records
    which ones agreed, letting callers require consensus.
    """

    def __init__(self, *, window: int = 7, k: float = 3.0,
                 calibration: int = 10, q: float = 1e-3) -> None:
        self._window = window
        self._k = k
        self._calibration = calibration
        self._q = q

    def _evt_indices(self, values: np.ndarray) -> set[int]:
        if values.size <= self._calibration + 1:
            return set()
        head = values[: self._calibration]
        if np.allclose(head, head[0]):
            # Flat calibration: quantiles degenerate; skip EVT.
            return set()
        spot = Spot(q=self._q, level=0.9)
        try:
            spot.fit(head)
        except ValueError:
            return set()
        alerts = []
        for index in range(self._calibration, values.size):
            alert = spot.step(float(values[index]), index)
            if alert is not None:
                alerts.append(alert.index)
        return set(alerts)

    def detect(self, values: Sequence[float]) -> list[Detection]:
        """All spike/dip detections in ``values``, in index order."""
        data = np.asarray(values, dtype=float)
        ks: dict[int, Anomaly] = {
            a.index: a for a in rolling_ksigma(data, self._window, self._k)
        }
        evt_spikes = self._evt_indices(data)
        evt_dips = self._evt_indices(-data)

        detections: dict[int, Detection] = {}
        for index, anomaly in ks.items():
            detections[index] = Detection(
                index=index, value=float(data[index]),
                direction=anomaly.direction, methods=("ksigma",),
            )
        for index in evt_spikes:
            detections[index] = self._merge(detections.get(index), index,
                                            data, "spike")
        for index in evt_dips:
            detections[index] = self._merge(detections.get(index), index,
                                            data, "dip")
        return [detections[i] for i in sorted(detections)]

    @staticmethod
    def _merge(existing: Detection | None, index: int, data: np.ndarray,
               direction: str) -> Detection:
        if existing is None:
            return Detection(index=index, value=float(data[index]),
                             direction=direction, methods=("evt",))
        methods = existing.methods
        if "evt" not in methods:
            methods = methods + ("evt",)
        return Detection(index=index, value=existing.value,
                         direction=existing.direction, methods=methods)

    def detect_consensus(self, values: Sequence[float]) -> list[Detection]:
        """Only detections confirmed by both K-Sigma and EVT."""
        return [d for d in self.detect(values) if len(d.methods) >= 2]

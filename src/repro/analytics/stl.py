"""Online seasonal-trend decomposition with backtracking.

A lightweight rendition of BacktrackSTL (Wang et al., KDD '24), which
the paper's Event Extractor combines with EVT to turn metric time
series into events (Section II-C).  The decomposition maintains:

* a **seasonal profile** — one slot per position in the period,
  updated by exponential smoothing;
* a **trend** — exponentially smoothed de-seasonalized level;
* a **residual** — what anomaly detectors consume.

The *backtrack* behaviour: when residuals stay large and same-signed
for ``shift_patience`` consecutive points, the decomposition declares
a level shift, snaps the trend to the recent level, and re-attributes
the recent residuals to trend — so a step change stops polluting the
seasonal profile (the failure mode naive online STL suffers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class Decomposition:
    """Per-point decomposition outputs."""

    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray


class BacktrackStl:
    """Streaming seasonal-trend decomposition.

    Parameters
    ----------
    period:
        Number of samples per season (e.g. 1440 for minutely data with
        daily seasonality).
    trend_alpha / seasonal_alpha:
        Exponential smoothing rates.
    shift_patience:
        Consecutive large same-signed residuals that trigger a level
        backtrack.
    shift_sigmas:
        How many residual sigmas count as "large".
    """

    def __init__(self, period: int, *, trend_alpha: float = 0.05,
                 seasonal_alpha: float = 0.1, shift_patience: int = 5,
                 shift_sigmas: float = 3.0) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 0 < trend_alpha <= 1 or not 0 < seasonal_alpha <= 1:
            raise ValueError("smoothing alphas must be in (0, 1]")
        if shift_patience < 1:
            raise ValueError("shift_patience must be >= 1")
        self._period = period
        self._trend_alpha = trend_alpha
        self._seasonal_alpha = seasonal_alpha
        self._shift_patience = shift_patience
        self._shift_sigmas = shift_sigmas

        self._trend: float | None = None
        self._seasonal = np.zeros(period)
        self._seen = np.zeros(period, dtype=bool)
        self._position = 0
        self._samples = 0
        self._residual_var = 0.0
        self._run_sign = 0
        self._run_length = 0
        self._run_values: list[float] = []
        self.backtracks = 0

    def update(self, value: float) -> tuple[float, float, float]:
        """Consume one sample; returns ``(trend, seasonal, residual)``."""
        slot = self._position
        self._position = (self._position + 1) % self._period

        if self._trend is None:
            self._trend = float(value)
        seasonal = float(self._seasonal[slot]) if self._seen[slot] else 0.0
        deseasonalized = value - seasonal
        residual = deseasonalized - self._trend
        self._samples += 1

        # Outlier / shift handling only after warm-up: during the first
        # period the seasonal profile is still empty, so seasonal swings
        # would masquerade as residual runs.
        sigma = float(np.sqrt(max(self._residual_var, 1e-18)))
        is_large = (
            self._samples > self._period
            and self._residual_var > 0
            and abs(residual) > self._shift_sigmas * sigma
        )
        if is_large:
            backtracked = self._track_run(residual, deseasonalized)
            if not backtracked:
                # Treat as a (potential) outlier: freeze the model so a
                # single wild point pollutes neither trend nor seasonal
                # profile nor the residual variance.
                return self._trend, seasonal, residual
            # The run confirmed a level shift; the trend was snapped.
            # Fall through and let the point update the snapped model.
            residual = deseasonalized - self._trend
        else:
            self._reset_run()

        # Smooth trend on the de-seasonalized signal, then the seasonal
        # slot on the de-trended signal.
        self._trend += self._trend_alpha * (deseasonalized - self._trend)
        detrended = value - self._trend
        if self._seen[slot]:
            self._seasonal[slot] += self._seasonal_alpha * (
                detrended - self._seasonal[slot]
            )
        else:
            self._seasonal[slot] = detrended * self._seasonal_alpha
            self._seen[slot] = True
        self._residual_var += 0.05 * (residual * residual - self._residual_var)
        return self._trend, seasonal, residual

    def _reset_run(self) -> None:
        """Drop the accumulated large-residual run state."""
        self._run_sign = 0
        self._run_length = 0
        self._run_values.clear()

    def _track_run(self, residual: float, deseasonalized: float) -> bool:
        """Accumulate a large-residual run; snap the trend on patience.

        Returns True when a backtrack (level-shift confirmation) fired.
        """
        sign = 1 if residual > 0 else -1
        if self._run_sign not in (0, sign):
            self._reset_run()
        self._run_sign = sign
        self._run_length += 1
        self._run_values.append(deseasonalized)
        if self._run_length < self._shift_patience:
            return False
        # Backtrack: the run was a level shift, not noise.  Snap the
        # trend to the recent level so the shift is explained by trend,
        # not residual/seasonal.
        self._trend = float(np.mean(self._run_values))
        self._reset_run()
        self.backtracks += 1
        return True

    def decompose(self, values: Sequence[float]) -> Decomposition:
        """Run the stream over ``values`` and collect all components."""
        trends = np.empty(len(values))
        seasonals = np.empty(len(values))
        residuals = np.empty(len(values))
        for index, value in enumerate(values):
            trends[index], seasonals[index], residuals[index] = self.update(
                float(value)
            )
        return Decomposition(trend=trends, seasonal=seasonals,
                             residual=residuals)

"""BI-style multi-dimensional aggregation of CDI tables (Section V).

The production BI system runs SQL over the two output tables and
"aggregates the CDI across diverse dimensions in accordance with
Formula 4" — global, then drill-down to region, availability zone,
cluster, or any other dimension.  This module provides the same
roll-ups over ``vm_cdi`` rows plus a dimension resolver (usually
:meth:`repro.telemetry.topology.Fleet.dimensions_of`).

The aggregation itself lives in the serving layer's vectorized
kernels (:mod:`repro.serving.rollups`) — one implementation shared by
these row-based helpers, the materialized rollups, and the query
service, all float-identical to the reference accumulation loops.
For repeated queries over the output *tables* prefer
:class:`repro.serving.QueryService`, which caches these aggregates
instead of rescanning rows.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.indicator import CdiReport
from repro.pipeline.daily import fleet_report_from_rows
from repro.serving.rollups import event_aggregates, group_reports

#: ``resolver(vm_id)`` → dimension attributes (e.g. region/az/cluster).
DimensionResolver = Callable[[str], Mapping[str, str]]


def global_report(rows: Sequence[Mapping[str, Any]]) -> CdiReport:
    """Fleet-wide CDI (Formula 4 over all VMs)."""
    return fleet_report_from_rows(list(rows))


def float_column(rows: Sequence[Mapping[str, Any]], name: str) -> np.ndarray:
    """One row field as a float64 array, preserving row order.

    The row→column bridge shared by the BI helpers and the report
    renderer: rows stay the interchange format, kernels get arrays.
    """
    return np.array([row[name] for row in rows], dtype=np.float64)


#: Backwards-compatible alias (pre-public name).
_float_column = float_column


def aggregate_by(rows: Iterable[Mapping[str, Any]],
                 resolver: DimensionResolver,
                 dimension: str) -> dict[str, CdiReport]:
    """CDI per value of one dimension (e.g. per region).

    ``resolver(vm)`` returns the VM's dimension attributes; rows whose
    VM lacks the requested dimension are skipped.  Delegates to the
    serving layer's vectorized group-by kernel — float-identical to
    grouping the rows and running
    :func:`~repro.pipeline.daily.fleet_report_from_rows` per group.
    """
    materialized = list(rows)
    keys = [resolver(row["vm"]).get(dimension) for row in materialized]
    return group_reports(
        keys,
        float_column(materialized, "service_time"),
        float_column(materialized, "unavailability"),
        float_column(materialized, "performance"),
        float_column(materialized, "control_plane"),
    )


def drill_down(rows: Sequence[Mapping[str, Any]],
               resolver: DimensionResolver,
               path: Sequence[tuple[str, str]],
               next_dimension: str) -> dict[str, CdiReport]:
    """Drill into ``next_dimension`` under fixed dimension constraints.

    ``path`` pins outer dimensions, e.g.
    ``[("region", "region-0"), ("az", "region-0/az-a")]``; the return
    value breaks the remaining rows down by ``next_dimension`` — the
    "global → region → AZ → cluster" navigation of Section V.
    """
    filtered = []
    for row in rows:
        dims = resolver(row["vm"])
        if all(dims.get(name) == value for name, value in path):
            filtered.append(row)
    return aggregate_by(filtered, resolver, next_dimension)


def event_level_series(
    event_rows_by_day: Mapping[str, Sequence[Mapping[str, Any]]],
    event_name: str,
) -> list[tuple[str, float]]:
    """Daily fleet-level CDI curve for one event name (Section VI-C).

    ``event_rows_by_day`` maps day partitions to ``event_cdi`` rows;
    the result is the Formula 4 aggregate of that event's per-VM CDI
    per day — the drill-down curve that Cases 6 and 7 monitor.  Days
    without the event contribute ``0.0``.
    """
    series = []
    for day in sorted(event_rows_by_day):
        day_rows = list(event_rows_by_day[day])
        aggregates = event_aggregates(
            [row["event"] for row in day_rows],
            float_column(day_rows, "service_time"),
            float_column(day_rows, "cdi"),
        )
        series.append((day, aggregates.get(event_name, 0.0)))
    return series

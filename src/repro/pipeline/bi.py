"""BI-style multi-dimensional aggregation of CDI tables (Section V).

The production BI system runs SQL over the two output tables and
"aggregates the CDI across diverse dimensions in accordance with
Formula 4" — global, then drill-down to region, availability zone,
cluster, or any other dimension.  This module provides the same
roll-ups over ``vm_cdi`` rows plus a dimension resolver (usually
:meth:`repro.telemetry.topology.Fleet.dimensions_of`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.indicator import CdiReport
from repro.pipeline.daily import fleet_report_from_rows

DimensionResolver = Callable[[str], Mapping[str, str]]


def global_report(rows: Sequence[Mapping[str, Any]]) -> CdiReport:
    """Fleet-wide CDI (Formula 4 over all VMs)."""
    return fleet_report_from_rows(list(rows))


def aggregate_by(rows: Iterable[Mapping[str, Any]],
                 resolver: DimensionResolver,
                 dimension: str) -> dict[str, CdiReport]:
    """CDI per value of one dimension (e.g. per region).

    ``resolver(vm)`` returns the VM's dimension attributes; rows whose
    VM lacks the requested dimension are skipped.
    """
    groups: dict[str, list[Mapping[str, Any]]] = {}
    for row in rows:
        dims = resolver(row["vm"])
        value = dims.get(dimension)
        if value is None:
            continue
        groups.setdefault(value, []).append(row)
    return {
        value: fleet_report_from_rows(group)
        for value, group in sorted(groups.items())
    }


def drill_down(rows: Sequence[Mapping[str, Any]],
               resolver: DimensionResolver,
               path: Sequence[tuple[str, str]],
               next_dimension: str) -> dict[str, CdiReport]:
    """Drill into ``next_dimension`` under fixed dimension constraints.

    ``path`` pins outer dimensions, e.g.
    ``[("region", "region-0"), ("az", "region-0/az-a")]``; the return
    value breaks the remaining rows down by ``next_dimension`` — the
    "global → region → AZ → cluster" navigation of Section V.
    """
    filtered = []
    for row in rows:
        dims = resolver(row["vm"])
        if all(dims.get(name) == value for name, value in path):
            filtered.append(row)
    return aggregate_by(filtered, resolver, next_dimension)


def event_level_series(
    event_rows_by_day: Mapping[str, Sequence[Mapping[str, Any]]],
    event_name: str,
) -> list[tuple[str, float]]:
    """Daily fleet-level CDI curve for one event name (Section VI-C).

    ``event_rows_by_day`` maps day partitions to ``event_cdi`` rows;
    the result is the Formula 4 aggregate of that event's per-VM CDI
    per day — the drill-down curve that Cases 6 and 7 monitor.
    """
    from repro.core.indicator import aggregate

    series = []
    for day in sorted(event_rows_by_day):
        relevant = [
            row for row in event_rows_by_day[day]
            if row["event"] == event_name
        ]
        value = aggregate(
            (row["service_time"], row["cdi"]) for row in relevant
        )
        series.append((day, value))
    return series

"""Checkpoint/resume for the daily CDI job.

The production daily job (Section V) runs on a Spark cluster where a
driver restart mid-job is routine; rerunning the whole fleet from
scratch would blow the daily deadline.  This module gives the
reproduction the same property: the job computes in **VM shards**
(contiguous ranges of the sorted VM list), stages every finished
shard's output columns durably, and records progress in a manifest —
all persisted through the existing columnar table-store layer
(:func:`~repro.storage.persistence.save_table_store`, written
atomically).  A killed job resumed with the same inputs recomputes
only the unfinished shards and produces byte-identical output tables,
because the fleet kernel's per-VM results are exact per group and
therefore independent of which other VMs share a sweep.

One checkpoint file corresponds to one ``(job, day-partition)`` run.
Its identity is a **fingerprint** over everything that affects the
output (day partition, VM list with service bounds, weight-config
version, shard count, compute path); a resume against a mismatched
fingerprint starts over rather than mixing incompatible shards.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.pipeline.tables import event_cdi_schema, vm_cdi_schema
from repro.storage.persistence import load_table_store, save_table_store
from repro.storage.schema import Column, Schema
from repro.storage.table import TableStore

#: Tables inside a checkpoint store.
MANIFEST_TABLE = "manifest"
META_TABLE = "meta"
VM_STAGING_TABLE = "vm_cdi_staging"
EVENT_STAGING_TABLE = "event_cdi_staging"

#: Partition keys of the bookkeeping tables.
MANIFEST_PARTITION = "shards"
META_PARTITION = "meta"

#: Meta keys.
META_FINGERPRINT = "fingerprint"
META_STATUS = "status"
META_PARTITION_KEY = "partition"

#: Checkpoint lifecycle states.
STATUS_IN_PROGRESS = "in-progress"
STATUS_FINALIZED = "finalized"


def manifest_schema() -> Schema:
    """One row per completed shard unit."""
    return Schema([
        Column("unit", str),
        Column("vm_rows", int),
        Column("event_rows", int),
        Column("event_count", int),
    ])


def meta_schema() -> Schema:
    """Key/value run metadata (fingerprint, status, partition)."""
    return Schema([
        Column("key", str),
        Column("value", str),
    ])


def shard_units(count: int) -> list[str]:
    """Stable shard unit labels: shard-0000, shard-0001, ..."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [f"shard-{index:04d}" for index in range(count)]


def split_shards(items: Sequence[str], shards: int) -> list[list[str]]:
    """Split a sorted VM list into contiguous balanced shards.

    Contiguity is what makes shard-order concatenation reproduce the
    globally sorted output order byte for byte.  Shards never exceed
    the item count (no empty shards).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    parts = min(shards, len(items)) or 1
    base, extra = divmod(len(items), parts)
    out: list[list[str]] = []
    cursor = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        out.append(list(items[cursor:cursor + size]))
        cursor += size
    return out


def job_fingerprint(partition: str, services: Mapping[str, Any],
                    weights_version: int, shards: int,
                    compute_path: str) -> str:
    """Digest of everything that determines the job's output.

    ``services`` values must expose ``start``/``end`` (the
    :class:`~repro.core.indicator.ServicePeriod` protocol).
    """
    payload = json.dumps({
        "partition": partition,
        "services": [
            (vm, services[vm].start, services[vm].end)
            for vm in sorted(services)
        ],
        "weights_version": weights_version,
        "shards": shards,
        "compute_path": compute_path,
    }, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _columns_to_lists(table: Any, partition: str) -> dict[str, list]:
    blocks = table.columns(partition)
    return {name: block.to_pylist() for name, block in blocks.items()}


class JobCheckpoint:
    """Durable manifest + staged outputs for one daily-job run.

    The checkpoint is a single JSON table-store file at ``path``
    holding four tables: the shard ``manifest``, run ``meta``, and the
    two staging tables whose partitions are shard units.  Every
    mutation is persisted immediately with an atomic write, so the
    file is always a consistent snapshot a resumed process can trust.
    """

    def __init__(self, path: str | Path,
                 vm_schema: Schema | None = None,
                 event_schema: Schema | None = None) -> None:
        self._path = Path(path)
        self._vm_schema = vm_schema or vm_cdi_schema()
        self._event_schema = event_schema or event_cdi_schema()
        self._store: TableStore | None = None

    @property
    def path(self) -> Path:
        """Location of the checkpoint file."""
        return self._path

    # -- lifecycle -----------------------------------------------------------

    def load(self) -> bool:
        """Load an existing checkpoint file; ``False`` when absent."""
        if not self._path.exists():
            return False
        self._store = load_table_store(self._path)
        return True

    def begin(self, fingerprint: str, partition: str) -> None:
        """Start a fresh run, discarding any previous state."""
        store = TableStore()
        store.create(MANIFEST_TABLE, manifest_schema())
        meta = store.create(META_TABLE, meta_schema())
        store.create(VM_STAGING_TABLE, self._vm_schema)
        store.create(EVENT_STAGING_TABLE, self._event_schema)
        meta.overwrite_partition([
            {"key": META_FINGERPRINT, "value": fingerprint},
            {"key": META_STATUS, "value": STATUS_IN_PROGRESS},
            {"key": META_PARTITION_KEY, "value": partition},
        ], META_PARTITION)
        self._store = store
        self._save()

    def ensure(self, fingerprint: str, partition: str, *,
               resume: bool = True) -> set[str]:
        """Open (resuming when possible) and return completed units.

        Resumes only when a checkpoint file exists, ``resume`` is on,
        and the stored fingerprint matches; any mismatch — different
        services, weights version, shard count, or compute path —
        starts a fresh run instead of mixing incompatible shards.
        """
        if resume and self.load() and self.fingerprint() == fingerprint:
            return set(self.completed_units())
        self.begin(fingerprint, partition)
        return set()

    def discard(self) -> None:
        """Delete the checkpoint file (cleanup after a finished run)."""
        self._path.unlink(missing_ok=True)
        self._store = None

    def _require_store(self) -> TableStore:
        if self._store is None:
            raise RuntimeError(
                "checkpoint not opened — call load(), begin(), or ensure()"
            )
        return self._store

    def _save(self) -> None:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        save_table_store(self._require_store(), self._path, atomic=True)

    # -- metadata ------------------------------------------------------------

    def _meta(self) -> dict[str, str]:
        table = self._require_store().get(META_TABLE)
        return {
            row["key"]: row["value"]
            for row in table.rows(partition=META_PARTITION)
        }

    def fingerprint(self) -> str | None:
        """The stored run fingerprint."""
        return self._meta().get(META_FINGERPRINT)

    def status(self) -> str | None:
        """``"in-progress"`` or ``"finalized"``."""
        return self._meta().get(META_STATUS)

    def is_finalized(self) -> bool:
        """Whether every shard completed and the outputs were merged."""
        return self.status() == STATUS_FINALIZED

    def mark_finalized(self) -> None:
        """Record that the merged outputs were written successfully."""
        meta = self._meta()
        meta[META_STATUS] = STATUS_FINALIZED
        table = self._require_store().get(META_TABLE)
        table.overwrite_partition(
            [{"key": key, "value": value}
             for key, value in sorted(meta.items())],
            META_PARTITION,
        )
        self._save()

    # -- shard progress ------------------------------------------------------

    def completed_units(self) -> dict[str, int]:
        """Completed shard units mapped to their ``event_count``."""
        table = self._require_store().get(MANIFEST_TABLE)
        if MANIFEST_PARTITION not in table.partitions:
            return {}
        return {
            row["unit"]: row["event_count"]
            for row in table.rows(partition=MANIFEST_PARTITION)
        }

    def record_shard(self, unit: str, vm_columns: Mapping[str, Sequence],
                     event_columns: Mapping[str, Sequence],
                     event_count: int) -> None:
        """Stage one shard's output columns and persist the manifest.

        Data lands before the manifest row in the same atomic write, so
        a crash between shards can never mark a shard complete without
        its staged data.
        """
        store = self._require_store()
        vm_rows = store.get(VM_STAGING_TABLE).overwrite_partition_columns(
            vm_columns, unit
        )
        event_rows = store.get(EVENT_STAGING_TABLE) \
            .overwrite_partition_columns(event_columns, unit)
        manifest = store.get(MANIFEST_TABLE)
        done = [
            row for row in (
                manifest.rows(partition=MANIFEST_PARTITION)
                if MANIFEST_PARTITION in manifest.partitions else []
            )
            if row["unit"] != unit
        ]
        done.append({
            "unit": unit, "vm_rows": vm_rows, "event_rows": event_rows,
            "event_count": event_count,
        })
        done.sort(key=lambda row: row["unit"])
        manifest.overwrite_partition(done, MANIFEST_PARTITION)
        self._save()

    def staged_columns(self, unit: str) -> tuple[dict[str, list],
                                                 dict[str, list]]:
        """One shard's staged ``(vm, event)`` output columns."""
        store = self._require_store()
        return (
            _columns_to_lists(store.get(VM_STAGING_TABLE), unit),
            _columns_to_lists(store.get(EVENT_STAGING_TABLE), unit),
        )

    def merged_columns(self, units: Sequence[str]) -> tuple[dict[str, list],
                                                            dict[str, list]]:
        """Concatenate staged columns across ``units`` in order.

        With contiguous VM shards, unit-order concatenation reproduces
        the canonical global output order exactly.
        """
        vm_merged: dict[str, list] = {
            name: [] for name in self._vm_schema.names
        }
        event_merged: dict[str, list] = {
            name: [] for name in self._event_schema.names
        }
        for unit in units:
            vm_cols, event_cols = self.staged_columns(unit)
            for name, values in vm_cols.items():
                vm_merged[name].extend(values)
            for name, values in event_cols.items():
                event_merged[name].extend(values)
        return vm_merged, event_merged

"""Daily stability report rendering (paper Section VI-A).

"The CDI is crucial for quantifying overall daily stability ...
enabling stability engineers to monitor stability trends and evaluate
the efficacy of distinct stability strategies."  This module renders
the figures engineers read each morning:

* fleet sub-metrics with day-over-day movement,
* the most damaged values of each drill-down dimension,
* the top event-name contributors,
* any monitor findings (spikes/dips with localization).

Everything is plain text so reports are diffable, attachable to
tickets, and assertable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.core.indicator import CdiReport, aggregate
from repro.pipeline.bi import aggregate_by
from repro.pipeline.daily import fleet_report_from_rows
from repro.pipeline.monitor import MonitorFinding

DimensionResolver = Callable[[str], Mapping[str, str]]

_SUB_METRICS = (
    ("CDI-U", "unavailability"),
    ("CDI-P", "performance"),
    ("CDI-C", "control_plane"),
)


@dataclass(frozen=True, slots=True)
class DailyReportInput:
    """Everything one day's report is built from."""

    day: str
    vm_rows: Sequence[Mapping[str, Any]]
    event_rows: Sequence[Mapping[str, Any]] = ()
    previous_vm_rows: Sequence[Mapping[str, Any]] | None = None
    findings: Sequence[MonitorFinding] = ()


def _movement(current: float, previous: float | None) -> str:
    if previous is None:
        return ""
    if previous == 0.0:
        return "(new)" if current > 0 else "(flat)"
    change = (current - previous) / previous
    arrow = "▲" if change > 0 else ("▼" if change < 0 else "=")
    return f"{arrow}{abs(change):.0%}"


def _top_dimension_values(rows: Sequence[Mapping[str, Any]],
                          resolver: DimensionResolver, dimension: str,
                          attr: str, limit: int) -> list[tuple[str, float]]:
    reports = aggregate_by(rows, resolver, dimension)
    ranked = sorted(
        ((value, getattr(report, attr)) for value, report in reports.items()),
        key=lambda pair: -pair[1],
    )
    return [(value, score) for value, score in ranked[:limit] if score > 0]


def top_event_contributors(event_rows: Sequence[Mapping[str, Any]],
                           limit: int = 5) -> list[tuple[str, float]]:
    """Event names ranked by their Formula 4 fleet-level CDI."""
    names = sorted({row["event"] for row in event_rows})
    scored = []
    for name in names:
        relevant = [r for r in event_rows if r["event"] == name]
        scored.append((name, aggregate(
            (r["service_time"], r["cdi"]) for r in relevant
        )))
    scored.sort(key=lambda pair: -pair[1])
    return [(name, value) for name, value in scored[:limit] if value > 0]


def render_daily_report(data: DailyReportInput, *,
                        resolver: DimensionResolver | None = None,
                        dimensions: Sequence[str] = ("region", "az"),
                        top_n: int = 3) -> str:
    """The full text report for one day."""
    current: CdiReport = fleet_report_from_rows(list(data.vm_rows))
    previous: CdiReport | None = None
    if data.previous_vm_rows is not None:
        previous = fleet_report_from_rows(list(data.previous_vm_rows))

    lines = [
        f"DAILY STABILITY REPORT — {data.day}",
        f"fleet: {len(data.vm_rows)} VMs, "
        f"{current.service_time / 86400.0:.0f} VM-days of service",
        "",
        "fleet CDI:",
    ]
    for label, attr in _SUB_METRICS:
        value = getattr(current, attr)
        move = _movement(
            value, getattr(previous, attr) if previous else None
        )
        lines.append(f"  {label}  {value:.6f}  {move}".rstrip())

    if resolver is not None:
        for dimension in dimensions:
            header_written = False
            for label, attr in _SUB_METRICS:
                top = _top_dimension_values(
                    data.vm_rows, resolver, dimension, attr, top_n
                )
                if not top:
                    continue
                if not header_written:
                    lines.append("")
                    lines.append(f"most damaged by {dimension}:")
                    header_written = True
                rendered = ", ".join(
                    f"{value}={score:.6f}" for value, score in top
                )
                lines.append(f"  {label}: {rendered}")

    contributors = top_event_contributors(data.event_rows, limit=top_n)
    if contributors:
        lines.append("")
        lines.append("top event contributors:")
        for name, value in contributors:
            lines.append(f"  {name}: {value:.6f}")

    day_findings = [f for f in data.findings if f.day == data.day]
    if day_findings:
        lines.append("")
        lines.append("monitor findings:")
        for finding in day_findings:
            entry = (f"  {finding.direction.upper()} on {finding.curve} "
                     f"(value {finding.value:.6f})")
            if finding.root_cause is not None:
                entry += (f" — root cause {finding.root_cause.dimension}="
                          f"{list(finding.root_cause.values)}")
            lines.append(entry)
    else:
        lines.append("")
        lines.append("monitor findings: none")
    return "\n".join(lines)

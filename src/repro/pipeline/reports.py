"""Daily stability report rendering (paper Section VI-A).

"The CDI is crucial for quantifying overall daily stability ...
enabling stability engineers to monitor stability trends and evaluate
the efficacy of distinct stability strategies."  This module renders
the figures engineers read each morning:

* fleet sub-metrics with day-over-day movement,
* the most damaged values of each drill-down dimension,
* the top event-name contributors,
* any monitor findings (spikes/dips with localization).

Everything is plain text so reports are diffable, attachable to
tickets, and assertable in tests.  Two entry points share one
renderer: :func:`render_daily_report` takes raw output-table rows,
while :func:`render_daily_report_from_service` reads everything from
a cached :class:`repro.serving.QueryService` — no row rescans, the
path the serving CLI uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.core.indicator import CdiReport
from repro.pipeline.bi import aggregate_by, float_column
from repro.pipeline.daily import fleet_report_from_rows
from repro.pipeline.monitor import MonitorFinding
from repro.serving.rollups import event_aggregates, rank_leaderboard
from repro.serving.service import QueryService

#: ``resolver(vm_id)`` → dimension attributes (e.g. region/az/cluster).
DimensionResolver = Callable[[str], Mapping[str, str]]

_SUB_METRICS = (
    ("CDI-U", "unavailability"),
    ("CDI-P", "performance"),
    ("CDI-C", "control_plane"),
)


@dataclass(frozen=True, slots=True)
class DailyReportInput:
    """Everything one day's report is built from."""

    day: str
    vm_rows: Sequence[Mapping[str, Any]]
    event_rows: Sequence[Mapping[str, Any]] = ()
    previous_vm_rows: Sequence[Mapping[str, Any]] | None = None
    findings: Sequence[MonitorFinding] = ()


def _movement(current: float, previous: float | None) -> str:
    """Day-over-day movement marker for one sub-metric value."""
    if previous is None:
        return ""
    if previous == 0.0:
        return "(new)" if current > 0 else "(flat)"
    change = (current - previous) / previous
    arrow = "▲" if change > 0 else ("▼" if change < 0 else "=")
    return f"{arrow}{abs(change):.0%}"


def _rank_reports(reports: Mapping[str, CdiReport], attr: str,
                  limit: int) -> list[tuple[str, float]]:
    """Rank group-by reports by one sub-metric, stable, zeros dropped.

    Delegates to the serving layer's leaderboard kernel; keying the
    aggregates in sorted order keeps ties alphabetical exactly like
    the original stable sort over sorted group keys.
    """
    aggregates = {
        value: getattr(reports[value], attr) for value in sorted(reports)
    }
    return rank_leaderboard(aggregates, limit)


def top_event_contributors(event_rows: Sequence[Mapping[str, Any]],
                           limit: int = 5) -> list[tuple[str, float]]:
    """Event names ranked by their Formula 4 fleet-level CDI.

    Delegates to the serving layer's vectorized leaderboard kernel
    (float-identical to aggregating each name's rows with
    :func:`repro.core.indicator.aggregate`).
    """
    rows = list(event_rows)
    aggregates = event_aggregates(
        [row["event"] for row in rows],
        float_column(rows, "service_time"),
        float_column(rows, "cdi"),
    )
    return rank_leaderboard(aggregates, limit)


def _render(day: str, vm_count: int, current: CdiReport,
            previous: CdiReport | None,
            dimension_tops: Sequence[tuple[str, list[tuple[str, list[tuple[str, float]]]]]],
            contributors: Sequence[tuple[str, float]],
            findings: Sequence[MonitorFinding]) -> str:
    """The shared report body behind both rendering entry points.

    ``dimension_tops`` is ``[(dimension, [(label, top values)])]`` with
    sub-metric labels in ``_SUB_METRICS`` order.
    """
    lines = [
        f"DAILY STABILITY REPORT — {day}",
        f"fleet: {vm_count} VMs, "
        f"{current.service_time / 86400.0:.0f} VM-days of service",
        "",
        "fleet CDI:",
    ]
    for label, attr in _SUB_METRICS:
        value = getattr(current, attr)
        move = _movement(
            value, getattr(previous, attr) if previous else None
        )
        lines.append(f"  {label}  {value:.6f}  {move}".rstrip())

    for dimension, per_metric in dimension_tops:
        header_written = False
        for label, top in per_metric:
            if not top:
                continue
            if not header_written:
                lines.append("")
                lines.append(f"most damaged by {dimension}:")
                header_written = True
            rendered = ", ".join(
                f"{value}={score:.6f}" for value, score in top
            )
            lines.append(f"  {label}: {rendered}")

    if contributors:
        lines.append("")
        lines.append("top event contributors:")
        for name, value in contributors:
            lines.append(f"  {name}: {value:.6f}")

    day_findings = [f for f in findings if f.day == day]
    if day_findings:
        lines.append("")
        lines.append("monitor findings:")
        for finding in day_findings:
            entry = (f"  {finding.direction.upper()} on {finding.curve} "
                     f"(value {finding.value:.6f})")
            if finding.root_cause is not None:
                entry += (f" — root cause {finding.root_cause.dimension}="
                          f"{list(finding.root_cause.values)}")
            lines.append(entry)
    else:
        lines.append("")
        lines.append("monitor findings: none")
    return "\n".join(lines)


def render_daily_report(data: DailyReportInput, *,
                        resolver: DimensionResolver | None = None,
                        dimensions: Sequence[str] = ("region", "az"),
                        top_n: int = 3) -> str:
    """The full text report for one day, from raw output-table rows."""
    current: CdiReport = fleet_report_from_rows(list(data.vm_rows))
    previous: CdiReport | None = None
    if data.previous_vm_rows is not None:
        previous = fleet_report_from_rows(list(data.previous_vm_rows))

    dimension_tops = []
    if resolver is not None:
        for dimension in dimensions:
            reports = aggregate_by(data.vm_rows, resolver, dimension)
            dimension_tops.append((dimension, [
                (label, _rank_reports(reports, attr, top_n))
                for label, attr in _SUB_METRICS
            ]))

    return _render(
        day=data.day,
        vm_count=len(data.vm_rows),
        current=current,
        previous=previous,
        dimension_tops=dimension_tops,
        contributors=top_event_contributors(data.event_rows, limit=top_n),
        findings=data.findings,
    )


def render_daily_report_from_service(
    service: QueryService, day: str, *,
    dimensions: Sequence[str] = ("region", "az"),
    top_n: int = 3,
    findings: Sequence[MonitorFinding] = (),
) -> str:
    """The same daily report, served from materialized rollups.

    Every figure comes from cached :class:`~repro.serving.
    QueryService` queries instead of row rescans: fleet point lookups
    for today and the previous day, group-by queries per drill-down
    dimension, and the top-K event leaderboard.  The rendered text is
    identical to :func:`render_daily_report` over the same tables.
    """
    days = service.days()
    previous_day = None
    if day in days:
        position = days.index(day)
        if position > 0:
            previous_day = days[position - 1]

    dimension_tops = []
    if service.resolver is not None:
        for dimension in dimensions:
            reports = service.group_by(day, dimension)
            dimension_tops.append((dimension, [
                (label, _rank_reports(reports, attr, top_n))
                for label, attr in _SUB_METRICS
            ]))

    return _render(
        day=day,
        vm_count=service.vm_count(day),
        current=service.fleet(day),
        previous=(
            service.fleet(previous_day) if previous_day is not None else None
        ),
        dimension_tops=dimension_tops,
        contributors=service.top_events(day, k=top_n),
        findings=findings,
    )

"""Daily CDI monitoring (paper Sections VI-A and VI-C operationalized).

Stability engineers watch the CDI curves: the fleet-level sub-metrics
and the event-level drill-downs.  This module packages that loop:

* :class:`CdiMonitor` accumulates one day at a time from the daily
  job's output tables;
* after each day it runs the spike/dip detector on every tracked curve
  (fleet sub-metrics + per-event drill-downs);
* for each finding it localizes the root cause across topology
  dimensions via :func:`repro.analytics.rca.localize`, comparing the
  anomalous day's per-dimension damage against the trailing baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.analytics.detect import CdiCurveDetector
from repro.analytics.rca import RootCause, localize, vm_damage_leaves
from repro.core.events import EventCategory
from repro.pipeline.daily import fleet_report_from_rows

DimensionResolver = Callable[[str], Mapping[str, str]]


@dataclass(frozen=True, slots=True)
class MonitorFinding:
    """One anomalous curve movement with optional localization."""

    curve: str            # e.g. "fleet.performance" or "event.slow_io"
    day_index: int        # 0-based index into the monitored history
    day: str              # partition label
    direction: str        # "spike" or "dip"
    value: float
    root_cause: RootCause | None = None


@dataclass
class _DayRecord:
    day: str
    vm_rows: list[dict[str, Any]]
    event_rows: list[dict[str, Any]]


class CdiMonitor:
    """Accumulates daily CDI tables and surfaces detected problems."""

    def __init__(self, *, detector: CdiCurveDetector | None = None,
                 resolver: DimensionResolver | None = None,
                 baseline_days: int = 7,
                 tracked_events: Sequence[str] = ()) -> None:
        if baseline_days < 2:
            raise ValueError(f"baseline_days must be >= 2, got {baseline_days}")
        self._detector = detector or CdiCurveDetector(
            window=7, k=3.0, calibration=10
        )
        self._resolver = resolver
        self._baseline_days = baseline_days
        self._tracked_events = tuple(tracked_events)
        self._days: list[_DayRecord] = []

    # -- ingestion -----------------------------------------------------------

    def observe_day(self, day: str, vm_rows: Sequence[Mapping[str, Any]],
                    event_rows: Sequence[Mapping[str, Any]] = ()) -> None:
        """Record one day's output tables (chronological order)."""
        self._days.append(_DayRecord(
            day=day,
            vm_rows=[dict(r) for r in vm_rows],
            event_rows=[dict(r) for r in event_rows],
        ))

    @property
    def days(self) -> list[str]:
        """Observed day labels, in order."""
        return [d.day for d in self._days]

    # -- curves ----------------------------------------------------------------

    def fleet_curve(self, category: EventCategory) -> list[float]:
        """Daily fleet value of one sub-metric."""
        attr = {
            EventCategory.UNAVAILABILITY: "unavailability",
            EventCategory.PERFORMANCE: "performance",
            EventCategory.CONTROL_PLANE: "control_plane",
        }[category]
        return [
            getattr(fleet_report_from_rows(d.vm_rows), attr)
            for d in self._days
        ]

    def event_curve(self, event_name: str) -> list[float]:
        """Daily Formula 4 aggregate of one event's drill-down CDI."""
        from repro.core.indicator import aggregate

        curve = []
        for record in self._days:
            relevant = [
                r for r in record.event_rows if r["event"] == event_name
            ]
            curve.append(aggregate(
                (r["service_time"], r["cdi"]) for r in relevant
            ))
        return curve

    # -- detection ---------------------------------------------------------------

    def findings(self) -> list[MonitorFinding]:
        """Detect spikes and dips on every tracked curve, with RCA."""
        results: list[MonitorFinding] = []
        for category in EventCategory:
            # vm_cdi column names coincide with the category values.
            results.extend(
                self._scan(f"fleet.{category.value}",
                           self.fleet_curve(category),
                           metric=lambda row, key=category.value: row[key])
            )
        for event_name in self._tracked_events:
            results.extend(
                self._scan(f"event.{event_name}",
                           self.event_curve(event_name), metric=None)
            )
        results.sort(key=lambda f: (f.day_index, f.curve))
        return results

    def _scan(self, curve_name: str, curve: list[float],
              metric: Callable[[Mapping[str, Any]], float] | None
              ) -> list[MonitorFinding]:
        findings = []
        for detection in self._detector.detect(curve):
            cause = None
            if metric is not None:
                cause = self._localize(detection.index, metric)
            findings.append(MonitorFinding(
                curve=curve_name,
                day_index=detection.index,
                day=self._days[detection.index].day,
                direction=detection.direction,
                value=detection.value,
                root_cause=cause,
            ))
        return findings

    def _localize(self, day_index: int,
                  metric: Callable[[Mapping[str, Any]], float]
                  ) -> RootCause | None:
        """RCA: anomalous day vs trailing per-VM baseline damage."""
        if self._resolver is None or day_index == 0:
            return None
        start = max(0, day_index - self._baseline_days)
        baseline_days = self._days[start:day_index]
        if not baseline_days:
            return None
        # Expected per-VM damage = mean over the baseline window.
        expected: dict[str, list[float]] = {}
        for record in baseline_days:
            for row in record.vm_rows:
                expected.setdefault(row["vm"], []).append(
                    metric(row) * row["service_time"]
                )
        anomalous = {
            row["vm"]: metric(row) * row["service_time"]
            for row in self._days[day_index].vm_rows
        }
        # vm_damage_leaves emits actual=0.0 leaves for VMs present only
        # in the baseline window: a VM that disappears on the anomalous
        # day takes its damage with it, and that vanished damage is the
        # very thing a dip must localize to.
        return localize(vm_damage_leaves(expected, anomalous, self._resolver))

"""Table schemas of the daily CDI pipeline (paper Section V).

Three tables mirror the production MaxCompute layout:

* ``events`` — raw events synchronized from the hot store;
* ``vm_cdi`` — the first output table: per-VM Unavailability /
  Performance / Control-Plane Indicators plus service time;
* ``event_cdi`` — the second output table: per-(VM, event name) CDI
  for event-level drill-down (Section VI-C).
"""

from __future__ import annotations

from repro.storage.schema import Column, Schema

EVENTS_TABLE = "events"
VM_CDI_TABLE = "vm_cdi"
EVENT_CDI_TABLE = "event_cdi"


def events_schema() -> Schema:
    """Raw event rows: one per extracted event (Table II fields)."""
    return Schema([
        Column("name", str),
        Column("time", float),
        Column("target", str),
        Column("level", int),
        Column("expire_interval", float),
        Column("duration", float, nullable=True),
    ])


def vm_cdi_schema() -> Schema:
    """Per-VM indicator rows (first output table of Section V)."""
    return Schema([
        Column("vm", str),
        Column("unavailability", float),
        Column("performance", float),
        Column("control_plane", float),
        Column("service_time", float),
    ])


def event_cdi_schema() -> Schema:
    """Per-(VM, event) drill-down rows (second output table)."""
    return Schema([
        Column("vm", str),
        Column("event", str),
        Column("cdi", float),
        Column("service_time", float),
    ])

"""The daily CDI pipeline and BI roll-ups (paper Section V, Fig. 4)."""

from repro.pipeline.bi import (
    aggregate_by,
    drill_down,
    event_level_series,
    global_report,
)
from repro.pipeline.backfill import BackfillResult, day_partitions, run_days
from repro.pipeline.monitor import CdiMonitor, MonitorFinding
from repro.pipeline.reports import (
    DailyReportInput,
    render_daily_report,
    render_daily_report_from_service,
    top_event_contributors,
)
from repro.pipeline.daily import (
    WEIGHTS_CONFIG_KEY,
    DailyCdiJob,
    DailyJobResult,
    event_to_row,
    fleet_report_from_rows,
    row_to_event,
    shard_events_partition,
)
from repro.pipeline.tables import (
    EVENT_CDI_TABLE,
    EVENTS_TABLE,
    VM_CDI_TABLE,
    event_cdi_schema,
    events_schema,
    vm_cdi_schema,
)

__all__ = [
    "BackfillResult",
    "CdiMonitor",
    "day_partitions",
    "run_days",
    "MonitorFinding",
    "DailyCdiJob",
    "DailyJobResult",
    "DailyReportInput",
    "render_daily_report",
    "render_daily_report_from_service",
    "top_event_contributors",
    "EVENTS_TABLE",
    "EVENT_CDI_TABLE",
    "VM_CDI_TABLE",
    "WEIGHTS_CONFIG_KEY",
    "aggregate_by",
    "drill_down",
    "event_cdi_schema",
    "event_level_series",
    "event_to_row",
    "events_schema",
    "fleet_report_from_rows",
    "global_report",
    "row_to_event",
    "shard_events_partition",
    "vm_cdi_schema",
]

"""Multi-day pipeline runs feeding the CDI monitor.

Glue for the common operational loop: run the daily job over a span of
day partitions, collect each day's two output tables, and stream them
into a :class:`~repro.pipeline.monitor.CdiMonitor` — the full
Fig. 4 → Section VI-C path in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.core.events import Event
from repro.core.indicator import ServicePeriod
from repro.engine.trace import RunTrace, trace_span
from repro.pipeline.checkpoint import JobCheckpoint
from repro.pipeline.daily import DailyCdiJob, DailyJobResult
from repro.pipeline.monitor import CdiMonitor
from repro.pipeline.tables import EVENTS_TABLE

#: Supplies one day's raw events given (day_index, partition_label).
EventSource = Callable[[int, str], Sequence[Event]]


@dataclass(frozen=True, slots=True)
class BackfillResult:
    """Outcome of a multi-day run."""

    partitions: tuple[str, ...]
    job_results: tuple[DailyJobResult, ...]
    monitor: CdiMonitor


def day_partitions(days: int, prefix: str = "day") -> list[str]:
    """Stable zero-padded partition labels: day00, day01, ..."""
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    return [f"{prefix}{index:02d}" for index in range(days)]


def run_days(
    job: DailyCdiJob,
    events_for_day: EventSource,
    services: Mapping[str, ServicePeriod],
    days: int,
    *,
    monitor: CdiMonitor | None = None,
    prefix: str = "day",
    checkpoint_dir: str | Path | None = None,
    resume: bool = True,
    shards: int = 8,
    trace: RunTrace | None = None,
) -> BackfillResult:
    """Ingest + run the daily job for ``days`` consecutive partitions.

    Each day's output tables are appended to ``monitor`` (a default
    monitor without RCA is created when none is supplied).  Events are
    pulled from ``events_for_day`` per partition, so scenarios control
    exactly what happens on which day.

    With ``checkpoint_dir`` set, every day runs through
    :meth:`~repro.pipeline.daily.DailyCdiJob.run_checkpointed` with a
    per-day checkpoint file (``<prefix>NN.ckpt.json``): a killed
    backfill resumed with ``resume=True`` skips completed VM shards of
    the interrupted day outright, and days whose checkpoints are
    already finalized replay their staged outputs without re-ingesting
    or re-scanning any events.  Outputs are byte-identical to an
    uncheckpointed run either way.

    ``trace`` attaches a :class:`~repro.engine.trace.RunTrace` across
    the whole backfill: one ``kind="day"`` span per partition with
    ingest/observe stage spans, and inside each day the daily job's
    own pipeline spans plus the engine's node spans and task attempt
    records.
    """
    monitor = monitor or CdiMonitor()
    partitions = day_partitions(days, prefix)
    results = []
    with trace_span(trace, f"backfill[{prefix}x{days}]", "pipeline",
                    days=days, checkpointed=checkpoint_dir is not None):
        for index, partition in enumerate(partitions):
            with trace_span(trace, f"day[{partition}]", "day"):
                if checkpoint_dir is None:
                    with trace_span(trace, "ingest", "stage"):
                        events = list(events_for_day(index, partition))
                        job.ingest_events(events, partition)
                    result = job.run(partition, services, trace=trace)
                else:
                    checkpoint = JobCheckpoint(
                        Path(checkpoint_dir) / f"{partition}.ckpt.json"
                    )
                    fingerprint = job.checkpoint_fingerprint(
                        partition, services, shards=shards
                    )
                    replayable = (
                        resume and checkpoint.load()
                        and checkpoint.fingerprint() == fingerprint
                        and checkpoint.is_finalized()
                    )
                    if not replayable:
                        # Overwrite-then-ingest keeps a re-run of a
                        # partially processed day idempotent (ingest
                        # alone appends).
                        with trace_span(trace, "ingest", "stage"):
                            job.tables.get(EVENTS_TABLE).drop_partition(
                                partition
                            )
                            events = list(events_for_day(index, partition))
                            job.ingest_events(events, partition)
                    result = job.run_checkpointed(
                        partition, services, checkpoint=checkpoint,
                        shards=shards, resume=resume, trace=trace,
                    )
                results.append(result)
                with trace_span(trace, "observe", "stage"):
                    vm_rows, event_rows = job.output_rows(partition)
                    monitor.observe_day(partition, vm_rows, event_rows)
    return BackfillResult(
        partitions=tuple(partitions),
        job_results=tuple(results),
        monitor=monitor,
    )

"""Multi-day pipeline runs feeding the CDI monitor.

Glue for the common operational loop: run the daily job over a span of
day partitions, collect each day's two output tables, and stream them
into a :class:`~repro.pipeline.monitor.CdiMonitor` — the full
Fig. 4 → Section VI-C path in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.events import Event
from repro.core.indicator import ServicePeriod
from repro.pipeline.daily import DailyCdiJob, DailyJobResult
from repro.pipeline.monitor import CdiMonitor

#: Supplies one day's raw events given (day_index, partition_label).
EventSource = Callable[[int, str], Sequence[Event]]


@dataclass(frozen=True, slots=True)
class BackfillResult:
    """Outcome of a multi-day run."""

    partitions: tuple[str, ...]
    job_results: tuple[DailyJobResult, ...]
    monitor: CdiMonitor


def day_partitions(days: int, prefix: str = "day") -> list[str]:
    """Stable zero-padded partition labels: day00, day01, ..."""
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    return [f"{prefix}{index:02d}" for index in range(days)]


def run_days(
    job: DailyCdiJob,
    events_for_day: EventSource,
    services: Mapping[str, ServicePeriod],
    days: int,
    *,
    monitor: CdiMonitor | None = None,
    prefix: str = "day",
) -> BackfillResult:
    """Ingest + run the daily job for ``days`` consecutive partitions.

    Each day's output tables are appended to ``monitor`` (a default
    monitor without RCA is created when none is supplied).  Events are
    pulled from ``events_for_day`` per partition, so scenarios control
    exactly what happens on which day.
    """
    monitor = monitor or CdiMonitor()
    partitions = day_partitions(days, prefix)
    results = []
    for index, partition in enumerate(partitions):
        events = list(events_for_day(index, partition))
        job.ingest_events(events, partition)
        result = job.run(partition, services)
        results.append(result)
        vm_rows, event_rows = job.output_rows(partition)
        monitor.observe_day(partition, vm_rows, event_rows)
    return BackfillResult(
        partitions=tuple(partitions),
        job_results=tuple(results),
        monitor=monitor,
    )

"""The daily CDI job: the paper's Spark application (Section V).

Reads raw events from the MaxCompute-like events table and the weight
configuration from the MySQL-like config DB, computes per-VM CDI
reports and per-(VM, event) drill-down CDIs on the mini dataset
engine, and writes the two output tables back — the exact dataflow of
Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.events import Event, EventCatalog, Severity
from repro.core.indicator import CdiCalculator, CdiReport, ServicePeriod
from repro.core.periods import resolve_periods
from repro.core.weights import WeightConfig
from repro.engine.dataset import EngineContext
from repro.pipeline.tables import (
    EVENT_CDI_TABLE,
    EVENTS_TABLE,
    VM_CDI_TABLE,
    event_cdi_schema,
    events_schema,
    vm_cdi_schema,
)
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore

#: Config DB key holding the serialized weight configuration.
WEIGHTS_CONFIG_KEY = "cdi_weights"


def event_to_row(event: Event) -> dict[str, Any]:
    """Serialize an event into an events-table row."""
    return {
        "name": event.name,
        "time": event.time,
        "target": event.target,
        "level": int(event.level),
        "expire_interval": event.expire_interval,
        "duration": event.duration_hint(),
    }


def row_to_event(row: Mapping[str, Any]) -> Event:
    """Deserialize an events-table row."""
    attributes = {}
    if row.get("duration") is not None:
        attributes["duration"] = float(row["duration"])
    return Event(
        name=row["name"], time=float(row["time"]), target=row["target"],
        expire_interval=float(row["expire_interval"]),
        level=Severity(int(row["level"])), attributes=attributes,
    )


@dataclass(frozen=True, slots=True)
class DailyJobResult:
    """Summary of one daily run."""

    partition: str
    vm_count: int
    event_count: int
    fleet_report: CdiReport


class DailyCdiJob:
    """End-to-end daily computation on the mini engine.

    Parameters
    ----------
    context:
        Engine context (the "100 executors" of Section V, scaled down).
    tables:
        Table store holding ``events`` and receiving the two outputs.
    config_db:
        Config DB holding the weight configuration under
        :data:`WEIGHTS_CONFIG_KEY`.
    catalog:
        Event catalog (name → category/kind/window).
    """

    def __init__(self, context: EngineContext, tables: TableStore,
                 config_db: ConfigDB, catalog: EventCatalog) -> None:
        self._context = context
        self._tables = tables
        self._config_db = config_db
        self._catalog = catalog
        for name, schema in (
            (EVENTS_TABLE, events_schema()),
            (VM_CDI_TABLE, vm_cdi_schema()),
            (EVENT_CDI_TABLE, event_cdi_schema()),
        ):
            tables.create(name, schema, if_not_exists=True)

    # -- ingestion ---------------------------------------------------------

    def ingest_events(self, events: list[Event], partition: str) -> int:
        """Append raw events into the events table (SLS → MaxCompute sync)."""
        table = self._tables.get(EVENTS_TABLE)
        return table.append([event_to_row(e) for e in events], partition)

    def store_weights(self, weights: WeightConfig) -> None:
        """Persist the weight configuration (ticket model + expert review)."""
        self._config_db.put(WEIGHTS_CONFIG_KEY, weights.to_dict())

    def load_weights(self) -> WeightConfig:
        """Load the latest weight configuration."""
        record = self._config_db.get(WEIGHTS_CONFIG_KEY)
        return WeightConfig.from_dict(record.value)

    # -- the job -------------------------------------------------------------

    def run(self, partition: str,
            services: Mapping[str, ServicePeriod]) -> DailyJobResult:
        """Compute and write the two output tables for one day.

        ``services`` maps each VM in service to its service period; VMs
        without any events still contribute zero-CDI rows (their
        service time dilutes the fleet aggregate, Formula 4).
        """
        weights = self.load_weights()
        calculator = CdiCalculator(self._catalog, weights)
        rows = self._tables.get(EVENTS_TABLE).rows(partition=partition)
        events = [row_to_event(row) for row in rows]
        catalog = self._catalog
        horizon = max((s.end for s in services.values()), default=0.0)

        def compute_vm(pair: tuple[str, list[Event]]) -> dict[str, Any]:
            vm, vm_events = pair
            service = services[vm]
            periods = resolve_periods(vm_events, catalog, horizon=horizon)
            report = calculator.vm_report(periods, service)
            event_rows = [
                {
                    "vm": vm,
                    "event": name,
                    "cdi": calculator.event_level_cdi(periods, service, name),
                    "service_time": service.duration,
                }
                for name in sorted({p.name for p in periods})
            ]
            return {
                "vm_row": {
                    "vm": vm,
                    "unavailability": report.unavailability,
                    "performance": report.performance,
                    "control_plane": report.control_plane,
                    "service_time": report.service_time,
                },
                "event_rows": event_rows,
            }

        in_service = [e for e in events if e.target in services]
        grouped = (
            self._context.parallelize(in_service, name="events")
            .key_by(lambda e: e.target)
            .group_by_key()
        )
        computed = grouped.map(lambda kv: compute_vm(kv)).collect()

        vm_rows = [c["vm_row"] for c in computed]
        seen = {row["vm"] for row in vm_rows}
        for vm, service in services.items():
            if vm not in seen:
                vm_rows.append({
                    "vm": vm, "unavailability": 0.0, "performance": 0.0,
                    "control_plane": 0.0, "service_time": service.duration,
                })
        event_rows = [row for c in computed for row in c["event_rows"]]

        self._tables.get(VM_CDI_TABLE).overwrite_partition(vm_rows, partition)
        self._tables.get(EVENT_CDI_TABLE).overwrite_partition(
            event_rows, partition
        )
        return DailyJobResult(
            partition=partition,
            vm_count=len(vm_rows),
            event_count=len(in_service),
            fleet_report=fleet_report_from_rows(vm_rows),
        )


def fleet_report_from_rows(rows: list[Mapping[str, Any]]) -> CdiReport:
    """Formula 4 aggregation over vm_cdi rows."""
    from repro.core.indicator import aggregate

    total = sum(r["service_time"] for r in rows)
    return CdiReport(
        unavailability=aggregate(
            (r["service_time"], r["unavailability"]) for r in rows
        ),
        performance=aggregate(
            (r["service_time"], r["performance"]) for r in rows
        ),
        control_plane=aggregate(
            (r["service_time"], r["control_plane"]) for r in rows
        ),
        service_time=total,
    )

"""The daily CDI job: the paper's Spark application (Section V).

Reads raw events from the MaxCompute-like events table and the weight
configuration from the MySQL-like config DB, computes per-VM CDI
reports and per-(VM, event) drill-down CDIs on the mini dataset
engine, and writes the two output tables back — the exact dataflow of
Fig. 4.

Two compute paths produce identical tables:

* the **fast path** (default) resolves event periods per VM on the
  engine, then computes every damage integral of the whole fleet —
  all VMs × categories *and* all (VM, event-name) drill-down groups —
  in one vectorized kernel sweep
  (:func:`repro.core.fastpath.fleet_cdi_tables`);
* the **reference path** runs Algorithm 1 per VM per category with
  the pure-Python sweep, then once more per event name — the paper's
  pseudocode executed literally, kept as the correctness oracle.

Output rows are written sorted (by VM, then event name) so reruns,
backends, and compute paths all produce byte-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.events import Event, EventCatalog, Severity
from repro.core.fastpath import (
    FlatInterval,
    ResolverIndex,
    WeightTable,
    fleet_cdi_columns_columnar,
    fleet_cdi_tables_flat,
)
from repro.core.indicator import CdiCalculator, CdiReport, ServicePeriod
from repro.core.periods import resolve_periods
from repro.core.weights import WeightConfig
from repro.engine.dataset import EngineContext
from repro.engine.trace import RunTrace, executor_tracing, trace_span
from repro.pipeline.checkpoint import (
    JobCheckpoint,
    job_fingerprint,
    shard_units,
    split_shards,
)
from repro.pipeline.tables import (
    EVENT_CDI_TABLE,
    EVENTS_TABLE,
    VM_CDI_TABLE,
    event_cdi_schema,
    events_schema,
    vm_cdi_schema,
)
from repro.storage.columns import factorize_block
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore

#: Config DB key holding the serialized weight configuration.
WEIGHTS_CONFIG_KEY = "cdi_weights"


def shard_events_partition(partition: str, unit: str) -> str:
    """Events-table partition holding one VM shard's slice of a day.

    Sharded ingestion (``DailyCdiJob.ingest_events(..., unit=...)`` +
    ``run_checkpointed(..., sharded_events=True)``) stores each
    contiguous VM shard's events under its own partition key, so a
    shard's compute pass scans only its own slice — the full day never
    has to be resident at once.
    """
    return f"{partition}@{unit}"


def event_to_row(event: Event) -> dict[str, Any]:
    """Serialize an event into an events-table row."""
    duration = event.attributes.get("duration")
    return {
        "name": event.name,
        "time": event.time,
        "target": event.target,
        "level": int(event.level),
        "expire_interval": event.expire_interval,
        "duration": float(duration) if duration is not None else None,
    }


#: Value → member lookup; ``Severity(value)`` goes through ``EnumMeta.__call__``
#: which is too slow for the per-event deserialization loop.
_SEVERITY_BY_VALUE = {int(level): level for level in Severity}


def row_to_event(row: Mapping[str, Any]) -> Event:
    """Deserialize an events-table row."""
    duration = row.get("duration")
    attributes = {} if duration is None else {"duration": float(duration)}
    return Event(
        name=row["name"], time=float(row["time"]), target=row["target"],
        expire_interval=float(row["expire_interval"]),
        level=_SEVERITY_BY_VALUE[int(row["level"])], attributes=attributes,
    )


@dataclass(frozen=True, slots=True)
class DailyJobResult:
    """Summary of one daily run."""

    partition: str
    vm_count: int
    event_count: int
    fleet_report: CdiReport


@dataclass(frozen=True)
class _ResolveIntervalsStage:
    """Engine stage: ``(vm, [event rows]) → (vm, [flat intervals])``.

    The fast path's period resolution, fused: stateless rows (the vast
    majority) go straight from table row to weight-resolved interval
    tuple via the precomputed :class:`ResolverIndex` — no ``Event`` or
    ``EventPeriod`` objects — while stateful detail rows fall back to
    the reference pairing in :func:`~repro.core.periods.
    resolve_periods`.  Module-level and built from picklable parts so
    the stage runs on the process backend too.
    """

    catalog: EventCatalog
    weight_table: WeightTable
    index: ResolverIndex
    horizon: float

    def __call__(
        self, part: Iterator[tuple[str, list[Mapping[str, Any]]]]
    ) -> Iterable[tuple[str, list[FlatInterval]]]:
        stateless = self.index.stateless
        stateful_names = self.index.stateful_names
        out: list[tuple[str, list[FlatInterval]]] = []
        for vm, vm_rows in part:
            flat: list[FlatInterval] = []
            stateful_rows: list[Mapping[str, Any]] | None = None
            for row in vm_rows:
                name = row["name"]
                info = stateless.get(name)
                if info is not None:
                    interval = resolve_stateless_row(row, info)
                    if interval is not None:
                        flat.append(interval)
                elif name in stateful_names:
                    if stateful_rows is None:
                        stateful_rows = []
                    stateful_rows.append(row)
            if stateful_rows is not None:
                flat.extend(self._resolve_stateful(stateful_rows))
            out.append((vm, flat))
        return out

    def _resolve_stateful(
        self, rows: list[Mapping[str, Any]]
    ) -> list[FlatInterval]:
        return resolve_stateful_rows(
            rows, self.catalog, self.weight_table, self.horizon
        )


def resolve_stateless_row(
    row: Mapping[str, Any],
    info: tuple[float, Mapping[int, tuple[float, int]]],
) -> FlatInterval | None:
    """One stateless events-table row → weight-resolved flat interval.

    ``info`` is the row's :attr:`ResolverIndex.stateless` entry
    (``(window, {level: (weight, category index)})``).  Returns ``None``
    when the ``(name, level)`` pair has no weight entry (the reference
    calculator's skip), applies the catalog window when the row carries
    no explicit duration, and raises ``ValueError`` on a negative
    explicit duration.  The single definition of stateless resolution,
    shared by the batch fast path (:class:`_ResolveIntervalsStage`) and
    the streaming incremental state
    (:mod:`repro.streaming.state`) — byte-identity between the two
    holds by construction, not by parallel reimplementation.
    """
    entry = info[1].get(row["level"])
    if entry is None:
        return None
    duration = row["duration"]
    if duration is None:
        duration = info[0]
    elif duration < 0:
        raise ValueError(
            f"negative duration {duration} on event {row['name']!r}"
        )
    end = row["time"]
    return (row["name"], entry[0], entry[1], end - duration, end)


def resolve_stateful_rows(
    rows: list[Mapping[str, Any]], catalog: EventCatalog,
    weight_table: WeightTable, horizon: float,
) -> list[FlatInterval]:
    """Reference start/end pairing + weight lookup for stateful rows.

    Shared by the row-wise and columnar fast paths — and by the
    streaming incremental state, which re-pairs a VM's accumulated
    ``*_add``/``*_del`` rows through this exact function whenever a new
    one arrives: stateful detail events are rare, so every path hands
    them to the same reference resolution in
    :func:`~repro.core.periods.resolve_periods`.
    """
    events = [row_to_event(row) for row in rows]
    periods = resolve_periods(events, catalog, horizon=horizon)
    lookup = weight_table.entries.get
    flat: list[FlatInterval] = []
    for period in periods:
        entry = lookup((period.name, period.level))
        if entry is not None:
            flat.append(
                (period.name, entry[0], entry[1], period.start, period.end)
            )
    return flat


@dataclass(frozen=True, slots=True)
class _ResolvedBatch:
    """Per-column-batch output of :class:`_ResolveColumnsStage`.

    Carries the stateless resolution as parallel numpy arrays (indices
    into the batch-local ``names`` table) plus the raw stateful rows,
    which the driver re-resolves through the reference pairing.
    """

    names: tuple[str, ...]
    name_ids: np.ndarray
    vm_idx: np.ndarray
    weights: np.ndarray
    cats: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    event_count: int
    stateful: list[tuple[str, dict[str, Any]]] = field(default_factory=list)


@dataclass(frozen=True)
class _ResolveColumnsStage:
    """Engine stage: ``ColumnBatch → _ResolvedBatch`` (no row dicts).

    The columnar fast path's period resolution: event names and targets
    are factorized with ``np.unique`` once per batch, weight/category/
    window lookups become small per-unique-name tables, and the whole
    batch is resolved with array gathers — the hot loop touches no
    Python object per event.  Stateless semantics (including the
    negative-duration error and the skip of unknown weights/levels) are
    bit-identical to :class:`_ResolveIntervalsStage`; stateful rows are
    reconstructed as dicts and deferred to the driver.
    """

    index: ResolverIndex
    vm_of: Mapping[str, int]

    def __call__(self, part: Iterable[Any]) -> list[_ResolvedBatch]:
        return [self._resolve(batch) for batch in part]

    def _resolve(self, batch: Any) -> _ResolvedBatch:
        size = len(batch)
        if size == 0:
            empty_f = np.empty(0, dtype=np.float64)
            empty_i = np.empty(0, dtype=np.int64)
            return _ResolvedBatch((), empty_i, empty_i.copy(), empty_f,
                                  empty_i.copy(), empty_f.copy(),
                                  empty_f.copy(), 0)
        name_block = batch.column("name")
        target_block = batch.column("target")
        times = np.asarray(batch.values("time"), dtype=np.float64)
        levels = np.asarray(batch.values("level"), dtype=np.int64)
        dur_block = batch.column("duration")
        dur_vals = np.asarray(dur_block.values, dtype=np.float64)
        dur_null = dur_block.null_mask
        if dur_null is None:
            dur_null = np.zeros(size, dtype=np.bool_)

        vm_of = self.vm_of
        uniq_targets, inv_t = factorize_block(target_block)
        target_codes = np.fromiter(
            (vm_of.get(t, -1) for t in uniq_targets.tolist()),
            dtype=np.int64, count=len(uniq_targets),
        )
        vm_idx_all = target_codes[inv_t]
        in_service = vm_idx_all >= 0
        event_count = int(np.count_nonzero(in_service))

        uniq_names, inv_n = factorize_block(name_block)
        num_levels = int(Severity.FATAL) + 1
        k = len(uniq_names)
        windows = np.zeros(k, dtype=np.float64)
        kind = np.zeros(k, dtype=np.int8)  # 0 unknown / 1 stateless / 2 stateful
        has_entry = np.zeros((k, num_levels), dtype=np.bool_)
        weight_lut = np.zeros((k, num_levels), dtype=np.float64)
        cat_lut = np.zeros((k, num_levels), dtype=np.int64)
        stateless = self.index.stateless
        stateful_names = self.index.stateful_names
        names_tuple = tuple(uniq_names.tolist())
        for j, name in enumerate(names_tuple):
            info = stateless.get(name)
            if info is not None:
                kind[j] = 1
                windows[j] = info[0]
                for level, (weight, category) in info[1].items():
                    if 0 <= level < num_levels:
                        has_entry[j, level] = True
                        weight_lut[j, level] = weight
                        cat_lut[j, level] = category
            elif name in stateful_names:
                kind[j] = 2

        kinds_all = kind[inv_n]
        level_ok = (levels >= 0) & (levels < num_levels)
        safe_levels = np.where(level_ok, levels, 0)
        sel = in_service & (kinds_all == 1) & level_ok
        sel &= has_entry[inv_n, safe_levels]

        # The row path raises on a negative *explicit* duration for any
        # stateless in-service event whose (name, level) has a weight
        # entry — reproduce that before building intervals.
        explicit = sel & ~dur_null & (dur_vals < 0)
        if explicit.any():
            bad = int(np.argmax(explicit))
            raise ValueError(
                f"negative duration {float(dur_vals[bad])} on event "
                f"{uniq_names[inv_n[bad]]!r}"
            )

        sel_idx = np.nonzero(sel)[0]
        sel_names = inv_n[sel_idx]
        sel_levels = levels[sel_idx]
        durations = np.where(
            dur_null[sel_idx], windows[sel_names], dur_vals[sel_idx]
        )
        ends = times[sel_idx]

        stateful_rows: list[tuple[str, dict[str, Any]]] = []
        if (kinds_all == 2).any():
            # Decode strings only on this (rare) branch — the hot
            # stateless path never materializes per-row python objects.
            targets = target_block.to_pylist()
            names_col = name_block.to_pylist()
            exp_vals = np.asarray(
                batch.values("expire_interval"), dtype=np.float64
            )
            for i in np.nonzero(in_service & (kinds_all == 2))[0].tolist():
                stateful_rows.append((targets[i], {
                    "name": names_col[i],
                    "time": float(times[i]),
                    "target": targets[i],
                    "level": int(levels[i]),
                    "expire_interval": float(exp_vals[i]),
                    "duration": None if dur_null[i] else float(dur_vals[i]),
                }))

        return _ResolvedBatch(
            names=names_tuple,
            name_ids=np.ascontiguousarray(sel_names, dtype=np.int64),
            vm_idx=np.ascontiguousarray(vm_idx_all[sel_idx], dtype=np.int64),
            weights=weight_lut[sel_names, sel_levels],
            cats=cat_lut[sel_names, sel_levels],
            starts=ends - durations,
            ends=ends,
            event_count=event_count,
            stateful=stateful_rows,
        )


@dataclass(frozen=True)
class _ComputeVmStage:
    """Engine stage of the reference path: full Algorithm 1 per VM.

    Runs the per-category sweep and the per-event-name re-sweep with
    the pure-Python reference implementation; picklable for the
    process backend (the calculator holds only plain dataclasses).
    """

    calculator: CdiCalculator
    services: Mapping[str, ServicePeriod]
    horizon: float

    def __call__(
        self, kv: tuple[str, list[Event]]
    ) -> dict[str, Any]:
        vm, vm_events = kv
        service = self.services[vm]
        periods = resolve_periods(
            vm_events, self.calculator.catalog, horizon=self.horizon
        )
        report = self.calculator.vm_report(periods, service)
        event_rows = [
            {
                "vm": vm,
                "event": name,
                "cdi": self.calculator.event_level_cdi(periods, service, name),
                "service_time": service.duration,
            }
            for name in sorted({p.name for p in periods})
        ]
        return {
            "vm_row": {
                "vm": vm,
                "unavailability": report.unavailability,
                "performance": report.performance,
                "control_plane": report.control_plane,
                "service_time": report.service_time,
            },
            "event_rows": event_rows,
        }


class DailyCdiJob:
    """End-to-end daily computation on the mini engine.

    Parameters
    ----------
    context:
        Engine context (the "100 executors" of Section V, scaled down).
    tables:
        Table store holding ``events`` and receiving the two outputs.
    config_db:
        Config DB holding the weight configuration under
        :data:`WEIGHTS_CONFIG_KEY`.
    catalog:
        Event catalog (name → category/kind/window).
    use_fastpath:
        Default compute path for :meth:`run`.  ``True`` (default) uses
        the vectorized fleet kernel; ``False`` the per-VM reference
        sweep.  Either way the output tables are identical.
    use_columnar:
        When the fast path is active, read the events table through the
        columnar scan (``True``, default) instead of materializing row
        dicts.  Output tables are byte-identical either way.
    """

    def __init__(self, context: EngineContext, tables: TableStore,
                 config_db: ConfigDB, catalog: EventCatalog, *,
                 use_fastpath: bool = True,
                 use_columnar: bool = True) -> None:
        self._context = context
        self._tables = tables
        self._config_db = config_db
        self._catalog = catalog
        self._use_fastpath = use_fastpath
        self._use_columnar = use_columnar
        # (config version → resolved weight table + resolver index);
        # weight resolution is computed once per configuration, not
        # once per run (let alone once per period).
        self._weight_cache: tuple[int, WeightTable, ResolverIndex] | None = None
        for name, schema in (
            (EVENTS_TABLE, events_schema()),
            (VM_CDI_TABLE, vm_cdi_schema()),
            (EVENT_CDI_TABLE, event_cdi_schema()),
        ):
            tables.create(name, schema, if_not_exists=True)

    @property
    def tables(self) -> TableStore:
        """The job's table store (events + the two output tables)."""
        return self._tables

    def output_rows(
        self, partition: str
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """``(vm_cdi, event_cdi)`` rows written for one partition.

        Public read path for downstream consumers (e.g. the backfill
        runner) so they don't reach into the private table store.
        """
        return (
            self._tables.get(VM_CDI_TABLE).rows(partition=partition),
            self._tables.get(EVENT_CDI_TABLE).rows(partition=partition),
        )

    # -- ingestion ---------------------------------------------------------

    def ingest_events(self, events: Iterable[Event], partition: str, *,
                      unit: str | None = None) -> int:
        """Append raw events into the events table (SLS → MaxCompute sync).

        ``unit`` routes the batch into a per-shard events partition
        (:func:`shard_events_partition`) for out-of-core runs: events
        must then be pre-sharded exactly like the VM list that
        ``run_checkpointed(..., sharded_events=True)`` will split.
        """
        if unit is not None:
            partition = shard_events_partition(partition, unit)
        table = self._tables.get(EVENTS_TABLE)
        return table.append([event_to_row(e) for e in events], partition)

    def store_weights(self, weights: WeightConfig) -> None:
        """Persist the weight configuration (ticket model + expert review)."""
        self._config_db.put(WEIGHTS_CONFIG_KEY, weights.to_dict())

    def load_weights(self) -> WeightConfig:
        """Load the latest weight configuration."""
        record = self._config_db.get(WEIGHTS_CONFIG_KEY)
        return WeightConfig.from_dict(record.value)

    def _resolved_weights(self) -> tuple[WeightTable, ResolverIndex]:
        """Weight table + resolver index for the current config version."""
        record = self._config_db.get(WEIGHTS_CONFIG_KEY)
        cached = self._weight_cache
        if cached is not None and cached[0] == record.version:
            return cached[1], cached[2]
        weights = WeightConfig.from_dict(record.value)
        weight_table = WeightTable.from_config(self._catalog, weights)
        index = ResolverIndex.build(self._catalog, weight_table)
        self._weight_cache = (record.version, weight_table, index)
        return weight_table, index

    # -- the job -------------------------------------------------------------

    def run(self, partition: str, services: Mapping[str, ServicePeriod], *,
            use_fastpath: bool | None = None,
            use_columnar: bool | None = None,
            trace: RunTrace | None = None) -> DailyJobResult:
        """Compute and write the two output tables for one day.

        ``services`` maps each VM in service to its service period; VMs
        without any events still contribute zero-CDI rows (their
        service time dilutes the fleet aggregate, Formula 4).
        ``use_fastpath`` / ``use_columnar`` override the job defaults
        for this run.  ``trace`` attaches a
        :class:`~repro.engine.trace.RunTrace` flight recorder for the
        duration of the run: pipeline-stage spans here, node spans and
        attempt records from the engine underneath.
        """
        horizon = max((s.end for s in services.values()), default=0.0)
        fast = self._use_fastpath if use_fastpath is None else use_fastpath
        columnar = (
            self._use_columnar if use_columnar is None else use_columnar
        )
        path = ("columnar" if fast and columnar
                else "fastpath" if fast else "reference")
        with trace_span(trace, f"daily[{partition}]", "pipeline", path=path), \
                executor_tracing(self._context.executor, trace):
            with trace_span(trace, "compute", "stage",
                            vms=len(services)):
                vm_columns, event_columns, event_count = (
                    self._compute_columns(
                        partition, services, horizon, fast, columnar
                    )
                )
            with trace_span(trace, "write_outputs", "stage"):
                return self._write_outputs(
                    partition, vm_columns, event_columns, event_count
                )

    def run_checkpointed(
        self, partition: str, services: Mapping[str, ServicePeriod], *,
        checkpoint: JobCheckpoint, shards: int = 8, resume: bool = True,
        use_fastpath: bool | None = None, use_columnar: bool | None = None,
        sharded_events: bool = False, trace: RunTrace | None = None,
    ) -> DailyJobResult:
        """Fault-tolerant :meth:`run`: compute in VM shards, checkpoint
        each, and resume a killed run from the last completed shard.

        The sorted VM list is split into ``shards`` contiguous shards;
        each shard's output columns are staged durably through
        ``checkpoint`` as soon as it completes.  On ``resume``, shards
        already recorded (under a matching job fingerprint) are **not
        recomputed** — their events are never even re-scanned — and a
        fully finalized checkpoint skips straight to rewriting the
        merged outputs.  Output tables are byte-identical to a plain
        :meth:`run` because the fleet kernel's per-VM results are exact
        per group: sharding only partitions the sweep, never changes
        any value, and contiguous shards concatenate back into the
        canonical global order.

        ``sharded_events=True`` scans each shard's events from its own
        partition (:func:`shard_events_partition`) instead of the whole
        day's — the out-of-core mode.  The caller must have ingested
        events with matching ``unit`` routing (same contiguous split of
        the same sorted VM list); the outputs are then still identical
        because every event lands in the shard that owns its target VM
        and off-shard events were dropped by the service filter anyway.
        """
        horizon = max((s.end for s in services.values()), default=0.0)
        fast = self._use_fastpath if use_fastpath is None else use_fastpath
        columnar = (
            self._use_columnar if use_columnar is None else use_columnar
        )
        fingerprint = self.checkpoint_fingerprint(
            partition, services, shards=shards,
            use_fastpath=fast, use_columnar=columnar,
            sharded_events=sharded_events,
        )
        done = checkpoint.ensure(fingerprint, partition, resume=resume)
        vm_list = sorted(services)
        shard_vms = split_shards(vm_list, shards)
        units = shard_units(len(shard_vms))
        path = ("columnar" if fast and columnar
                else "fastpath" if fast else "reference")
        with trace_span(trace, f"daily_checkpointed[{partition}]",
                        "pipeline", path=path, shards=len(shard_vms),
                        resumed=len(done)), \
                executor_tracing(self._context.executor, trace):
            for unit, vms in zip(units, shard_vms):
                if unit in done:
                    continue
                with trace_span(trace, f"shard[{unit}]", "shard",
                                vms=len(vms)):
                    shard_services = {vm: services[vm] for vm in vms}
                    events_partition = (
                        shard_events_partition(partition, unit)
                        if sharded_events else partition
                    )
                    vm_cols, event_cols, count = self._compute_columns(
                        events_partition, shard_services, horizon, fast,
                        columnar,
                    )
                    checkpoint.record_shard(unit, vm_cols, event_cols, count)
            with trace_span(trace, "merge_write", "stage"):
                event_count = sum(checkpoint.completed_units().values())
                vm_columns, event_columns = checkpoint.merged_columns(units)
                result = self._write_outputs(
                    partition, vm_columns, event_columns, event_count
                )
                checkpoint.mark_finalized()
            return result

    def checkpoint_fingerprint(
        self, partition: str, services: Mapping[str, ServicePeriod], *,
        shards: int, use_fastpath: bool | None = None,
        use_columnar: bool | None = None, sharded_events: bool = False,
    ) -> str:
        """Fingerprint of one checkpointed run's inputs.

        Used to decide whether an on-disk checkpoint belongs to the
        same work (same day, services, weight-config version, shard
        count, compute path, and event-partition layout) before
        resuming from it.
        """
        fast = self._use_fastpath if use_fastpath is None else use_fastpath
        columnar = (
            self._use_columnar if use_columnar is None else use_columnar
        )
        path = ("columnar" if fast and columnar
                else "fastpath" if fast else "reference")
        if sharded_events:
            path += "+sharded-events"
        version = self._config_db.get(WEIGHTS_CONFIG_KEY).version
        return job_fingerprint(partition, services, version, shards, path)

    def _write_outputs(self, partition: str, vm_columns: dict[str, list],
                       event_columns: dict[str, list],
                       event_count: int) -> DailyJobResult:
        """Overwrite both output partitions and build the run summary."""
        self._tables.get(VM_CDI_TABLE).overwrite_partition_columns(
            vm_columns, partition
        )
        self._tables.get(EVENT_CDI_TABLE).overwrite_partition_columns(
            event_columns, partition
        )
        return DailyJobResult(
            partition=partition,
            vm_count=len(vm_columns["vm"]),
            event_count=event_count,
            fleet_report=fleet_report_from_columns(vm_columns),
        )

    def _compute_columns(
        self, partition: str, services: Mapping[str, ServicePeriod],
        horizon: float, fast: bool, columnar: bool,
    ) -> tuple[dict[str, list], dict[str, list], int]:
        """One compute pass over ``services``, as output column lists.

        The single entry point behind :meth:`run` and each checkpoint
        shard; all three compute paths produce identical values, and
        the row-producing paths are converted column-major here so the
        write side is uniform.
        """
        if fast and columnar:
            # Column blocks in, column blocks out: the outputs are
            # written through the vectorized columnar validation, never
            # materializing row dicts (values and order are identical
            # to the row paths below).
            return self._run_columnar(partition, services, horizon)
        if fast:
            rows = self._tables.get(EVENTS_TABLE).rows(
                partition=partition, copy=False
            )
            # Every VM in service goes through the kernel (eventless VMs
            # contribute zero records and come back as zero rows), in
            # sorted order — so vm_rows needs no fill pass and no sort,
            # and event_rows arrives pre-grouped by VM.
            grouped: dict[str, list[dict[str, Any]]] = {
                vm: [] for vm in sorted(services)
            }
            event_count = 0
            for row in rows:
                bucket = grouped.get(row["target"])
                if bucket is not None:
                    event_count += 1
                    bucket.append(row)
            vm_rows, event_rows = self._run_fastpath(
                grouped, services, horizon
            )
        else:
            rows = self._tables.get(EVENTS_TABLE).rows(
                partition=partition, copy=False
            )
            weights = self.load_weights()
            events = [row_to_event(row) for row in rows]
            in_service = [e for e in events if e.target in services]
            event_count = len(in_service)
            vm_rows, event_rows = self._run_reference(
                in_service, services, weights, horizon
            )
            seen = {row["vm"] for row in vm_rows}
            for vm, service in services.items():
                if vm not in seen:
                    vm_rows.append({
                        "vm": vm, "unavailability": 0.0, "performance": 0.0,
                        "control_plane": 0.0, "service_time": service.duration,
                    })
            vm_rows.sort(key=_vm_row_key)
        event_rows.sort(key=_event_row_key)
        return (
            _rows_to_columns(vm_rows, vm_cdi_schema().names),
            _rows_to_columns(event_rows, event_cdi_schema().names),
            event_count,
        )

    def _run_fastpath(
        self, grouped: Mapping[str, list[dict[str, Any]]],
        services: Mapping[str, ServicePeriod], horizon: float,
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """Distributed fused resolution + one fleet kernel sweep."""
        weight_table, index = self._resolved_weights()
        stage = _ResolveIntervalsStage(
            self._catalog, weight_table, index, horizon
        )
        resolved = (
            self._context.parallelize(list(grouped.items()), name="events")
            .map_partitions(stage, name="resolve_intervals")
            .collect()
        )
        tables = fleet_cdi_tables_flat(resolved, services)
        return tables.vm_rows, tables.event_rows

    def _run_columnar(
        self, partition: str, services: Mapping[str, ServicePeriod],
        horizon: float,
    ) -> tuple[dict[str, list], dict[str, list], int]:
        """Columnar fast path: column-batch scan → vectorized kernel.

        The events table is scanned as typed column blocks (no row
        dicts), each engine partition resolves its batch with array
        gathers, and the per-batch name tables are merged into one
        global table before the fleet kernel sweep.  Stateful detail
        rows (rare) fall back to the reference pairing per VM.  Returns
        the two output tables as column value lists in canonical order.
        """
        weight_table, index = self._resolved_weights()
        vm_list = sorted(services)
        vm_of = {vm: i for i, vm in enumerate(vm_list)}
        stage = _ResolveColumnsStage(index, vm_of)
        resolved = (
            self._context.scan_columns(
                self._tables.get(EVENTS_TABLE), partition=partition,
                name="events_columns",
            )
            .map_partitions(stage, name="resolve_columns")
            .collect()
        )

        name_of: dict[str, int] = {}
        names_list: list[str] = []
        vm_parts: list[np.ndarray] = []
        nid_parts: list[np.ndarray] = []
        w_parts: list[np.ndarray] = []
        c_parts: list[np.ndarray] = []
        s_parts: list[np.ndarray] = []
        e_parts: list[np.ndarray] = []
        stateful_by_vm: dict[str, list[dict[str, Any]]] = {}
        event_count = 0
        for bundle in resolved:
            event_count += bundle.event_count
            if len(bundle.name_ids):
                # Remap batch-local name ids onto the global name table.
                lut = np.empty(len(bundle.names), dtype=np.int64)
                for j, name in enumerate(bundle.names):
                    gid = name_of.get(name)
                    if gid is None:
                        gid = len(names_list)
                        name_of[name] = gid
                        names_list.append(name)
                    lut[j] = gid
                nid_parts.append(lut[bundle.name_ids])
                vm_parts.append(bundle.vm_idx)
                w_parts.append(bundle.weights)
                c_parts.append(bundle.cats)
                s_parts.append(bundle.starts)
                e_parts.append(bundle.ends)
            for vm, row in bundle.stateful:
                stateful_by_vm.setdefault(vm, []).append(row)

        if stateful_by_vm:
            st_vm: list[int] = []
            st_nid: list[int] = []
            st_w: list[float] = []
            st_c: list[int] = []
            st_s: list[float] = []
            st_e: list[float] = []
            for vm, vm_rows_ in stateful_by_vm.items():
                flat = resolve_stateful_rows(
                    vm_rows_, self._catalog, weight_table, horizon
                )
                vm_i = vm_of[vm]
                for name, weight, category, start, end in flat:
                    gid = name_of.get(name)
                    if gid is None:
                        gid = len(names_list)
                        name_of[name] = gid
                        names_list.append(name)
                    st_vm.append(vm_i)
                    st_nid.append(gid)
                    st_w.append(weight)
                    st_c.append(category)
                    st_s.append(start)
                    st_e.append(end)
            vm_parts.append(np.array(st_vm, dtype=np.int64))
            nid_parts.append(np.array(st_nid, dtype=np.int64))
            w_parts.append(np.array(st_w, dtype=np.float64))
            c_parts.append(np.array(st_c, dtype=np.int64))
            s_parts.append(np.array(st_s, dtype=np.float64))
            e_parts.append(np.array(st_e, dtype=np.float64))

        if vm_parts:
            vm_idx = np.concatenate(vm_parts)
            name_ids = np.concatenate(nid_parts)
            weights = np.concatenate(w_parts)
            cats = np.concatenate(c_parts)
            starts = np.concatenate(s_parts)
            ends = np.concatenate(e_parts)
        else:
            vm_idx = np.empty(0, dtype=np.int64)
            name_ids = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
            cats = np.empty(0, dtype=np.int64)
            starts = np.empty(0, dtype=np.float64)
            ends = np.empty(0, dtype=np.float64)

        svc_starts = np.array(
            [services[vm].start for vm in vm_list], dtype=np.float64
        )
        svc_ends = np.array(
            [services[vm].end for vm in vm_list], dtype=np.float64
        )
        columns = fleet_cdi_columns_columnar(
            vm_list, svc_starts, svc_ends, vm_idx, name_ids, names_list,
            weights, cats, starts, ends,
        )
        return columns.vm_columns, columns.event_columns, event_count

    def _run_reference(
        self, in_service: list[Event],
        services: Mapping[str, ServicePeriod],
        weights: WeightConfig, horizon: float,
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """Algorithm 1 executed literally, per VM per category per name."""
        calculator = CdiCalculator(self._catalog, weights)
        grouped = (
            self._context.parallelize(in_service, name="events")
            .key_by(_event_target)
            .group_by_key()
        )
        stage = _ComputeVmStage(calculator, dict(services), horizon)
        computed = grouped.map(stage).collect()
        vm_rows = [c["vm_row"] for c in computed]
        event_rows = [row for c in computed for row in c["event_rows"]]
        return vm_rows, event_rows


def _event_target(event: Event) -> str:
    """Shuffle key of the reference path (picklable module function)."""
    return event.target


def _rows_to_columns(rows: list[dict[str, Any]],
                     names: Sequence[str]) -> dict[str, list]:
    """Row dicts → column value lists, preserving row order."""
    return {name: [row[name] for row in rows] for name in names}


#: Deterministic output orders (C-level key extraction for the sorts).
_vm_row_key = itemgetter("vm")
_event_row_key = itemgetter("vm", "event")


def fleet_report_from_rows(rows: list[Mapping[str, Any]]) -> CdiReport:
    """Formula 4 aggregation over vm_cdi rows.

    One fused pass accumulating the three numerators and the shared
    service-time denominator in row order — float-identical to calling
    :func:`repro.core.indicator.aggregate` per category.
    """
    num_u = num_p = num_c = total = 0.0
    for r in rows:
        service_time = r["service_time"]
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        num_u += service_time * r["unavailability"]
        num_p += service_time * r["performance"]
        num_c += service_time * r["control_plane"]
        total += service_time
    if total == 0.0:
        return CdiReport(unavailability=0.0, performance=0.0,
                         control_plane=0.0, service_time=total)
    return CdiReport(
        unavailability=num_u / total,
        performance=num_p / total,
        control_plane=num_c / total,
        service_time=total,
    )


def fleet_report_from_columns(columns: Mapping[str, list]) -> CdiReport:
    """Formula 4 over vm_cdi *columns* — same accumulation order and
    scalar operations as :func:`fleet_report_from_rows`, so both paths
    produce the identical report (not a numpy sum: pairwise summation
    would round differently)."""
    num_u = num_p = num_c = total = 0.0
    for service_time, u, p, c in zip(
        columns["service_time"], columns["unavailability"],
        columns["performance"], columns["control_plane"],
    ):
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        num_u += service_time * u
        num_p += service_time * p
        num_c += service_time * c
        total += service_time
    if total == 0.0:
        return CdiReport(unavailability=0.0, performance=0.0,
                         control_plane=0.0, service_time=total)
    return CdiReport(
        unavailability=num_u / total,
        performance=num_p / total,
        control_plane=num_c / total,
        service_time=total,
    )

"""The daily CDI job: the paper's Spark application (Section V).

Reads raw events from the MaxCompute-like events table and the weight
configuration from the MySQL-like config DB, computes per-VM CDI
reports and per-(VM, event) drill-down CDIs on the mini dataset
engine, and writes the two output tables back — the exact dataflow of
Fig. 4.

Two compute paths produce identical tables:

* the **fast path** (default) resolves event periods per VM on the
  engine, then computes every damage integral of the whole fleet —
  all VMs × categories *and* all (VM, event-name) drill-down groups —
  in one vectorized kernel sweep
  (:func:`repro.core.fastpath.fleet_cdi_tables`);
* the **reference path** runs Algorithm 1 per VM per category with
  the pure-Python sweep, then once more per event name — the paper's
  pseudocode executed literally, kept as the correctness oracle.

Output rows are written sorted (by VM, then event name) so reruns,
backends, and compute paths all produce byte-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Iterable, Iterator, Mapping

from repro.core.events import Event, EventCatalog, Severity
from repro.core.fastpath import (
    FlatInterval,
    ResolverIndex,
    WeightTable,
    fleet_cdi_tables_flat,
)
from repro.core.indicator import CdiCalculator, CdiReport, ServicePeriod
from repro.core.periods import resolve_periods
from repro.core.weights import WeightConfig
from repro.engine.dataset import EngineContext
from repro.pipeline.tables import (
    EVENT_CDI_TABLE,
    EVENTS_TABLE,
    VM_CDI_TABLE,
    event_cdi_schema,
    events_schema,
    vm_cdi_schema,
)
from repro.storage.configdb import ConfigDB
from repro.storage.table import TableStore

#: Config DB key holding the serialized weight configuration.
WEIGHTS_CONFIG_KEY = "cdi_weights"


def event_to_row(event: Event) -> dict[str, Any]:
    """Serialize an event into an events-table row."""
    duration = event.attributes.get("duration")
    return {
        "name": event.name,
        "time": event.time,
        "target": event.target,
        "level": int(event.level),
        "expire_interval": event.expire_interval,
        "duration": float(duration) if duration is not None else None,
    }


#: Value → member lookup; ``Severity(value)`` goes through ``EnumMeta.__call__``
#: which is too slow for the per-event deserialization loop.
_SEVERITY_BY_VALUE = {int(level): level for level in Severity}


def row_to_event(row: Mapping[str, Any]) -> Event:
    """Deserialize an events-table row."""
    duration = row.get("duration")
    attributes = {} if duration is None else {"duration": float(duration)}
    return Event(
        name=row["name"], time=float(row["time"]), target=row["target"],
        expire_interval=float(row["expire_interval"]),
        level=_SEVERITY_BY_VALUE[int(row["level"])], attributes=attributes,
    )


@dataclass(frozen=True, slots=True)
class DailyJobResult:
    """Summary of one daily run."""

    partition: str
    vm_count: int
    event_count: int
    fleet_report: CdiReport


@dataclass(frozen=True)
class _ResolveIntervalsStage:
    """Engine stage: ``(vm, [event rows]) → (vm, [flat intervals])``.

    The fast path's period resolution, fused: stateless rows (the vast
    majority) go straight from table row to weight-resolved interval
    tuple via the precomputed :class:`ResolverIndex` — no ``Event`` or
    ``EventPeriod`` objects — while stateful detail rows fall back to
    the reference pairing in :func:`~repro.core.periods.
    resolve_periods`.  Module-level and built from picklable parts so
    the stage runs on the process backend too.
    """

    catalog: EventCatalog
    weight_table: WeightTable
    index: ResolverIndex
    horizon: float

    def __call__(
        self, part: Iterator[tuple[str, list[Mapping[str, Any]]]]
    ) -> Iterable[tuple[str, list[FlatInterval]]]:
        stateless = self.index.stateless
        stateful_names = self.index.stateful_names
        out: list[tuple[str, list[FlatInterval]]] = []
        for vm, vm_rows in part:
            flat: list[FlatInterval] = []
            stateful_rows: list[Mapping[str, Any]] | None = None
            for row in vm_rows:
                name = row["name"]
                info = stateless.get(name)
                if info is not None:
                    entry = info[1].get(row["level"])
                    if entry is None:
                        continue
                    duration = row["duration"]
                    if duration is None:
                        duration = info[0]
                    elif duration < 0:
                        raise ValueError(
                            f"negative duration {duration} on event {name!r}"
                        )
                    end = row["time"]
                    flat.append((name, entry[0], entry[1], end - duration, end))
                elif name in stateful_names:
                    if stateful_rows is None:
                        stateful_rows = []
                    stateful_rows.append(row)
            if stateful_rows is not None:
                flat.extend(self._resolve_stateful(stateful_rows))
            out.append((vm, flat))
        return out

    def _resolve_stateful(
        self, rows: list[Mapping[str, Any]]
    ) -> list[FlatInterval]:
        events = [row_to_event(row) for row in rows]
        periods = resolve_periods(events, self.catalog, horizon=self.horizon)
        lookup = self.weight_table.entries.get
        flat: list[FlatInterval] = []
        for period in periods:
            entry = lookup((period.name, period.level))
            if entry is not None:
                flat.append(
                    (period.name, entry[0], entry[1], period.start, period.end)
                )
        return flat


@dataclass(frozen=True)
class _ComputeVmStage:
    """Engine stage of the reference path: full Algorithm 1 per VM.

    Runs the per-category sweep and the per-event-name re-sweep with
    the pure-Python reference implementation; picklable for the
    process backend (the calculator holds only plain dataclasses).
    """

    calculator: CdiCalculator
    services: Mapping[str, ServicePeriod]
    horizon: float

    def __call__(
        self, kv: tuple[str, list[Event]]
    ) -> dict[str, Any]:
        vm, vm_events = kv
        service = self.services[vm]
        periods = resolve_periods(
            vm_events, self.calculator.catalog, horizon=self.horizon
        )
        report = self.calculator.vm_report(periods, service)
        event_rows = [
            {
                "vm": vm,
                "event": name,
                "cdi": self.calculator.event_level_cdi(periods, service, name),
                "service_time": service.duration,
            }
            for name in sorted({p.name for p in periods})
        ]
        return {
            "vm_row": {
                "vm": vm,
                "unavailability": report.unavailability,
                "performance": report.performance,
                "control_plane": report.control_plane,
                "service_time": report.service_time,
            },
            "event_rows": event_rows,
        }


class DailyCdiJob:
    """End-to-end daily computation on the mini engine.

    Parameters
    ----------
    context:
        Engine context (the "100 executors" of Section V, scaled down).
    tables:
        Table store holding ``events`` and receiving the two outputs.
    config_db:
        Config DB holding the weight configuration under
        :data:`WEIGHTS_CONFIG_KEY`.
    catalog:
        Event catalog (name → category/kind/window).
    use_fastpath:
        Default compute path for :meth:`run`.  ``True`` (default) uses
        the vectorized fleet kernel; ``False`` the per-VM reference
        sweep.  Either way the output tables are identical.
    """

    def __init__(self, context: EngineContext, tables: TableStore,
                 config_db: ConfigDB, catalog: EventCatalog, *,
                 use_fastpath: bool = True) -> None:
        self._context = context
        self._tables = tables
        self._config_db = config_db
        self._catalog = catalog
        self._use_fastpath = use_fastpath
        # (config version → resolved weight table + resolver index);
        # weight resolution is computed once per configuration, not
        # once per run (let alone once per period).
        self._weight_cache: tuple[int, WeightTable, ResolverIndex] | None = None
        for name, schema in (
            (EVENTS_TABLE, events_schema()),
            (VM_CDI_TABLE, vm_cdi_schema()),
            (EVENT_CDI_TABLE, event_cdi_schema()),
        ):
            tables.create(name, schema, if_not_exists=True)

    # -- ingestion ---------------------------------------------------------

    def ingest_events(self, events: list[Event], partition: str) -> int:
        """Append raw events into the events table (SLS → MaxCompute sync)."""
        table = self._tables.get(EVENTS_TABLE)
        return table.append([event_to_row(e) for e in events], partition)

    def store_weights(self, weights: WeightConfig) -> None:
        """Persist the weight configuration (ticket model + expert review)."""
        self._config_db.put(WEIGHTS_CONFIG_KEY, weights.to_dict())

    def load_weights(self) -> WeightConfig:
        """Load the latest weight configuration."""
        record = self._config_db.get(WEIGHTS_CONFIG_KEY)
        return WeightConfig.from_dict(record.value)

    def _resolved_weights(self) -> tuple[WeightTable, ResolverIndex]:
        """Weight table + resolver index for the current config version."""
        record = self._config_db.get(WEIGHTS_CONFIG_KEY)
        cached = self._weight_cache
        if cached is not None and cached[0] == record.version:
            return cached[1], cached[2]
        weights = WeightConfig.from_dict(record.value)
        weight_table = WeightTable.from_config(self._catalog, weights)
        index = ResolverIndex.build(self._catalog, weight_table)
        self._weight_cache = (record.version, weight_table, index)
        return weight_table, index

    # -- the job -------------------------------------------------------------

    def run(self, partition: str, services: Mapping[str, ServicePeriod], *,
            use_fastpath: bool | None = None) -> DailyJobResult:
        """Compute and write the two output tables for one day.

        ``services`` maps each VM in service to its service period; VMs
        without any events still contribute zero-CDI rows (their
        service time dilutes the fleet aggregate, Formula 4).
        ``use_fastpath`` overrides the job default for this run.
        """
        rows = self._tables.get(EVENTS_TABLE).rows(
            partition=partition, copy=False
        )
        horizon = max((s.end for s in services.values()), default=0.0)

        fast = self._use_fastpath if use_fastpath is None else use_fastpath
        if fast:
            # Every VM in service goes through the kernel (eventless VMs
            # contribute zero records and come back as zero rows), in
            # sorted order — so vm_rows needs no fill pass and no sort,
            # and event_rows arrives pre-grouped by VM.
            grouped: dict[str, list[dict[str, Any]]] = {
                vm: [] for vm in sorted(services)
            }
            event_count = 0
            for row in rows:
                bucket = grouped.get(row["target"])
                if bucket is not None:
                    event_count += 1
                    bucket.append(row)
            vm_rows, event_rows = self._run_fastpath(
                grouped, services, horizon
            )
        else:
            weights = self.load_weights()
            events = [row_to_event(row) for row in rows]
            in_service = [e for e in events if e.target in services]
            event_count = len(in_service)
            vm_rows, event_rows = self._run_reference(
                in_service, services, weights, horizon
            )
            seen = {row["vm"] for row in vm_rows}
            for vm, service in services.items():
                if vm not in seen:
                    vm_rows.append({
                        "vm": vm, "unavailability": 0.0, "performance": 0.0,
                        "control_plane": 0.0, "service_time": service.duration,
                    })
            vm_rows.sort(key=_vm_row_key)
        event_rows.sort(key=_event_row_key)

        self._tables.get(VM_CDI_TABLE).overwrite_partition(vm_rows, partition)
        self._tables.get(EVENT_CDI_TABLE).overwrite_partition(
            event_rows, partition
        )
        return DailyJobResult(
            partition=partition,
            vm_count=len(vm_rows),
            event_count=event_count,
            fleet_report=fleet_report_from_rows(vm_rows),
        )

    def _run_fastpath(
        self, grouped: Mapping[str, list[dict[str, Any]]],
        services: Mapping[str, ServicePeriod], horizon: float,
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """Distributed fused resolution + one fleet kernel sweep."""
        weight_table, index = self._resolved_weights()
        stage = _ResolveIntervalsStage(
            self._catalog, weight_table, index, horizon
        )
        resolved = (
            self._context.parallelize(list(grouped.items()), name="events")
            .map_partitions(stage, name="resolve_intervals")
            .collect()
        )
        tables = fleet_cdi_tables_flat(resolved, services)
        return tables.vm_rows, tables.event_rows

    def _run_reference(
        self, in_service: list[Event],
        services: Mapping[str, ServicePeriod],
        weights: WeightConfig, horizon: float,
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """Algorithm 1 executed literally, per VM per category per name."""
        calculator = CdiCalculator(self._catalog, weights)
        grouped = (
            self._context.parallelize(in_service, name="events")
            .key_by(_event_target)
            .group_by_key()
        )
        stage = _ComputeVmStage(calculator, dict(services), horizon)
        computed = grouped.map(stage).collect()
        vm_rows = [c["vm_row"] for c in computed]
        event_rows = [row for c in computed for row in c["event_rows"]]
        return vm_rows, event_rows


def _event_target(event: Event) -> str:
    """Shuffle key of the reference path (picklable module function)."""
    return event.target


#: Deterministic output orders (C-level key extraction for the sorts).
_vm_row_key = itemgetter("vm")
_event_row_key = itemgetter("vm", "event")


def fleet_report_from_rows(rows: list[Mapping[str, Any]]) -> CdiReport:
    """Formula 4 aggregation over vm_cdi rows.

    One fused pass accumulating the three numerators and the shared
    service-time denominator in row order — float-identical to calling
    :func:`repro.core.indicator.aggregate` per category.
    """
    num_u = num_p = num_c = total = 0.0
    for r in rows:
        service_time = r["service_time"]
        if service_time < 0:
            raise ValueError(f"negative service time {service_time}")
        num_u += service_time * r["unavailability"]
        num_p += service_time * r["performance"]
        num_c += service_time * r["control_plane"]
        total += service_time
    if total == 0.0:
        return CdiReport(unavailability=0.0, performance=0.0,
                         control_plane=0.0, service_time=total)
    return CdiReport(
        unavailability=num_u / total,
        performance=num_p / total,
        control_plane=num_c / total,
        service_time=total,
    )

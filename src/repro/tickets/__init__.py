"""Ticket classification (PAI model stand-in)."""

from repro.tickets.classifier import (
    NaiveBayesTicketClassifier,
    Prediction,
    tokenize,
    train_default_classifier,
)

__all__ = [
    "NaiveBayesTicketClassifier",
    "Prediction",
    "tokenize",
    "train_default_classifier",
]

"""Multinomial naive-Bayes ticket classifier (PAI model stand-in).

The production deployment runs a ticket classification model on
Platform for AI (paper Fig. 4); its outputs drive both the Fig. 2
ticket distribution and the customer weight perspective.  This is a
from-scratch multinomial naive Bayes over bag-of-words features with
Laplace smoothing — small, interpretable, and dependency-free.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.events import EventCategory

_TOKEN_RE = re.compile(r"[a-z]+")


def tokenize(text: str) -> list[str]:
    """Lower-cased alphabetic tokens."""
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True, slots=True)
class Prediction:
    """Classifier output for one document."""

    category: EventCategory
    log_scores: dict[EventCategory, float]


class NaiveBayesTicketClassifier:
    """Multinomial naive Bayes with Laplace smoothing."""

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        self._alpha = alpha
        self._priors: dict[EventCategory, float] = {}
        self._word_log_probs: dict[EventCategory, dict[str, float]] = {}
        self._default_log_prob: dict[EventCategory, float] = {}
        self._vocabulary: set[str] = set()

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self._priors)

    def fit(self, documents: Sequence[str],
            labels: Sequence[EventCategory]) -> "NaiveBayesTicketClassifier":
        """Train on labelled ticket texts; returns self."""
        if len(documents) != len(labels):
            raise ValueError(
                f"got {len(documents)} documents but {len(labels)} labels"
            )
        if not documents:
            raise ValueError("training set must be non-empty")
        class_docs: dict[EventCategory, int] = Counter()
        class_words: dict[EventCategory, Counter] = {}
        for text, label in zip(documents, labels):
            class_docs[label] += 1
            class_words.setdefault(label, Counter()).update(tokenize(text))
        self._vocabulary = {
            word for counter in class_words.values() for word in counter
        }
        vocab_size = max(1, len(self._vocabulary))
        total_docs = len(documents)
        self._priors = {
            label: math.log(count / total_docs)
            for label, count in class_docs.items()
        }
        self._word_log_probs = {}
        self._default_log_prob = {}
        for label, counter in class_words.items():
            total_words = sum(counter.values())
            denominator = total_words + self._alpha * vocab_size
            self._word_log_probs[label] = {
                word: math.log((counter[word] + self._alpha) / denominator)
                for word in self._vocabulary
            }
            self._default_log_prob[label] = math.log(self._alpha / denominator)
        return self

    def predict_one(self, text: str) -> Prediction:
        """Classify one ticket text."""
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted")
        tokens = tokenize(text)
        scores: dict[EventCategory, float] = {}
        for label, prior in self._priors.items():
            word_probs = self._word_log_probs[label]
            default = self._default_log_prob[label]
            scores[label] = prior + sum(
                word_probs.get(token, default) for token in tokens
            )
        best = max(scores, key=lambda label: scores[label])
        return Prediction(category=best, log_scores=scores)

    def predict(self, texts: Iterable[str]) -> list[EventCategory]:
        """Classify many ticket texts."""
        return [self.predict_one(text).category for text in texts]

    def accuracy(self, texts: Sequence[str],
                 labels: Sequence[EventCategory]) -> float:
        """Fraction of correct predictions on a labelled set."""
        if not texts:
            raise ValueError("evaluation set must be non-empty")
        predictions = self.predict(texts)
        correct = sum(1 for p, l in zip(predictions, labels) if p is l)
        return correct / len(texts)


def train_default_classifier(seed: int = 7,
                             samples_per_category: int = 200
                             ) -> NaiveBayesTicketClassifier:
    """Train a classifier on synthetic labelled tickets.

    Stands in for the production model trained on historical labelled
    tickets; used by the Fig. 2 benchmark and the daily pipeline.
    """
    from repro.telemetry.tickets import TicketGenerator

    generator = TicketGenerator(
        seed=seed,
        mixture={category: 1.0 for category in EventCategory},
    )
    tickets = generator.generate(
        samples_per_category * len(EventCategory), targets=["training"]
    )
    texts = [ticket.text for ticket in tickets]
    labels = [ticket.category for ticket in tickets]
    return NaiveBayesTicketClassifier().fit(texts, labels)

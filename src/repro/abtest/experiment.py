"""A/B testing of operation actions on CDI (paper Section VI-D).

When a rule has several candidate actions, an A/B test assigns each
hit VM one action by a predefined probability distribution, then
collects the VM's CDI over the following days.  The result is one CDI
sequence per action per sub-metric, ready for the Fig. 10 hypothesis
workflow.  Including a null action evaluates the rule itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.events import EventCategory
from repro.core.indicator import CdiReport


@dataclass(frozen=True, slots=True)
class Variant:
    """One candidate action arm."""

    name: str
    probability: float
    description: str = ""


@dataclass(frozen=True, slots=True)
class Observation:
    """One VM's post-action CDI observation."""

    vm: str
    variant: str
    report: CdiReport


@dataclass
class AbExperiment:
    """Randomized assignment plus observation collection.

    ``variants`` probabilities must sum to 1.  Assignment is a
    deterministic function of ``seed`` and arrival order, so reruns of
    a scenario reproduce the same arms.
    """

    rule_name: str
    variants: Sequence[Variant]
    seed: int = 0
    observations: list[Observation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.variants) < 2:
            raise ValueError("an A/B test needs at least 2 variants")
        names = [v.name for v in self.variants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variant names: {names}")
        total = sum(v.probability for v in self.variants)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"variant probabilities sum to {total}, not 1")
        if any(v.probability < 0 for v in self.variants):
            raise ValueError("variant probabilities must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def assign(self, vm: str) -> Variant:
        """Randomly pick the action arm for one rule hit."""
        probabilities = [v.probability for v in self.variants]
        index = int(self._rng.choice(len(self.variants), p=probabilities))
        return self.variants[index]

    def record(self, vm: str, variant: str, report: CdiReport) -> None:
        """Store one VM's post-action CDI report."""
        if variant not in {v.name for v in self.variants}:
            raise KeyError(f"unknown variant {variant!r}")
        self.observations.append(
            Observation(vm=vm, variant=variant, report=report)
        )

    def sequences(self, category: EventCategory
                  ) -> dict[str, list[float]]:
        """Per-variant CDI sequences for one sub-metric.

        "For every action, we have a sequence of CDI values, with each
        element ... corresponding to a VM which has implemented that
        specific action."
        """
        result: dict[str, list[float]] = {v.name: [] for v in self.variants}
        for observation in self.observations:
            result[observation.variant].append(
                observation.report.sub_metric(category)
            )
        return result

    def counts(self) -> Mapping[str, int]:
        """Observation count per variant."""
        counts: dict[str, int] = {v.name: 0 for v in self.variants}
        for observation in self.observations:
            counts[observation.variant] += 1
        return counts

"""A/B testing of operation actions on CDI (paper Section VI-D)."""

from repro.abtest.analysis import (
    ExperimentAnalysis,
    SubMetricAnalysis,
    analyze,
)
from repro.abtest.effectiveness import (
    NULL_VARIANT,
    EffectivenessResult,
    evaluate_rule_effectiveness,
    is_rule_effective,
)
from repro.abtest.experiment import AbExperiment, Observation, Variant

__all__ = [
    "AbExperiment",
    "EffectivenessResult",
    "ExperimentAnalysis",
    "NULL_VARIANT",
    "Observation",
    "SubMetricAnalysis",
    "Variant",
    "analyze",
    "evaluate_rule_effectiveness",
    "is_rule_effective",
]

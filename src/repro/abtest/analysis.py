"""Hypothesis-test analysis of A/B experiments (Table V).

Runs the Fig. 10 workflow once per CDI sub-metric ("we need to carry
out hypothesis testing three times, one for each sub-metric") and
optionally once more on a weighted-sum aggregate, then recommends the
winning action where a significant difference exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.abtest.experiment import AbExperiment
from repro.core.events import EventCategory
from repro.stats.workflow import HypothesisTestWorkflow, WorkflowResult


@dataclass(frozen=True, slots=True)
class SubMetricAnalysis:
    """Table V row: one sub-metric's omnibus + post-hoc outcome.

    ``category`` is ``None`` for the weighted-sum aggregate metric
    (Section VI-D's single-metric alternative).
    """

    category: EventCategory | None
    workflow: WorkflowResult
    means: Mapping[str, float]

    @property
    def significant(self) -> bool:
        """Whether the omnibus test found any difference."""
        return self.workflow.omnibus_significant


@dataclass(frozen=True, slots=True)
class ExperimentAnalysis:
    """Full analysis of one A/B experiment."""

    rule_name: str
    by_category: Mapping[EventCategory, SubMetricAnalysis]
    aggregate: SubMetricAnalysis | None
    recommendation: str | None

    def table(self) -> list[dict]:
        """Table V-shaped rows for reporting."""
        rows = []
        for category, analysis in self.by_category.items():
            row = {
                "sub_metric": category.value,
                "omnibus_pvalue": analysis.workflow.omnibus.pvalue,
                "omnibus_significant": analysis.significant,
                "pairs": [
                    {
                        "pair": f"{a}-{b}",
                        "pvalue": p.pvalue,
                        "significant": p.significant,
                    }
                    for p in analysis.workflow.pairs
                    for a, b in [p.pair]
                ],
            }
            rows.append(row)
        return rows


def analyze(experiment: AbExperiment, *, alpha: float = 0.05,
            min_samples_per_variant: int = 3,
            aggregate_weights: Mapping[EventCategory, float] | None = None,
            ) -> ExperimentAnalysis:
    """Run the Fig. 10 ladder per sub-metric and recommend an action.

    The recommendation picks the variant with the lowest mean on the
    first sub-metric that shows a significant omnibus difference
    (lower CDI = less damage = better) — exactly how Case 8 selects
    Action B from the Performance Indicator.
    """
    workflow = HypothesisTestWorkflow(alpha=alpha)
    by_category: dict[EventCategory, SubMetricAnalysis] = {}
    recommendation: str | None = None

    for category in EventCategory:
        sequences = experiment.sequences(category)
        if any(len(s) < min_samples_per_variant for s in sequences.values()):
            raise ValueError(
                f"every variant needs >= {min_samples_per_variant} "
                f"observations for {category.value}"
            )
        result = workflow.run(sequences)
        means = {name: float(np.mean(s)) for name, s in sequences.items()}
        analysis = SubMetricAnalysis(category=category, workflow=result,
                                     means=means)
        by_category[category] = analysis
        if analysis.significant and recommendation is None:
            recommendation = min(means, key=lambda name: means[name])

    aggregate_analysis: SubMetricAnalysis | None = None
    if aggregate_weights is not None:
        aggregated = _aggregate_sequences(experiment, aggregate_weights)
        result = workflow.run(aggregated)
        means = {name: float(np.mean(s)) for name, s in aggregated.items()}
        aggregate_analysis = SubMetricAnalysis(
            category=None, workflow=result, means=means,
        )
        if aggregate_analysis.significant and recommendation is None:
            recommendation = min(means, key=lambda name: means[name])

    return ExperimentAnalysis(
        rule_name=experiment.rule_name,
        by_category=by_category,
        aggregate=aggregate_analysis,
        recommendation=recommendation,
    )


def _aggregate_sequences(experiment: AbExperiment,
                         weights: Mapping[EventCategory, float]
                         ) -> dict[str, list[float]]:
    """Weighted-sum single-metric sequences (Section VI-D alternative)."""
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("aggregate weights must sum to a positive value")
    sequences: dict[str, list[float]] = {
        v.name: [] for v in experiment.variants
    }
    for observation in experiment.observations:
        value = sum(
            weights.get(category, 0.0)
            * observation.report.sub_metric(category)
            for category in EventCategory
        ) / total
        sequences[observation.variant].append(value)
    return sequences

"""Rule-effectiveness evaluation via a null-action arm (Section VI-D).

"This methodology can also serve to evaluate the effectiveness of the
operation rules if a null action is included as a comparison in the
A/B test."  A rule is effective when at least one real action's CDI is
significantly *lower* than the null (do-nothing) arm's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.abtest.experiment import AbExperiment
from repro.core.events import EventCategory
from repro.stats.workflow import HypothesisTestWorkflow

#: Conventional name of the do-nothing arm.
NULL_VARIANT = "null"


@dataclass(frozen=True, slots=True)
class EffectivenessResult:
    """Rule-effectiveness verdict for one sub-metric."""

    category: EventCategory
    effective: bool
    null_mean: float
    action_means: Mapping[str, float]
    better_actions: tuple[str, ...]  # significantly below null
    omnibus_pvalue: float


def evaluate_rule_effectiveness(
    experiment: AbExperiment, *, null_variant: str = NULL_VARIANT,
    alpha: float = 0.05,
) -> dict[EventCategory, EffectivenessResult]:
    """Per-sub-metric comparison of every action arm against null.

    An action "beats null" when the omnibus test is significant AND the
    post-hoc pair (action, null) is significant AND the action's mean
    CDI is lower than null's.  With exactly two arms (one action plus
    null) the omnibus result itself is the pairwise verdict.
    """
    names = {v.name for v in experiment.variants}
    if null_variant not in names:
        raise KeyError(
            f"experiment has no {null_variant!r} arm; variants: {sorted(names)}"
        )
    workflow = HypothesisTestWorkflow(alpha=alpha)
    results: dict[EventCategory, EffectivenessResult] = {}
    for category in EventCategory:
        sequences = experiment.sequences(category)
        # Emptiness must be judged by len(), not truthiness: numpy
        # arrays raise "truth value is ambiguous" under `if s`.
        means = {name: float(np.mean(s)) if len(s) else float("nan")
                 for name, s in sequences.items()}
        outcome = workflow.run(sequences)
        better: list[str] = []
        if outcome.omnibus_significant:
            if len(names) == 2:
                action = next(n for n in names if n != null_variant)
                if means[action] < means[null_variant]:
                    better.append(action)
            else:
                for pair in outcome.pairs:
                    if not pair.significant or null_variant not in pair.pair:
                        continue
                    action = (pair.pair[0] if pair.pair[1] == null_variant
                              else pair.pair[1])
                    if means[action] < means[null_variant]:
                        better.append(action)
        results[category] = EffectivenessResult(
            category=category,
            effective=bool(better),
            null_mean=means[null_variant],
            action_means={n: m for n, m in means.items()
                          if n != null_variant},
            better_actions=tuple(sorted(better)),
            omnibus_pvalue=outcome.omnibus.pvalue,
        )
    return results


def is_rule_effective(
    results: Mapping[EventCategory, EffectivenessResult]
) -> bool:
    """A rule is worth keeping when it helps on any sub-metric."""
    return any(result.effective for result in results.values())

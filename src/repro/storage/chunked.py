"""Out-of-core table storage: the chunked v3 layout + spill buffers.

The paper's ingest runs at MaxCompute scale — a day of fleet events for
>1M servers never fits one process image — so the store needs two
out-of-core primitives that the whole-file v2 JSON layout cannot give:

* **Chunked v3 files** (:func:`save_table_store_chunked` /
  :func:`load_table_store_chunked`): a JSONL stream — header line,
  per-partition records carrying the partition's string dictionaries,
  fixed-row-count chunk records with the column data, and a footer line
  holding a byte-offset index.  Loading reads *only* the header and
  footer; each partition is attached as a
  :class:`LazyChunkPartition` that seeks straight to its chunk records
  the first time a column is touched, so ``Table._load_blocks`` streams
  a partition block-by-block instead of deserializing the whole store.
  A missing or corrupt footer (a crash mid-write, a truncated copy) is
  detected up front and reported — never silently loaded.

* **Spill-to-disk append buffers** (:class:`SpillTable` /
  :class:`SpillPartition`): a drop-in :class:`~repro.storage.table.Table`
  whose partitions flush their in-memory column buffers to a JSONL
  spool file once the buffered bytes cross a threshold.  Reads
  transparently concatenate the spilled chunks with the in-memory
  tail, preserving append order, so results are identical to a plain
  table — only peak memory changes.

Dictionary-encoded string columns persist as ``int32`` code lists plus
a per-partition dictionary (v3) or per-chunk dictionaries (spool), so
neither writing nor lazy loading materializes per-row strings.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.storage.columns import ColumnBlock, ColumnarPartition
from repro.storage.schema import (
    Column,
    Schema,
    SchemaError,
    schema_from_dict,
    schema_to_dict,
)
from repro.storage.table import Table, TableStore

#: Envelope marker shared by every table-store layout.
STORE_FORMAT = "repro-table-store"
#: Version number of the chunked JSONL layout.
CHUNKED_VERSION = 3
#: Default rows per chunk record written by the v3 writer.
DEFAULT_CHUNK_ROWS = 8192
#: Default in-memory buffer size (bytes) before a partition spills.
DEFAULT_SPILL_BYTES = 32 << 20


# -- v3 writer ---------------------------------------------------------------


def save_table_store_chunked(store: TableStore, path: str | Path, *,
                             chunk_rows: int = DEFAULT_CHUNK_ROWS,
                             atomic: bool = False) -> None:
    """Serialize a table store to the chunked v3 JSONL layout.

    Output is deterministic (tables/partitions in sorted order, columns
    in schema order).  ``atomic=True`` writes through a same-directory
    temp file that is fsynced before ``os.replace``, so a crash
    mid-save can never leave a half-written file under the target name.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    target = Path(path)
    scratch = target.with_name(target.name + ".tmp") if atomic else target
    with open(scratch, "w", encoding="utf-8") as handle:
        _write_chunked_stream(store, handle, chunk_rows)
        if atomic:
            handle.flush()
            os.fsync(handle.fileno())
    if atomic:
        os.replace(scratch, target)


def _write_chunked_stream(store: TableStore, handle: Any,
                          chunk_rows: int) -> None:
    """Emit header, partition/chunk records, and the offset footer."""
    header = {
        "format": STORE_FORMAT,
        "version": CHUNKED_VERSION,
        "layout": "chunked",
        "tables": {
            name: {"schema": schema_to_dict(store.get(name).schema)}
            for name in store.names()
        },
    }
    handle.write(json.dumps(header))
    handle.write("\n")
    index: dict[str, dict[str, Any]] = {}
    for name in store.names():
        table = store.get(name)
        table_index = index[name] = {}
        for partition in table.partitions:
            blocks = table.columns(partition)
            rows = table.count(partition)
            dictionaries = {
                column: list(block.dictionary)
                for column, block in blocks.items()
                if block.codes is not None
            }
            offset = handle.tell()
            handle.write(json.dumps({
                "record": "partition", "table": name, "partition": partition,
                "rows": rows, "dictionaries": dictionaries,
            }))
            handle.write("\n")
            chunk_offsets: list[int] = []
            for start in range(0, rows, chunk_rows):
                stop = min(start + chunk_rows, rows)
                piece = {
                    column: block[start:stop] for column, block in blocks.items()
                }
                chunk_offsets.append(handle.tell())
                handle.write(json.dumps({
                    "record": "chunk", "table": name, "partition": partition,
                    "rows": stop - start,
                    "columns": {
                        column: (block.codes.tolist()
                                 if block.codes is not None
                                 else block.to_pylist())
                        for column, block in piece.items()
                    },
                }))
                handle.write("\n")
            table_index[partition] = {
                "offset": offset, "rows": rows, "chunks": chunk_offsets,
            }
    handle.write(json.dumps({"record": "footer", "index": index}))
    handle.write("\n")


# -- v3 reader ---------------------------------------------------------------


class _RecordReader:
    """Reads one JSONL record at a byte offset of a v3 file.

    Opens per call — lazy partitions materialize at most a handful of
    times, and a shared handle would need locking across threads.
    """

    __slots__ = ("path",)

    def __init__(self, path: Path) -> None:
        self.path = path

    def record(self, offset: int, kind: str) -> dict[str, Any]:
        """Parse the record at ``offset``; verify its ``record`` kind."""
        with open(self.path, encoding="utf-8") as handle:
            handle.seek(offset)
            line = handle.readline()
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"corrupt {kind} record at byte {offset} of {self.path}: "
                f"{error}"
            ) from None
        if payload.get("record") != kind:
            raise ValueError(
                f"expected a {kind} record at byte {offset} of {self.path}, "
                f"found {payload.get('record')!r}"
            )
        return payload


def _read_footer(path: Path) -> dict[str, Any]:
    """Locate and parse the footer line by scanning backward.

    The footer is the integrity seal of a v3 file: the writer emits it
    last, so a truncated or partially-copied file has none — that case
    raises instead of loading whatever chunk records survived.
    """
    block_size = 1 << 16
    with open(path, "rb") as handle:
        handle.seek(0, os.SEEK_END)
        end = handle.tell()
        if end == 0:
            raise ValueError(f"empty chunked table store {path}")
        buffer = b""
        cursor = end
        while cursor > 0:
            step = min(block_size, cursor)
            cursor -= step
            handle.seek(cursor)
            buffer = handle.read(step) + buffer
            stripped = buffer.rstrip(b"\n")
            if b"\n" in stripped or cursor == 0:
                break
    if not buffer.endswith(b"\n"):
        raise ValueError(
            f"chunked table store {path} is truncated (no trailing newline "
            f"after the footer)"
        )
    last_line = buffer.rstrip(b"\n").rsplit(b"\n", 1)[-1]
    try:
        footer = json.loads(last_line)
    except json.JSONDecodeError:
        footer = None
    if not isinstance(footer, dict) or footer.get("record") != "footer":
        raise ValueError(
            f"chunked table store {path} is truncated or corrupt: the last "
            f"line is not a footer record"
        )
    return footer


class LazyChunkPartition(ColumnarPartition):
    """A partition whose column blocks load from chunk records on demand.

    Row count comes from the footer index, so ``len()`` and partition
    pruning work without touching the data.  The first access to a
    column batch-loads every *requested* pending column in one pass
    over the partition's chunk records (the JSON parse dominates, so
    per-column passes would multiply it); loaded blocks are cached as
    ordinary sealed blocks.  Writes force full materialization first —
    an appended-to partition behaves exactly like an in-memory one.
    """

    __slots__ = ("_schema", "_reader", "_part_offset", "_chunk_offsets",
                 "_pending", "_dictionaries")

    def __init__(self, schema: Schema, reader: _RecordReader,
                 rows: int, part_offset: int,
                 chunk_offsets: Sequence[int]) -> None:
        super().__init__(schema.names,
                         {c.name: c.dtype for c in schema.columns})
        self._length = rows
        self._schema = schema
        self._reader = reader
        self._part_offset = part_offset
        self._chunk_offsets = tuple(chunk_offsets)
        self._pending = set(schema.names)
        self._dictionaries: dict[str, list[str]] | None = None

    def _materialize(self, names: Sequence[str]) -> None:
        wanted = [name for name in names if name in self._pending]
        if not wanted:
            return
        if self._dictionaries is None:
            record = self._reader.record(self._part_offset, "partition")
            dictionaries = record.get("dictionaries", {})
            if not isinstance(dictionaries, dict):
                raise ValueError(
                    f"partition record at byte {self._part_offset} of "
                    f"{self._reader.path} has malformed dictionaries"
                )
            self._dictionaries = dictionaries
        chunks = [
            self._reader.record(offset, "chunk")
            for offset in self._chunk_offsets
        ]
        for name in wanted:
            column = self._schema.column(name)
            dictionary = self._dictionaries.get(name)
            if dictionary is not None:
                block = _dictionary_block_from_chunks(
                    column, chunks, dictionary, self._reader.path
                )
            else:
                values = [
                    value
                    for chunk in chunks
                    for value in _chunk_column(chunk, name, self._reader.path)
                ]
                block = column.validate_block(values)
            if len(block) != self._length:
                raise ValueError(
                    f"column {name!r} holds {len(block)} rows but the "
                    f"footer declares {self._length} in {self._reader.path}"
                )
            self._sealed[name] = block
            self._pending.discard(name)

    def block(self, name: str) -> ColumnBlock:
        """Sealed block of one column, loading it from disk if pending."""
        self._materialize([name])
        return super().block(name)

    def blocks(self, names: Sequence[str] | None = None
               ) -> dict[str, ColumnBlock]:
        """Sealed blocks for ``names``, batch-loading pending columns."""
        self._materialize(self._names if names is None else names)
        return super().blocks(names)

    def extend_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Append rows (materializes every column first)."""
        self._materialize(self._names)
        super().extend_rows(rows)

    def extend_blocks(self, blocks: Mapping[str, ColumnBlock],
                      length: int) -> None:
        """Append sealed blocks (materializes every column first)."""
        self._materialize(self._names)
        super().extend_blocks(blocks, length)


def _chunk_column(chunk: Mapping[str, Any], name: str,
                  path: Path) -> list[Any]:
    columns = chunk.get("columns")
    if not isinstance(columns, dict) or name not in columns:
        raise ValueError(
            f"chunk record in {path} is missing column {name!r}"
        )
    return columns[name]


def _dictionary_block_from_chunks(column: Column,
                                  chunks: Sequence[Mapping[str, Any]],
                                  dictionary: Sequence[Any],
                                  path: Path) -> ColumnBlock:
    """Validate and seal a dictionary column from per-chunk code lists."""
    if not all(isinstance(entry, str) for entry in dictionary):
        raise SchemaError(
            f"column {column.name!r} has non-string dictionary entries "
            f"in {path}"
        )
    parts = [
        np.asarray(_chunk_column(chunk, column.name, path), dtype=np.int32)
        for chunk in chunks
    ]
    codes = (np.concatenate(parts) if parts
             else np.empty(0, dtype=np.int32))
    if len(codes):
        low, high = int(codes.min()), int(codes.max())
        if high >= len(dictionary) or low < -1:
            raise ValueError(
                f"column {column.name!r} has codes outside its dictionary "
                f"(range [{low}, {high}], dictionary size "
                f"{len(dictionary)}) in {path}"
            )
        if low < 0 and not column.nullable:
            raise SchemaError(
                f"column {column.name!r} is not nullable"
            )
    return ColumnBlock.from_codes(codes, dictionary)


def load_table_store_chunked(path: str | Path) -> TableStore:
    """Open a v3 chunked file as a lazily-loading table store.

    Reads only the header and footer; every partition is attached as a
    :class:`LazyChunkPartition` holding byte offsets into the file.
    Raises ``ValueError`` for truncated or corrupt files (missing
    footer, bad chunk records) instead of silently loading partial
    data.
    """
    target = Path(path)
    with open(target, encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        raise ValueError(
            f"{target} is not a chunked table store (unparseable header)"
        ) from None
    if header.get("format") != STORE_FORMAT:
        raise ValueError(
            f"unknown table-store format {header.get('format')!r} in {target}"
        )
    if header.get("version") != CHUNKED_VERSION:
        raise ValueError(
            f"unsupported table-store version {header.get('version')!r} in "
            f"{target} (expected {CHUNKED_VERSION})"
        )
    footer = _read_footer(target)
    index = footer.get("index", {})
    reader = _RecordReader(target)
    store = TableStore()
    for name, table_data in header.get("tables", {}).items():
        schema = schema_from_dict(table_data["schema"])
        table = store.create(name, schema)
        for partition, entry in index.get(name, {}).items():
            table.attach_partition(partition, LazyChunkPartition(
                schema, reader, int(entry["rows"]), int(entry["offset"]),
                entry["chunks"],
            ))
    return store


# -- spill-to-disk append buffers --------------------------------------------


def _approx_row_bytes(row: Mapping[str, Any]) -> int:
    """Rough per-row memory footprint used by the spill threshold.

    The threshold bounds order-of-magnitude growth, not exact heap
    bytes, so a cheap estimate (fixed cost per scalar, length-scaled
    for strings) sampled once per append batch is enough.
    """
    total = 0
    for value in row.values():
        if isinstance(value, str):
            total += 56 + len(value)
        else:
            total += 32
    return total


class SpillPartition(ColumnarPartition):
    """A partition that spills its buffers to a spool file under pressure.

    Appends land in the usual in-memory column buffers; once the
    estimated buffered bytes cross ``spill_bytes`` the whole in-memory
    state is flushed as one self-contained chunk record (codes plus an
    inline dictionary for dictionary-encoded columns) appended to the
    spool file.  Reads concatenate the spilled chunks, in append order,
    with the in-memory tail — callers observe a plain partition.
    """

    __slots__ = ("_schema", "_spool_path", "_spill_bytes", "_chunk_offsets",
                 "_spilled_rows", "_buffered_bytes")

    def __init__(self, schema: Schema, spool_path: Path,
                 spill_bytes: int) -> None:
        super().__init__(schema.names,
                         {c.name: c.dtype for c in schema.columns})
        self._schema = schema
        self._spool_path = Path(spool_path)
        self._spill_bytes = int(spill_bytes)
        self._chunk_offsets: list[int] = []
        self._spilled_rows = 0
        self._buffered_bytes = 0

    def __len__(self) -> int:
        return self._spilled_rows + self._length

    @property
    def spilled_rows(self) -> int:
        """Rows currently resident in the spool file (introspection)."""
        return self._spilled_rows

    @property
    def spool_path(self) -> Path:
        """The partition's spool file path (exists only after a spill)."""
        return self._spool_path

    def extend_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Append validated rows, spilling if the buffer crosses the cap."""
        super().extend_rows(rows)
        if rows:
            self._buffered_bytes += _approx_row_bytes(rows[0]) * len(rows)
        self._maybe_spill()

    def extend_blocks(self, blocks: Mapping[str, ColumnBlock],
                      length: int) -> None:
        """Append sealed blocks, spilling if the buffer crosses the cap."""
        super().extend_blocks(blocks, length)
        for block in blocks.values():
            if block.codes is not None:
                self._buffered_bytes += block.codes.nbytes
            elif block.values.dtype == object:
                self._buffered_bytes += 64 * len(block)
            else:
                self._buffered_bytes += block.values.nbytes
        self._maybe_spill()

    def _maybe_spill(self) -> None:
        if self._buffered_bytes >= self._spill_bytes and self._length:
            self._spill()

    def _spill(self) -> None:
        """Flush the entire in-memory state as one spool chunk record."""
        rows = self._length
        columns: dict[str, list[Any]] = {}
        dictionaries: dict[str, list[str]] = {}
        for name in self._names:
            block = ColumnarPartition.block(self, name)
            if block.codes is not None:
                columns[name] = block.codes.tolist()
                dictionaries[name] = list(block.dictionary)
            else:
                columns[name] = block.to_pylist()
        self._spool_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._spool_path, "a", encoding="utf-8") as handle:
            self._chunk_offsets.append(handle.tell())
            handle.write(json.dumps({
                "record": "chunk", "rows": rows, "columns": columns,
                "dictionaries": dictionaries,
            }))
            handle.write("\n")
        self._spilled_rows += rows
        self._sealed = {}
        self._buffers = {name: [] for name in self._names}
        self._length = 0
        self._buffered_bytes = 0

    def _spool_chunks(self) -> list[dict[str, Any]]:
        reader = _RecordReader(self._spool_path)
        return [
            reader.record(offset, "chunk") for offset in self._chunk_offsets
        ]

    def _chunk_block(self, chunk: Mapping[str, Any],
                     name: str) -> ColumnBlock:
        values = _chunk_column(chunk, name, self._spool_path)
        dictionary = chunk.get("dictionaries", {}).get(name)
        if dictionary is not None:
            return ColumnBlock.from_codes(
                np.asarray(values, dtype=np.int32), dictionary
            )
        # Spool chunks hold this process's own validated writes, so the
        # blocks reseal without a second schema pass.
        return ColumnBlock.build(self._dtypes[name], values)

    def block(self, name: str) -> ColumnBlock:
        """One column: spilled chunks + in-memory tail, append order."""
        return self.blocks([name])[name]

    def blocks(self, names: Sequence[str] | None = None
               ) -> dict[str, ColumnBlock]:
        """Requested columns, reading the spool file once for all of them."""
        wanted = tuple(self._names if names is None else names)
        memory = {
            name: ColumnarPartition.block(self, name) for name in wanted
        }
        if not self._chunk_offsets:
            return memory
        chunks = self._spool_chunks()
        return {
            name: ColumnBlock.concat(
                [self._chunk_block(chunk, name) for chunk in chunks]
                + [memory[name]]
            )
            for name in wanted
        }

    def close(self) -> None:
        """Delete the spool file (dropped/overwritten partitions)."""
        self._spool_path.unlink(missing_ok=True)
        self._chunk_offsets = []
        self._spilled_rows = 0


class SpillTable(Table):
    """A :class:`Table` whose partitions spill to disk under pressure.

    ``spool_dir`` receives one spool file per partition object;
    dropping or overwriting a partition deletes its spool file.  The
    daily pipeline's fleet-scale event staging uses this to ingest a
    100k-VM day in bounded memory.
    """

    def __init__(self, name: str, schema: Schema, *,
                 spool_dir: str | Path,
                 spill_bytes: int = DEFAULT_SPILL_BYTES) -> None:
        super().__init__(name, schema)
        self._spool_dir = Path(spool_dir)
        self._spill_bytes = int(spill_bytes)
        self._spool_seq = 0

    def _new_partition(self) -> SpillPartition:
        self._spool_seq += 1
        spool = self._spool_dir / (
            f"{self.name}-{self._spool_seq:06d}.spool.jsonl"
        )
        return SpillPartition(self.schema, spool, self._spill_bytes)

    def _close_spool(self, partition: str) -> None:
        stored = self._partitions.get(partition)
        if isinstance(stored, SpillPartition):
            stored.close()

    def overwrite_partition(self, rows: Any, partition: str) -> int:
        """Replace one partition, deleting the old spool file."""
        self._close_spool(partition)
        return super().overwrite_partition(rows, partition)

    def overwrite_partition_columns(self, columns: Any,
                                    partition: str) -> int:
        """Columnar overwrite, deleting the old spool file."""
        self._close_spool(partition)
        return super().overwrite_partition_columns(columns, partition)

    def drop_partition(self, partition: str) -> None:
        """Drop one partition and its spool file."""
        self._close_spool(partition)
        super().drop_partition(partition)

    def close(self) -> None:
        """Delete every partition's spool file."""
        for partition in list(self._partitions):
            self._close_spool(partition)

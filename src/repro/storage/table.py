"""MaxCompute-like table store.

The production deployment (paper Fig. 4) synchronizes events into a
MaxCompute table for long-term storage, and the daily Spark job writes
two result tables back (per-VM indicators and event-level CDI).  This
module provides the equivalent: schema-validated, partitioned,
append-only tables with predicate scans.

Storage is **columnar**: each partition holds typed column blocks
(:mod:`repro.storage.columns`) — numpy arrays for numeric columns with
validity masks for nullables, object arrays for strings.  The
row-oriented API (:meth:`Table.append`, :meth:`Table.scan`,
:meth:`Table.rows`) is preserved on top of the blocks for existing
callers, while the columnar read path (:meth:`Table.columns`,
:meth:`Table.column_batches`) hands vectorized consumers zero-copy
column arrays with partition and column pruning.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.storage.columns import (
    ColumnBatch,
    ColumnBlock,
    ColumnPredicate,
    ColumnarPartition,
    slice_batches,
)
from repro.storage.schema import Schema, SchemaError

#: Partition key value used for rows appended without a partition.
DEFAULT_PARTITION = "default"


class TableNotFoundError(KeyError):
    """Requested table does not exist in the store."""


class _LazyColumns:
    """Read-only name → :class:`ColumnBlock` view handed to predicates.

    Columns seal lazily through the owning table's block loader, so a
    predicate only pays for (and only counts as touching) the columns
    it actually reads.
    """

    def __init__(self, loader: Callable[[Sequence[str]], Mapping[str, ColumnBlock]]) -> None:
        self._loader = loader
        self._cache: dict[str, ColumnBlock] = {}

    def __getitem__(self, name: str) -> ColumnBlock:
        block = self._cache.get(name)
        if block is None:
            block = self._loader([name])[name]
            self._cache[name] = block
        return block


class Table:
    """One append-only partitioned table.

    Partitions model MaxCompute's ``ds=YYYYMMDD`` date partitions: the
    daily pipeline writes each day into its own partition and scans are
    typically partition-pruned.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._dtypes = {c.name: c.dtype for c in schema.columns}
        self._partitions: dict[str, ColumnarPartition] = {}
        self._generation = 0
        self._partition_generations: dict[str, int] = {}
        self._generation_lock = threading.Lock()

    def _new_partition(self) -> ColumnarPartition:
        return ColumnarPartition(self.schema.names, self._dtypes)

    # -- write generations -----------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic write counter, bumped **after** every table mutation.

        Readers that snapshot ``generation`` *before* reading data can
        stamp derived results with it and later detect staleness: a
        concurrent writer mutates data first and bumps the counter
        second, so a stamp can only ever be *older* than the data it
        was computed from — never newer.  The serving layer's caches
        (:mod:`repro.serving`) are built on this protocol.
        """
        return self._generation

    def partition_generation(self, partition: str) -> int:
        """Generation of the last write that touched ``partition``.

        ``0`` means the partition has never been written (which is also
        its state after creation of the table).  Dropping a partition
        counts as touching it, so cached per-partition results are
        invalidated by drops too.
        """
        return self._partition_generations.get(partition, 0)

    def partition_generations(self, partitions: Sequence[str]) -> tuple[int, ...]:
        """Atomic snapshot of several partitions' generations.

        Taken under the generation lock, so the returned tuple is one
        consistent point in the write history — no writer can bump one
        of the requested partitions halfway through the snapshot.  The
        serving layer's cross-shard merge protocol validates multi-
        partition reads against two such snapshots.
        """
        with self._generation_lock:
            return tuple(
                self._partition_generations.get(p, 0) for p in partitions
            )

    def _bump_generation(self, partition: str) -> None:
        """Record a completed mutation of ``partition`` (call *last*)."""
        with self._generation_lock:
            self._generation += 1
            self._partition_generations[partition] = self._generation

    # -- writes ----------------------------------------------------------------

    def append(self, rows: Iterable[Mapping[str, Any]],
               partition: str = DEFAULT_PARTITION) -> int:
        """Validate and append rows into ``partition``; returns row count.

        Validation is all-or-nothing: a schema violation in any row
        aborts the whole append, leaving the table unchanged.  An empty
        append is a no-op — it does not create the partition.
        """
        validated = self.schema.validate_rows(rows)
        if not validated:
            return 0
        stored = self._partitions.get(partition)
        if stored is None:
            stored = self._partitions[partition] = self._new_partition()
        stored.extend_rows(validated)
        self._bump_generation(partition)
        return len(validated)

    def append_columns(self, columns: Mapping[str, Sequence[Any]],
                       partition: str = DEFAULT_PARTITION) -> int:
        """Columnar write path: validate and append whole columns.

        Validation is vectorized per column
        (:meth:`~repro.storage.schema.Schema.validate_columns`) and
        all-or-nothing like :meth:`append`; zero-row appends are a
        no-op.
        """
        blocks, length = self.schema.validate_columns(columns)
        if length == 0:
            return 0
        stored = self._partitions.get(partition)
        if stored is None:
            stored = self._partitions[partition] = self._new_partition()
        stored.extend_blocks(blocks, length)
        self._bump_generation(partition)
        return length

    def overwrite_partition(self, rows: Iterable[Mapping[str, Any]],
                            partition: str) -> int:
        """Replace the contents of one partition (idempotent daily write)."""
        validated = self.schema.validate_rows(rows)
        replacement = self._new_partition()
        replacement.extend_rows(validated)
        self._partitions[partition] = replacement
        self._bump_generation(partition)
        return len(validated)

    def overwrite_partition_columns(self, columns: Mapping[str, Sequence[Any]],
                                    partition: str) -> int:
        """Columnar :meth:`overwrite_partition` (keeps empty partitions)."""
        blocks, length = self.schema.validate_columns(columns)
        replacement = self._new_partition()
        replacement.extend_blocks(blocks, length)
        self._partitions[partition] = replacement
        self._bump_generation(partition)
        return length

    def attach_partition(self, partition: str,
                         stored: ColumnarPartition) -> None:
        """Install a pre-built partition object (loader hook).

        The chunked persistence loader attaches lazily-materializing
        partitions here instead of round-tripping values through the
        validators eagerly; ``stored`` must already match the table
        schema.  Counts as a mutation of ``partition``.
        """
        self._partitions[partition] = stored
        self._bump_generation(partition)

    def drop_partition(self, partition: str) -> None:
        """Remove one partition; missing partitions are a no-op."""
        if self._partitions.pop(partition, None) is not None:
            self._bump_generation(partition)

    # -- reads -----------------------------------------------------------------

    @property
    def partitions(self) -> list[str]:
        """Existing partition keys, sorted."""
        return sorted(self._partitions)

    def _load_blocks(self, partition: str,
                     names: Sequence[str]) -> dict[str, ColumnBlock]:
        """Seal and return the requested blocks of one partition.

        Every block access — row scans included — funnels through this
        method, so subclasses can instrument it to verify partition and
        column pruning (no other partition's blocks are ever touched by
        a pruned read).
        """
        return self._partitions[partition].blocks(names)

    def scan(self, predicate: Callable[[Mapping[str, Any]], bool] | None = None,
             partition: str | None = None, *,
             copy: bool = True) -> Iterator[dict[str, Any]]:
        """Iterate rows, optionally pruned to one partition and filtered.

        Rows are reconstructed from the column blocks, so every yielded
        dict is a fresh object the caller may keep (``copy`` is retained
        for API compatibility; both values behave identically now).
        """
        del copy  # rows are always materialized fresh from columns
        if partition is not None:
            keys = [partition] if partition in self._partitions else []
        else:
            keys = self.partitions
        names = self.schema.names
        for key in keys:
            blocks = self._load_blocks(key, names)
            columns = [blocks[name].to_pylist() for name in names]
            for values in zip(*columns):
                row = dict(zip(names, values))
                if predicate is None or predicate(row):
                    yield row

    def rows(self, partition: str | None = None, *,
             copy: bool = True) -> list[dict[str, Any]]:
        """All rows (of a partition) as a list (``copy`` as in :meth:`scan`)."""
        return list(self.scan(partition=partition, copy=copy))

    def count(self, partition: str | None = None) -> int:
        """Row count, optionally for one partition."""
        if partition is not None:
            stored = self._partitions.get(partition)
            return 0 if stored is None else len(stored)
        return sum(len(stored) for stored in self._partitions.values())

    # -- columnar reads --------------------------------------------------------

    def columns(self, partition: str | None = None,
                names: Sequence[str] | None = None, *,
                predicate: ColumnPredicate | None = None
                ) -> dict[str, ColumnBlock]:
        """Typed column blocks with partition, column, and row pruning.

        ``partition`` selects one partition (``None`` concatenates all
        partitions in sorted order); ``names`` prunes to the requested
        columns (``None`` means every schema column); ``predicate``
        receives a lazy name → :class:`ColumnBlock` mapping and returns
        a boolean row mask used to filter the returned columns.

        Without a predicate, single-partition reads are **zero-copy**:
        the returned blocks alias the sealed storage arrays (which are
        read-only).  Predicate filtering and multi-partition reads
        materialize new arrays.
        """
        for name in names or ():
            if name not in self.schema:
                raise SchemaError(f"unknown column {name!r}")
        wanted = tuple(self.schema.names if names is None else names)
        if partition is not None:
            if partition not in self._partitions:
                return {
                    name: ColumnBlock.empty(self._dtypes[name])
                    for name in wanted
                }
            return self._columns_of(partition, wanted, predicate)
        parts = [
            self._columns_of(key, wanted, predicate)
            for key in self.partitions
        ]
        if not parts:
            return {
                name: ColumnBlock.empty(self._dtypes[name]) for name in wanted
            }
        if len(parts) == 1:
            return parts[0]
        return {
            name: ColumnBlock.concat([part[name] for part in parts])
            for name in wanted
        }

    def _columns_of(self, partition: str, names: Sequence[str],
                    predicate: ColumnPredicate | None
                    ) -> dict[str, ColumnBlock]:
        if predicate is None:
            return self._load_blocks(partition, names)
        lazy = _LazyColumns(lambda cols: self._load_blocks(partition, cols))
        mask = np.asarray(predicate(lazy), dtype=bool)
        expected = len(self._partitions[partition])
        if mask.shape != (expected,):
            raise ValueError(
                f"predicate mask has shape {mask.shape}, "
                f"expected ({expected},)"
            )
        blocks = self._load_blocks(partition, names)
        return {
            name: self._apply_mask(block, mask)
            for name, block in blocks.items()
        }

    @staticmethod
    def _apply_mask(block: ColumnBlock, mask: np.ndarray) -> ColumnBlock:
        """Filter one block by a boolean row mask.

        Dictionary-encoded blocks filter in code space so predicates
        never force a string decode.
        """
        null_mask = (block.null_mask[mask]
                     if block.null_mask is not None else None)
        if block.codes is not None:
            return ColumnBlock(None, null_mask, codes=block.codes[mask],
                               dictionary=block.dictionary)
        return ColumnBlock(block.values[mask], null_mask)

    def column_batches(self, partition: str | None = None,
                       names: Sequence[str] | None = None, *,
                       predicate: ColumnPredicate | None = None,
                       batches: int = 1) -> list[ColumnBatch]:
        """Split a columnar read into balanced row-range batches.

        The building block of the engine's column-batch scan source:
        each :class:`~repro.storage.columns.ColumnBatch` is a zero-copy
        slice of the (pruned, optionally filtered) column blocks.
        """
        blocks = self.columns(partition, names, predicate=predicate)
        length = len(next(iter(blocks.values()))) if blocks else 0
        return slice_batches(blocks, length, batches)


class TableStore:
    """A named collection of tables (the "MaxCompute project")."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create(self, name: str, schema: Schema, *,
               if_not_exists: bool = False) -> Table:
        """Create a table; re-creating raises unless ``if_not_exists``."""
        existing = self._tables.get(name)
        if existing is not None:
            if if_not_exists:
                return existing
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def add(self, table: Table, *, if_not_exists: bool = False) -> Table:
        """Register an existing :class:`Table` (or subclass) instance."""
        existing = self._tables.get(table.name)
        if existing is not None:
            if if_not_exists:
                return existing
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def get(self, name: str) -> Table:
        """Fetch a table; raises :class:`TableNotFoundError` if absent."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def drop(self, name: str) -> None:
        """Drop a table; missing tables are a no-op."""
        self._tables.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._tables)

"""MaxCompute-like table store.

The production deployment (paper Fig. 4) synchronizes events into a
MaxCompute table for long-term storage, and the daily Spark job writes
two result tables back (per-VM indicators and event-level CDI).  This
module provides the equivalent: schema-validated, partitioned,
append-only tables with predicate scans.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.storage.schema import Schema, SchemaError

#: Partition key value used for rows appended without a partition.
DEFAULT_PARTITION = "default"


class TableNotFoundError(KeyError):
    """Requested table does not exist in the store."""


class Table:
    """One append-only partitioned table.

    Partitions model MaxCompute's ``ds=YYYYMMDD`` date partitions: the
    daily pipeline writes each day into its own partition and scans are
    typically partition-pruned.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._partitions: dict[str, list[dict[str, Any]]] = {}

    # -- writes ----------------------------------------------------------------

    def append(self, rows: Iterable[Mapping[str, Any]],
               partition: str = DEFAULT_PARTITION) -> int:
        """Validate and append rows into ``partition``; returns row count.

        Validation is all-or-nothing: a schema violation in any row
        aborts the whole append, leaving the table unchanged.
        """
        validated = self.schema.validate_rows(rows)
        self._partitions.setdefault(partition, []).extend(validated)
        return len(validated)

    def overwrite_partition(self, rows: Iterable[Mapping[str, Any]],
                            partition: str) -> int:
        """Replace the contents of one partition (idempotent daily write)."""
        validated = self.schema.validate_rows(rows)
        self._partitions[partition] = validated
        return len(validated)

    def drop_partition(self, partition: str) -> None:
        """Remove one partition; missing partitions are a no-op."""
        self._partitions.pop(partition, None)

    # -- reads -----------------------------------------------------------------

    @property
    def partitions(self) -> list[str]:
        """Existing partition keys, sorted."""
        return sorted(self._partitions)

    def scan(self, predicate: Callable[[Mapping[str, Any]], bool] | None = None,
             partition: str | None = None, *,
             copy: bool = True) -> Iterator[dict[str, Any]]:
        """Iterate rows, optionally pruned to one partition and filtered.

        Rows are yielded as copies so callers cannot mutate stored
        data; read-only callers on hot paths may pass ``copy=False``
        to skip the per-row dict copy (and must not mutate the rows).
        """
        if partition is not None:
            sources = [self._partitions.get(partition, [])]
        else:
            sources = [self._partitions[p] for p in self.partitions]
        for rows in sources:
            for row in rows:
                if predicate is None or predicate(row):
                    yield dict(row) if copy else row

    def rows(self, partition: str | None = None, *,
             copy: bool = True) -> list[dict[str, Any]]:
        """All rows (of a partition) as a list (``copy`` as in :meth:`scan`)."""
        return list(self.scan(partition=partition, copy=copy))

    def count(self, partition: str | None = None) -> int:
        """Row count, optionally for one partition."""
        if partition is not None:
            return len(self._partitions.get(partition, []))
        return sum(len(rows) for rows in self._partitions.values())


class TableStore:
    """A named collection of tables (the "MaxCompute project")."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create(self, name: str, schema: Schema, *,
               if_not_exists: bool = False) -> Table:
        """Create a table; re-creating raises unless ``if_not_exists``."""
        existing = self._tables.get(name)
        if existing is not None:
            if if_not_exists:
                return existing
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def get(self, name: str) -> Table:
        """Fetch a table; raises :class:`TableNotFoundError` if absent."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def drop(self, name: str) -> None:
        """Drop a table; missing tables are a no-op."""
        self._tables.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._tables)

"""Typed column blocks — the columnar storage layer under :class:`Table`.

The production store of the paper (MaxCompute, Fig. 4) is columnar:
the daily Spark job reads a handful of numeric columns out of millions
of rows, so row-major ``list[dict]`` partitions waste both memory and
the vectorized kernel's time on per-row materialization.  This module
provides the building blocks the table store keeps per partition:

* :class:`ColumnBlock` — one sealed, typed column: a numpy array
  (``int64``/``float64``/``bool_`` for numerics, ``object`` for
  strings) plus an optional validity mask for nullable columns;
* :class:`ColumnarPartition` — one partition as a set of column
  blocks with per-column append buffers, so appends stay O(1) and
  sealing to numpy is lazy and cached per column (column pruning never
  materializes unrequested columns);
* :class:`ColumnBatch` — a zero-copy row-range slice over sealed
  blocks, the element type of the engine's column-batch scan source.

String columns are **dictionary-encoded** when it pays off: sealing a
string column whose distinct-value count stays low (event names,
categories, service/VM targets — the paper's hot string columns)
stores ``int32`` codes plus a small dictionary instead of an object
array, decoded lazily only when a consumer actually asks for Python
strings.  Slices and same-dictionary concatenations stay in code
space, and :func:`factorize_block` turns the daily job's ``np.unique``
factorization into a dictionary sort plus an integer gather.

Values round-trip exactly: ``float`` → ``float64`` → ``float`` is
bit-identical, ints outside the ``int64`` range fall back to an
``object`` block instead of overflowing, and nulls are represented by
a boolean mask (``True`` = null) with a zero fill in the typed array
(code ``-1`` in dictionary blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

#: Python dtype → numpy dtype of the typed value array.
NUMPY_DTYPES: Mapping[type, Any] = {
    int: np.int64,
    float: np.float64,
    bool: np.bool_,
    str: object,
}

#: Fill value written into masked (null) slots of the typed array.
_FILL_VALUES: Mapping[type, Any] = {int: 0, float: 0.0, bool: False, str: None}


def _object_array(values: Sequence[Any]) -> np.ndarray:
    """Build a 1-D object array without numpy guessing at shapes."""
    arr = np.empty(len(values), dtype=object)
    if len(values):
        arr[:] = values
    return arr


def try_dictionary_encode(
    values: Sequence[Any], *, limit: int | None = None
) -> tuple[np.ndarray, tuple[str, ...]] | None:
    """Factorize a string column into ``(int32 codes, dictionary)``.

    Nulls encode as code ``-1``.  The dictionary preserves first-
    occurrence order.  Returns ``None`` when the distinct-value count
    exceeds ``limit`` (default ``max(16, n // 2)``): a near-unique
    column (e.g. VM ids in a one-row-per-VM table) would pay the
    encoding cost without any compression or factorization win, so it
    stays a plain object array.  The decision is a pure function of
    the values, keeping sealed layouts deterministic.
    """
    n = len(values)
    if limit is None:
        limit = max(16, n // 2)
    code_of: dict[str, int] = {}
    codes = np.empty(n, dtype=np.int32)
    get = code_of.get
    for i, value in enumerate(values):
        if value is None:
            codes[i] = -1
            continue
        code = get(value)
        if code is None:
            code = len(code_of)
            if code >= limit:
                return None
            code_of[value] = code
        codes[i] = code
    return codes, tuple(code_of)


class ColumnBlock:
    """One sealed typed column: values array + optional null mask.

    ``values`` holds the typed data (masked slots carry a fill value);
    ``null_mask`` is a parallel boolean array with ``True`` where the
    logical value is null, or ``None`` for columns without nulls.
    Sealed arrays are marked read-only — callers get zero-copy views
    of the store and must not mutate them.

    Dictionary-encoded string blocks store ``codes`` (``int32``, with
    ``-1`` at null slots) plus a ``dictionary`` tuple instead of a
    materialized object array; ``values`` then decodes lazily on first
    access, so code-aware consumers (slicing, concatenation,
    :func:`factorize_block`, the chunked persistence writer) never pay
    for Python string materialization.
    """

    __slots__ = ("_values", "null_mask", "_pylist", "codes", "dictionary")

    def __init__(self, values: np.ndarray | None,
                 null_mask: np.ndarray | None = None, *,
                 codes: np.ndarray | None = None,
                 dictionary: tuple[str, ...] | None = None) -> None:
        if values is None and codes is None:
            raise ValueError("a block needs values or codes")
        self._values = values
        self.null_mask = null_mask
        self.codes = codes
        self.dictionary = dictionary
        self._pylist: list[Any] | None = None
        for arr in (values, null_mask, codes):
            if arr is not None and arr.flags.writeable and arr.base is None:
                arr.flags.writeable = False

    @property
    def values(self) -> np.ndarray:
        """Typed value array; dictionary blocks decode lazily (cached)."""
        arr = self._values
        if arr is None:
            dictionary = self.dictionary
            arr = _object_array([
                None if code < 0 else dictionary[code]
                for code in self.codes.tolist()
            ])
            arr.flags.writeable = False
            self._values = arr
        return arr

    @property
    def is_dictionary(self) -> bool:
        """Whether the block carries dictionary codes."""
        return self.codes is not None

    def __len__(self) -> int:
        if self._values is not None:
            return len(self._values)
        return len(self.codes)

    def __array__(self, dtype: Any = None) -> np.ndarray:  # numpy interop
        return np.asarray(self.values, dtype=dtype)

    def __getitem__(self, item: slice) -> "ColumnBlock":
        """Zero-copy row-range slice (used by :class:`ColumnBatch`).

        Dictionary blocks slice in code space — the (shared) dictionary
        is never copied and no strings are decoded.
        """
        mask = self.null_mask[item] if self.null_mask is not None else None
        if self.codes is not None:
            return ColumnBlock(None, mask, codes=self.codes[item],
                               dictionary=self.dictionary)
        return ColumnBlock(self._values[item], mask)

    @classmethod
    def from_codes(cls, codes: np.ndarray, dictionary: Sequence[str],
                   null_mask: np.ndarray | None = None) -> "ColumnBlock":
        """Seal a dictionary-encoded string column from codes.

        ``codes`` must be ``int32``-compatible with ``-1`` marking
        nulls; ``null_mask`` is derived from the negative codes when
        not supplied.
        """
        codes = np.ascontiguousarray(codes, dtype=np.int32)
        if null_mask is None and len(codes) and codes.min() < 0:
            null_mask = codes < 0
        return cls(None, null_mask, codes=codes,
                   dictionary=tuple(dictionary))

    @classmethod
    def build(cls, dtype: type, values: Sequence[Any]) -> "ColumnBlock":
        """Seal already-validated python values into a typed block.

        ``values`` must contain only ``dtype`` instances (plus ``None``
        for nullable columns) — exactly what the schema validators
        produce.  Ints that overflow ``int64`` demote the block to an
        ``object`` array rather than corrupting values.  String
        columns dictionary-encode adaptively (see
        :func:`try_dictionary_encode`).
        """
        has_null = any(v is None for v in values)
        mask: np.ndarray | None = None
        filled: Sequence[Any] = values
        if has_null:
            mask = np.fromiter((v is None for v in values), dtype=np.bool_,
                               count=len(values))
            fill = _FILL_VALUES[dtype]
            filled = [fill if v is None else v for v in values]
        if dtype is str:
            encoded = try_dictionary_encode(values)
            if encoded is not None:
                codes, dictionary = encoded
                return cls(None, mask, codes=codes, dictionary=dictionary)
            arr = _object_array(list(values))
            return cls(arr, mask)
        try:
            arr = np.array(filled, dtype=NUMPY_DTYPES[dtype])
        except OverflowError:
            arr = _object_array(list(filled))
        return cls(arr, mask)

    @classmethod
    def empty(cls, dtype: type) -> "ColumnBlock":
        """A zero-row block of the right dtype."""
        return cls.build(dtype, [])

    @classmethod
    def all_null(cls, dtype: type, length: int) -> "ColumnBlock":
        """A block of ``length`` nulls (missing nullable column)."""
        return cls.build(dtype, [None] * length)

    @classmethod
    def concat(cls, blocks: Sequence["ColumnBlock"]) -> "ColumnBlock":
        """Concatenate blocks of one column into a single block.

        All-dictionary inputs concatenate in code space: dictionaries
        merge in first-occurrence order and codes are remapped with an
        integer gather, never decoding a string.
        """
        if len(blocks) == 1:
            return blocks[0]
        if all(b.codes is not None for b in blocks):
            return cls._concat_dictionary(blocks)
        if any(b.values.dtype == object for b in blocks):
            values = np.concatenate([
                b.values if b.values.dtype == object
                else _object_array(b.values.tolist())
                for b in blocks
            ])
        else:
            values = np.concatenate([b.values for b in blocks])
        if any(b.null_mask is not None for b in blocks):
            mask = np.concatenate([
                b.null_mask if b.null_mask is not None
                else np.zeros(len(b), dtype=np.bool_)
                for b in blocks
            ])
        else:
            mask = None
        return cls(values, mask)

    @classmethod
    def _concat_dictionary(cls, blocks: Sequence["ColumnBlock"]
                           ) -> "ColumnBlock":
        """Concatenate dictionary blocks without decoding strings."""
        merged: dict[str, int] = {}
        remapped: list[np.ndarray] = []
        for block in blocks:
            dictionary = block.dictionary
            # One extra slot so the null code (-1) remaps to itself via
            # python's negative indexing.
            remap = np.empty(len(dictionary) + 1, dtype=np.int32)
            remap[-1] = -1
            identical = True
            for i, value in enumerate(dictionary):
                code = merged.setdefault(value, len(merged))
                remap[i] = code
                identical = identical and code == i
            remapped.append(block.codes if identical else remap[block.codes])
        codes = np.concatenate(remapped) if remapped else np.empty(
            0, dtype=np.int32)
        if any(b.null_mask is not None for b in blocks):
            mask = np.concatenate([
                b.null_mask if b.null_mask is not None
                else np.zeros(len(b), dtype=np.bool_)
                for b in blocks
            ])
        else:
            mask = None
        return cls(None, mask, codes=codes, dictionary=tuple(merged))

    def to_pylist(self) -> list[Any]:
        """Logical values as native python objects (``None`` for nulls).

        Cached per block; callers must treat the list as read-only.
        Dictionary blocks decode straight from codes without sealing an
        intermediate object array.
        """
        cached = self._pylist
        if cached is None:
            if self._values is None:
                dictionary = self.dictionary
                cached = [
                    None if code < 0 else dictionary[code]
                    for code in self.codes.tolist()
                ]
            else:
                cached = self.values.tolist()
                if self.null_mask is not None and self.null_mask.any():
                    cached = [
                        None if null else value
                        for value, null in zip(cached, self.null_mask.tolist())
                    ]
            self._pylist = cached
        return cached


class ColumnarPartition:
    """One table partition stored column-major.

    Writes land in per-column python append buffers; reads seal each
    requested column into a cached :class:`ColumnBlock` (numpy array +
    null mask).  Sealing is per column, so pruned reads never pay for
    columns they do not touch, and re-appending after a read only
    re-seals the appended tail (the sealed prefix is concatenated, not
    rebuilt element by element).
    """

    __slots__ = ("_names", "_dtypes", "_sealed", "_buffers", "_length")

    def __init__(self, names: Sequence[str], dtypes: Mapping[str, type]) -> None:
        self._names = tuple(names)
        self._dtypes = dict(dtypes)
        self._sealed: dict[str, ColumnBlock] = {}
        self._buffers: dict[str, list[Any]] = {name: [] for name in self._names}
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def extend_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Transpose validated rows into the per-column buffers."""
        for name, buffer in self._buffers.items():
            buffer.extend([row[name] for row in rows])
        self._length += len(rows)

    def extend_blocks(self, blocks: Mapping[str, ColumnBlock],
                      length: int) -> None:
        """Append pre-validated column blocks (columnar write path).

        Columns with no buffered tail adopt or concatenate the sealed
        arrays directly — the persistence loader and columnar writers
        never round-trip through python lists.
        """
        for name in self._names:
            block = blocks[name]
            buffer = self._buffers[name]
            if buffer:
                buffer.extend(block.to_pylist())
                continue
            sealed = self._sealed.get(name)
            self._sealed[name] = (
                block if sealed is None else ColumnBlock.concat([sealed, block])
            )
        self._length += length

    def block(self, name: str) -> ColumnBlock:
        """Sealed typed block of one column (cached until next write)."""
        sealed = self._sealed.get(name)
        buffer = self._buffers[name]
        if sealed is not None and not buffer:
            return sealed
        tail = ColumnBlock.build(self._dtypes[name], buffer)
        sealed = tail if sealed is None else ColumnBlock.concat([sealed, tail])
        self._sealed[name] = sealed
        self._buffers[name] = []
        return sealed

    def blocks(self, names: Sequence[str] | None = None
               ) -> dict[str, ColumnBlock]:
        """Sealed blocks for ``names`` (all columns when ``None``)."""
        return {name: self.block(name)
                for name in (self._names if names is None else names)}

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Reconstruct row dicts (the compatibility read path)."""
        names = self._names
        columns = [self.block(name).to_pylist() for name in names]
        for values in zip(*columns):
            yield dict(zip(names, values))


@dataclass(frozen=True)
class ColumnBatch:
    """A row-range of sealed column blocks — the engine's scan element.

    Batches are zero-copy views over the partition's sealed arrays and
    picklable, so column-batch stages run unchanged on the process
    executor backend.
    """

    columns: Mapping[str, ColumnBlock]
    length: int

    def __len__(self) -> int:
        return self.length

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.columns)

    def column(self, name: str) -> ColumnBlock:
        """Block of one column; raises ``KeyError`` for pruned names."""
        return self.columns[name]

    def values(self, name: str) -> np.ndarray:
        """Typed value array of one column (fill values at nulls)."""
        return self.columns[name].values

    def rows(self) -> Iterator[dict[str, Any]]:
        """Row-dict view of the batch (slow path / debugging aid)."""
        names = tuple(self.columns)
        columns = [self.columns[name].to_pylist() for name in names]
        for values in zip(*columns):
            yield dict(zip(names, values))


def slice_batches(blocks: Mapping[str, ColumnBlock], length: int,
                  batches: int) -> list[ColumnBatch]:
    """Split sealed blocks into balanced contiguous zero-copy batches.

    Mirrors the engine's partition chunking (``base + 1`` rows for the
    first ``extra`` batches) so a column scan distributes exactly like
    ``parallelize`` would.  Returns at least one (possibly empty) batch.
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    base, extra = divmod(length, batches)
    out: list[ColumnBatch] = []
    cursor = 0
    for index in range(batches):
        size = base + (1 if index < extra else 0)
        window = slice(cursor, cursor + size)
        out.append(ColumnBatch(
            columns={name: block[window] for name, block in blocks.items()},
            length=size,
        ))
        cursor += size
    return out


def factorize_block(block: ColumnBlock) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(values, return_inverse=True)``, dictionary-aware.

    For a dictionary block without nulls this never compares a Python
    string per row: only the *present* codes are sorted (a sliced block
    shares its parent's full dictionary, so absent entries must not
    leak into the unique set) and the inverse is an integer gather.
    The result is element-identical to calling ``np.unique`` on the
    decoded values — the byte-identity contract of the compute paths
    rests on that equivalence, which the differential tests pin down.
    Plain blocks (and nullable ones) fall back to ``np.unique``.
    """
    codes = block.codes
    if codes is None or (block.null_mask is not None
                         and block.null_mask.any()):
        return np.unique(block.values, return_inverse=True)
    dict_arr = _object_array(block.dictionary)
    present = np.unique(codes)
    sub = dict_arr[present]
    order = np.argsort(sub)
    uniq = sub[order]
    rank = np.empty(len(dict_arr), dtype=np.intp)
    rank[present[order]] = np.arange(len(present), dtype=np.intp)
    return uniq, rank[codes]


#: A columnar predicate: receives a read-only mapping of column name →
#: :class:`ColumnBlock` and returns a boolean row mask.
ColumnPredicate = Callable[[Mapping[str, ColumnBlock]], np.ndarray]

"""Storage substrates (paper Fig. 4 stand-ins).

* :class:`LogStore` — SLS-like hot event store with time-range queries.
* :class:`Table` / :class:`TableStore` — MaxCompute-like partitioned
  tables with schema validation.
* :class:`ConfigDB` — MySQL-like versioned configuration store.
* :mod:`repro.storage.chunked` — out-of-core chunked v3 files and
  spill-to-disk tables for fleet-scale stores.
"""

from repro.storage.chunked import (
    LazyChunkPartition,
    SpillPartition,
    SpillTable,
    load_table_store_chunked,
    save_table_store_chunked,
)

from repro.storage.columns import (
    ColumnBatch,
    ColumnBlock,
    ColumnarPartition,
)
from repro.storage.configdb import (
    ConfigDB,
    ConfigNotFoundError,
    ConfigRecord,
    StaleVersionError,
)
from repro.storage.logstore import LogEntry, LogStore
from repro.storage.persistence import (
    load_config_db,
    load_table_store,
    save_config_db,
    save_table_store,
    snapshot_table,
)
from repro.storage.schema import Column, Schema, SchemaError
from repro.storage.table import (
    DEFAULT_PARTITION,
    Table,
    TableNotFoundError,
    TableStore,
)

__all__ = [
    "DEFAULT_PARTITION",
    "Column",
    "ColumnBatch",
    "ColumnBlock",
    "ColumnarPartition",
    "ConfigDB",
    "ConfigNotFoundError",
    "ConfigRecord",
    "LazyChunkPartition",
    "LogEntry",
    "LogStore",
    "Schema",
    "SchemaError",
    "SpillPartition",
    "SpillTable",
    "StaleVersionError",
    "Table",
    "TableNotFoundError",
    "TableStore",
    "load_config_db",
    "load_table_store",
    "load_table_store_chunked",
    "save_config_db",
    "save_table_store",
    "save_table_store_chunked",
    "snapshot_table",
]

"""Row schemas shared by the storage substrates.

A :class:`Schema` validates dict rows against typed, optionally
nullable columns — the minimum structure needed to make the
MaxCompute-like table store (and the daily pipeline that writes to it)
fail loudly on malformed rows instead of corrupting downstream CDI
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.storage.columns import ColumnBlock


class SchemaError(ValueError):
    """A row does not conform to its table schema."""


#: Exact value types each declared dtype admits (``set(map(type, ...))``
#: membership).  ``bool`` is deliberately absent from the numeric sets —
#: the per-cell validator rejects bools for int/float columns, and
#: ``type(True) is bool`` keeps that exact semantics batch-side.
_ALLOWED_TYPES: Mapping[type, frozenset[type]] = {
    str: frozenset({str}),
    int: frozenset({int}),
    float: frozenset({float, int}),  # SQL-style int → float widening
    bool: frozenset({bool}),
}


@dataclass(frozen=True, slots=True)
class Column:
    """One typed column.

    ``dtype`` is a Python type (``str``, ``int``, ``float``, ``bool``);
    ints are accepted where floats are declared, mirroring common SQL
    widening.
    """

    name: str
    dtype: type
    nullable: bool = False

    def validate(self, value: Any) -> Any:
        """Return the (possibly widened) value or raise SchemaError."""
        if value is None:
            if self.nullable:
                return None
            raise SchemaError(f"column {self.name!r} is not nullable")
        if self.dtype is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self.dtype is not bool and isinstance(value, bool):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype.__name__}, got bool"
            )
        if not isinstance(value, self.dtype):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        return value

    def validate_block(self, values: Sequence[Any]) -> ColumnBlock:
        """Vectorized columnar validation: one column, all rows at once.

        Instead of dispatching :meth:`validate` per cell, the batch is
        checked with a single ``set(map(type, values))`` pass (a C-level
        loop): if every value's exact type is admissible the whole
        column seals straight into a typed :class:`ColumnBlock`.  Any
        unexpected type falls back to the per-cell validator, so error
        messages and subclass-widening semantics are identical to the
        row path.
        """
        kinds = set(map(type, values))
        has_null = type(None) in kinds
        if has_null:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            kinds.discard(type(None))
        if not kinds <= _ALLOWED_TYPES[self.dtype]:
            # Exotic types (violations, or subclasses like numpy
            # scalars): per-cell validation raises the canonical
            # SchemaError, or normalizes values we can then seal.
            values = [self.validate(value) for value in values]
        elif self.dtype is float and int in kinds:
            values = [
                value if value is None else float(value) for value in values
            ]
        return ColumnBlock.build(self.dtype, values)


class Schema:
    """An ordered set of columns with row validation."""

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: tuple[Column, ...] = tuple(columns)
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        if not names:
            raise SchemaError("schema must have at least one column")
        self._by_name = {c.name: c for c in self.columns}
        self._names_set = frozenset(names)
        self._batch_validator = _batch_validator_for(self.columns)

    def __getstate__(self) -> dict[str, Any]:
        # The compiled batch validator is module-less and unpicklable;
        # drop it and recompile on restore.
        state = self.__dict__.copy()
        del state["_batch_validator"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._batch_validator = _batch_validator_for(self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        """Column by name; raises ``KeyError`` for unknown names."""
        return self._by_name[name]

    def validate_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and normalize one row.

        Missing nullable columns become ``None``; missing non-nullable
        columns and unknown keys raise :class:`SchemaError`.
        """
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)}")
        normalized: dict[str, Any] = {}
        for column in self.columns:
            if column.name in row:
                normalized[column.name] = column.validate(row[column.name])
            elif column.nullable:
                normalized[column.name] = None
            else:
                raise SchemaError(f"missing required column {column.name!r}")
        return normalized

    def validate_rows(
        self, rows: Iterable[Mapping[str, Any]]
    ) -> list[dict[str, Any]]:
        """Validate a batch of rows — same semantics as :meth:`validate_row`.

        Rows whose key set matches the schema exactly and whose values
        already have the declared types (the overwhelmingly common case
        for pipeline-produced rows) take a compiled fast path; everything
        else — missing nullable columns, int→float widening, actual
        violations — falls back to :meth:`validate_row` row by row, so
        error behavior is identical.
        """
        return self._batch_validator(rows, self.validate_row)

    def validate_columns(
        self, columns: Mapping[str, Sequence[Any]]
    ) -> tuple[dict[str, ColumnBlock], int]:
        """Columnar counterpart of :meth:`validate_rows`.

        ``columns`` maps column names to equal-length value sequences.
        Checks run per column (dtype and nullability over the whole
        vector — see :meth:`Column.validate_block`) instead of per
        cell.  Missing nullable columns become all-null blocks; missing
        required columns, unknown names, and ragged lengths raise
        :class:`SchemaError`.  Returns the sealed typed blocks plus the
        row count.
        """
        unknown = set(columns) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)}")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged column lengths: {lengths}")
        length = next(iter(lengths.values()), 0)
        blocks: dict[str, ColumnBlock] = {}
        for column in self.columns:
            if column.name in columns:
                blocks[column.name] = column.validate_block(
                    columns[column.name]
                )
            elif column.nullable or length == 0:
                # Zero-row appends have no rows to violate the schema,
                # matching ``validate_rows([])``.
                blocks[column.name] = ColumnBlock.all_null(
                    column.dtype, length
                )
            else:
                raise SchemaError(
                    f"missing required column {column.name!r}"
                )
        return blocks, length


#: dtype ↔ on-disk name mapping shared by every persistence layout.
DTYPE_NAMES: Mapping[type, str] = {
    str: "str", int: "int", float: "float", bool: "bool",
}
_DTYPES_BY_NAME = {name: dtype for dtype, name in DTYPE_NAMES.items()}


def schema_to_dict(schema: Schema) -> list[dict[str, Any]]:
    """Serialize a schema to the JSON column list used on disk."""
    columns = []
    for column in schema.columns:
        name = DTYPE_NAMES.get(column.dtype)
        if name is None:
            raise SchemaError(
                f"column {column.name!r} has non-serializable dtype "
                f"{column.dtype!r}"
            )
        columns.append({
            "name": column.name, "dtype": name, "nullable": column.nullable,
        })
    return columns


def schema_from_dict(data: list[dict[str, Any]]) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    return Schema([
        Column(entry["name"], _DTYPES_BY_NAME[entry["dtype"]],
               nullable=bool(entry.get("nullable", False)))
        for entry in data
    ])


#: Compiled validators memoized by column signature: the pipeline
#: creates the same schemas (events, vm_cdi, event_cdi, ...) once per
#: job, and ``exec``-compiling the loop each time would dominate job
#: setup for short runs.
_validator_cache: dict[tuple[Column, ...], Any] = {}


def _batch_validator_for(columns: tuple[Column, ...]):
    validator = _validator_cache.get(columns)
    if validator is None:
        validator = _compile_batch_validator(columns)
        _validator_cache[columns] = validator
    return validator


def _compile_batch_validator(columns: tuple[Column, ...]):
    """Compile a schema-specialized batch validation loop.

    Fleet-scale writes validate millions of rows; a generic per-column
    loop spends most of its time on interpreter dispatch.  Like
    ``dataclasses``/``namedtuple``, we generate the loop source once
    per schema so the common case — exact keys, exact types — is a
    single ``if`` of inlined ``type(...) is ...`` checks followed by a
    C-level dict copy.  ``len(row) == n`` plus successful lookup of all
    ``n`` distinct column names implies the key sets match exactly; any
    other shape (or a ``KeyError``) falls back to ``slow`` (the
    per-row validator), which re-raises proper :class:`SchemaError`\\ s.
    """
    check = " and ".join(
        f"type(row[{column.name!r}]) is _dtype{i}"
        for i, column in enumerate(columns)
    )
    source = (
        "def _validate_batch(rows, slow, _dict=dict):\n"
        "    out = []\n"
        "    append = out.append\n"
        "    for row in rows:\n"
        f"        if len(row) == {len(columns)}:\n"
        "            try:\n"
        f"                if {check}:\n"
        "                    append(_dict(row))\n"
        "                    continue\n"
        "            except KeyError:\n"
        "                pass\n"
        "        append(slow(row))\n"
        "    return out\n"
    )
    namespace: dict[str, Any] = {
        f"_dtype{i}": column.dtype for i, column in enumerate(columns)
    }
    exec(source, namespace)
    return namespace["_validate_batch"]

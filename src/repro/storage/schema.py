"""Row schemas shared by the storage substrates.

A :class:`Schema` validates dict rows against typed, optionally
nullable columns — the minimum structure needed to make the
MaxCompute-like table store (and the daily pipeline that writes to it)
fail loudly on malformed rows instead of corrupting downstream CDI
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping


class SchemaError(ValueError):
    """A row does not conform to its table schema."""


@dataclass(frozen=True, slots=True)
class Column:
    """One typed column.

    ``dtype`` is a Python type (``str``, ``int``, ``float``, ``bool``);
    ints are accepted where floats are declared, mirroring common SQL
    widening.
    """

    name: str
    dtype: type
    nullable: bool = False

    def validate(self, value: Any) -> Any:
        """Return the (possibly widened) value or raise SchemaError."""
        if value is None:
            if self.nullable:
                return None
            raise SchemaError(f"column {self.name!r} is not nullable")
        if self.dtype is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self.dtype is not bool and isinstance(value, bool):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype.__name__}, got bool"
            )
        if not isinstance(value, self.dtype):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        return value


class Schema:
    """An ordered set of columns with row validation."""

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: tuple[Column, ...] = tuple(columns)
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        if not names:
            raise SchemaError("schema must have at least one column")
        self._by_name = {c.name: c for c in self.columns}

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(c.name for c in self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        """Column by name; raises ``KeyError`` for unknown names."""
        return self._by_name[name]

    def validate_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and normalize one row.

        Missing nullable columns become ``None``; missing non-nullable
        columns and unknown keys raise :class:`SchemaError`.
        """
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)}")
        normalized: dict[str, Any] = {}
        for column in self.columns:
            if column.name in row:
                normalized[column.name] = column.validate(row[column.name])
            elif column.nullable:
                normalized[column.name] = None
            else:
                raise SchemaError(f"missing required column {column.name!r}")
        return normalized

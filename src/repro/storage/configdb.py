"""MySQL-like versioned configuration store.

The production deployment keeps weight configurations in MySQL,
adjusted from ticket-classification results and expert insight
(paper Fig. 4).  This stand-in stores JSON-serializable documents
under string keys with monotonically increasing versions, so the daily
pipeline can pin the exact configuration a run used.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from typing import Any


class ConfigNotFoundError(KeyError):
    """Requested configuration key (or version) does not exist."""


class StaleVersionError(RuntimeError):
    """Optimistic-concurrency write lost the race."""


@dataclass(frozen=True, slots=True)
class ConfigRecord:
    """One stored configuration version."""

    key: str
    version: int
    value: Any

    def copy_value(self) -> Any:
        """Deep copy of the stored value (stored data stays immutable)."""
        return copy.deepcopy(self.value)


class ConfigDB:
    """Versioned key→document store with optimistic concurrency."""

    def __init__(self) -> None:
        self._records: dict[str, list[ConfigRecord]] = {}

    def put(self, key: str, value: Any, *,
            expected_version: int | None = None) -> ConfigRecord:
        """Write a new version of ``key``.

        ``value`` must be JSON-serializable (enforced, because the real
        store is a relational table of serialized configs).  When
        ``expected_version`` is given, the write fails with
        :class:`StaleVersionError` unless it matches the current head —
        optimistic concurrency for the config-review workflow.
        """
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise TypeError(f"config value for {key!r} is not serializable") from exc
        history = self._records.setdefault(key, [])
        current = history[-1].version if history else 0
        if expected_version is not None and expected_version != current:
            raise StaleVersionError(
                f"config {key!r} is at version {current}, "
                f"expected {expected_version}"
            )
        record = ConfigRecord(key=key, version=current + 1,
                              value=copy.deepcopy(value))
        history.append(record)
        return record

    def get(self, key: str, version: int | None = None) -> ConfigRecord:
        """Latest (or a specific) version of ``key``."""
        history = self._records.get(key)
        if not history:
            raise ConfigNotFoundError(key)
        if version is None:
            return history[-1]
        for record in history:
            if record.version == version:
                return record
        raise ConfigNotFoundError(f"{key} v{version}")

    def history(self, key: str) -> list[ConfigRecord]:
        """All versions of ``key``, oldest first."""
        history = self._records.get(key)
        if not history:
            raise ConfigNotFoundError(key)
        return list(history)

    def keys(self) -> list[str]:
        """All configuration keys, sorted."""
        return sorted(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

"""JSON persistence for the storage substrates.

The production stores are durable services; these helpers give the
stand-ins the same property so a daily pipeline can survive process
restarts (and so experiments can checkpoint their tables).  Schemas
are serialized alongside the data; unknown dtypes are rejected rather
than silently coerced.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.storage.configdb import ConfigDB
from repro.storage.schema import Column, Schema, SchemaError
from repro.storage.table import Table, TableStore

_DTYPE_NAMES = {str: "str", int: "int", float: "float", bool: "bool"}
_DTYPES_BY_NAME = {name: dtype for dtype, name in _DTYPE_NAMES.items()}


def _schema_to_dict(schema: Schema) -> list[dict[str, Any]]:
    columns = []
    for column in schema.columns:
        name = _DTYPE_NAMES.get(column.dtype)
        if name is None:
            raise SchemaError(
                f"column {column.name!r} has non-serializable dtype "
                f"{column.dtype!r}"
            )
        columns.append({
            "name": column.name, "dtype": name, "nullable": column.nullable,
        })
    return columns


def _schema_from_dict(data: list[dict[str, Any]]) -> Schema:
    return Schema([
        Column(entry["name"], _DTYPES_BY_NAME[entry["dtype"]],
               nullable=bool(entry.get("nullable", False)))
        for entry in data
    ])


def save_table_store(store: TableStore, path: str | Path) -> None:
    """Serialize every table (schema + partitions) to one JSON file."""
    payload = {}
    for name in store.names():
        table = store.get(name)
        payload[name] = {
            "schema": _schema_to_dict(table.schema),
            "partitions": {
                partition: table.rows(partition=partition)
                for partition in table.partitions
            },
        }
    Path(path).write_text(json.dumps(payload))


def load_table_store(path: str | Path) -> TableStore:
    """Inverse of :func:`save_table_store`; rows are re-validated."""
    payload = json.loads(Path(path).read_text())
    store = TableStore()
    for name, table_data in payload.items():
        schema = _schema_from_dict(table_data["schema"])
        table = store.create(name, schema)
        for partition, rows in table_data["partitions"].items():
            table.append(rows, partition=partition)
    return store


def save_config_db(db: ConfigDB, path: str | Path) -> None:
    """Serialize every key's full version history to one JSON file."""
    payload = {
        key: [
            {"version": record.version, "value": record.value}
            for record in db.history(key)
        ]
        for key in db.keys()
    }
    Path(path).write_text(json.dumps(payload))


def load_config_db(path: str | Path) -> ConfigDB:
    """Inverse of :func:`save_config_db`, preserving version numbers."""
    payload = json.loads(Path(path).read_text())
    db = ConfigDB()
    for key, records in payload.items():
        ordered = sorted(records, key=lambda r: r["version"])
        for expected_version, record in enumerate(ordered, start=1):
            if record["version"] != expected_version:
                raise ValueError(
                    f"config {key!r} has non-contiguous versions in {path}"
                )
            db.put(key, record["value"])
    return db


def snapshot_table(table: Table, path: str | Path,
                   partition: str | None = None) -> int:
    """Dump one table (or one partition) as a JSON list of rows."""
    rows = table.rows(partition=partition)
    Path(path).write_text(json.dumps(rows))
    return len(rows)

"""JSON persistence for the storage substrates.

The production stores are durable services; these helpers give the
stand-ins the same property so a daily pipeline can survive process
restarts (and so experiments can checkpoint their tables).  Schemas
are serialized alongside the data; unknown dtypes are rejected rather
than silently coerced.

Three on-disk layouts exist for table stores:

* **v1 (legacy, row-major)** — one JSON object per table with
  ``partitions`` as lists of row dicts.  Still readable (and writable
  via ``layout="rows"``) for backward compatibility.
* **v2 (columnar)** — an envelope
  ``{"format": "repro-table-store", "version": 2, ...}`` whose
  partitions store column-major value lists (``null`` for masked
  slots), mirroring the in-memory typed column blocks.  Loading goes
  through the vectorized columnar schema validation.
* **v3 (chunked)** — an offset-indexed JSONL stream
  (:mod:`repro.storage.chunked`, ``layout="chunked"``) whose
  partitions load lazily chunk-by-chunk; the out-of-core format for
  fleet-scale stores.

:func:`load_table_store` auto-detects the layout, so existing files
keep loading after each migration.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.storage.chunked import (
    CHUNKED_VERSION,
    DEFAULT_CHUNK_ROWS,
    STORE_FORMAT,
    load_table_store_chunked,
    save_table_store_chunked,
)
from repro.storage.configdb import ConfigDB
from repro.storage.schema import schema_from_dict, schema_to_dict
from repro.storage.table import Table, TableStore

#: Version of the single-file columnar layout.
COLUMNAR_VERSION = 2

# Private aliases kept for callers of the historical helper names.
_schema_to_dict = schema_to_dict
_schema_from_dict = schema_from_dict


def _columnar_partition_payload(table: Table, partition: str) -> dict[str, Any]:
    blocks = table.columns(partition)
    return {
        "rows": table.count(partition),
        "columns": {
            name: block.to_pylist() for name, block in blocks.items()
        },
    }


def _write_text(path: str | Path, text: str, atomic: bool) -> None:
    """Write ``text`` to ``path``, optionally via rename for atomicity.

    Atomic writes go through a same-directory temp file and
    ``os.replace``, so a reader (or a process killed mid-write) never
    observes a truncated file — the property checkpoint files rely on.
    """
    target = Path(path)
    if not atomic:
        target.write_text(text)
        return
    scratch = target.with_name(target.name + ".tmp")
    with open(scratch, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        # Without the fsync, ``os.replace`` can publish a name whose
        # data blocks are still unflushed — a crash right after the
        # rename would surface an empty or truncated "atomic" file.
        os.fsync(handle.fileno())
    os.replace(scratch, target)


def save_table_store(store: TableStore, path: str | Path, *,
                     layout: str = "columnar", atomic: bool = False,
                     chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
    """Serialize every table (schema + partitions) to one JSON file.

    ``layout="columnar"`` (default) writes the versioned column-major
    format; ``layout="chunked"`` writes the offset-indexed v3 JSONL
    stream (``chunk_rows`` rows per chunk record) that loads lazily;
    ``layout="rows"`` writes the legacy v1 row-major layout for
    consumers that have not migrated.  ``atomic=True`` writes through a
    temp file + fsync + rename so a kill mid-save cannot corrupt an
    existing file.  Output is deterministic: tables and partitions are
    emitted in sorted order, so saving an unchanged store reproduces
    the file byte for byte.
    """
    if layout == "chunked":
        save_table_store_chunked(store, path, chunk_rows=chunk_rows,
                                 atomic=atomic)
        return
    if layout == "rows":
        payload: dict[str, Any] = {}
        for name in store.names():
            table = store.get(name)
            payload[name] = {
                "schema": _schema_to_dict(table.schema),
                "partitions": {
                    partition: table.rows(partition=partition)
                    for partition in table.partitions
                },
            }
        _write_text(path, json.dumps(payload), atomic)
        return
    if layout != "columnar":
        raise ValueError(f"unknown table-store layout {layout!r}")
    tables: dict[str, Any] = {}
    for name in store.names():
        table = store.get(name)
        tables[name] = {
            "schema": _schema_to_dict(table.schema),
            "partitions": {
                partition: _columnar_partition_payload(table, partition)
                for partition in table.partitions
            },
        }
    _write_text(path, json.dumps({
        "format": STORE_FORMAT,
        "version": COLUMNAR_VERSION,
        "layout": "columnar",
        "tables": tables,
    }), atomic)


def _load_columnar_store(payload: dict[str, Any],
                         path: str | Path) -> TableStore:
    version = payload.get("version")
    if version != COLUMNAR_VERSION:
        raise ValueError(
            f"unsupported table-store version {version!r} in {path} "
            f"(expected {COLUMNAR_VERSION})"
        )
    store = TableStore()
    for name, table_data in payload["tables"].items():
        schema = _schema_from_dict(table_data["schema"])
        table = store.create(name, schema)
        for partition, part_data in table_data["partitions"].items():
            columns = part_data["columns"]
            rows = part_data.get("rows")
            loaded = table.overwrite_partition_columns(columns, partition)
            if rows is not None and loaded != rows:
                raise ValueError(
                    f"partition {partition!r} of table {name!r} declares "
                    f"{rows} rows but holds {loaded} in {path}"
                )
    return store


def load_table_store(path: str | Path) -> TableStore:
    """Inverse of :func:`save_table_store`; data is re-validated.

    Auto-detects the layout: chunked v3 files open lazily through
    :func:`~repro.storage.chunked.load_table_store_chunked`, versioned
    columnar envelopes (v2) load through the vectorized column
    validation, and legacy row-major files (v1) through the row
    validators.  Empty partitions survive every layout.
    """
    target = Path(path)
    # v2/v1 files are one JSON line, v3 files put their envelope on the
    # first line — so one readline classifies every layout we write
    # without reading a fleet-scale file whole.
    with open(target, encoding="utf-8") as handle:
        first = handle.readline()
    try:
        payload = json.loads(first)
    except json.JSONDecodeError:
        payload = json.loads(target.read_text())
    if isinstance(payload, dict) and isinstance(payload.get("format"), str):
        if payload["format"] != STORE_FORMAT:
            raise ValueError(
                f"unknown table-store format {payload['format']!r} in {path}"
            )
        if payload.get("version") == CHUNKED_VERSION:
            return load_table_store_chunked(target)
        return _load_columnar_store(payload, path)
    store = TableStore()
    for name, table_data in payload.items():
        schema = _schema_from_dict(table_data["schema"])
        table = store.create(name, schema)
        for partition, rows in table_data["partitions"].items():
            table.overwrite_partition(rows, partition)
    return store


def save_config_db(db: ConfigDB, path: str | Path) -> None:
    """Serialize every key's full version history to one JSON file."""
    payload = {
        key: [
            {"version": record.version, "value": record.value}
            for record in db.history(key)
        ]
        for key in db.keys()
    }
    Path(path).write_text(json.dumps(payload))


def load_config_db(path: str | Path) -> ConfigDB:
    """Inverse of :func:`save_config_db`, preserving version numbers."""
    payload = json.loads(Path(path).read_text())
    db = ConfigDB()
    for key, records in payload.items():
        ordered = sorted(records, key=lambda r: r["version"])
        for expected_version, record in enumerate(ordered, start=1):
            if record["version"] != expected_version:
                raise ValueError(
                    f"config {key!r} has non-contiguous versions in {path}"
                )
            db.put(key, record["value"])
    return db


def snapshot_table(table: Table, path: str | Path,
                   partition: str | None = None) -> int:
    """Dump one table (or one partition) as a JSON list of rows."""
    rows = table.rows(partition=partition)
    Path(path).write_text(json.dumps(rows))
    return len(rows)

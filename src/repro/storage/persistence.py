"""JSON persistence for the storage substrates.

The production stores are durable services; these helpers give the
stand-ins the same property so a daily pipeline can survive process
restarts (and so experiments can checkpoint their tables).  Schemas
are serialized alongside the data; unknown dtypes are rejected rather
than silently coerced.

Two on-disk layouts exist for table stores:

* **v1 (legacy, row-major)** — one JSON object per table with
  ``partitions`` as lists of row dicts.  Still readable (and writable
  via ``layout="rows"``) for backward compatibility.
* **v2 (columnar)** — the current default: an envelope
  ``{"format": "repro-table-store", "version": 2, ...}`` whose
  partitions store column-major value lists (``null`` for masked
  slots), mirroring the in-memory typed column blocks.  Loading goes
  through the vectorized columnar schema validation.

:func:`load_table_store` auto-detects the layout, so existing row-major
files keep loading after the migration.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.storage.configdb import ConfigDB
from repro.storage.schema import Column, Schema, SchemaError
from repro.storage.table import Table, TableStore

_DTYPE_NAMES = {str: "str", int: "int", float: "float", bool: "bool"}
_DTYPES_BY_NAME = {name: dtype for dtype, name in _DTYPE_NAMES.items()}

#: Envelope marker + current version of the columnar layout.
STORE_FORMAT = "repro-table-store"
COLUMNAR_VERSION = 2


def _schema_to_dict(schema: Schema) -> list[dict[str, Any]]:
    columns = []
    for column in schema.columns:
        name = _DTYPE_NAMES.get(column.dtype)
        if name is None:
            raise SchemaError(
                f"column {column.name!r} has non-serializable dtype "
                f"{column.dtype!r}"
            )
        columns.append({
            "name": column.name, "dtype": name, "nullable": column.nullable,
        })
    return columns


def _schema_from_dict(data: list[dict[str, Any]]) -> Schema:
    return Schema([
        Column(entry["name"], _DTYPES_BY_NAME[entry["dtype"]],
               nullable=bool(entry.get("nullable", False)))
        for entry in data
    ])


def _columnar_partition_payload(table: Table, partition: str) -> dict[str, Any]:
    blocks = table.columns(partition)
    return {
        "rows": table.count(partition),
        "columns": {
            name: block.to_pylist() for name, block in blocks.items()
        },
    }


def _write_text(path: str | Path, text: str, atomic: bool) -> None:
    """Write ``text`` to ``path``, optionally via rename for atomicity.

    Atomic writes go through a same-directory temp file and
    ``os.replace``, so a reader (or a process killed mid-write) never
    observes a truncated file — the property checkpoint files rely on.
    """
    target = Path(path)
    if not atomic:
        target.write_text(text)
        return
    scratch = target.with_name(target.name + ".tmp")
    scratch.write_text(text)
    os.replace(scratch, target)


def save_table_store(store: TableStore, path: str | Path, *,
                     layout: str = "columnar", atomic: bool = False) -> None:
    """Serialize every table (schema + partitions) to one JSON file.

    ``layout="columnar"`` (default) writes the versioned column-major
    format; ``layout="rows"`` writes the legacy v1 row-major layout for
    consumers that have not migrated.  ``atomic=True`` writes through a
    temp file + rename so a kill mid-save cannot corrupt an existing
    file.  Output is deterministic: tables and partitions are emitted
    in sorted order, so saving an unchanged store reproduces the file
    byte for byte.
    """
    if layout == "rows":
        payload: dict[str, Any] = {}
        for name in store.names():
            table = store.get(name)
            payload[name] = {
                "schema": _schema_to_dict(table.schema),
                "partitions": {
                    partition: table.rows(partition=partition)
                    for partition in table.partitions
                },
            }
        _write_text(path, json.dumps(payload), atomic)
        return
    if layout != "columnar":
        raise ValueError(f"unknown table-store layout {layout!r}")
    tables: dict[str, Any] = {}
    for name in store.names():
        table = store.get(name)
        tables[name] = {
            "schema": _schema_to_dict(table.schema),
            "partitions": {
                partition: _columnar_partition_payload(table, partition)
                for partition in table.partitions
            },
        }
    _write_text(path, json.dumps({
        "format": STORE_FORMAT,
        "version": COLUMNAR_VERSION,
        "layout": "columnar",
        "tables": tables,
    }), atomic)


def _load_columnar_store(payload: dict[str, Any],
                         path: str | Path) -> TableStore:
    version = payload.get("version")
    if version != COLUMNAR_VERSION:
        raise ValueError(
            f"unsupported table-store version {version!r} in {path} "
            f"(expected {COLUMNAR_VERSION})"
        )
    store = TableStore()
    for name, table_data in payload["tables"].items():
        schema = _schema_from_dict(table_data["schema"])
        table = store.create(name, schema)
        for partition, part_data in table_data["partitions"].items():
            columns = part_data["columns"]
            rows = part_data.get("rows")
            loaded = table.overwrite_partition_columns(columns, partition)
            if rows is not None and loaded != rows:
                raise ValueError(
                    f"partition {partition!r} of table {name!r} declares "
                    f"{rows} rows but holds {loaded} in {path}"
                )
    return store


def load_table_store(path: str | Path) -> TableStore:
    """Inverse of :func:`save_table_store`; data is re-validated.

    Auto-detects the layout: versioned columnar envelopes load through
    the vectorized column validation, legacy row-major files (v1)
    through the row validators.  Empty partitions survive either way.
    """
    payload = json.loads(Path(path).read_text())
    if isinstance(payload.get("format"), str):
        if payload["format"] != STORE_FORMAT:
            raise ValueError(
                f"unknown table-store format {payload['format']!r} in {path}"
            )
        return _load_columnar_store(payload, path)
    store = TableStore()
    for name, table_data in payload.items():
        schema = _schema_from_dict(table_data["schema"])
        table = store.create(name, schema)
        for partition, rows in table_data["partitions"].items():
            table.overwrite_partition(rows, partition)
    return store


def save_config_db(db: ConfigDB, path: str | Path) -> None:
    """Serialize every key's full version history to one JSON file."""
    payload = {
        key: [
            {"version": record.version, "value": record.value}
            for record in db.history(key)
        ]
        for key in db.keys()
    }
    Path(path).write_text(json.dumps(payload))


def load_config_db(path: str | Path) -> ConfigDB:
    """Inverse of :func:`save_config_db`, preserving version numbers."""
    payload = json.loads(Path(path).read_text())
    db = ConfigDB()
    for key, records in payload.items():
        ordered = sorted(records, key=lambda r: r["version"])
        for expected_version, record in enumerate(ordered, start=1):
            if record["version"] != expected_version:
                raise ValueError(
                    f"config {key!r} has non-contiguous versions in {path}"
                )
            db.put(key, record["value"])
    return db


def snapshot_table(table: Table, path: str | Path,
                   partition: str | None = None) -> int:
    """Dump one table (or one partition) as a JSON list of rows."""
    rows = table.rows(partition=partition)
    Path(path).write_text(json.dumps(rows))
    return len(rows)

"""SLS-like time-indexed event/log store.

CloudBot stores original event data in the Simple Log Service for
rapid searching (paper Fig. 4).  This stand-in keeps entries sorted by
timestamp, supports time-range queries with field filters, and
enforces a retention horizon like a real hot store.

Two read protocols coexist:

* **time-range queries** (:meth:`LogStore.query`) for analytical
  scans — snapshot semantics, mutation-detected (see below);
* **cursor tailing** (:meth:`LogStore.appended_after`) for streaming
  consumers — every append is stamped with a monotonically increasing
  sequence number, so a tailer that remembers the last sequence it
  consumed reads each record exactly once regardless of how far out
  of timestamp order it arrived.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One stored entry: a timestamp plus arbitrary fields."""

    time: float
    fields: Mapping[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with default."""
        return self.fields.get(key, default)


class LogStore:
    """Append-mostly store with binary-searched time-range queries.

    ``retention`` bounds how far back entries are kept; calling
    :meth:`expire` (or appending, which expires opportunistically)
    drops entries older than ``latest - retention``.
    """

    def __init__(self, retention: float = 7 * 24 * 3600.0) -> None:
        if retention <= 0:
            raise ValueError(f"retention must be positive, got {retention}")
        self._retention = retention
        self._times: list[float] = []
        self._entries: list[LogEntry] = []
        self._seqs: list[int] = []
        self._next_seq = 0
        self._mutations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def latest_time(self) -> float | None:
        """Timestamp of the newest entry, if any."""
        return self._times[-1] if self._times else None

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent append (``-1`` if none).

        Sequence numbers are assigned in *arrival* order, independent
        of entry timestamps — the cursor space of
        :meth:`appended_after`.
        """
        return self._next_seq - 1

    @property
    def mutation_count(self) -> int:
        """Monotonic counter bumped by every append and every expiry.

        Live :meth:`query` iterators snapshot this counter and raise if
        it moves — the pinned iteration semantics (see :meth:`query`).
        """
        return self._mutations

    def append(self, time: float, **fields: Any) -> LogEntry:
        """Insert one entry (out-of-order arrivals are supported)."""
        entry = LogEntry(time=time, fields=dict(fields))
        index = bisect.bisect_right(self._times, time)
        self._times.insert(index, time)
        self._entries.insert(index, entry)
        self._seqs.insert(index, self._next_seq)
        self._next_seq += 1
        self._mutations += 1
        self._expire_before(self._times[-1] - self._retention)
        return entry

    def extend(self, entries: Mapping[float, Mapping[str, Any]] | None = None,
               rows: list[tuple[float, dict[str, Any]]] | None = None) -> int:
        """Bulk insert from ``rows`` (list of (time, fields)); returns count."""
        count = 0
        for time, fields in (rows or []):
            self.append(time, **fields)
            count += 1
        return count

    def query(self, start: float, end: float,
              predicate: Callable[[LogEntry], bool] | None = None,
              **field_filters: Any) -> Iterator[LogEntry]:
        """Entries with ``start <= time < end`` matching all filters.

        ``field_filters`` are equality constraints on entry fields;
        ``predicate`` is an arbitrary extra filter.  This is a true
        streaming iterator: entries are yielded straight out of the
        index range, never copied into an intermediate list, so a
        fleet-scale range scan holds one entry at a time.

        **Pinned mutation semantics**: records appended (or expired)
        after iteration starts are *not* surfaced — instead, any
        mutation of the store while the iterator is live raises
        ``RuntimeError`` at the next step (like mutating a dict
        mid-iteration, but detected deterministically instead of being
        undefined).  Callers that need to consume concurrently with
        appends — the streaming tailer — must use the cursor protocol
        (:meth:`appended_after`), which materializes its batch and is
        therefore immune to subsequent appends.
        """
        if end < start:
            raise ValueError(f"query range reversed: [{start}, {end})")
        mutations_at_start = self._mutations
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        entries = self._entries
        for index in range(lo, hi):
            if self._mutations != mutations_at_start:
                raise RuntimeError(
                    "log store mutated during query iteration; exhaust the "
                    "iterator before appending/expiring, or tail with "
                    "appended_after()"
                )
            entry = entries[index]
            if field_filters and any(
                entry.get(key) != value for key, value in field_filters.items()
            ):
                continue
            if predicate is not None and not predicate(entry):
                continue
            yield entry

    def appended_after(self, seq: int) -> list[tuple[int, LogEntry]]:
        """Entries appended after sequence ``seq``, in arrival order.

        The streaming cursor protocol: each returned pair is
        ``(sequence, entry)`` with ``sequence > seq``, sorted by
        sequence (= arrival order), so a consumer that persists the
        last sequence it processed reads every surviving record exactly
        once — including records whose *timestamps* lie arbitrarily far
        in the past.  Entries that fell off the retention horizon
        before being tailed are gone (their sequences are skipped,
        which the monotonic cursor tolerates).  The batch is
        materialized, so subsequent appends cannot invalidate it.
        """
        fresh = [
            (entry_seq, entry)
            for entry_seq, entry in zip(self._seqs, self._entries)
            if entry_seq > seq
        ]
        fresh.sort(key=lambda pair: pair[0])
        return fresh

    def count(self, start: float, end: float, **field_filters: Any) -> int:
        """Number of matching entries in the range."""
        return sum(1 for _ in self.query(start, end, **field_filters))

    def expire(self, now: float) -> int:
        """Drop entries older than ``now - retention``; returns count."""
        return self._expire_before(now - self._retention)

    def _expire_before(self, cutoff: float) -> int:
        index = bisect.bisect_left(self._times, cutoff)
        if index == 0:
            return 0
        del self._times[:index]
        del self._entries[:index]
        del self._seqs[:index]
        self._mutations += 1
        return index

"""The CDI query service: typed queries over the daily job's outputs.

:class:`QueryService` is the in-process serving layer of the repro —
the read path that the paper's interactive workflows (Section VI)
would hit: daily fleet dashboards (point lookup), FY trend curves
(range scan / trend), per-dimension drill-downs (group-by), "most
damaged VM" triage (top-K), and event-level monitoring (event
series).  Queries are frozen dataclasses, so they double as cache
keys; results come from the materialized rollups in
:class:`~repro.serving.rollups.RollupStore` through a
generation-stamped LRU (:class:`~repro.serving.cache.
GenerationCache`) that any table write invalidates.

Every answer is byte-identical to recomputing directly from the
output tables' rows — the serving layer is a cache, never a different
computation (enforced by ``tests/serving/test_differential.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.core.indicator import CdiReport
from repro.serving.cache import MISS, CacheStats, GenerationCache
from repro.serving.rollups import CATEGORIES, DimensionResolver, RollupStore
from repro.storage.table import TableStore


@dataclass(frozen=True, slots=True)
class FleetQuery:
    """Point lookup: the fleet CDI report of one day."""

    day: str


@dataclass(frozen=True, slots=True)
class FleetRangeQuery:
    """Range scan: per-day fleet reports for ``start <= day <= end``.

    ``None`` bounds are open; day partitions compare as their labels
    (the pipeline's zero-padded labels sort chronologically).
    """

    start: str | None = None
    end: str | None = None


@dataclass(frozen=True, slots=True)
class CategoryTrendQuery:
    """FY-trend scan: one sub-metric's daily fleet value over all days."""

    category: str


@dataclass(frozen=True, slots=True)
class GroupByQuery:
    """Group-by: Formula 4 per value of one topology dimension."""

    day: str
    dimension: str


@dataclass(frozen=True, slots=True)
class TopVmsQuery:
    """Top-K: most damaged VMs of one sub-metric on one day."""

    day: str
    category: str
    k: int = 5


@dataclass(frozen=True, slots=True)
class TopEventsQuery:
    """Top-K: event names ranked by fleet-level CDI on one day."""

    day: str
    k: int = 5


@dataclass(frozen=True, slots=True)
class EventSeriesQuery:
    """Event-level drill-down curve: one event's daily fleet CDI."""

    event: str


@dataclass(frozen=True, slots=True)
class VmQuery:
    """Point lookup: one VM's ``vm_cdi`` row on one day."""

    day: str
    vm: str


#: Every typed query the service executes.
Query = Union[
    FleetQuery, FleetRangeQuery, CategoryTrendQuery, GroupByQuery,
    TopVmsQuery, TopEventsQuery, EventSeriesQuery, VmQuery,
]


class QueryService:
    """Cached, typed queries over the ``vm_cdi``/``event_cdi`` tables.

    Parameters
    ----------
    tables:
        The table store holding the daily job's output tables (usually
        :attr:`repro.pipeline.daily.DailyCdiJob.tables`).
    resolver:
        Optional ``vm → dimensions`` resolver enabling group-by
        queries (usually ``fleet.dimensions_of``).
    cache_size:
        LRU capacity of the result cache.

    The service is thread-safe for concurrent readers while the daily
    job keeps writing: results are stamped with the tables' write
    generations *before* the data is read, so a write racing a query
    can only cause a needless recompute, never a stale answer.
    """

    def __init__(self, tables: TableStore, *,
                 resolver: DimensionResolver | None = None,
                 cache_size: int = 256) -> None:
        self._rollups = RollupStore(tables, resolver=resolver)
        self._cache = GenerationCache(maxsize=cache_size)

    # -- execution -------------------------------------------------------------

    def execute(self, query: Query) -> Any:
        """Run one typed query through the generation-stamped cache."""
        stamp = self._rollups.generation_stamp()
        cached = self._cache.get(query, stamp)
        if cached is not MISS:
            return cached
        result = self._dispatch(query)
        self._cache.put(query, stamp, result)
        return result

    def _dispatch(self, query: Query) -> Any:
        """Compute one query from the materialized rollups (uncached)."""
        if isinstance(query, FleetQuery):
            return self._rollups.rollup(query.day).fleet
        if isinstance(query, FleetRangeQuery):
            return [
                (day, self._rollups.rollup(day).fleet)
                for day in self._days_between(query.start, query.end)
            ]
        if isinstance(query, CategoryTrendQuery):
            if query.category not in CATEGORIES:
                raise ValueError(f"unknown category {query.category!r}")
            return [
                (day, getattr(self._rollups.rollup(day).fleet, query.category))
                for day in self._rollups.days()
            ]
        if isinstance(query, GroupByQuery):
            return self._rollups.rollup(query.day).group_by(query.dimension)
        if isinstance(query, TopVmsQuery):
            return self._rollups.rollup(query.day).top_vms(
                query.category, query.k
            )
        if isinstance(query, TopEventsQuery):
            return self._rollups.rollup(query.day).event_leaderboard(query.k)
        if isinstance(query, EventSeriesQuery):
            return [
                (day, self._rollups.rollup(day).event_value(query.event))
                for day in self._rollups.days()
            ]
        if isinstance(query, VmQuery):
            return self._rollups.rollup(query.day).vm_report(query.vm)
        raise TypeError(f"unknown query type {type(query).__name__}")

    def _days_between(self, start: str | None, end: str | None) -> list[str]:
        """Known day partitions within the (inclusive) label bounds."""
        return [
            day for day in self._rollups.days()
            if (start is None or day >= start) and (end is None or day <= end)
        ]

    # -- typed convenience wrappers (all cached via execute) -------------------

    def fleet(self, day: str) -> CdiReport:
        """Fleet CDI report of one day (zeros for an unknown day)."""
        return self.execute(FleetQuery(day))

    def fleet_range(self, start: str | None = None,
                    end: str | None = None) -> list[tuple[str, CdiReport]]:
        """Per-day fleet reports over an inclusive day-label range."""
        return self.execute(FleetRangeQuery(start, end))

    def trend(self, category: str) -> list[tuple[str, float]]:
        """One sub-metric's daily fleet curve over every known day."""
        return self.execute(CategoryTrendQuery(category))

    def group_by(self, day: str, dimension: str) -> dict[str, CdiReport]:
        """Formula 4 per value of one dimension (needs a resolver)."""
        return self.execute(GroupByQuery(day, dimension))

    def top_vms(self, day: str, category: str,
                k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` most damaged VMs of one sub-metric on one day."""
        return self.execute(TopVmsQuery(day, category, k))

    def top_events(self, day: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` top event-name contributors on one day."""
        return self.execute(TopEventsQuery(day, k))

    def event_series(self, event: str) -> list[tuple[str, float]]:
        """One event's daily fleet-level CDI curve over every day."""
        return self.execute(EventSeriesQuery(event))

    def vm_report(self, day: str, vm: str) -> dict[str, Any] | None:
        """One VM's ``vm_cdi`` row on one day, or ``None``."""
        return self.execute(VmQuery(day, vm))

    # -- introspection ---------------------------------------------------------

    def days(self) -> list[str]:
        """Every known day partition, sorted."""
        return self._rollups.days()

    def vm_count(self, day: str) -> int:
        """Number of VMs with a ``vm_cdi`` row on one day."""
        return self._rollups.rollup(day).vm_count

    @property
    def resolver(self) -> DimensionResolver | None:
        """The configured dimension resolver, if any."""
        return self._rollups.resolver

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/invalidation counters of the result cache."""
        return self._cache.stats

"""The CDI query service: typed queries over the daily job's outputs.

:class:`QueryService` is the in-process serving layer of the repro —
the read path that the paper's interactive workflows (Section VI)
would hit: daily fleet dashboards (point lookup), FY trend curves
(range scan / trend), per-dimension drill-downs (group-by), "most
damaged VM" triage (top-K), and event-level monitoring (event
series).  Queries are frozen dataclasses, so they double as cache
keys; results come from the materialized rollups in
:class:`~repro.serving.rollups.RollupStore` through a
generation-stamped LRU (:class:`~repro.serving.cache.
GenerationCache`) that any table write invalidates.

Every answer is byte-identical to recomputing directly from the
output tables' rows — the serving layer is a cache, never a different
computation (enforced by ``tests/serving/test_differential.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Union

from repro.core.indicator import CdiReport
from repro.serving.cache import MISS, CacheStats, GenerationCache
from repro.serving.rollups import (
    CATEGORIES,
    DEFAULT_SHARD_CACHE_SIZE,
    DimensionResolver,
    RollupStore,
)
from repro.storage.table import TableStore

#: Cross-shard snapshot attempts before the service reports overload.
SNAPSHOT_RETRIES = 64


class ServiceUnavailableError(RuntimeError):
    """No consistent cross-shard snapshot could be assembled.

    Raised when :data:`SNAPSHOT_RETRIES` consecutive attempts at a
    multi-partition read were each invalidated by a concurrent writer
    bumping one of the involved partitions mid-merge.  Callers should
    treat it like overload (the wire layer maps it to the
    ``unavailable`` error kind) — the alternative would be serving a
    torn merge, which the service never does.
    """


@dataclass(frozen=True, slots=True)
class FleetQuery:
    """Point lookup: the fleet CDI report of one day."""

    day: str


@dataclass(frozen=True, slots=True)
class FleetRangeQuery:
    """Range scan: per-day fleet reports for ``start <= day <= end``.

    ``None`` bounds are open; day partitions compare as their labels
    (the pipeline's zero-padded labels sort chronologically).
    """

    start: str | None = None
    end: str | None = None


@dataclass(frozen=True, slots=True)
class CategoryTrendQuery:
    """FY-trend scan: one sub-metric's daily fleet value over all days."""

    category: str


@dataclass(frozen=True, slots=True)
class GroupByQuery:
    """Group-by: Formula 4 per value of one topology dimension."""

    day: str
    dimension: str


@dataclass(frozen=True, slots=True)
class TopVmsQuery:
    """Top-K: most damaged VMs of one sub-metric on one day."""

    day: str
    category: str
    k: int = 5


@dataclass(frozen=True, slots=True)
class TopEventsQuery:
    """Top-K: event names ranked by fleet-level CDI on one day."""

    day: str
    k: int = 5


@dataclass(frozen=True, slots=True)
class EventSeriesQuery:
    """Event-level drill-down curve: one event's daily fleet CDI."""

    event: str


@dataclass(frozen=True, slots=True)
class VmQuery:
    """Point lookup: one VM's ``vm_cdi`` row on one day."""

    day: str
    vm: str


#: Every typed query the service executes.
Query = Union[
    FleetQuery, FleetRangeQuery, CategoryTrendQuery, GroupByQuery,
    TopVmsQuery, TopEventsQuery, EventSeriesQuery, VmQuery,
]


class QueryService:
    """Cached, typed queries over the ``vm_cdi``/``event_cdi`` tables.

    Parameters
    ----------
    tables:
        The table store holding the daily job's output tables (usually
        :attr:`repro.pipeline.daily.DailyCdiJob.tables`).
    resolver:
        Optional ``vm → dimensions`` resolver enabling group-by
        queries (usually ``fleet.dimensions_of``).
    cache_size:
        LRU capacity of the result cache.
    shards:
        Number of rollup shards partitions are hashed over.  ``1``
        (the default) is the original single-store path; more shards
        split the rollup plane so multi-day queries can fan out.
    shard_cache_size:
        Per-shard rollup LRU capacity (bounds memory under backfills).
    parallelism:
        Thread-pool width for cross-shard fan-out.  Defaults to the
        shard count; ``1`` forces sequential merges.  Ignored when
        ``shards == 1`` (nothing to fan out to).

    The service is thread-safe for concurrent readers while the daily
    job keeps writing: results are stamped with the tables' write
    generations *before* the data is read, so a write racing a query
    can only cause a needless recompute, never a stale answer.
    Multi-partition queries additionally validate a per-partition
    generation snapshot after the merge and recompute on any mid-read
    bump, so a cross-shard answer always corresponds to one consistent
    point in the write history — never a torn merge (DESIGN.md §13).
    """

    def __init__(self, tables: TableStore, *,
                 resolver: DimensionResolver | None = None,
                 cache_size: int = 256,
                 shards: int = 1,
                 shard_cache_size: int = DEFAULT_SHARD_CACHE_SIZE,
                 parallelism: int | None = None) -> None:
        self._rollups = RollupStore(tables, resolver=resolver, shards=shards,
                                    shard_cache_size=shard_cache_size)
        self._cache = GenerationCache(maxsize=cache_size)
        workers = shards if parallelism is None else parallelism
        if workers < 1:
            raise ValueError(f"parallelism must be >= 1, got {workers}")
        self._pool: ThreadPoolExecutor | None = None
        if shards > 1 and workers > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=min(workers, shards),
                thread_name_prefix="repro-shard",
            )

    def close(self) -> None:
        """Shut down the shard fan-out pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- execution -------------------------------------------------------------

    def execute(self, query: Query) -> Any:
        """Run one typed query through the generation-stamped cache."""
        stamp = self._rollups.generation_stamp()
        cached = self._cache.get(query, stamp)
        if cached is not MISS:
            return cached
        result = self._dispatch(query)
        # Cache only if no table write landed while computing: then the
        # result is exactly the state at ``stamp``.  Under a racing
        # writer the entry would be dead on arrival anyway (generations
        # are monotonic, so its stamp could never match again).
        if self._rollups.generation_stamp() == stamp:
            self._cache.put(query, stamp, result)
        return result

    def _dispatch(self, query: Query) -> Any:
        """Compute one query from the materialized rollups (uncached).

        Single-day kinds route straight to the owning shard; multi-day
        kinds go through the snapshot-validated cross-shard merge.
        """
        if isinstance(query, FleetQuery):
            return self._rollups.rollup(query.day).fleet
        if isinstance(query, FleetRangeQuery):
            days, reports = self._merged_days(
                lambda: self._days_between(query.start, query.end),
                lambda rollup: rollup.fleet,
            )
            return list(zip(days, reports))
        if isinstance(query, CategoryTrendQuery):
            if query.category not in CATEGORIES:
                raise ValueError(f"unknown category {query.category!r}")
            days, values = self._merged_days(
                self._rollups.days,
                lambda rollup: getattr(rollup.fleet, query.category),
            )
            return list(zip(days, values))
        if isinstance(query, GroupByQuery):
            return self._rollups.rollup(query.day).group_by(query.dimension)
        if isinstance(query, TopVmsQuery):
            return self._rollups.rollup(query.day).top_vms(
                query.category, query.k
            )
        if isinstance(query, TopEventsQuery):
            return self._rollups.rollup(query.day).event_leaderboard(query.k)
        if isinstance(query, EventSeriesQuery):
            days, values = self._merged_days(
                self._rollups.days,
                lambda rollup: rollup.event_value(query.event),
            )
            return list(zip(days, values))
        if isinstance(query, VmQuery):
            return self._rollups.rollup(query.day).vm_report(query.vm)
        raise TypeError(f"unknown query type {type(query).__name__}")

    # -- cross-shard merge plane -----------------------------------------------

    def _merged_days(self, days_fn: Callable[[], list[str]],
                     per_rollup: Callable[[Any], Any],
                     ) -> tuple[list[str], list[Any]]:
        """Snapshot-consistent per-day values across shards.

        The protocol: resolve the day list and atomically snapshot the
        involved partitions' generation stamps, fan the per-day reads
        out to their owning shards, then re-resolve and re-snapshot —
        if either changed, a writer landed mid-merge and the whole
        read restarts.  Equal stamps prove every rollup used was at
        exactly the snapshotted generations (generations are monotonic
        and each shard validates its rollup's stamp on access), i.e.
        the merged answer existed at one point in the write history.

        Unrelated writes (other partitions, other tables' days) do not
        perturb the involved stamps, so a live backfill appending new
        partitions only retries a query whose *day list* it extends.
        """
        for _ in range(SNAPSHOT_RETRIES):
            days = days_fn()
            stamps = self._rollups.partition_stamps(days)
            values = self._scatter_gather(days, per_rollup)
            if (days_fn() == days
                    and self._rollups.partition_stamps(days) == stamps):
                return days, values
        raise ServiceUnavailableError(
            f"no consistent cross-shard snapshot after {SNAPSHOT_RETRIES} "
            "attempts (writers kept landing mid-merge); retry later"
        )

    def _scatter_gather(self, days: list[str],
                        per_rollup: Callable[[Any], Any]) -> list[Any]:
        """One value per day, computed shard-parallel, in day order."""
        if self._pool is None or len(days) <= 1:
            return [per_rollup(self._rollups.rollup(day)) for day in days]
        by_shard: dict[int, list[tuple[int, str]]] = {}
        for position, day in enumerate(days):
            by_shard.setdefault(self._rollups.shard_of(day), []).append(
                (position, day)
            )

        def run_shard(entries: list[tuple[int, str]]) -> list[tuple[int, Any]]:
            return [
                (position, per_rollup(self._rollups.rollup(day)))
                for position, day in entries
            ]

        values: list[Any] = [None] * len(days)
        futures = [
            self._pool.submit(run_shard, entries)
            for entries in by_shard.values()
        ]
        for future in futures:
            for position, value in future.result():
                values[position] = value
        return values

    def _days_between(self, start: str | None, end: str | None) -> list[str]:
        """Known day partitions within the (inclusive) label bounds."""
        return [
            day for day in self._rollups.days()
            if (start is None or day >= start) and (end is None or day <= end)
        ]

    # -- typed convenience wrappers (all cached via execute) -------------------

    def fleet(self, day: str) -> CdiReport:
        """Fleet CDI report of one day (zeros for an unknown day)."""
        return self.execute(FleetQuery(day))

    def fleet_range(self, start: str | None = None,
                    end: str | None = None) -> list[tuple[str, CdiReport]]:
        """Per-day fleet reports over an inclusive day-label range."""
        return self.execute(FleetRangeQuery(start, end))

    def trend(self, category: str) -> list[tuple[str, float]]:
        """One sub-metric's daily fleet curve over every known day."""
        return self.execute(CategoryTrendQuery(category))

    def group_by(self, day: str, dimension: str) -> dict[str, CdiReport]:
        """Formula 4 per value of one dimension (needs a resolver)."""
        return self.execute(GroupByQuery(day, dimension))

    def top_vms(self, day: str, category: str,
                k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` most damaged VMs of one sub-metric on one day."""
        return self.execute(TopVmsQuery(day, category, k))

    def top_events(self, day: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` top event-name contributors on one day."""
        return self.execute(TopEventsQuery(day, k))

    def event_series(self, event: str) -> list[tuple[str, float]]:
        """One event's daily fleet-level CDI curve over every day."""
        return self.execute(EventSeriesQuery(event))

    def vm_report(self, day: str, vm: str) -> dict[str, Any] | None:
        """One VM's ``vm_cdi`` row on one day, or ``None``."""
        return self.execute(VmQuery(day, vm))

    # -- introspection ---------------------------------------------------------

    def days(self) -> list[str]:
        """Every known day partition, sorted."""
        return self._rollups.days()

    def generation_stamp(self) -> tuple[int, int]:
        """Current ``(vm_cdi, event_cdi)`` table write generations.

        The stamp callers use to cache anything derived from this
        service's answers (e.g. the socket listener's serialized
        response cache) under the stamp-before-read protocol.
        """
        return self._rollups.generation_stamp()

    def vm_count(self, day: str) -> int:
        """Number of VMs with a ``vm_cdi`` row on one day."""
        return self._rollups.rollup(day).vm_count

    @property
    def resolver(self) -> DimensionResolver | None:
        """The configured dimension resolver, if any."""
        return self._rollups.resolver

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/invalidation counters of the result cache."""
        return self._cache.stats

    @property
    def shard_count(self) -> int:
        """Number of rollup shards behind this service."""
        return self._rollups.shard_count

    @property
    def cached_rollups(self) -> int:
        """Total materialized rollups held across all shards."""
        return self._rollups.cached_rollups

"""Admission control for the serving front end.

The paper's CDI platform serves many concurrent consumers (BI
dashboards, CloudBot, operators); a serving layer that accepts every
request melts down under the heaviest one.  This module is the
gatekeeper in front of :class:`~repro.serving.service.QueryService`:

* a **bounded in-flight limit** — at most ``max_in_flight`` queries
  execute at once; excess load is rejected immediately with a typed
  ``overloaded`` error instead of queueing without bound;
* **per-client token buckets** — each client refills at
  ``rate_per_client`` tokens/second up to ``burst``; a client that
  outruns its bucket gets a typed ``rate_limited`` error while other
  clients are unaffected.

Rejections are *explicit and cheap*: the caller gets an
:class:`AdmissionError` carrying a stable ``kind`` that the wire
layer maps onto the JSON error envelope
(``{"ok": false, "error": {"kind": ..., "message": ...}}``), so
well-behaved clients can back off and retry.

Time is injected (``clock``) so rate-limit behaviour is deterministic
under test; production uses ``time.monotonic``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

#: Per-client buckets kept before the least-recently-seen is dropped.
MAX_TRACKED_CLIENTS = 1024


class AdmissionError(RuntimeError):
    """A query was rejected before execution; ``kind`` names why."""

    kind = "rejected"


class OverloadedError(AdmissionError):
    """Too many queries in flight — the service sheds load."""

    kind = "overloaded"


class RateLimitedError(AdmissionError):
    """One client exceeded its token bucket; others are unaffected."""

    kind = "rate_limited"


@dataclass(frozen=True, slots=True)
class AdmissionStats:
    """Counters of one :class:`AdmissionController` (point-in-time copy)."""

    admitted: int
    rejected_overload: int
    rejected_rate: int
    in_flight: int

    @property
    def attempts(self) -> int:
        """Total admission attempts (admitted plus every rejection)."""
        return self.admitted + self.rejected_overload + self.rejected_rate


class TokenBucket:
    """A deterministic token bucket: ``rate`` tokens/second, ``burst`` cap.

    Not thread-safe on its own — the owning
    :class:`AdmissionController` serializes access under its lock.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float]) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def take(self, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens if available; ``False`` otherwise."""
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
        self._last = now
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False


class AdmissionController:
    """Bounded in-flight queries plus per-client token-bucket limits.

    Parameters
    ----------
    max_in_flight:
        Queries allowed to execute concurrently; the ``max_in_flight +
        1``-th attempt is rejected with :class:`OverloadedError`.
    rate_per_client:
        Sustained tokens/second granted to each client; ``None``
        disables rate limiting.  ``0`` grants only the initial burst —
        useful for deterministic tests.
    burst:
        Bucket capacity (instantaneous burst allowance).  Defaults to
        ``max(1, rate_per_client)``.
    clock:
        Monotonic time source; injectable for deterministic tests.

    All methods are thread-safe.  Client buckets are LRU-bounded at
    :data:`MAX_TRACKED_CLIENTS` so an open service cannot be grown
    without bound by fabricated client identities (a dropped client
    simply starts from a full bucket again — conservative in the
    permissive direction).
    """

    def __init__(self, *, max_in_flight: int = 64,
                 rate_per_client: float | None = None,
                 burst: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self._max_in_flight = max_in_flight
        self._rate = rate_per_client
        self._burst = (
            max(1.0, rate_per_client) if burst is None and
            rate_per_client is not None else burst
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._in_flight = 0
        self._admitted = 0
        self._rejected_overload = 0
        self._rejected_rate = 0

    @contextmanager
    def admit(self, client: str = "anonymous") -> Iterator[None]:
        """Admit one query for ``client`` for the duration of the block.

        Raises :class:`OverloadedError` or :class:`RateLimitedError`
        *before* entering the block; the in-flight slot is released on
        exit even if the query itself raises.
        """
        self._acquire(client)
        try:
            yield
        finally:
            with self._lock:
                self._in_flight -= 1

    def _acquire(self, client: str) -> None:
        """Take one in-flight slot and one token, or raise."""
        with self._lock:
            if self._in_flight >= self._max_in_flight:
                self._rejected_overload += 1
                raise OverloadedError(
                    f"too many queries in flight "
                    f"(limit {self._max_in_flight}); retry later"
                )
            if self._rate is not None:
                bucket = self._buckets.get(client)
                if bucket is None:
                    bucket = TokenBucket(self._rate, self._burst, self._clock)
                    self._buckets[client] = bucket
                    while len(self._buckets) > MAX_TRACKED_CLIENTS:
                        self._buckets.popitem(last=False)
                self._buckets.move_to_end(client)
                if not bucket.take(1.0):
                    self._rejected_rate += 1
                    raise RateLimitedError(
                        f"client {client!r} exceeded {self._rate}/s "
                        f"(burst {self._burst}); slow down"
                    )
            self._in_flight += 1
            self._admitted += 1

    @property
    def stats(self) -> AdmissionStats:
        """Snapshot of the admitted/rejected/in-flight counters."""
        with self._lock:
            return AdmissionStats(
                admitted=self._admitted,
                rejected_overload=self._rejected_overload,
                rejected_rate=self._rejected_rate,
                in_flight=self._in_flight,
            )
